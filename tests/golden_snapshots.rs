//! Golden cycle-accuracy snapshots.
//!
//! The hot-loop refactors in `ubrc-sim` must be *cycle-accurate
//! neutral*: every scheduling change is an implementation detail, so
//! every `SimResult` has to stay bit-identical to the model that
//! produced `tests/golden_snapshots.txt`. This test runs the full
//! Tiny-scale kernel suite under all four [`IndexPolicy`] variants
//! crossed with both replacement designs (use-based / LRU) and
//! compares cycles, retirement, replays, and the per-class miss
//! counts against the stored goldens. A trailing block of
//! `filtered-ehc` rows pins the expected-hit-count replacement scorer
//! without disturbing the original 96-row matrix.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! UBRC_BLESS=1 cargo test --release --test golden_snapshots
//! ```
//!
//! and justify the diff of `golden_snapshots.txt` in the PR.

use ubrc::core::{IndexPolicy, RegCacheConfig};
use ubrc::sim::{simulate_workload, RegStorage, SimConfig};
use ubrc::workloads::{suite, Scale};

const GOLDEN: &str = include_str!("golden_snapshots.txt");

const INDEX_POLICIES: [(&str, IndexPolicy); 4] = [
    ("standard", IndexPolicy::Standard),
    ("roundrobin", IndexPolicy::RoundRobin),
    ("minimum", IndexPolicy::Minimum),
    ("filtered", IndexPolicy::FilteredRoundRobin),
];

/// One snapshot row: identity, timing, and miss classification.
#[derive(Debug, PartialEq, Eq)]
struct Snap {
    kernel: String,
    config: String,
    cycles: u64,
    retired: u64,
    replayed: u64,
    reads: u64,
    read_hits: u64,
    read_misses: u64,
    misses_not_written: u64,
    misses_capacity: u64,
    misses_conflict: u64,
}

impl Snap {
    fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {} {}",
            self.kernel,
            self.config,
            self.cycles,
            self.retired,
            self.replayed,
            self.reads,
            self.read_hits,
            self.read_misses,
            self.misses_not_written,
            self.misses_capacity,
            self.misses_conflict,
        )
    }

    fn parse(line: &str) -> Option<Snap> {
        let mut f = line.split_whitespace();
        let kernel = f.next()?.to_string();
        let config = f.next()?.to_string();
        let mut n = || f.next()?.parse().ok();
        Some(Snap {
            kernel,
            config,
            cycles: n()?,
            retired: n()?,
            replayed: n()?,
            reads: n()?,
            read_hits: n()?,
            read_misses: n()?,
            misses_not_written: n()?,
            misses_capacity: n()?,
            misses_conflict: n()?,
        })
    }
}

fn cache_variants() -> Vec<(&'static str, RegCacheConfig)> {
    let mut ub = RegCacheConfig::use_based(64, 2);
    let mut lru = RegCacheConfig::lru(64, 2);
    // Miss classification must survive the refactor too.
    ub.classify_misses = true;
    lru.classify_misses = true;
    vec![("usebased", ub), ("lru", lru)]
}

fn snap_one(
    w: &ubrc::workloads::Workload,
    config: String,
    cache: RegCacheConfig,
    index: IndexPolicy,
    check: bool,
) -> Snap {
    let mut cfg = SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    });
    if check {
        cfg.check = ubrc::sim::CheckConfig::full();
    }
    let r = simulate_workload(w, cfg);
    let c = r.regcache.as_ref().expect("cached run has cache stats");
    Snap {
        kernel: w.name.to_string(),
        config,
        cycles: r.cycles,
        retired: r.retired,
        replayed: r.replayed,
        reads: c.reads,
        read_hits: c.read_hits,
        read_misses: c.read_misses,
        misses_not_written: c.misses_not_written,
        misses_capacity: c.misses_capacity,
        misses_conflict: c.misses_conflict,
    }
}

fn capture(check: bool) -> Vec<Snap> {
    let mut snaps = Vec::new();
    for w in suite(Scale::Tiny) {
        for (idx_name, index) in INDEX_POLICIES {
            for (cache_name, cache) in cache_variants() {
                snaps.push(snap_one(
                    &w,
                    format!("{idx_name}-{cache_name}"),
                    cache,
                    index,
                    check,
                ));
            }
        }
    }
    // The expected-hit-count replacement scorer rows are appended *after*
    // the original 96-row matrix so the pre-existing rows stay
    // byte-identical across the policy-trait refactor.
    for w in suite(Scale::Tiny) {
        let mut ehc = RegCacheConfig::expected_hit_count(64, 2);
        ehc.classify_misses = true;
        snaps.push(snap_one(
            &w,
            "filtered-ehc".to_string(),
            ehc,
            IndexPolicy::FilteredRoundRobin,
            check,
        ));
    }
    snaps
}

#[test]
fn sim_results_match_golden_snapshots() {
    let actual = capture(false);

    if std::env::var_os("UBRC_BLESS").is_some() {
        let mut out = String::from(
            "# kernel config cycles retired replayed reads read_hits \
             read_misses misses_not_written misses_capacity misses_conflict\n",
        );
        for s in &actual {
            out.push_str(&s.to_line());
            out.push('\n');
        }
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_snapshots.txt");
        std::fs::write(path, out).expect("write goldens");
        return;
    }

    let golden: Vec<Snap> = GOLDEN
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| Snap::parse(l).unwrap_or_else(|| panic!("malformed golden line: {l}")))
        .collect();
    assert_eq!(
        golden.len(),
        actual.len(),
        "snapshot count changed; rebless if intentional"
    );
    for (g, a) in golden.iter().zip(&actual) {
        assert_eq!(
            g, a,
            "cycle-accuracy drift at {}/{} — the timing model changed; \
             rebless only if that is intentional",
            a.kernel, a.config
        );
    }
}

/// The runtime checker (lockstep oracle + per-cycle invariants) must be
/// observation-only: the same cells, checked, must reproduce the
/// goldens bit for bit.
#[test]
fn checked_sim_results_match_golden_snapshots() {
    if std::env::var_os("UBRC_BLESS").is_some() {
        return; // blessing is handled by the unchecked capture
    }
    let actual = capture(true);
    let golden: Vec<Snap> = GOLDEN
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| Snap::parse(l).unwrap_or_else(|| panic!("malformed golden line: {l}")))
        .collect();
    assert_eq!(golden.len(), actual.len());
    for (g, a) in golden.iter().zip(&actual) {
        assert_eq!(
            g, a,
            "checked run diverged from goldens at {}/{} — the checker \
             perturbed the timing model (it must be observation-only)",
            a.kernel, a.config
        );
    }
}
