//! Golden cycle-accuracy snapshots.
//!
//! The hot-loop refactors in `ubrc-sim` must be *cycle-accurate
//! neutral*: every scheduling change is an implementation detail, so
//! every `SimResult` has to stay bit-identical to the model that
//! produced `tests/golden_snapshots.txt`. This test runs the full
//! Tiny-scale kernel suite under all four original [`IndexPolicy`]
//! variants crossed with both replacement designs (use-based / LRU)
//! and compares cycles, retirement, replays, and the per-class miss
//! counts against the stored goldens. Trailing blocks pin later
//! extensions without disturbing the original 96-row matrix:
//! `filtered-ehc` rows for the expected-hit-count replacement scorer,
//! `minload-*` rows for the occupancy-based set assigner, `smt2-*` and
//! `smt4-*` rows for the SMT core, `soft-*` rows for the parity
//! protection / machine-check recovery layer (fault-free and under
//! deterministic injected fault streams), `smt4-*-dyncap` rows for
//! utility-driven dynamic cache partitioning, `smt2-usebased-rr` /
//! `smt2-usebased-ic28` rows for the SMT fetch-policy ablation, and
//! `dynway-*` rows for UMON-guided dynamic way partitioning (fixed and
//! adaptive epochs) plus the feedback-driven insertion threshold.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```text
//! UBRC_BLESS=1 cargo test --release --test golden_snapshots
//! ```
//!
//! To regenerate only the rows whose config starts with a prefix
//! (e.g. a new trailing block) while keeping every other row verbatim:
//!
//! ```text
//! UBRC_BLESS_ONLY=smt2 cargo test --release --test golden_snapshots
//! ```
//!
//! and justify the diff of `golden_snapshots.txt` in the PR.

use ubrc::core::{
    CachePartition, EpochAdapt, IndexPolicy, InsertionPolicy, ProtectionConfig, RegCacheConfig,
};
use ubrc::sim::{
    simulate_smt, simulate_workload, FaultKind, FaultPlan, FetchPolicy, RecoveryPolicy, RegStorage,
    SimConfig,
};
use ubrc::workloads::{kernel_pairs, kernel_quads, suite, Scale, Workload};

const GOLDEN: &str = include_str!("golden_snapshots.txt");

const INDEX_POLICIES: [(&str, IndexPolicy); 4] = [
    ("standard", IndexPolicy::Standard),
    ("roundrobin", IndexPolicy::RoundRobin),
    ("minimum", IndexPolicy::Minimum),
    ("filtered", IndexPolicy::FilteredRoundRobin),
];

/// One snapshot row: identity, timing, and miss classification.
#[derive(Debug, PartialEq, Eq)]
struct Snap {
    kernel: String,
    config: String,
    cycles: u64,
    retired: u64,
    replayed: u64,
    reads: u64,
    read_hits: u64,
    read_misses: u64,
    misses_not_written: u64,
    misses_capacity: u64,
    misses_conflict: u64,
}

impl Snap {
    fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {} {} {} {} {} {} {}",
            self.kernel,
            self.config,
            self.cycles,
            self.retired,
            self.replayed,
            self.reads,
            self.read_hits,
            self.read_misses,
            self.misses_not_written,
            self.misses_capacity,
            self.misses_conflict,
        )
    }

    fn parse(line: &str) -> Option<Snap> {
        let mut f = line.split_whitespace();
        let kernel = f.next()?.to_string();
        let config = f.next()?.to_string();
        let mut n = || f.next()?.parse().ok();
        Some(Snap {
            kernel,
            config,
            cycles: n()?,
            retired: n()?,
            replayed: n()?,
            reads: n()?,
            read_hits: n()?,
            read_misses: n()?,
            misses_not_written: n()?,
            misses_capacity: n()?,
            misses_conflict: n()?,
        })
    }
}

fn cache_variants() -> Vec<(&'static str, RegCacheConfig)> {
    let mut ub = RegCacheConfig::use_based(64, 2);
    let mut lru = RegCacheConfig::lru(64, 2);
    // Miss classification must survive the refactor too.
    ub.classify_misses = true;
    lru.classify_misses = true;
    vec![("usebased", ub), ("lru", lru)]
}

fn cached_cfg(cache: RegCacheConfig, index: IndexPolicy, check: bool) -> SimConfig {
    let mut cfg = SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    });
    if check {
        cfg.check = ubrc::sim::CheckConfig::full();
    }
    cfg
}

fn snap_fields(kernel: String, config: String, r: &ubrc::sim::SimResult) -> Snap {
    let c = r.regcache.as_ref().expect("cached run has cache stats");
    Snap {
        kernel,
        config,
        cycles: r.cycles,
        retired: r.retired,
        replayed: r.replayed,
        reads: c.reads,
        read_hits: c.read_hits,
        read_misses: c.read_misses,
        misses_not_written: c.misses_not_written,
        misses_capacity: c.misses_capacity,
        misses_conflict: c.misses_conflict,
    }
}

fn snap_one(
    w: &Workload,
    config: String,
    cache: RegCacheConfig,
    index: IndexPolicy,
    check: bool,
) -> Snap {
    let r = simulate_workload(w, cached_cfg(cache, index, check));
    snap_fields(w.name.to_string(), config, &r)
}

/// A 2-thread SMT row: a kernel pair co-scheduled on one core. The
/// `retired` column is the aggregate over both threads; the cache
/// columns cover the single shared register cache.
fn snap_pair(
    a: &Workload,
    b: &Workload,
    config: String,
    cache: RegCacheConfig,
    index: IndexPolicy,
    check: bool,
) -> Snap {
    let programs = vec![
        a.assemble().expect("kernel assembles"),
        b.assemble().expect("kernel assembles"),
    ];
    let r = simulate_smt(programs, cached_cfg(cache, index, check));
    assert_eq!(r.thread_retired.len(), 2);
    snap_fields(format!("{}+{}", a.name, b.name), config, &r)
}

/// A 4-thread SMT row: a kernel quad co-scheduled on one core under a
/// cache-partition policy. Aggregate retirement, shared-cache columns.
fn snap_quad(
    quad: &[Workload; 4],
    config: String,
    cache: RegCacheConfig,
    index: IndexPolicy,
    check: bool,
) -> Snap {
    let programs = quad
        .iter()
        .map(|w| w.assemble().expect("kernel assembles"))
        .collect();
    let r = simulate_smt(programs, cached_cfg(cache, index, check));
    assert_eq!(r.thread_retired.len(), 4);
    let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
    snap_fields(names.join("+"), config, &r)
}

/// One cell of the snapshot matrix: its identity plus how to simulate
/// it. Keeping production behind a closure lets the subset-bless path
/// (`UBRC_BLESS_ONLY`) skip the simulations it is not regenerating.
struct Cell {
    kernel: String,
    config: String,
    run: Box<dyn Fn(bool) -> Snap>,
}

fn cells() -> Vec<Cell> {
    let mut cells: Vec<Cell> = Vec::new();
    // The original 96-row matrix (12 kernels x 4 policies x 2 designs).
    for w in suite(Scale::Tiny) {
        for (idx_name, index) in INDEX_POLICIES {
            for (cache_name, cache) in cache_variants() {
                let w = w.clone();
                let config = format!("{idx_name}-{cache_name}");
                cells.push(Cell {
                    kernel: w.name.to_string(),
                    config: config.clone(),
                    run: Box::new(move |check| snap_one(&w, config.clone(), cache, index, check)),
                });
            }
        }
    }
    // Trailing blocks are appended *after* the original matrix so the
    // pre-existing rows stay byte-identical across refactors.
    // Expected-hit-count replacement scorer:
    for w in suite(Scale::Tiny) {
        let mut ehc = RegCacheConfig::expected_hit_count(64, 2);
        ehc.classify_misses = true;
        cells.push(Cell {
            kernel: w.name.to_string(),
            config: "filtered-ehc".to_string(),
            run: Box::new(move |check| {
                snap_one(
                    &w,
                    "filtered-ehc".to_string(),
                    ehc,
                    IndexPolicy::FilteredRoundRobin,
                    check,
                )
            }),
        });
    }
    // Min-load (occupancy-based) set assignment:
    for w in suite(Scale::Tiny) {
        let mut ub = RegCacheConfig::use_based(64, 2);
        ub.classify_misses = true;
        cells.push(Cell {
            kernel: w.name.to_string(),
            config: "minload-usebased".to_string(),
            run: Box::new(move |check| {
                snap_one(
                    &w,
                    "minload-usebased".to_string(),
                    ub,
                    IndexPolicy::MinLoad,
                    check,
                )
            }),
        });
    }
    // 2-thread SMT kernel pairs, use-based vs LRU at the same geometry
    // (the pairing each scheme ships with in the experiments):
    for (a, b) in kernel_pairs(Scale::Tiny) {
        for (cache_name, cache, index) in [
            (
                "usebased",
                cache_variants()[0].1,
                IndexPolicy::FilteredRoundRobin,
            ),
            ("lru", cache_variants()[1].1, IndexPolicy::RoundRobin),
        ] {
            let (a, b) = (a.clone(), b.clone());
            let config = format!("smt2-{cache_name}");
            cells.push(Cell {
                kernel: format!("{}+{}", a.name, b.name),
                config: config.clone(),
                run: Box::new(move |check| snap_pair(&a, &b, config.clone(), cache, index, check)),
            });
        }
    }
    // 4-thread SMT kernel quads: the {use-based, LRU} x {shared,
    // way-partitioned, occupancy-capped} register-cache matrix at a
    // 64-entry 4-way geometry (so WayPartition gives each thread one
    // way per set).
    for quad in kernel_quads(Scale::Tiny) {
        for (scheme, index) in [
            ("usebased", IndexPolicy::FilteredRoundRobin),
            ("lru", IndexPolicy::RoundRobin),
        ] {
            for (part_name, part) in [
                ("shared", CachePartition::Shared),
                ("waypart", CachePartition::WayPartition),
                ("occcap", CachePartition::OccupancyCap),
            ] {
                let mut cache = if scheme == "usebased" {
                    RegCacheConfig::use_based(64, 4)
                } else {
                    RegCacheConfig::lru(64, 4)
                };
                cache.classify_misses = true;
                cache.partition = part;
                let quad = quad.clone();
                let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
                let config = format!("smt4-{scheme}-{part_name}");
                cells.push(Cell {
                    kernel: names.join("+"),
                    config: config.clone(),
                    run: Box::new(move |check| {
                        snap_quad(&quad, config.clone(), cache, index, check)
                    }),
                });
            }
        }
    }
    // Soft-error protection and recovery: `soft-protected` pins the
    // zero-overhead claim (full parity + machine-check recovery
    // enabled, no faults injected — the timing must be identical to a
    // plain use-based run), while the faulted rows pin the recovery
    // timing model itself under deterministic periodic fault streams:
    // cache-data faults re-fill, backing-word faults squash and replay.
    for w in suite(Scale::Tiny) {
        for (config, plan) in [
            ("soft-protected", None),
            (
                "soft-cachefault",
                Some(FaultPlan::periodic(13, 150, FaultKind::FlipCacheData)),
            ),
            (
                "soft-backingfault",
                Some(FaultPlan::periodic(17, 300, FaultKind::FlipBackingWord)),
            ),
        ] {
            let w = w.clone();
            cells.push(Cell {
                kernel: w.name.to_string(),
                config: config.to_string(),
                run: Box::new(move |check| {
                    let mut cache = RegCacheConfig::use_based(64, 2);
                    cache.classify_misses = true;
                    cache.protection = ProtectionConfig::full();
                    let mut cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, check);
                    cfg.recovery = RecoveryPolicy::enabled();
                    cfg.fault_plan = plan.clone();
                    let r = simulate_workload(&w, cfg);
                    snap_fields(w.name.to_string(), config.to_string(), &r)
                }),
            });
        }
    }
    // Utility-driven dynamic cache partitioning: the 4-thread quads
    // under `CachePartition::DynamicCap` (epochs of 128 cycles, floor 4
    // entries/thread — the `ucp` experiment's design point). Pins both
    // the utility-monitor sampling and the lookahead partitioner: any
    // change to epoch accounting, monitor geometry, or quota
    // arithmetic shows up here as timing drift.
    for quad in kernel_quads(Scale::Tiny) {
        for (scheme, index) in [
            ("usebased", IndexPolicy::FilteredRoundRobin),
            ("lru", IndexPolicy::RoundRobin),
        ] {
            let mut cache = if scheme == "usebased" {
                RegCacheConfig::use_based(64, 4)
            } else {
                RegCacheConfig::lru(64, 4)
            };
            cache.classify_misses = true;
            cache.partition = CachePartition::DynamicCap {
                epoch_cycles: 128,
                min_cap: 4,
            };
            let quad = quad.clone();
            let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
            let config = format!("smt4-{scheme}-dyncap");
            cells.push(Cell {
                kernel: names.join("+"),
                config: config.clone(),
                run: Box::new(move |check| snap_quad(&quad, config.clone(), cache, index, check)),
            });
        }
    }
    // SMT fetch-policy ablation: the kernel pairs under round-robin and
    // ICOUNT.2.8 fetch (the existing smt2 rows fetch with the default
    // ICOUNT.1.8), pinning the thread-selection logic.
    for (a, b) in kernel_pairs(Scale::Tiny) {
        for (policy_name, policy) in [
            ("rr", FetchPolicy::RoundRobin),
            ("ic28", FetchPolicy::Icount28),
        ] {
            let (a, b) = (a.clone(), b.clone());
            let cache = cache_variants()[0].1;
            let config = format!("smt2-usebased-{policy_name}");
            cells.push(Cell {
                kernel: format!("{}+{}", a.name, b.name),
                config: config.clone(),
                run: Box::new(move |check| {
                    let programs = vec![
                        a.assemble().expect("kernel assembles"),
                        b.assemble().expect("kernel assembles"),
                    ];
                    let mut cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, check);
                    cfg.fetch_policy = policy;
                    let r = simulate_smt(programs, cfg);
                    assert_eq!(r.thread_retired.len(), 2);
                    snap_fields(format!("{}+{}", a.name, b.name), config.clone(), &r)
                }),
            });
        }
    }
    // Dynamic way partitioning on the `PartitionController` seam: the
    // quads at a 64-entry 8-way geometry (four threads start with two
    // ways each, so the UMON-guided way partitioner has whole ways to
    // move), once on the fixed 128-cycle epoch grid per scheme and once
    // under adaptive epoch pacing (32..512 cycles, hysteresis band 2).
    // Any change to way-reassignment order, migrant placement, or the
    // pacer's lengthen/shorten arithmetic shows up here as drift.
    for quad in kernel_quads(Scale::Tiny) {
        for (scheme, index) in [
            ("usebased", IndexPolicy::FilteredRoundRobin),
            ("lru", IndexPolicy::RoundRobin),
        ] {
            let mut cache = if scheme == "usebased" {
                RegCacheConfig::use_based(64, 8)
            } else {
                RegCacheConfig::lru(64, 8)
            };
            cache.classify_misses = true;
            cache.partition = CachePartition::DynamicWay { epoch_cycles: 128 };
            let quad = quad.clone();
            let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
            let config = format!("dynway-{scheme}");
            cells.push(Cell {
                kernel: names.join("+"),
                config: config.clone(),
                run: Box::new(move |check| snap_quad(&quad, config.clone(), cache, index, check)),
            });
        }
        let mut adaptive = RegCacheConfig::use_based(64, 8);
        adaptive.classify_misses = true;
        adaptive.partition = CachePartition::DynamicWay { epoch_cycles: 128 };
        adaptive.epoch_adapt = Some(EpochAdapt {
            min_cycles: 32,
            max_cycles: 512,
            band: 2,
        });
        let quad = quad.clone();
        let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
        cells.push(Cell {
            kernel: names.join("+"),
            config: "dynway-usebased-adapt".to_string(),
            run: Box::new(move |check| {
                snap_quad(
                    &quad,
                    "dynway-usebased-adapt".to_string(),
                    adaptive,
                    IndexPolicy::FilteredRoundRobin,
                    check,
                )
            }),
        });
    }
    // Feedback-driven insertion: `AdaptiveUseThreshold` consumes the
    // dynamic partitioner's per-epoch quota feedback to tighten or
    // relax each thread's insertion threshold. One deterministic row
    // per quad pins the threshold walk.
    for quad in kernel_quads(Scale::Tiny) {
        let mut cache = RegCacheConfig::use_based(64, 4);
        cache.classify_misses = true;
        cache.partition = CachePartition::DynamicCap {
            epoch_cycles: 128,
            min_cap: 4,
        };
        cache.insertion = InsertionPolicy::AdaptiveUseThreshold;
        let quad = quad.clone();
        let names: Vec<&str> = quad.iter().map(|w| w.name).collect();
        cells.push(Cell {
            kernel: names.join("+"),
            config: "dynway-adaptthresh".to_string(),
            run: Box::new(move |check| {
                snap_quad(
                    &quad,
                    "dynway-adaptthresh".to_string(),
                    cache,
                    IndexPolicy::FilteredRoundRobin,
                    check,
                )
            }),
        });
    }
    cells
}

fn capture(check: bool) -> Vec<Snap> {
    cells().iter().map(|c| (c.run)(check)).collect()
}

fn parse_golden() -> Vec<Snap> {
    GOLDEN
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| Snap::parse(l).unwrap_or_else(|| panic!("malformed golden line: {l}")))
        .collect()
}

const HEADER: &str = "# kernel config cycles retired replayed reads read_hits \
                      read_misses misses_not_written misses_capacity misses_conflict\n";

fn write_goldens(snaps: &[Snap]) {
    let mut out = String::from(HEADER);
    for s in snaps {
        out.push_str(&s.to_line());
        out.push('\n');
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_snapshots.txt");
    std::fs::write(path, out).expect("write goldens");
}

/// `UBRC_BLESS_ONLY=<prefix>[,<prefix>...]`: re-simulate only the
/// cells whose config starts with one of the prefixes; every other row
/// is carried over verbatim from the existing golden file (and must
/// already exist there). Rows are written in canonical cell order, so
/// this can both update a block in place and append a brand-new
/// trailing block.
fn bless_subset(prefixes: &str) {
    let prefixes: Vec<&str> = prefixes.split(',').filter(|p| !p.is_empty()).collect();
    let existing = parse_golden();
    let lookup = |kernel: &str, config: &str| {
        existing
            .iter()
            .find(|s| s.kernel == kernel && s.config == config)
    };
    let mut out = Vec::new();
    let mut regenerated = 0usize;
    for cell in cells() {
        if prefixes.iter().any(|p| cell.config.starts_with(p)) {
            out.push((cell.run)(false));
            regenerated += 1;
        } else {
            let s = lookup(&cell.kernel, &cell.config).unwrap_or_else(|| {
                panic!(
                    "row {}/{} is outside the blessed subset but missing from \
                     the golden file; run a full UBRC_BLESS=1 instead",
                    cell.kernel, cell.config
                )
            });
            out.push(Snap::parse(&s.to_line()).expect("round-trip"));
        }
    }
    assert!(regenerated > 0, "prefixes {prefixes:?} matched no cells");
    write_goldens(&out);
}

#[test]
fn sim_results_match_golden_snapshots() {
    if let Some(prefix) = std::env::var_os("UBRC_BLESS_ONLY") {
        bless_subset(prefix.to_str().expect("utf-8 prefix"));
        return;
    }
    if std::env::var_os("UBRC_BLESS").is_some() {
        write_goldens(&capture(false));
        return;
    }

    let actual = capture(false);
    let golden = parse_golden();
    assert_eq!(
        golden.len(),
        actual.len(),
        "snapshot count changed; rebless if intentional"
    );
    for (g, a) in golden.iter().zip(&actual) {
        assert_eq!(
            g, a,
            "cycle-accuracy drift at {}/{} — the timing model changed; \
             rebless only if that is intentional",
            a.kernel, a.config
        );
    }
}

/// The runtime checker (lockstep oracle + per-cycle invariants) must be
/// observation-only: the same cells, checked, must reproduce the
/// goldens bit for bit. This covers the SMT rows too: one oracle per
/// thread, plus the partitioned-freelist invariants.
#[test]
fn checked_sim_results_match_golden_snapshots() {
    if std::env::var_os("UBRC_BLESS").is_some() || std::env::var_os("UBRC_BLESS_ONLY").is_some() {
        return; // blessing is handled by the unchecked capture
    }
    let actual = capture(true);
    let golden = parse_golden();
    assert_eq!(golden.len(), actual.len());
    for (g, a) in golden.iter().zip(&actual) {
        assert_eq!(
            g, a,
            "checked run diverged from goldens at {}/{} — the checker \
             perturbed the timing model (it must be observation-only)",
            a.kernel, a.config
        );
    }
}
