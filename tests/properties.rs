//! Property-based tests over the core register-caching structures:
//! random operation sequences must preserve the cache's invariants, the
//! index assigners must stay in range and balanced, and randomly
//! generated synthetic programs must survive the whole stack.

use proptest::prelude::*;
use ubrc::core::{
    controller_for, CachePartition, IndexAssigner, IndexPolicy, InsertionPolicy, PhysReg,
    RegCacheConfig, RegisterCache, ReplacementPolicy, UseTracker, WriteOutcome,
};

const NPREGS: usize = 48;

/// One legal-by-construction cache operation. The applier tracks
/// per-preg lifecycle so `produce`/`write`/`free` stay well-ordered.
#[derive(Clone, Copy, Debug)]
enum Op {
    Produce {
        preg: u8,
    },
    Write {
        preg: u8,
        remaining: u8,
        pinned: bool,
        bypasses: u8,
    },
    Read {
        preg: u8,
    },
    Free {
        preg: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NPREGS as u8).prop_map(|preg| Op::Produce { preg }),
        (0..NPREGS as u8, 0u8..8, any::<bool>(), 0u8..3).prop_map(
            |(preg, remaining, pinned, bypasses)| Op::Write {
                preg,
                remaining,
                pinned,
                bypasses
            }
        ),
        (0..NPREGS as u8).prop_map(|preg| Op::Read { preg }),
        (0..NPREGS as u8).prop_map(|preg| Op::Free { preg }),
    ]
}

#[derive(Clone, Copy, PartialEq)]
enum Life {
    Free,
    Produced,
    Written,
}

/// Applies a raw op stream, skipping ops illegal in the current
/// lifecycle state, and checks invariants after every step.
fn exercise_cache(mut cache: RegisterCache, ops: &[Op]) {
    let sets = cache.config().sets() as u16;
    let mut life = [Life::Free; NPREGS];
    let mut set_of = [0u16; NPREGS];
    let mut now = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        now += 1;
        match op {
            Op::Produce { preg } => {
                if life[preg as usize] == Life::Free {
                    cache.produce(PhysReg(preg as u16));
                    set_of[preg as usize] = preg as u16 % sets;
                    life[preg as usize] = Life::Produced;
                }
            }
            Op::Write {
                preg,
                remaining,
                pinned,
                bypasses,
            } => {
                if life[preg as usize] == Life::Produced {
                    let out = cache.write(
                        PhysReg(preg as u16),
                        set_of[preg as usize],
                        remaining,
                        pinned,
                        bypasses as u32,
                        now,
                    );
                    if out == WriteOutcome::Inserted {
                        assert!(cache.contains(PhysReg(preg as u16)));
                    }
                    life[preg as usize] = Life::Written;
                }
            }
            Op::Read { preg } => {
                if life[preg as usize] == Life::Written {
                    let before = cache.remaining_uses(PhysReg(preg as u16));
                    let hit = cache.read(PhysReg(preg as u16), set_of[preg as usize], now);
                    if !hit {
                        cache.fill(PhysReg(preg as u16), set_of[preg as usize], now);
                        assert!(
                            cache.contains(PhysReg(preg as u16)),
                            "fill after miss must install the value (op {i})"
                        );
                    } else if let (Some(b), Some(a)) =
                        (before, cache.remaining_uses(PhysReg(preg as u16)))
                    {
                        let pinned = cache.is_pinned(PhysReg(preg as u16)).unwrap();
                        if pinned {
                            assert_eq!(a, b, "pinned counters must not decrement");
                        } else {
                            assert_eq!(a, b.saturating_sub(1), "hits decrement the counter");
                        }
                    }
                }
            }
            Op::Free { preg } => {
                if life[preg as usize] != Life::Free {
                    cache.free(PhysReg(preg as u16), set_of[preg as usize], now);
                    assert!(
                        !cache.contains(PhysReg(preg as u16)),
                        "freed values must be invalidated (op {i})"
                    );
                    life[preg as usize] = Life::Free;
                }
            }
        }
        // Global invariants.
        assert!(cache.occupancy() <= cache.config().entries);
        let s = cache.stats();
        assert_eq!(s.reads, s.read_hits + s.read_misses);
        assert_eq!(s.writes_attempted, s.writes_inserted + s.writes_filtered);
        assert!(s.evictions_zero_use <= s.evictions);
        if cache.config().classify_misses {
            assert_eq!(
                s.read_misses,
                s.misses_not_written + s.misses_capacity + s.misses_conflict
            );
        }
    }
}

/// Applies one op stream to two caches in lockstep, asserting every
/// externally visible decision (insertion outcome, read hit/miss,
/// occupancy) matches at every step.
fn exercise_lockstep(a: &mut RegisterCache, b: &mut RegisterCache, ops: &[Op]) {
    let sets = a.config().sets() as u16;
    let mut life = [Life::Free; NPREGS];
    let mut set_of = [0u16; NPREGS];
    let mut now = 0u64;
    for (i, &op) in ops.iter().enumerate() {
        now += 1;
        match op {
            Op::Produce { preg } => {
                if life[preg as usize] == Life::Free {
                    a.produce(PhysReg(preg as u16));
                    b.produce(PhysReg(preg as u16));
                    set_of[preg as usize] = preg as u16 % sets;
                    life[preg as usize] = Life::Produced;
                }
            }
            Op::Write {
                preg,
                remaining,
                pinned,
                bypasses,
            } => {
                if life[preg as usize] == Life::Produced {
                    let p = PhysReg(preg as u16);
                    let set = set_of[preg as usize];
                    let oa = a.write(p, set, remaining, pinned, bypasses as u32, now);
                    let ob = b.write(p, set, remaining, pinned, bypasses as u32, now);
                    assert_eq!(oa, ob, "insertion decision diverged at op {i}");
                    life[preg as usize] = Life::Written;
                }
            }
            Op::Read { preg } => {
                if life[preg as usize] == Life::Written {
                    let p = PhysReg(preg as u16);
                    let set = set_of[preg as usize];
                    let ha = a.read(p, set, now);
                    let hb = b.read(p, set, now);
                    assert_eq!(ha, hb, "hit/miss (replacement victim) diverged at op {i}");
                    if !ha {
                        a.fill(p, set, now);
                        b.fill(p, set, now);
                    }
                }
            }
            Op::Free { preg } => {
                if life[preg as usize] != Life::Free {
                    a.free(PhysReg(preg as u16), set_of[preg as usize], now);
                    b.free(PhysReg(preg as u16), set_of[preg as usize], now);
                    life[preg as usize] = Life::Free;
                }
            }
        }
        assert_eq!(a.occupancy(), b.occupancy(), "occupancy diverged at op {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole invariant: the monomorphic enum fast paths
    /// (`AnyInsertion` / `AnyScorer` / `AnyController`) and the
    /// `Custom(Box<dyn ...>)` escape hatch wrapping the *same* shipped
    /// policy make identical decisions on identical access sequences —
    /// devirtualizing the hot path changed dispatch, not behavior.
    #[test]
    fn enum_dispatch_matches_custom_boxed_policies(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        insertion in prop_oneof![
            Just(InsertionPolicy::WriteAll),
            Just(InsertionPolicy::NonBypass),
            Just(InsertionPolicy::UseBased),
            Just(InsertionPolicy::AdaptiveUseThreshold),
        ],
        replacement in prop_oneof![
            Just(ReplacementPolicy::Lru),
            Just(ReplacementPolicy::FewestUses),
            Just(ReplacementPolicy::ExpectedHitCount),
        ],
        partition_pick in 0usize..5,
    ) {
        let mut config = RegCacheConfig::use_based(16, 4);
        config.insertion = insertion;
        config.replacement = replacement;
        let (nthreads, partition) = match partition_pick {
            0 => (1, CachePartition::Shared),
            1 => (2, CachePartition::WayPartition),
            2 => (2, CachePartition::OccupancyCap),
            3 => (2, CachePartition::DynamicCap { epoch_cycles: 64, min_cap: 2 }),
            _ => (2, CachePartition::DynamicWay { epoch_cycles: 64 }),
        };
        config.partition = partition;
        let mut enum_cache = RegisterCache::new_smt(config, NPREGS, nthreads);
        let mut custom_cache = RegisterCache::new_smt(config, NPREGS, nthreads);
        custom_cache.set_insertion(insertion.decider());
        custom_cache.set_replacement(replacement.scorer());
        custom_cache.set_partition(controller_for(&config, nthreads));
        exercise_lockstep(&mut enum_cache, &mut custom_cache, &ops);
        prop_assert_eq!(
            format!("{:?}", enum_cache.stats()),
            format!("{:?}", custom_cache.stats()),
            "statistics diverged between enum and Custom dispatch"
        );
    }

    #[test]
    fn register_cache_invariants_hold_under_random_ops(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        ways in prop_oneof![Just(1usize), Just(2), Just(4), Just(16)],
        use_based in any::<bool>(),
    ) {
        let mut config = if use_based {
            RegCacheConfig::use_based(16, ways)
        } else {
            RegCacheConfig::lru(16, ways)
        };
        config.classify_misses = true;
        exercise_cache(RegisterCache::new(config, NPREGS), &ops);
    }

    #[test]
    fn fully_associative_cache_never_reports_conflicts(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let mut config = RegCacheConfig::use_based(8, 8);
        config.classify_misses = true;
        let mut cache = RegisterCache::new(config, NPREGS);
        // Use set 0 for everything (fully associative).
        let mut life = [Life::Free; NPREGS];
        let mut now = 0;
        for &op in &ops {
            now += 1;
            match op {
                Op::Produce { preg } if life[preg as usize] == Life::Free => {
                    cache.produce(PhysReg(preg as u16));
                    life[preg as usize] = Life::Produced;
                }
                Op::Write { preg, remaining, pinned, bypasses }
                    if life[preg as usize] == Life::Produced =>
                {
                    cache.write(PhysReg(preg as u16), 0, remaining, pinned, bypasses as u32, now);
                    life[preg as usize] = Life::Written;
                }
                Op::Read { preg } if life[preg as usize] == Life::Written
                    && !cache.read(PhysReg(preg as u16), 0, now) => {
                        cache.fill(PhysReg(preg as u16), 0, now);
                    }
                Op::Free { preg } if life[preg as usize] != Life::Free => {
                    cache.free(PhysReg(preg as u16), 0, now);
                    life[preg as usize] = Life::Free;
                }
                _ => {}
            }
        }
        prop_assert_eq!(cache.stats().misses_conflict, 0);
    }

    #[test]
    fn index_assigner_stays_in_range_and_balanced(
        policy in prop_oneof![
            Just(IndexPolicy::Standard),
            Just(IndexPolicy::RoundRobin),
            Just(IndexPolicy::Minimum),
            Just(IndexPolicy::FilteredRoundRobin),
        ],
        sets in 1usize..40,
        ways in 1usize..5,
        uses in proptest::collection::vec(0u8..16, 1..200),
    ) {
        let mut a = IndexAssigner::new(policy, sets, ways);
        let mut assigned: Vec<(u16, u8)> = Vec::new();
        for (i, &u) in uses.iter().enumerate() {
            let set = a.assign(PhysReg(i as u16), u);
            prop_assert!((set as usize) < sets, "set {set} out of range");
            assigned.push((set, u));
        }
        // Releasing everything must never panic or underflow, in any
        // order.
        assigned.reverse();
        for (set, u) in assigned {
            a.release(set, u);
        }
        // After a full drain, new assignments still work.
        let s = a.assign(PhysReg(500), 1);
        prop_assert!((s as usize) < sets);
    }

    #[test]
    fn use_tracker_counts_are_bounded(
        degree in proptest::option::of(0u8..20),
        consumes in 0usize..30,
        unknown in 0u8..4,
        max in 1u8..16,
    ) {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(0), degree, unknown, max);
        let initial = t.remaining(PhysReg(0));
        prop_assert!(initial <= max);
        for _ in 0..consumes {
            t.consume(PhysReg(0));
        }
        let rem = t.remaining(PhysReg(0));
        if t.is_pinned(PhysReg(0)) {
            prop_assert_eq!(rem, initial, "pinned counters never move");
        } else {
            prop_assert_eq!(rem, initial.saturating_sub(consumes as u8));
        }
    }

    #[test]
    fn timing_simulation_is_bounded_and_complete_on_random_programs(
        seed in any::<u64>(),
        storage_pick in 0usize..3,
    ) {
        use ubrc::sim::{simulate_workload, RegStorage, SimConfig};
        use ubrc::workloads::synthetic::SyntheticSpec;
        let spec = SyntheticSpec {
            blocks: 12,
            block_len: 24,
            ..SyntheticSpec::single_use_heavy(seed)
        };
        let w = spec.build();
        let machine = w.run_checks().expect("runs functionally");
        let cfg = match storage_pick {
            0 => SimConfig::paper_default(),
            1 => SimConfig::table1(RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3,
            }),
            _ => SimConfig::table1(RegStorage::TwoLevel(
                ubrc::core::TwoLevelConfig::optimistic(96),
            )),
        };
        let r = simulate_workload(&w, cfg);
        // Completeness: the pipeline retires the exact dynamic stream.
        prop_assert_eq!(r.retired, machine.instruction_count());
        // Work conservation: never faster than the machine width...
        prop_assert!(r.cycles >= r.retired / 8);
        // ...and never pathologically slow (every instruction could at
        // worst take a full mispredict loop plus a memory miss).
        prop_assert!(r.cycles < r.retired * 250 + 10_000);
    }

    #[test]
    fn synthetic_specs_always_produce_runnable_programs(
        seed in any::<u64>(),
        blocks in 1usize..20,
        block_len in 1usize..60,
        mem_fraction in 0.0f64..0.5,
        branch_fraction in 0.0f64..0.3,
    ) {
        use ubrc::workloads::synthetic::SyntheticSpec;
        let spec = SyntheticSpec {
            blocks,
            block_len,
            degree_weights: vec![(0, 0.1), (1, 0.5), (2, 0.2), (7, 0.2)],
            mem_fraction,
            branch_fraction,
            seed,
        };
        let w = spec.build();
        let machine = w.run_checks().expect("generated program must run to halt");
        prop_assert!(machine.is_halted());
    }
}
