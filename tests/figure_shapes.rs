//! Shape tests: the qualitative claims of the paper's evaluation must
//! hold on this reproduction at small scale. These are the regression
//! guards for the experiment harness — if a model change flips one of
//! these orderings, a headline conclusion of the paper broke.

use ubrc::core::{IndexPolicy, RegCacheConfig};
use ubrc::sim::{simulate_workload, RegStorage, SimConfig};
use ubrc::stats::geomean;
use ubrc::workloads::{suite, Scale};

fn geomean_ipc(cfg: &SimConfig) -> f64 {
    let ipcs: Vec<f64> = suite(Scale::Small)
        .iter()
        .map(|w| simulate_workload(w, cfg.clone()).ipc())
        .collect();
    geomean(&ipcs).expect("positive IPCs")
}

fn cached(cache: RegCacheConfig, index: IndexPolicy) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    })
}

fn mono(latency: u32) -> SimConfig {
    SimConfig::table1(RegStorage::Monolithic {
        read_latency: latency,
        write_latency: latency,
    })
}

#[test]
fn monolithic_latency_ordering_fig6_baselines() {
    let i1 = geomean_ipc(&mono(1));
    let i2 = geomean_ipc(&mono(2));
    let i3 = geomean_ipc(&mono(3));
    assert!(
        i1 > i2 && i2 > i3,
        "RF latency ordering broken: {i1} {i2} {i3}"
    );
}

#[test]
fn associativity_ordering_fig6() {
    let dm = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 1),
        IndexPolicy::Standard,
    ));
    let w2 = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 2),
        IndexPolicy::Standard,
    ));
    let w4 = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 4),
        IndexPolicy::Standard,
    ));
    let fa = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 64),
        IndexPolicy::Standard,
    ));
    assert!(w2 > dm, "2-way ({w2}) must beat direct-mapped ({dm})");
    assert!(
        w4 >= w2 * 0.999,
        "4-way ({w4}) must not lose to 2-way ({w2})"
    );
    assert!(
        fa >= w4 * 0.999,
        "fully-assoc ({fa}) must not lose to 4-way ({w4})"
    );
}

#[test]
fn cache_size_ordering_fig6() {
    let small = geomean_ipc(&cached(
        RegCacheConfig::use_based(16, 2),
        IndexPolicy::Standard,
    ));
    let large = geomean_ipc(&cached(
        RegCacheConfig::use_based(128, 2),
        IndexPolicy::Standard,
    ));
    assert!(large > small, "bigger caches must help: {large} vs {small}");
}

#[test]
fn decoupled_indexing_helps_direct_mapped_fig7() {
    let std_ipc = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 1),
        IndexPolicy::Standard,
    ));
    let rr = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 1),
        IndexPolicy::RoundRobin,
    ));
    let frr = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 1),
        IndexPolicy::FilteredRoundRobin,
    ));
    assert!(
        rr > std_ipc,
        "round-robin ({rr}) must beat standard ({std_ipc})"
    );
    assert!(
        frr > std_ipc,
        "filtered-rr ({frr}) must beat standard ({std_ipc})"
    );
}

#[test]
fn scheme_ordering_fig11() {
    let ub = geomean_ipc(&cached(
        RegCacheConfig::use_based(64, 2),
        IndexPolicy::FilteredRoundRobin,
    ));
    let lru = geomean_ipc(&cached(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin));
    let nb = geomean_ipc(&cached(
        RegCacheConfig::non_bypass(64, 2),
        IndexPolicy::RoundRobin,
    ));
    assert!(ub > lru, "use-based ({ub}) must beat LRU ({lru})");
    assert!(
        lru > nb,
        "LRU ({lru}) must beat non-bypass ({nb}) at 64 entries"
    );
}

#[test]
fn use_based_cache_beats_the_three_cycle_file() {
    // The headline: the proposed design outperforms the monolithic
    // 3-cycle register file it replaces.
    let ub = geomean_ipc(&SimConfig::paper_default());
    let rf3 = geomean_ipc(&mono(3));
    assert!(
        ub > rf3,
        "use-based cache ({ub}) must beat the 3-cycle RF ({rf3})"
    );
}

#[test]
fn backing_latency_degrades_use_based_gracefully_fig12() {
    let at = |lat: u32| {
        geomean_ipc(&SimConfig::table1(RegStorage::Cached {
            cache: RegCacheConfig::use_based(64, 2),
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: lat,
            backing_write: lat,
        }))
    };
    let l1 = at(1);
    let l4 = at(4);
    let l6 = at(6);
    assert!(l1 > l4 && l4 > l6, "latency must hurt: {l1} {l4} {l6}");
    // Use-based degradation must be milder than non-bypass degradation.
    let nb_at = |lat: u32| {
        geomean_ipc(&SimConfig::table1(RegStorage::Cached {
            cache: RegCacheConfig::non_bypass(64, 2),
            index: IndexPolicy::RoundRobin,
            backing_read: lat,
            backing_write: lat,
        }))
    };
    let ub_drop = l1 / l6;
    let nb_drop = nb_at(1) / nb_at(6);
    assert!(
        nb_drop > ub_drop,
        "non-bypass must be more latency-sensitive (nb {nb_drop:.3} vs ub {ub_drop:.3})"
    );
}

#[test]
fn pinning_limit_has_a_knee_maxuse() {
    let at = |max: u8| {
        let mut cache = RegCacheConfig::use_based(64, 2);
        cache.max_use_count = max;
        geomean_ipc(&cached(cache, IndexPolicy::FilteredRoundRobin))
    };
    let low = at(1);
    let knee = at(7);
    assert!(
        knee > low,
        "max-use 7 ({knee}) must beat max-use 1 ({low}): pinning everything hurts"
    );
}
