//! Cross-crate integration tests: the whole stack from assembly text to
//! timing statistics.

use ubrc::core::{IndexPolicy, RegCacheConfig};
use ubrc::emu::Machine;
use ubrc::isa::assemble;
use ubrc::sim::{simulate, simulate_workload, RegStorage, SimConfig};
use ubrc::workloads::{suite, workload_by_name, Scale};

#[test]
fn workload_suite_validates_at_default_scale() {
    // The exact scale the experiment harness runs: every kernel must
    // assemble, halt, and produce the mirrored architectural results.
    for w in suite(Scale::Default) {
        w.run_checks()
            .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", w.name));
    }
}

#[test]
fn timing_simulation_preserves_architectural_results() {
    // The timing model must not change *what* executes — only when.
    // Run the emulator standalone, then make sure the simulator retires
    // exactly as many instructions for every storage organization.
    let w = workload_by_name("hash", Scale::Small).unwrap();
    let machine = w.run_checks().unwrap();
    let expected = machine.instruction_count();
    for cfg in [
        SimConfig::paper_default(),
        SimConfig::table1(RegStorage::Monolithic {
            read_latency: 3,
            write_latency: 3,
        }),
    ] {
        assert_eq!(simulate_workload(&w, cfg).retired, expected);
    }
}

#[test]
fn assembled_programs_roundtrip_through_encoding() {
    // Text -> Inst -> u32 -> Inst for every instruction of every kernel.
    for w in suite(Scale::Tiny) {
        let p = w.assemble().unwrap();
        for (i, inst) in p.text.iter().enumerate() {
            let word = inst
                .encode()
                .unwrap_or_else(|e| panic!("kernel `{}` inst {i} failed to encode: {e}", w.name));
            let back = ubrc::isa::Inst::decode(word).unwrap();
            assert_eq!(*inst, back, "kernel `{}` inst {i}", w.name);
        }
    }
}

#[test]
fn cache_statistics_are_internally_consistent() {
    let w = workload_by_name("qsort", Scale::Small).unwrap();
    let mut cache = RegCacheConfig::use_based(64, 2);
    cache.classify_misses = true;
    let cfg = SimConfig::table1(RegStorage::Cached {
        cache,
        index: IndexPolicy::FilteredRoundRobin,
        backing_read: 2,
        backing_write: 2,
    });
    let r = simulate_workload(&w, cfg);
    let c = r.regcache.expect("cached run");
    assert_eq!(c.reads, c.read_hits + c.read_misses);
    assert_eq!(c.writes_attempted, c.writes_inserted + c.writes_filtered);
    assert_eq!(
        c.read_misses,
        c.misses_not_written + c.misses_capacity + c.misses_conflict,
        "classification must cover every miss"
    );
    // Every miss schedules a fill, but fills for values squashed on
    // the wrong path before the backing-file read returns are dropped.
    assert!(c.fills <= c.read_misses, "more fills than misses");
    assert!(c.fills > 0, "a qsort run must fill the cache sometimes");
    assert!(c.values_freed <= c.values_produced);
    assert!(c.values_never_cached <= c.values_freed);
    assert!(c.evictions_zero_use <= c.evictions);
    // Backing file reads are exactly the cache misses.
    assert_eq!(r.backing.unwrap().reads, c.read_misses);
}

#[test]
fn deterministic_simulation() {
    // Identical inputs must give identical cycle counts (no hidden
    // randomness or time dependence anywhere in the stack).
    let w = workload_by_name("bfs", Scale::Small).unwrap();
    let a = simulate_workload(&w, SimConfig::paper_default());
    let b = simulate_workload(&w, SimConfig::paper_default());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.replayed, b.replayed);
    assert_eq!(
        a.regcache.unwrap().read_misses,
        b.regcache.unwrap().read_misses
    );
}

#[test]
fn custom_program_through_the_full_stack() {
    let src = "
        .data
        tbl: .quad 5, 4, 3, 2, 1
        .text
        main:   la   r1, tbl
                li   r2, 5
                li   r3, 0
        loop:   ld   r4, 0(r1)
                mul  r5, r4, r4
                add  r3, r3, r5
                addi r1, r1, 8
                subi r2, r2, 1
                bgtz r2, loop
                halt
    ";
    let program = assemble(src).unwrap();
    let mut m = Machine::new(program.clone());
    m.run(10_000).unwrap();
    assert_eq!(m.int_reg(3), 25 + 16 + 9 + 4 + 1);
    let r = simulate(program, SimConfig::paper_default());
    assert_eq!(r.retired, m.instruction_count());
    assert!(r.cycles > 0);
}

#[test]
fn synthetic_workloads_run_under_timing_simulation() {
    use ubrc::workloads::synthetic::SyntheticSpec;
    for spec in [
        SyntheticSpec::single_use_heavy(3),
        SyntheticSpec::high_use(3),
        SyntheticSpec::dead_value_heavy(3),
    ] {
        let spec = SyntheticSpec { blocks: 30, ..spec };
        let w = spec.build();
        let r = simulate_workload(&w, SimConfig::paper_default());
        assert!(r.retired > 500);
        assert!(r.ipc() > 0.1);
    }
}

#[test]
fn use_based_policy_prefers_predictable_reuse() {
    // The synthetic generator lets us assert the core claim directly:
    // on a high-reuse distribution, non-bypass filtering (which drops
    // any value that bypassed once) must miss far more than use-based
    // management.
    use ubrc::workloads::synthetic::SyntheticSpec;
    let w = SyntheticSpec::high_use(1).build();
    let cached = |cache| {
        SimConfig::table1(RegStorage::Cached {
            cache,
            index: IndexPolicy::RoundRobin,
            backing_read: 2,
            backing_write: 2,
        })
    };
    let ub = simulate_workload(&w, cached(RegCacheConfig::use_based(64, 2)));
    let nb = simulate_workload(&w, cached(RegCacheConfig::non_bypass(64, 2)));
    let ub_miss = ub.miss_rate_per_operand().unwrap();
    let nb_miss = nb.miss_rate_per_operand().unwrap();
    assert!(
        ub_miss * 2.0 < nb_miss,
        "use-based ({ub_miss:.4}) should miss far less than non-bypass ({nb_miss:.4})"
    );
}
