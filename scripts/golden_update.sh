#!/usr/bin/env bash
# Golden-snapshot maintenance for tests/golden_snapshots.txt.
#
# Default: verify the current simulator against the committed goldens
# and REFUSE to overwrite anything — if rows differ, the diff is shown
# and the script exits non-zero. Rows are bit-exact cycle counts; a
# diff means a semantic change to the timing model, which must be a
# deliberate decision, not a side effect of a refactor.
#
# To accept a deliberate change:   scripts/golden_update.sh --bless
# (re-captures the file, then shows `git diff` of it for review).
#
# To regenerate only the rows of one config block (e.g. a new trailing
# block, or one whose model deliberately changed) while every other row
# is carried over byte-identical:
#
#   scripts/golden_update.sh --only smt2
#   scripts/golden_update.sh --only minload,smt2   # comma-separated
#
# The prefix matches the row's config column.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=tests/golden_snapshots.txt
BLESS=0
ONLY=
case "${1:-}" in
    --bless) BLESS=1 ;;
    --only)
        ONLY="${2:-}"
        if [[ -z "$ONLY" ]]; then
            echo "usage: $0 --only <config-prefix>[,<config-prefix>...]" >&2
            exit 2
        fi
        ;;
    "") ;;
    *)
        echo "usage: $0 [--bless | --only <config-prefix>[,...]]" >&2
        exit 2
        ;;
esac

if [[ -n "$ONLY" ]]; then
    echo "== re-capturing rows with config prefix(es) '$ONLY' (UBRC_BLESS_ONLY)"
    UBRC_BLESS_ONLY="$ONLY" cargo test --release --test golden_snapshots -- --nocapture
    echo "== resulting change (review before committing):"
    git --no-pager diff --stat -- "$GOLDEN" || true
    git --no-pager diff -- "$GOLDEN" | head -80 || true
    echo "blessed subset. Re-run '$0' (no flags) to confirm determinism."
    exit 0
fi

if [[ "$BLESS" == 1 ]]; then
    echo "== re-capturing $GOLDEN (UBRC_BLESS=1)"
    UBRC_BLESS=1 cargo test --release --test golden_snapshots -- --nocapture
    echo "== resulting change (review before committing):"
    git --no-pager diff --stat -- "$GOLDEN" || true
    git --no-pager diff -- "$GOLDEN" | head -80 || true
    echo "blessed. Re-run '$0' (no flags) to confirm determinism."
    exit 0
fi

echo "== verifying simulator output against $GOLDEN (no overwrite)"
if cargo test --release --test golden_snapshots; then
    echo "goldens are up to date."
else
    cat >&2 <<EOF

Golden snapshots DIFFER from the current simulator output.
Refusing to overwrite $GOLDEN.

If this change is intentional (a deliberate timing-model change, a new
config row), re-run with:   $0 --bless
and review the diff it prints before committing.
EOF
    exit 1
fi
