#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo doc --no-deps (warnings denied)"
# Vendored third_party crates are workspace members but not ours to fix.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude proptest --exclude criterion --exclude rand

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== oracle-on smoke: Tiny suite with full runtime checking"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  charstats --scale tiny --check --timeout 300 >/dev/null

echo "== SMT smoke: 2-thread Tiny kernel pairs, oracle + invariants on"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  smt --scale tiny --check --timeout 300 >/dev/null

echo "== SMT smoke: 4-thread Tiny kernel quads, oracle + invariants on"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  smt4 --scale tiny --check --timeout 300 >/dev/null

echo "== ConfigError rejection tests"
cargo test --release -q -p ubrc-sim --lib -- reject

echo "all checks passed"
