#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo doc --no-deps (warnings denied)"
# Vendored third_party crates are workspace members but not ours to fix.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude proptest --exclude criterion --exclude rand

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== oracle-on smoke: Tiny suite with full runtime checking"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  charstats --scale tiny --check --timeout 300 >/dev/null

echo "== SMT smoke: 2-thread Tiny kernel pairs, oracle + invariants on"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  smt --scale tiny --check --timeout 300 >/dev/null

echo "== SMT smoke: 4-thread Tiny kernel quads, oracle + invariants on"
cargo run --release -q -p ubrc-bench --bin experiments -- \
  smt4 --scale tiny --check --timeout 300 >/dev/null

echo "== recovery smoke: Tiny suite, parity + injected faults, oracle on"
# The soft experiment sweeps every recoverable fault class with full
# checking: any oracle divergence or unbalanced pin/fill accounting
# fails the run. The recovery test suite then asserts the counts are
# non-zero (faults actually landed and were repaired).
cargo run --release -q -p ubrc-bench --bin experiments -- \
  soft --scale tiny --check --timeout 300 >/dev/null
cargo test --release -q -p ubrc-sim --test recovery

echo "== dynamic-partitioning smoke: Tiny quads, DynamicCap, oracle on"
# The ucp experiment runs the shared/occupancy-cap/dynamic-cap matrix;
# with --check the invariant checker verifies per-thread containment
# against the epoch-varying caps and cap-sum conservation every cycle.
cargo run --release -q -p ubrc-bench --bin experiments -- \
  ucp --scale tiny --check --timeout 300 >/dev/null

echo "== dynamic-way smoke: Tiny quads, DynamicWay + adaptive epochs, oracle on"
# The dynway experiment runs the way-partition/dynamic-cap/dynamic-way
# matrix (fixed and adaptive epochs) at the 64x8 geometry; with --check
# the invariant checker verifies way containment against the
# epoch-varying way ownership and way-sum conservation every cycle.
cargo run --release -q -p ubrc-bench --bin experiments -- \
  dynway --scale tiny --check --timeout 300 >/dev/null

echo "== throughput smoke: Tiny trajectory vs checked-in baseline (±30%)"
# Gross perf regressions (an accidental re-virtualization, a debug
# assert in the hot loop) surface here without flaking on machine
# noise: the tolerance is deliberately generous and single-threaded
# runs keep the number comparable across runs.
UBRC_BENCH_WORKERS=1 cargo run --release -q -p ubrc-bench --bin experiments -- \
  --json /tmp/ubrc_tiny_smoke.json --scale tiny >/dev/null
python3 - <<'PYEOF'
import json, pathlib
measured = json.load(open("/tmp/ubrc_tiny_smoke.json"))["total_sim_insts_per_sec"]
baseline = float(pathlib.Path("scripts/tiny_throughput_baseline.txt").read_text())
delta = 100.0 * (measured / baseline - 1.0)
print(f"   tiny throughput: {measured:,.0f} insts/s vs baseline {baseline:,.0f} ({delta:+.1f}%)")
if abs(delta) > 30.0:
    raise SystemExit(f"throughput drifted {delta:+.1f}% from scripts/tiny_throughput_baseline.txt "
                     "(tolerance ±30%); investigate or update the baseline with this machine's number")
PYEOF

echo "== ConfigError rejection tests"
cargo test --release -q -p ubrc-sim --lib -- reject

echo "== property tests: partitioning + protection invariants"
cargo test --release -q -p ubrc-core --test robustness_props

echo "all checks passed"
