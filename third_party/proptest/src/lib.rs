//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal, deterministic property-testing harness
//! implementing the API surface the test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`],
//! * [`arbitrary::any`] over the primitive types,
//! * range strategies (`0u64..100`, `0.0f64..1.0`, …),
//! * tuple strategies up to arity 6,
//! * [`collection::vec`] and [`option::of`].
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure corpus: each test runs a fixed number of cases drawn from a
//! generator seeded by the test's name, so failures reproduce exactly
//! across runs and platforms.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic case generator.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Why a test case failed (a rendered message).
    pub type TestCaseError = String;

    /// Per-proptest-block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic per-test generator.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds a generator from the test's name (FNV-1a), so each
        /// test sees a stable, unique stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (the
    /// [`crate::prop_oneof!`] backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Scalar types usable as range strategies; one blanket impl per
    /// range shape keeps integer-literal inference working.
    pub trait RangeValue: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)`.
        fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + (rng.next_u64() % span) as i128) as $t
                }
                fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
                }
            }
        )*};
    }
    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeValue for f64 {
        fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
        fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            Self::draw_half_open(lo, hi, rng)
        }
    }

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::draw_half_open(self.start, self.end, rng)
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            T::draw_inclusive(lo, hi, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0 0)
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
        (S0 0, S1 1, S2 2, S3 3, S4 4)
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` over the primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn draw(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn draw(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn draw(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn draw(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: None for one case in four.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Generates `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a
/// `#[test]` that draws `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed on case {}/{}:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "`{:?}` != `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "`{:?}` != `{:?}`: {}", a, b, format!($($fmt)+));
    }};
}

/// Fails the current test case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "`{:?}` == `{:?}`", a, b);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
