//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal harness implementing the API surface the
//! benches use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], [`criterion_group!`], and [`criterion_main!`].
//!
//! Timing is a plain wall-clock mean over a fixed iteration budget —
//! no statistics, no warm-up modeling, no HTML reports. Good enough to
//! spot order-of-magnitude regressions in a sandboxed environment.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point (stub of the upstream type).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time target (accepted but unused: this
    /// stub always runs a fixed sample count).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs `f` repeatedly and prints the mean wall time per sample.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        // One untimed warm-up sample.
        f(&mut b);
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!(
            "bench {name:<40} {per_iter:>12.2?}/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group (stub of the upstream macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main` (stub of the upstream macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
