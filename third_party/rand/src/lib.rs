//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal, dependency-free implementation of the `rand`
//! 0.9 API surface it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], and
//! [`Rng::random_range`] over integer and `f64` ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets — so streams are
//! deterministic, well distributed, and stable across platforms. The
//! exact values differ from the upstream crate (range sampling is
//! simpler here); every consumer in this workspace derives its expected
//! results from the generated data, so only determinism matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as upstream `rand` does.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from their full domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over half-open and inclusive bounds.
///
/// The single blanket [`SampleRange`] impl per range shape keeps type
/// inference working the way upstream `rand` does (`0..6` used as a
/// slice index infers `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * f64::draw(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over `T`'s full domain (`f64` in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.random_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i32 = rng.random_range(-128i32..128);
            assert!((-128..128).contains(&i));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
