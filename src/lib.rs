//! Umbrella crate for the UBRC reproduction: re-exports every subsystem.
//!
//! See [`ubrc_sim`] for the timing simulator and [`ubrc_core`] for the
//! register-cache structures that are the paper's contribution.
#![warn(missing_docs)]

pub use ubrc_core as core;
pub use ubrc_emu as emu;
pub use ubrc_frontend as frontend;
pub use ubrc_isa as isa;
pub use ubrc_memsys as memsys;
pub use ubrc_sim as sim;
pub use ubrc_stats as stats;
pub use ubrc_workloads as workloads;
