//! The twelve benchmark kernels.
//!
//! Each generator emits assembly plus checks whose expected values come
//! from a Rust mirror of the same algorithm run on the same
//! (deterministically generated) data.

use crate::{Check, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use ubrc_isa::DATA_BASE;

/// Problem-size preset for the kernel suite.
///
/// `Tiny` keeps unit tests fast (a few thousand dynamic instructions per
/// kernel); `Small` suits quick experiment smoke runs; `Default` is the
/// size the experiment harness uses (roughly 30k-300k dynamic
/// instructions per kernel — the paper's rates and medians stabilize well
/// before that).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Smallest inputs, for unit tests.
    Tiny,
    /// Medium inputs, for smoke experiments.
    Small,
    /// Full-size inputs, used by the experiment harness.
    #[default]
    Default,
}

impl Scale {
    fn pick(self, tiny: usize, small: usize, default: usize) -> usize {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Default => default,
        }
    }
}

/// Builds the full 12-kernel suite at the given scale.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        qsort(scale),
        listchase(scale),
        hash(scale),
        matmul(scale),
        crc(scale),
        fib(scale),
        bfs(scale),
        strsearch(scale),
        rle(scale),
        bitops(scale),
        fpmix(scale),
        dispatch(scale),
    ]
}

/// Looks up a single kernel by name at the given scale.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.name == name)
}

/// Co-schedule pairings for the SMT experiments: the 12-kernel suite
/// folded into 6 fixed pairs, each mixing dissimilar behaviors
/// (pointer-chasing with branchy scanning, hashing with byte streaming,
/// dense FP with bit manipulation) so the two contexts compete for the
/// register cache rather than mirroring each other. The pairing is
/// deterministic — it is part of the `smt` golden-row identity.
pub fn kernel_pairs(scale: Scale) -> Vec<(Workload, Workload)> {
    const PAIRS: [(&str, &str); 6] = [
        ("qsort", "bfs"),
        ("listchase", "strsearch"),
        ("hash", "rle"),
        ("matmul", "bitops"),
        ("crc", "fpmix"),
        ("fib", "dispatch"),
    ];
    PAIRS
        .iter()
        .map(|&(a, b)| {
            (
                workload_by_name(a, scale).expect("suite kernel"),
                workload_by_name(b, scale).expect("suite kernel"),
            )
        })
        .collect()
}

/// Co-schedule groupings for the 4-thread SMT experiments: the six
/// [`kernel_pairs`] folded pairwise into 3 fixed quads, preserving the
/// dissimilar-behavior mixing (each quad spans at least three of the
/// pointer-chasing / branchy / hashing-streaming / dense-compute
/// behavior classes). Deterministic — part of the `smt4` golden-row
/// identity.
pub fn kernel_quads(scale: Scale) -> Vec<[Workload; 4]> {
    const QUADS: [[&str; 4]; 3] = [
        ["qsort", "bfs", "listchase", "strsearch"],
        ["hash", "rle", "matmul", "bitops"],
        ["crc", "fpmix", "fib", "dispatch"],
    ];
    QUADS
        .iter()
        .map(|names| names.map(|n| workload_by_name(n, scale).expect("suite kernel")))
        .collect()
}

fn quad_list(values: &[u64]) -> String {
    let mut s = String::new();
    for chunk in values.chunks(8) {
        s.push_str(".quad ");
        let items: Vec<String> = chunk.iter().map(|v| format!("{}", *v as i64)).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    s
}

fn byte_list(values: &[u8]) -> String {
    let mut s = String::new();
    for chunk in values.chunks(16) {
        s.push_str(".byte ");
        let items: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    s
}

/// Recursive quicksort (Lomuto partition) over random quadwords, then a
/// verification sweep computing the array sum and a sortedness flag.
fn qsort(scale: Scale) -> Workload {
    let n = scale.pick(24, 96, 512);
    let mut rng = SmallRng::seed_from_u64(0x5157_0001);
    let values: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << 40)).collect();
    let sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));

    let mut src = String::new();
    let _ = write!(
        src,
        ".data\narr:\n{}\n.text\n\
main:   la   r1, arr\n\
        li   r2, {n}\n\
        subi r3, r2, 1\n\
        slli r3, r3, 3\n\
        add  r2, r1, r3\n\
        call qsort\n\
        la   r1, arr\n\
        li   r2, {n}\n\
        li   r4, 0\n\
        li   r5, 1\n\
        ld   r6, 0(r1)\n\
chk:    ld   r7, 0(r1)\n\
        add  r4, r4, r7\n\
        blt  r7, r6, bad\n\
        mov  r6, r7\n\
        addi r1, r1, 8\n\
        subi r2, r2, 1\n\
        bgtz r2, chk\n\
        b    fin\n\
bad:    li   r5, 0\n\
fin:    halt\n\
qsort:  blt  r1, r2, qbody\n\
        ret\n\
qbody:  subi sp, sp, 32\n\
        sd   ra, 0(sp)\n\
        sd   r1, 8(sp)\n\
        sd   r2, 16(sp)\n\
        ld   r8, 0(r2)\n\
        subi r9, r1, 8\n\
        mov  r10, r1\n\
ploop:  bge  r10, r2, pend\n\
        ld   r11, 0(r10)\n\
        bgt  r11, r8, pskip\n\
        addi r9, r9, 8\n\
        ld   r12, 0(r9)\n\
        sd   r11, 0(r9)\n\
        sd   r12, 0(r10)\n\
pskip:  addi r10, r10, 8\n\
        b    ploop\n\
pend:   addi r9, r9, 8\n\
        ld   r12, 0(r9)\n\
        ld   r11, 0(r2)\n\
        sd   r11, 0(r9)\n\
        sd   r12, 0(r2)\n\
        sd   r9, 24(sp)\n\
        ld   r1, 8(sp)\n\
        subi r2, r9, 8\n\
        call qsort\n\
        ld   r9, 24(sp)\n\
        addi r1, r9, 8\n\
        ld   r2, 16(sp)\n\
        call qsort\n\
        ld   ra, 0(sp)\n\
        addi sp, sp, 32\n\
        ret\n",
        quad_list(&values)
    );
    Workload {
        name: "qsort",
        description: "recursive quicksort: data-dependent branches, stack traffic",
        source: src,
        checks: vec![
            Check::IntReg {
                reg: 4,
                expected: sum,
            },
            Check::IntReg {
                reg: 5,
                expected: 1,
            },
        ],
        max_steps: 5_000_000,
    }
}

/// Pointer-chasing traversal of a randomly-ordered cyclic linked list.
fn listchase(scale: Scale) -> Workload {
    let n = scale.pick(32, 128, 512);
    let passes = scale.pick(4, 16, 40) as u64;
    let mut rng = SmallRng::seed_from_u64(0x1157_0002);
    let payloads: Vec<u64> = (0..n).map(|_| rng.random_range(1..1u64 << 32)).collect();
    // Random cycle through all nodes starting at node 0.
    let mut order: Vec<usize> = (1..n).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut cycle = vec![0usize];
    cycle.extend(order);
    let mut next = vec![0u64; n];
    for k in 0..n {
        let from = cycle[k];
        let to = cycle[(k + 1) % n];
        next[from] = DATA_BASE + 16 * to as u64;
    }
    let mut node_words = Vec::with_capacity(2 * n);
    for i in 0..n {
        node_words.push(payloads[i]);
        node_words.push(next[i]);
    }
    let sum: u64 = payloads
        .iter()
        .fold(0u64, |a, &v| a.wrapping_add(v))
        .wrapping_mul(passes);

    let src = format!(
        ".data\nnodes:\n{}\n.text\n\
main:   li   r9, {passes}\n\
        li   r4, 0\n\
pass:   la   r1, nodes\n\
        li   r2, {n}\n\
walk:   ld   r5, 0(r1)\n\
        add  r4, r4, r5\n\
        ld   r1, 8(r1)\n\
        subi r2, r2, 1\n\
        bgtz r2, walk\n\
        subi r9, r9, 1\n\
        bgtz r9, pass\n\
        halt\n",
        quad_list(&node_words)
    );
    Workload {
        name: "listchase",
        description: "pointer chasing: serialized loads, long dependence chains",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: sum,
        }],
        max_steps: 5_000_000,
    }
}

/// Open-addressing hash table: insert N distinct keys, then look all of
/// them up, counting hits and total probes.
fn hash(scale: Scale) -> Workload {
    let n = scale.pick(16, 128, 1024);
    let table_size = (2 * n).next_power_of_two();
    let lg = table_size.trailing_zeros();
    let mult: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut rng = SmallRng::seed_from_u64(0x4A57_0003);
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    while keys.len() < n {
        let k = rng.random_range(1..u64::MAX);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    // Mirror: count total probes over all lookups.
    let mut table = vec![0u64; table_size];
    for &k in &keys {
        let mut idx = (k.wrapping_mul(mult) >> (64 - lg)) as usize;
        while table[idx] != 0 {
            idx = (idx + 1) & (table_size - 1);
        }
        table[idx] = k;
    }
    let mut probes = 0u64;
    for &k in &keys {
        let mut idx = (k.wrapping_mul(mult) >> (64 - lg)) as usize;
        probes += 1;
        while table[idx] != k {
            idx = (idx + 1) & (table_size - 1);
            probes += 1;
        }
    }

    let shift = 64 - lg;
    let byte_mask = (table_size * 8 - 1) as u64;
    let src = format!(
        ".data\nkeys:\n{}\nmult: .quad {}\ntable: .space {}\n.text\n\
main:   la   r17, table\n\
        la   r14, mult\n\
        ld   r14, 0(r14)\n\
        li   r16, {byte_mask}\n\
        la   r10, keys\n\
        li   r11, {n}\n\
ins:    ld   r2, 0(r10)\n\
        mul  r4, r2, r14\n\
        srli r4, r4, {shift}\n\
        slli r5, r4, 3\n\
probe:  add  r6, r17, r5\n\
        ld   r7, 0(r6)\n\
        beqz r7, free\n\
        addi r5, r5, 8\n\
        and  r5, r5, r16\n\
        b    probe\n\
free:   sd   r2, 0(r6)\n\
        addi r10, r10, 8\n\
        subi r11, r11, 1\n\
        bgtz r11, ins\n\
        la   r10, keys\n\
        li   r11, {n}\n\
        li   r20, 0\n\
        li   r21, 0\n\
lkp:    ld   r2, 0(r10)\n\
        mul  r4, r2, r14\n\
        srli r4, r4, {shift}\n\
        slli r5, r4, 3\n\
lprobe: add  r6, r17, r5\n\
        ld   r7, 0(r6)\n\
        addi r21, r21, 1\n\
        beq  r7, r2, found\n\
        addi r5, r5, 8\n\
        and  r5, r5, r16\n\
        b    lprobe\n\
found:  addi r20, r20, 1\n\
        addi r10, r10, 8\n\
        subi r11, r11, 1\n\
        bgtz r11, lkp\n\
        halt\n",
        quad_list(&keys),
        mult as i64,
        table_size * 8,
    );
    Workload {
        name: "hash",
        description: "open-addressing hash table: multiplicative hashing, probe loops",
        source: src,
        checks: vec![
            Check::IntReg {
                reg: 20,
                expected: n as u64,
            },
            Check::IntReg {
                reg: 21,
                expected: probes,
            },
        ],
        max_steps: 5_000_000,
    }
}

/// Dense integer matrix multiply with full index arithmetic.
fn matmul(scale: Scale) -> Workload {
    let n = scale.pick(4, 8, 20);
    let mut rng = SmallRng::seed_from_u64(0x4D57_0004);
    let a: Vec<u64> = (0..n * n).map(|_| rng.random_range(0..1000)).collect();
    let b: Vec<u64> = (0..n * n).map(|_| rng.random_range(0..1000)).collect();
    let mut csum = 0u64;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            csum = csum.wrapping_add(acc);
        }
    }

    let src = format!(
        ".data\nma:\n{}\nmb:\n{}\nmc: .space {}\n.text\n\
main:   la   r20, ma\n\
        la   r21, mb\n\
        la   r22, mc\n\
        li   r23, {n}\n\
        li   r24, 0\n\
        li   r1, 0\n\
iloop:  li   r2, 0\n\
jloop:  li   r4, 0\n\
        li   r3, 0\n\
kloop:  mul  r5, r1, r23\n\
        add  r5, r5, r3\n\
        slli r5, r5, 3\n\
        add  r5, r5, r20\n\
        ld   r6, 0(r5)\n\
        mul  r7, r3, r23\n\
        add  r7, r7, r2\n\
        slli r7, r7, 3\n\
        add  r7, r7, r21\n\
        ld   r8, 0(r7)\n\
        mul  r9, r6, r8\n\
        add  r4, r4, r9\n\
        addi r3, r3, 1\n\
        blt  r3, r23, kloop\n\
        mul  r5, r1, r23\n\
        add  r5, r5, r2\n\
        slli r5, r5, 3\n\
        add  r5, r5, r22\n\
        sd   r4, 0(r5)\n\
        add  r24, r24, r4\n\
        addi r2, r2, 1\n\
        blt  r2, r23, jloop\n\
        addi r1, r1, 1\n\
        blt  r1, r23, iloop\n\
        halt\n",
        quad_list(&a),
        quad_list(&b),
        n * n * 8,
    );
    Workload {
        name: "matmul",
        description: "integer matrix multiply: multiplier pressure, regular loads",
        source: src,
        checks: vec![Check::IntReg {
            reg: 24,
            expected: csum,
        }],
        max_steps: 5_000_000,
    }
}

/// Rotate-and-xor checksum over a byte buffer, several passes.
fn crc(scale: Scale) -> Workload {
    let n = scale.pick(128, 1024, 4096);
    let passes = scale.pick(2, 2, 4) as u64;
    let mut rng = SmallRng::seed_from_u64(0xC257_0005);
    let buf: Vec<u8> = (0..n).map(|_| rng.random()).collect();
    let mut c = 0u64;
    for _ in 0..passes {
        for &b in &buf {
            c = c.rotate_left(1) ^ b as u64;
        }
    }

    let src = format!(
        ".data\nbuf:\n{}\n.text\n\
main:   li   r9, {passes}\n\
        li   r4, 0\n\
pass:   la   r1, buf\n\
        li   r2, {n}\n\
bloop:  lbu  r3, 0(r1)\n\
        slli r5, r4, 1\n\
        srli r6, r4, 63\n\
        or   r5, r5, r6\n\
        xor  r4, r5, r3\n\
        addi r1, r1, 1\n\
        subi r2, r2, 1\n\
        bgtz r2, bloop\n\
        subi r9, r9, 1\n\
        bgtz r9, pass\n\
        halt\n",
        byte_list(&buf)
    );
    Workload {
        name: "crc",
        description: "rotate-xor checksum: tight serial dependence on one register",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: c,
        }],
        max_steps: 5_000_000,
    }
}

/// Naive doubly-recursive Fibonacci: call/return pressure for the RAS.
fn fib(scale: Scale) -> Workload {
    let n = scale.pick(8, 13, 18) as u64;
    fn f(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            f(n - 1) + f(n - 2)
        }
    }
    let expected = f(n);
    let src = format!(
        ".text\n\
main:   li   r1, {n}\n\
        call fib\n\
        halt\n\
fib:    li   r3, 2\n\
        blt  r1, r3, fbase\n\
        subi sp, sp, 24\n\
        sd   ra, 0(sp)\n\
        sd   r1, 8(sp)\n\
        subi r1, r1, 1\n\
        call fib\n\
        sd   r2, 16(sp)\n\
        ld   r1, 8(sp)\n\
        subi r1, r1, 2\n\
        call fib\n\
        ld   r3, 16(sp)\n\
        add  r2, r2, r3\n\
        ld   ra, 0(sp)\n\
        addi sp, sp, 24\n\
        ret\n\
fbase:  mov  r2, r1\n\
        ret\n"
    );
    Workload {
        name: "fib",
        description: "naive recursive fibonacci: deep call trees, return-address stack",
        source: src,
        checks: vec![Check::IntReg { reg: 2, expected }],
        max_steps: 5_000_000,
    }
}

/// Breadth-first search over a random directed graph, counting reachable
/// nodes and summing depths.
fn bfs(scale: Scale) -> Workload {
    let n = scale.pick(16, 128, 1200);
    let deg = 3usize;
    let mut rng = SmallRng::seed_from_u64(0xBF57_0006);
    let mut adj: Vec<Vec<u64>> = Vec::with_capacity(n);
    for _ in 0..n {
        let nbrs: Vec<u64> = (0..deg).map(|_| rng.random_range(0..n as u64)).collect();
        adj.push(nbrs);
    }
    // Mirror BFS.
    let mut visited = vec![false; n];
    let mut dist = vec![0u64; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    let mut vcount = 1u64;
    let mut dsum = 0u64;
    while let Some(u) = queue.pop_front() {
        dsum += dist[u];
        for &v in &adj[u] {
            let v = v as usize;
            if !visited[v] {
                visited[v] = true;
                dist[v] = dist[u] + 1;
                vcount += 1;
                queue.push_back(v);
            }
        }
    }

    // Flatten adjacency: offsets are byte offsets into `adj`.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut flat = Vec::new();
    let mut off = 0u64;
    for nbrs in &adj {
        offsets.push(off);
        flat.extend_from_slice(nbrs);
        off += 8 * nbrs.len() as u64;
    }
    offsets.push(off);

    let src = format!(
        ".data\nadjoff:\n{}\nadj:\n{}\n\
visited: .space {n}\n\
.align 8\n\
queue: .space {}\n\
dist: .space {}\n\
.text\n\
main:   la   r1, visited\n\
        li   r2, 1\n\
        sb   r2, 0(r1)\n\
        la   r3, queue\n\
        sd   r0, 0(r3)\n\
        li   r4, 0\n\
        li   r5, 1\n\
        li   r20, 1\n\
        li   r21, 0\n\
        la   r24, dist\n\
        la   r25, adjoff\n\
        la   r14, adj\n\
        la   r26, visited\n\
bfsl:   bge  r4, r5, done\n\
        slli r6, r4, 3\n\
        add  r6, r6, r3\n\
        ld   r7, 0(r6)\n\
        addi r4, r4, 1\n\
        slli r9, r7, 3\n\
        add  r8, r24, r9\n\
        ld   r10, 0(r8)\n\
        add  r21, r21, r10\n\
        add  r11, r25, r9\n\
        ld   r12, 0(r11)\n\
        ld   r13, 8(r11)\n\
nbr:    bge  r12, r13, bfsl\n\
        add  r15, r14, r12\n\
        ld   r16, 0(r15)\n\
        addi r12, r12, 8\n\
        add  r17, r26, r16\n\
        lbu  r18, 0(r17)\n\
        bnez r18, nbr\n\
        li   r18, 1\n\
        sb   r18, 0(r17)\n\
        addi r20, r20, 1\n\
        slli r22, r16, 3\n\
        add  r19, r24, r22\n\
        addi r23, r10, 1\n\
        sd   r23, 0(r19)\n\
        slli r22, r5, 3\n\
        add  r22, r22, r3\n\
        sd   r16, 0(r22)\n\
        addi r5, r5, 1\n\
        b    nbr\n\
done:   halt\n",
        quad_list(&offsets),
        quad_list(&flat),
        8 * n,
        8 * n,
    );
    Workload {
        name: "bfs",
        description: "breadth-first search: irregular loads, queue traffic, branchy inner loop",
        source: src,
        checks: vec![
            Check::IntReg {
                reg: 20,
                expected: vcount,
            },
            Check::IntReg {
                reg: 21,
                expected: dsum,
            },
        ],
        max_steps: 5_000_000,
    }
}

/// Naive substring search over a small-alphabet text.
fn strsearch(scale: Scale) -> Workload {
    let t = scale.pick(256, 1024, 8192);
    let p = 3usize;
    let mut rng = SmallRng::seed_from_u64(0x5757_0007);
    let text: Vec<u8> = (0..t).map(|_| rng.random_range(b'a'..b'a' + 3)).collect();
    let pat: Vec<u8> = (0..p).map(|_| rng.random_range(b'a'..b'a' + 3)).collect();
    let mut matches = 0u64;
    for i in 0..=(t - p) {
        if &text[i..i + p] == pat.as_slice() {
            matches += 1;
        }
    }

    let outer = t - p + 1;
    let src = format!(
        ".data\ntext:\n{}\npat:\n{}\n.text\n\
main:   la   r1, text\n\
        li   r2, {outer}\n\
        li   r4, 0\n\
outer:  mov  r5, r1\n\
        la   r6, pat\n\
        li   r7, {p}\n\
inner:  lbu  r8, 0(r5)\n\
        lbu  r9, 0(r6)\n\
        bne  r8, r9, fail\n\
        addi r5, r5, 1\n\
        addi r6, r6, 1\n\
        subi r7, r7, 1\n\
        bgtz r7, inner\n\
        addi r4, r4, 1\n\
fail:   addi r1, r1, 1\n\
        subi r2, r2, 1\n\
        bgtz r2, outer\n\
        halt\n",
        byte_list(&text),
        byte_list(&pat)
    );
    Workload {
        name: "strsearch",
        description: "naive substring search: short inner loops, hard-to-predict exits",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: matches,
        }],
        max_steps: 5_000_000,
    }
}

/// Run-length encoding of a byte buffer with biased runs.
fn rle(scale: Scale) -> Workload {
    let n = scale.pick(128, 1024, 8192);
    let mut rng = SmallRng::seed_from_u64(0x2157_0008);
    let mut buf = Vec::with_capacity(n);
    let mut cur: u8 = rng.random_range(0..4);
    while buf.len() < n {
        let run = rng.random_range(1..6usize).min(n - buf.len());
        buf.extend(std::iter::repeat_n(cur, run));
        cur = (cur + rng.random_range(1..4u8)) % 4;
    }
    // Mirror.
    let mut out_len = 0u64;
    let mut prev = buf[0];
    let mut _runlen = 0u64;
    for &b in &buf {
        if b != prev {
            out_len += 2;
            prev = b;
            _runlen = 1;
        } else {
            _runlen += 1;
        }
    }
    out_len += 2;

    let src = format!(
        ".data\nbuf:\n{}\nout: .space {}\n.text\n\
main:   la   r1, buf\n\
        li   r2, {n}\n\
        la   r3, out\n\
        lbu  r5, 0(r1)\n\
        li   r6, 0\n\
        li   r4, 0\n\
rloop:  lbu  r7, 0(r1)\n\
        bne  r7, r5, flush\n\
        addi r6, r6, 1\n\
        b    radv\n\
flush:  sb   r5, 0(r3)\n\
        sb   r6, 1(r3)\n\
        addi r3, r3, 2\n\
        addi r4, r4, 2\n\
        mov  r5, r7\n\
        li   r6, 1\n\
radv:   addi r1, r1, 1\n\
        subi r2, r2, 1\n\
        bgtz r2, rloop\n\
        sb   r5, 0(r3)\n\
        sb   r6, 1(r3)\n\
        addi r4, r4, 2\n\
        halt\n",
        byte_list(&buf),
        2 * n + 4,
    );
    Workload {
        name: "rle",
        description: "run-length encoding: byte stores, data-dependent control",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: out_len,
        }],
        max_steps: 5_000_000,
    }
}

/// Kernighan popcount over an array of quadwords.
fn bitops(scale: Scale) -> Workload {
    let n = scale.pick(32, 256, 2048);
    let mut rng = SmallRng::seed_from_u64(0xB157_0009);
    let arr: Vec<u64> = (0..n).map(|_| rng.random()).collect();
    let expected: u64 = arr.iter().map(|v| v.count_ones() as u64).sum();

    let src = format!(
        ".data\narr:\n{}\n.text\n\
main:   la   r1, arr\n\
        li   r2, {n}\n\
        li   r4, 0\n\
bloop:  ld   r3, 0(r1)\n\
kern:   beqz r3, next\n\
        subi r5, r3, 1\n\
        and  r3, r3, r5\n\
        addi r4, r4, 1\n\
        b    kern\n\
next:   addi r1, r1, 8\n\
        subi r2, r2, 1\n\
        bgtz r2, bloop\n\
        halt\n",
        quad_list(&arr)
    );
    Workload {
        name: "bitops",
        description: "kernighan popcount: short data-dependent inner loops",
        source: src,
        checks: vec![Check::IntReg { reg: 4, expected }],
        max_steps: 5_000_000,
    }
}

/// Floating-point mix: dot product plus a Horner polynomial per element,
/// ending with a divide.
fn fpmix(scale: Scale) -> Workload {
    let n = scale.pick(32, 256, 1024);
    let mut rng = SmallRng::seed_from_u64(0xF957_000A);
    let a: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let (c3, c2, c1, c0) = (0.25f64, -0.5f64, 1.5f64, 0.75f64);
    let mut dot = 0.0f64;
    let mut poly = 0.0f64;
    for i in 0..n {
        dot += a[i] * b[i];
        let x = a[i];
        let y = ((c3 * x + c2) * x + c1) * x + c0;
        poly += y;
    }
    let quot = dot / poly;

    let fmt_doubles = |v: &[f64]| -> String {
        let mut s = String::new();
        for chunk in v.chunks(4) {
            s.push_str(".double ");
            let items: Vec<String> = chunk.iter().map(|x| format!("{x:?}")).collect();
            s.push_str(&items.join(", "));
            s.push('\n');
        }
        s
    };

    let src = format!(
        ".data\nfa:\n{}\nfb:\n{}\nconsts: .double {c3:?}, {c2:?}, {c1:?}, {c0:?}\n\
out: .space 24\n.text\n\
main:   la   r1, fa\n\
        la   r2, fb\n\
        li   r3, {n}\n\
        la   r4, consts\n\
        fld  f20, 0(r4)\n\
        fld  f21, 8(r4)\n\
        fld  f22, 16(r4)\n\
        fld  f23, 24(r4)\n\
floop:  fld  f1, 0(r1)\n\
        fld  f2, 0(r2)\n\
        fmul f3, f1, f2\n\
        fadd f10, f10, f3\n\
        fmul f4, f20, f1\n\
        fadd f4, f4, f21\n\
        fmul f4, f4, f1\n\
        fadd f4, f4, f22\n\
        fmul f4, f4, f1\n\
        fadd f4, f4, f23\n\
        fadd f11, f11, f4\n\
        addi r1, r1, 8\n\
        addi r2, r2, 8\n\
        subi r3, r3, 1\n\
        bgtz r3, floop\n\
        fdiv f12, f10, f11\n\
        la   r5, out\n\
        fsd  f10, 0(r5)\n\
        fsd  f11, 8(r5)\n\
        fsd  f12, 16(r5)\n\
        halt\n",
        fmt_doubles(&a),
        fmt_doubles(&b),
    );
    Workload {
        name: "fpmix",
        description: "dot product + Horner polynomial: FP adder/multiplier pipelines",
        source: src,
        checks: vec![
            Check::MemU64 {
                symbol: "out".into(),
                expected: dot.to_bits(),
            },
            Check::MemU64 {
                symbol: "out".into(),
                expected: dot.to_bits(),
            },
        ],
        max_steps: 5_000_000,
    }
    .with_extra_mem_checks(poly, quot)
}

impl Workload {
    /// Internal helper for `fpmix`: replaces the placeholder checks with
    /// the three out-slot checks (dot, poly, quotient).
    fn with_extra_mem_checks(mut self, poly: f64, quot: f64) -> Self {
        let dot = match &self.checks[0] {
            Check::MemU64 { expected, .. } => *expected,
            _ => unreachable!(),
        };
        self.checks = vec![
            Check::MemU64 {
                symbol: "out".into(),
                expected: dot,
            },
            Check::MemU64 {
                symbol: "out_poly".into(),
                expected: poly.to_bits(),
            },
            Check::MemU64 {
                symbol: "out_quot".into(),
                expected: quot.to_bits(),
            },
        ];
        // The checks address `out + 8` and `out + 16` via dedicated
        // labels; patch the data directive to define them.
        self.source = self.source.replace(
            "out: .space 24",
            "out: .space 8\nout_poly: .space 8\nout_quot: .space 8",
        );
        self
    }
}

/// Jump-table dispatch loop: indirect branches through a code-label
/// table, with a bounded accumulator.
fn dispatch(scale: Scale) -> Workload {
    let n = scale.pick(32, 512, 4096);
    let mut rng = SmallRng::seed_from_u64(0xD157_000B);
    let ops: Vec<u64> = (0..n).map(|_| rng.random_range(0..4)).collect();
    let mut acc = 1u64;
    for &op in &ops {
        acc = match op {
            0 => acc + 7,
            1 => acc ^ (acc << 1),
            2 => acc.wrapping_mul(3) + 1,
            _ => (acc >> 1) ^ 0x5a5,
        };
        acc &= 0x7fff;
    }

    let src = format!(
        ".data\nopsarr:\n{}\njt: .quad case0, case1, case2, case3\n.text\n\
main:   la   r10, opsarr\n\
        li   r11, {n}\n\
        li   r4, 1\n\
        li   r13, 3\n\
        la   r12, jt\n\
dloop:  ld   r1, 0(r10)\n\
        slli r2, r1, 3\n\
        add  r2, r2, r12\n\
        ld   r3, 0(r2)\n\
        jr   r3\n\
case0:  addi r4, r4, 7\n\
        b    next\n\
case1:  slli r5, r4, 1\n\
        xor  r4, r4, r5\n\
        b    next\n\
case2:  mul  r5, r4, r13\n\
        addi r4, r5, 1\n\
        b    next\n\
case3:  srli r5, r4, 1\n\
        li   r6, 0x5a5\n\
        xor  r4, r5, r6\n\
next:   andi r4, r4, 0x7fff\n\
        addi r10, r10, 8\n\
        subi r11, r11, 1\n\
        bgtz r11, dloop\n\
        halt\n",
        quad_list(&ops)
    );
    Workload {
        name: "dispatch",
        description: "jump-table interpreter loop: indirect branch prediction stress",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: acc,
        }],
        max_steps: 5_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_pass_their_checks_at_tiny_scale() {
        for w in suite(Scale::Tiny) {
            w.run_checks()
                .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", w.name));
        }
    }

    #[test]
    fn all_kernels_pass_their_checks_at_small_scale() {
        for w in suite(Scale::Small) {
            w.run_checks()
                .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", w.name));
        }
    }

    #[test]
    fn suite_has_twelve_distinct_kernels() {
        let s = suite(Scale::Tiny);
        assert_eq!(s.len(), 12);
        let mut names: Vec<&str> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn workload_by_name_finds_kernels() {
        assert!(workload_by_name("qsort", Scale::Tiny).is_some());
        assert!(workload_by_name("nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn scales_change_problem_size() {
        let tiny = workload_by_name("crc", Scale::Tiny).unwrap();
        let full = workload_by_name("crc", Scale::Default).unwrap();
        assert!(full.source.len() > tiny.source.len());
    }

    #[test]
    fn kernels_execute_substantial_instruction_counts() {
        // The timing experiments need non-trivial dynamic lengths.
        for w in suite(Scale::Tiny) {
            let m = w.run_checks().unwrap();
            assert!(
                m.instruction_count() > 200,
                "kernel `{}` ran only {} instructions",
                w.name,
                m.instruction_count()
            );
        }
    }
}
