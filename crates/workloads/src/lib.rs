//! Benchmark kernels and synthetic dataflow traces for the UBRC
//! register-caching simulator.
//!
//! The paper evaluated on SPECint 2000; those binaries (and the Alpha
//! toolchain) are not redistributable, so this crate provides the
//! substitute workload suite described in DESIGN.md: twelve hand-written
//! kernels spanning the behaviour space the paper's evaluation exercises
//! (pointer chasing, sorting, hashing, recursion, branchy dispatch,
//! floating-point pipelines), four extended FP/mixed kernels
//! ([`extended_suite`]) for the extension experiments, plus a
//! [`synthetic`] program generator with a controllable degree-of-use
//! distribution.
//!
//! Every kernel carries architectural checks — expected register or
//! memory values computed by a Rust mirror of the same algorithm — so the
//! whole stack (assembler, emulator, and by extension the timing
//! simulator's oracle) is validated end to end.
//!
//! # Examples
//!
//! ```
//! use ubrc_workloads::{suite, Scale};
//!
//! let workloads = suite(Scale::Tiny);
//! assert_eq!(workloads.len(), 12);
//! for w in &workloads {
//!     w.run_checks().unwrap(); // assemble, emulate, verify results
//! }
//! ```

#![warn(missing_docs)]

mod kernels;
mod kernels_ext;
pub mod synthetic;

pub use kernels::{kernel_pairs, kernel_quads, suite, workload_by_name, Scale};
pub use kernels_ext::{extended_by_name, extended_suite};

use std::error::Error;
use std::fmt;
use ubrc_emu::Machine;
use ubrc_isa::{assemble, AsmError, Program};

/// An architectural check evaluated after a workload halts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Check {
    /// Integer register `reg` must equal `expected`.
    IntReg {
        /// Register index in `0..32`.
        reg: u8,
        /// Expected final value.
        expected: u64,
    },
    /// The quadword at data label `symbol` must equal `expected`.
    MemU64 {
        /// Data-segment label.
        symbol: String,
        /// Expected little-endian quadword (use `f64::to_bits` for
        /// floating-point results).
        expected: u64,
    },
}

/// Why a workload failed validation.
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel source failed to assemble.
    Asm(AsmError),
    /// The emulator faulted.
    Emu(ubrc_emu::EmuError),
    /// The program ran past its step budget without halting.
    DidNotHalt,
    /// A [`Check`] failed.
    CheckFailed {
        /// The failing check.
        check: Check,
        /// The value actually observed.
        actual: u64,
    },
    /// A [`Check::MemU64`] named a symbol the program does not define
    /// (a bug in the kernel generator, reported instead of panicking so
    /// the harness can say which workload is broken).
    UnknownCheckSymbol {
        /// The missing data symbol.
        symbol: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "assembly failed: {e}"),
            WorkloadError::Emu(e) => write!(f, "emulation failed: {e}"),
            WorkloadError::DidNotHalt => write!(f, "program did not halt within budget"),
            WorkloadError::CheckFailed { check, actual } => {
                write!(f, "check {check:?} failed: actual {actual:#x}")
            }
            WorkloadError::UnknownCheckSymbol { symbol } => {
                write!(f, "check references unknown data symbol `{symbol}`")
            }
        }
    }
}

impl Error for WorkloadError {}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}

impl From<ubrc_emu::EmuError> for WorkloadError {
    fn from(e: ubrc_emu::EmuError) -> Self {
        WorkloadError::Emu(e)
    }
}

/// A benchmark kernel: assembly source plus expected results.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name used in experiment reports (e.g. `"qsort"`).
    pub name: &'static str,
    /// One-line description of what the kernel stresses.
    pub description: &'static str,
    /// Assembly source text.
    pub source: String,
    /// Architectural checks applied after the program halts.
    pub checks: Vec<Check>,
    /// Emulation step budget used by [`Workload::run_checks`].
    pub max_steps: u64,
}

impl Workload {
    /// Assembles the kernel.
    ///
    /// # Errors
    ///
    /// Returns the assembler error if the source is invalid (this would
    /// be a bug in the kernel generator).
    pub fn assemble(&self) -> Result<Program, AsmError> {
        assemble(&self.source)
    }

    /// Assembles, emulates to halt, and verifies every check.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on assembly failure, an emulation
    /// fault, a missed halt, or a failed check.
    pub fn run_checks(&self) -> Result<Machine, WorkloadError> {
        let program = self.assemble()?;
        let mut m = Machine::new(program);
        m.run(self.max_steps)?;
        if !m.is_halted() {
            return Err(WorkloadError::DidNotHalt);
        }
        for check in &self.checks {
            let actual = match check {
                Check::IntReg { reg, .. } => m.int_reg(*reg),
                Check::MemU64 { symbol, .. } => {
                    let addr = m.program().symbol(symbol).ok_or_else(|| {
                        WorkloadError::UnknownCheckSymbol {
                            symbol: symbol.clone(),
                        }
                    })?;
                    m.read_u64(addr)?
                }
            };
            let expected = match check {
                Check::IntReg { expected, .. } | Check::MemU64 { expected, .. } => *expected,
            };
            if actual != expected {
                return Err(WorkloadError::CheckFailed {
                    check: check.clone(),
                    actual,
                });
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_failure_reports_actual_value() {
        let w = Workload {
            name: "bad",
            description: "deliberately failing check",
            source: "main: li r1, 2\n halt\n".into(),
            checks: vec![Check::IntReg {
                reg: 1,
                expected: 3,
            }],
            max_steps: 100,
        };
        match w.run_checks() {
            Err(WorkloadError::CheckFailed { actual, .. }) => assert_eq!(actual, 2),
            other => panic!("expected check failure, got {other:?}"),
        }
    }

    #[test]
    fn non_halting_workload_is_detected() {
        let w = Workload {
            name: "spin",
            description: "infinite loop",
            source: "main: b main\n".into(),
            checks: vec![],
            max_steps: 1000,
        };
        assert!(matches!(w.run_checks(), Err(WorkloadError::DidNotHalt)));
    }
}
