//! Synthetic program generator with a controllable degree-of-use
//! distribution.
//!
//! The use-based policies of the paper key entirely off how many
//! consumers each value has. The kernel suite gives realistic mixes; this
//! generator lets experiments *sweep* the distribution directly — e.g.
//! "what happens when most values have 4 uses?" — which no fixed
//! benchmark can do.
//!
//! The generator emits a real assembly program (a long loop of generated
//! instructions), so it runs through the identical assembler → emulator →
//! timing-simulator path as every other workload.
//!
//! # Examples
//!
//! ```
//! use ubrc_workloads::synthetic::SyntheticSpec;
//!
//! let spec = SyntheticSpec::single_use_heavy(42);
//! let workload = spec.build();
//! workload.run_checks().unwrap(); // assembles and halts
//! ```

use crate::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Parameters for the synthetic program generator.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticSpec {
    /// Outer-loop iterations (the generated block body re-executes this
    /// many times).
    pub blocks: usize,
    /// Generated instructions per block body.
    pub block_len: usize,
    /// Degree-of-use distribution: `(degree, weight)` pairs. Weights
    /// need not sum to one. Each freshly produced value receives a
    /// *target* degree sampled from this distribution; the generator
    /// then routes that many consumers to it (overwrites can truncate a
    /// value's uses early, just as real code does).
    pub degree_weights: Vec<(u8, f64)>,
    /// Fraction of generated instructions that are loads or stores.
    pub mem_fraction: f64,
    /// Fraction of generated instructions that are conditional branches
    /// (short forward skips with data-dependent outcomes).
    pub branch_fraction: f64,
    /// RNG seed; the same spec + seed always generates the same program.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A distribution close to real integer code (most values used
    /// once): 65% one use, 20% two, 10% three, 5% seven-or-more.
    pub fn single_use_heavy(seed: u64) -> Self {
        Self {
            blocks: 400,
            block_len: 60,
            degree_weights: vec![(1, 0.65), (2, 0.20), (3, 0.10), (7, 0.05)],
            mem_fraction: 0.25,
            branch_fraction: 0.12,
            seed,
        }
    }

    /// A high-reuse distribution (values mostly consumed several times).
    pub fn high_use(seed: u64) -> Self {
        Self {
            degree_weights: vec![(1, 0.10), (2, 0.20), (4, 0.40), (6, 0.20), (7, 0.10)],
            ..Self::single_use_heavy(seed)
        }
    }

    /// A degenerate all-dead distribution (values produced and never
    /// consumed) — the worst case for a write-all register cache.
    pub fn dead_value_heavy(seed: u64) -> Self {
        Self {
            degree_weights: vec![(0, 0.60), (1, 0.40)],
            ..Self::single_use_heavy(seed)
        }
    }

    fn sample_degree(&self, rng: &mut SmallRng) -> u8 {
        let total: f64 = self.degree_weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.random_range(0.0..total);
        for &(d, w) in &self.degree_weights {
            if x < w {
                return d;
            }
            x -= w;
        }
        self.degree_weights.last().map(|&(d, _)| d).unwrap_or(1)
    }

    /// Generates the assembly source.
    ///
    /// # Panics
    ///
    /// Panics if `degree_weights` is empty or `block_len` is zero.
    pub fn generate(&self) -> String {
        assert!(!self.degree_weights.is_empty(), "empty degree distribution");
        assert!(self.block_len > 0, "block_len must be positive");
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Working registers r1..=r25. r26: loop counter, r27: arena
        // base, r29: branch parity. Quotas track remaining planned uses.
        const WORK_REGS: std::ops::RangeInclusive<u8> = 1..=25;
        let arena_slots = 64usize;
        let mut quota = [0u32; 32];
        let mut src = String::new();
        let _ = writeln!(src, ".data\narena: .space {}", arena_slots * 8);
        let _ = writeln!(src, ".text");
        let _ = writeln!(src, "main:   la   r27, arena");
        let _ = writeln!(src, "        li   r26, {}", self.blocks);
        let _ = writeln!(src, "top:    andi r29, r26, 1");
        let mut label = 0usize;

        let pick_source = |quota: &mut [u32; 32], rng: &mut SmallRng| -> u8 {
            let live: Vec<u8> = WORK_REGS.filter(|&r| quota[r as usize] > 0).collect();
            if live.is_empty() {
                // No planned uses outstanding: read an arbitrary working
                // register (an extra, unplanned use — real code has
                // mispredicted degrees too).
                rng.random_range(*WORK_REGS.start()..=*WORK_REGS.end())
            } else {
                let r = live[rng.random_range(0..live.len())];
                quota[r as usize] -= 1;
                r
            }
        };
        let pick_dest = |quota: &mut [u32; 32], rng: &mut SmallRng| -> u8 {
            // Prefer overwriting a register with no outstanding uses.
            let dead: Vec<u8> = WORK_REGS.filter(|&r| quota[r as usize] == 0).collect();
            if dead.is_empty() {
                rng.random_range(*WORK_REGS.start()..=*WORK_REGS.end())
            } else {
                dead[rng.random_range(0..dead.len())]
            }
        };

        for _ in 0..self.block_len {
            let roll: f64 = rng.random_range(0.0..1.0);
            if roll < self.mem_fraction / 2.0 {
                // Load.
                let rd = pick_dest(&mut quota, &mut rng);
                let off = 8 * rng.random_range(0..arena_slots);
                let _ = writeln!(src, "        ld   r{rd}, {off}(r27)");
                quota[rd as usize] = self.sample_degree(&mut rng) as u32;
            } else if roll < self.mem_fraction {
                // Store.
                let rs = pick_source(&mut quota, &mut rng);
                let off = 8 * rng.random_range(0..arena_slots);
                let _ = writeln!(src, "        sd   r{rs}, {off}(r27)");
            } else if roll < self.mem_fraction + self.branch_fraction {
                // Conditional skip over one instruction.
                let rs = pick_source(&mut quota, &mut rng);
                let op = if rng.random_range(0..2) == 0 {
                    "beq"
                } else {
                    "bne"
                };
                let rd = pick_dest(&mut quota, &mut rng);
                let _ = writeln!(src, "        {op}  r{rs}, r29, L{label}");
                let _ = writeln!(src, "        addi r{rd}, r{rd}, 1");
                let _ = writeln!(src, "L{label}:");
                label += 1;
                // The skipped add rewrites rd in place; treat it as a
                // fresh single-use value.
                quota[rd as usize] = 1;
            } else {
                // ALU operation.
                let rd = pick_dest(&mut quota, &mut rng);
                let two_src = rng.random_range(0.0..1.0) < 0.7;
                if two_src {
                    let rs = pick_source(&mut quota, &mut rng);
                    let rt = pick_source(&mut quota, &mut rng);
                    let op = ["add", "sub", "xor", "and", "or", "mul"][rng.random_range(0..6)];
                    let _ = writeln!(src, "        {op}  r{rd}, r{rs}, r{rt}");
                } else {
                    let rs = pick_source(&mut quota, &mut rng);
                    let imm = rng.random_range(-128i32..128);
                    let _ = writeln!(src, "        addi r{rd}, r{rs}, {imm}");
                }
                quota[rd as usize] = self.sample_degree(&mut rng) as u32;
            }
        }
        let _ = writeln!(src, "        subi r26, r26, 1");
        let _ = writeln!(src, "        bgtz r26, top");
        let _ = writeln!(src, "        halt");
        src
    }

    /// Packages the generated program as a [`Workload`] (no value
    /// checks; the program only needs to assemble, run, and halt).
    pub fn build(&self) -> Workload {
        Workload {
            name: "synthetic",
            description: "generated program with a prescribed degree-of-use distribution",
            source: self.generate(),
            checks: vec![],
            max_steps: (self.blocks * (self.block_len + 4) * 3) as u64 + 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_program_assembles_and_halts() {
        let spec = SyntheticSpec {
            blocks: 20,
            block_len: 30,
            ..SyntheticSpec::single_use_heavy(7)
        };
        let m = spec.build().run_checks().unwrap();
        // Roughly blocks * (block_len + loop overhead) instructions,
        // plus branch-skip effects.
        assert!(m.instruction_count() > 20 * 30 / 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticSpec::high_use(9).generate();
        let b = SyntheticSpec::high_use(9).generate();
        assert_eq!(a, b);
        let c = SyntheticSpec::high_use(10).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn presets_differ_in_distribution() {
        let lo = SyntheticSpec::single_use_heavy(1);
        let hi = SyntheticSpec::high_use(1);
        assert_ne!(lo.degree_weights, hi.degree_weights);
        let dead = SyntheticSpec::dead_value_heavy(1);
        assert!(dead.degree_weights.iter().any(|&(d, _)| d == 0));
    }

    #[test]
    fn all_presets_run() {
        for spec in [
            SyntheticSpec {
                blocks: 10,
                ..SyntheticSpec::single_use_heavy(3)
            },
            SyntheticSpec {
                blocks: 10,
                ..SyntheticSpec::high_use(3)
            },
            SyntheticSpec {
                blocks: 10,
                ..SyntheticSpec::dead_value_heavy(3)
            },
        ] {
            spec.build().run_checks().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "empty degree distribution")]
    fn empty_distribution_panics() {
        let spec = SyntheticSpec {
            degree_weights: vec![],
            ..SyntheticSpec::single_use_heavy(1)
        };
        let _ = spec.generate();
    }
}
