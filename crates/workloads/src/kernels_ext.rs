//! Extended kernels beyond the SPECint-stand-in suite: floating-point
//! and mixed workloads used by the extension experiments (the paper's
//! evaluation is integer-only, so these stay out of [`crate::suite`]).

use crate::{Check, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale alias re-exported for symmetry with [`crate::suite`].
pub use crate::kernels::Scale;

/// The four extended kernels: sieve, mandel, nbody, spmv.
pub fn extended_suite(scale: Scale) -> Vec<Workload> {
    vec![sieve(scale), mandel(scale), nbody(scale), spmv(scale)]
}

/// Looks up an extended kernel by name.
pub fn extended_by_name(name: &str, scale: Scale) -> Option<Workload> {
    extended_suite(scale).into_iter().find(|w| w.name == name)
}

fn pick(scale: Scale, tiny: usize, small: usize, default: usize) -> usize {
    match scale {
        Scale::Tiny => tiny,
        Scale::Small => small,
        Scale::Default => default,
    }
}

/// Sieve of Eratosthenes: byte-flag stores with strided access.
fn sieve(scale: Scale) -> Workload {
    let n = pick(scale, 64, 512, 4096);
    // Mirror.
    let mut flags = vec![true; n];
    flags[0] = false;
    if n > 1 {
        flags[1] = false;
    }
    let mut i = 2;
    while i * i < n {
        if flags[i] {
            let mut j = i * i;
            while j < n {
                flags[j] = false;
                j += i;
            }
        }
        i += 1;
    }
    let primes = flags.iter().filter(|&&f| f).count() as u64;

    let src = format!(
        ".data\nflags: .space {n}\n.text\n\
main:   la   r1, flags\n\
        li   r2, {n}\n\
        li   r3, 1\n\
        li   r4, 0\n\
init:   sb   r3, 0(r1)\n\
        addi r1, r1, 1\n\
        addi r4, r4, 1\n\
        blt  r4, r2, init\n\
        la   r1, flags\n\
        sb   r0, 0(r1)\n\
        sb   r0, 1(r1)\n\
        li   r5, 2\n\
outer:  mul  r6, r5, r5\n\
        bge  r6, r2, count\n\
        add  r7, r1, r5\n\
        lbu  r8, 0(r7)\n\
        beqz r8, next\n\
inner:  bge  r6, r2, next\n\
        add  r7, r1, r6\n\
        sb   r0, 0(r7)\n\
        add  r6, r6, r5\n\
        b    inner\n\
next:   addi r5, r5, 1\n\
        b    outer\n\
count:  li   r4, 0\n\
        li   r9, 0\n\
cloop:  add  r7, r1, r9\n\
        lbu  r8, 0(r7)\n\
        add  r4, r4, r8\n\
        addi r9, r9, 1\n\
        blt  r9, r2, cloop\n\
        halt\n"
    );
    Workload {
        name: "sieve",
        description: "sieve of Eratosthenes: strided flag stores, nested loops",
        source: src,
        checks: vec![Check::IntReg {
            reg: 4,
            expected: primes,
        }],
        max_steps: 5_000_000,
    }
}

/// Fixed-point Mandelbrot escape iteration over a small grid: integer
/// multiply pressure with data-dependent loop exits.
fn mandel(scale: Scale) -> Workload {
    let grid = pick(scale, 4, 10, 24) as i64;
    let max_iter = 24i64;
    const FRAC: i64 = 12; // fixed-point fraction bits

    // Mirror: sum of escape iteration counts.
    let mut total = 0u64;
    for py in 0..grid {
        for px in 0..grid {
            // c in [-2, 1] x [-1.5, 1.5], fixed point.
            let cr = -(2 << FRAC) + px * (3 << FRAC) / grid;
            let ci = -(3 << (FRAC - 1)) + py * (3 << FRAC) / grid;
            let mut zr = 0i64;
            let mut zi = 0i64;
            let mut it = 0i64;
            while it < max_iter {
                let zr2 = (zr * zr) >> FRAC;
                let zi2 = (zi * zi) >> FRAC;
                if zr2 + zi2 > (4 << FRAC) {
                    break;
                }
                let nzr = zr2 - zi2 + cr;
                zi = ((2 * zr * zi) >> FRAC) + ci;
                zr = nzr;
                it += 1;
            }
            total += it as u64;
        }
    }

    // r10=px r11=py r12=cr r13=ci r14=zr r15=zi r16=it r17..r21 scratch
    // r22=grid r23=maxiter r24=total r25=4<<FRAC
    let src = format!(
        ".text\n\
main:   li   r22, {grid}\n\
        li   r23, {max_iter}\n\
        li   r24, 0\n\
        li   r25, {four}\n\
        li   r11, 0\n\
yloop:  li   r10, 0\n\
xloop:  li   r17, {three}\n\
        mul  r12, r10, r17\n\
        div  r12, r12, r22\n\
        subi r12, r12, {two}\n\
        mul  r13, r11, r17\n\
        div  r13, r13, r22\n\
        subi r13, r13, {onehalf}\n\
        li   r14, 0\n\
        li   r15, 0\n\
        li   r16, 0\n\
iter:   bge  r16, r23, idone\n\
        mul  r18, r14, r14\n\
        srai r18, r18, {frac}\n\
        mul  r19, r15, r15\n\
        srai r19, r19, {frac}\n\
        add  r20, r18, r19\n\
        bgt  r20, r25, idone\n\
        sub  r21, r18, r19\n\
        add  r21, r21, r12\n\
        mul  r15, r14, r15\n\
        srai r15, r15, {fracm1}\n\
        add  r15, r15, r13\n\
        mov  r14, r21\n\
        addi r16, r16, 1\n\
        b    iter\n\
idone:  add  r24, r24, r16\n\
        addi r10, r10, 1\n\
        blt  r10, r22, xloop\n\
        addi r11, r11, 1\n\
        blt  r11, r22, yloop\n\
        halt\n",
        four = 4i64 << FRAC,
        three = 3i64 << FRAC,
        two = 2i64 << FRAC,
        onehalf = 3i64 << (FRAC - 1),
        frac = FRAC,
        fracm1 = FRAC - 1,
    );
    Workload {
        name: "mandel",
        description: "fixed-point mandelbrot: multiplier chains, unpredictable exits",
        source: src,
        checks: vec![Check::IntReg {
            reg: 24,
            expected: total,
        }],
        max_steps: 5_000_000,
    }
}

fn fmt_doubles(v: &[f64]) -> String {
    let mut s = String::new();
    for chunk in v.chunks(4) {
        s.push_str(".double ");
        let items: Vec<String> = chunk.iter().map(|x| format!("{x:?}")).collect();
        s.push_str(&items.join(", "));
        s.push('\n');
    }
    s
}

/// O(n²) gravitational force accumulation (one step, softened):
/// floating-point divide pressure.
fn nbody(scale: Scale) -> Workload {
    let n = pick(scale, 6, 16, 40);
    let mut rng = SmallRng::seed_from_u64(0x4E42_000C);
    let xs: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();

    // Mirror: total potential-ish sum  sum_{i<j} 1/(dist2 + eps).
    let eps = 0.05f64;
    let mut energy = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let dx = xs[i] - xs[j];
                let dy = ys[i] - ys[j];
                energy += 1.0 / (dx * dx + dy * dy + eps);
            }
        }
    }

    let src = format!(
        ".data\nxs:\n{}\nys:\n{}\nepsv: .double {eps:?}\nonev: .double 1.0\nout: .space 8\n.text\n\
main:   la   r1, epsv\n\
        fld  f20, 0(r1)\n\
        fld  f21, 8(r1)\n\
        li   r2, {n}\n\
        li   r3, 0\n\
iloop:  li   r4, 0\n\
jloop:  beq  r4, r3, skip\n\
        la   r5, xs\n\
        slli r6, r3, 3\n\
        add  r7, r5, r6\n\
        fld  f1, 0(r7)\n\
        slli r8, r4, 3\n\
        add  r9, r5, r8\n\
        fld  f2, 0(r9)\n\
        la   r5, ys\n\
        add  r7, r5, r6\n\
        fld  f3, 0(r7)\n\
        add  r9, r5, r8\n\
        fld  f4, 0(r9)\n\
        fsub f5, f1, f2\n\
        fsub f6, f3, f4\n\
        fmul f5, f5, f5\n\
        fmul f6, f6, f6\n\
        fadd f7, f5, f6\n\
        fadd f7, f7, f20\n\
        fdiv f8, f21, f7\n\
        fadd f10, f10, f8\n\
skip:   addi r4, r4, 1\n\
        blt  r4, r2, jloop\n\
        addi r3, r3, 1\n\
        blt  r3, r2, iloop\n\
        la   r1, out\n\
        fsd  f10, 0(r1)\n\
        halt\n",
        fmt_doubles(&xs),
        fmt_doubles(&ys),
    );
    Workload {
        name: "nbody",
        description: "all-pairs force sum: FP divide pressure, quadratic loops",
        source: src,
        checks: vec![Check::MemU64 {
            symbol: "out".into(),
            expected: energy.to_bits(),
        }],
        max_steps: 5_000_000,
    }
}

/// Sparse matrix-vector product in CSR form: irregular column-index
/// loads feeding FP accumulation.
fn spmv(scale: Scale) -> Workload {
    let rows = pick(scale, 8, 64, 256);
    let nnz_per_row = 4;
    let mut rng = SmallRng::seed_from_u64(0x5350_000D);
    let mut colidx: Vec<u64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut rowptr: Vec<u64> = vec![0];
    for _ in 0..rows {
        for _ in 0..nnz_per_row {
            colidx.push(rng.random_range(0..rows as u64));
            vals.push(rng.random_range(-1.0..1.0));
        }
        rowptr.push(colidx.len() as u64 * 8);
    }
    let x: Vec<f64> = (0..rows).map(|_| rng.random_range(-1.0..1.0)).collect();

    // Mirror: y[i] = sum over row, result = sum(y).
    let mut total = 0.0f64;
    for r in 0..rows {
        let mut acc = 0.0f64;
        for k in r * nnz_per_row..(r + 1) * nnz_per_row {
            acc += vals[k] * x[colidx[k] as usize];
        }
        total += acc;
    }

    let quad_list = |v: &[u64]| -> String {
        let mut s = String::new();
        for chunk in v.chunks(8) {
            s.push_str(".quad ");
            let items: Vec<String> = chunk.iter().map(|x| x.to_string()).collect();
            s.push_str(&items.join(", "));
            s.push('\n');
        }
        s
    };

    let src = format!(
        ".data\nrowptr:\n{}\ncolidx:\n{}\nvals:\n{}\nxvec:\n{}\nout: .space 8\n.text\n\
main:   li   r1, 0\n\
        la   r20, rowptr\n\
        la   r21, colidx\n\
        la   r22, vals\n\
        la   r23, xvec\n\
rloop:  slli r2, r1, 3\n\
        add  r3, r20, r2\n\
        ld   r4, 0(r3)\n\
        ld   r5, 8(r3)\n\
        fsub f1, f1, f1\n\
kloop:  bge  r4, r5, rdone\n\
        add  r6, r21, r4\n\
        ld   r7, 0(r6)\n\
        add  r8, r22, r4\n\
        fld  f2, 0(r8)\n\
        slli r9, r7, 3\n\
        add  r9, r23, r9\n\
        fld  f3, 0(r9)\n\
        fmul f4, f2, f3\n\
        fadd f1, f1, f4\n\
        addi r4, r4, 8\n\
        b    kloop\n\
rdone:  fadd f10, f10, f1\n\
        addi r1, r1, 1\n\
        li   r10, {rows}\n\
        blt  r1, r10, rloop\n\
        la   r1, out\n\
        fsd  f10, 0(r1)\n\
        halt\n",
        quad_list(&rowptr),
        quad_list(&colidx),
        fmt_doubles(&vals),
        fmt_doubles(&x),
    );
    Workload {
        name: "spmv",
        description: "CSR sparse matrix-vector: index-chained loads into FP adds",
        source: src,
        checks: vec![Check::MemU64 {
            symbol: "out".into(),
            expected: total.to_bits(),
        }],
        max_steps: 5_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_kernels_pass_checks_at_all_scales() {
        for scale in [Scale::Tiny, Scale::Small] {
            for w in extended_suite(scale) {
                w.run_checks()
                    .unwrap_or_else(|e| panic!("kernel `{}` failed at {scale:?}: {e}", w.name));
            }
        }
    }

    #[test]
    fn extended_kernels_pass_checks_at_default_scale() {
        for w in extended_suite(Scale::Default) {
            w.run_checks()
                .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", w.name));
        }
    }

    #[test]
    fn extended_lookup() {
        assert!(extended_by_name("nbody", Scale::Tiny).is_some());
        assert!(extended_by_name("qsort", Scale::Tiny).is_none());
    }

    #[test]
    fn names_do_not_collide_with_the_main_suite() {
        let main: Vec<&str> = crate::suite(Scale::Tiny).iter().map(|w| w.name).collect();
        for w in extended_suite(Scale::Tiny) {
            assert!(!main.contains(&w.name));
        }
    }
}
