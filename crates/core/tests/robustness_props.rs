//! Property tests for the robustness-critical bookkeeping: remaining-use
//! counters must saturate instead of underflowing, pinned counters must
//! never move, and no operation sequence may drive a cache set past its
//! associativity or break the cache's internal audit.

use proptest::prelude::*;
use ubrc_core::{CachePartition, PhysReg, RegCacheConfig, RegisterCache, UseTracker};

const NPREGS: usize = 32;
const MAX_USE: u8 = 7;

/// One randomly-chosen tracker or cache operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Init {
        preg: u8,
        degree: Option<u8>,
    },
    Consume {
        preg: u8,
    },
    Write {
        preg: u8,
        remaining: u8,
        pinned: bool,
    },
    Read {
        preg: u8,
    },
    Fill {
        preg: u8,
    },
    Free {
        preg: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let preg = 0u8..NPREGS as u8;
    prop_oneof![
        (preg.clone(), proptest::option::of(0u8..12))
            .prop_map(|(preg, degree)| Op::Init { preg, degree }),
        preg.clone().prop_map(|preg| Op::Consume { preg }),
        (preg.clone(), 0u8..=MAX_USE, any::<bool>()).prop_map(|(preg, remaining, pinned)| {
            Op::Write {
                preg,
                remaining,
                pinned,
            }
        }),
        preg.clone().prop_map(|preg| Op::Read { preg }),
        preg.clone().prop_map(|preg| Op::Fill { preg }),
        preg.prop_map(|preg| Op::Free { preg }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn use_counters_saturate_and_never_underflow(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut t = UseTracker::new(NPREGS);
        // Reference model: what the counter must read after each op.
        let mut model: Vec<Option<(u8, bool)>> = vec![None; NPREGS];
        for op in ops {
            match op {
                Op::Init { preg, degree } => {
                    let p = PhysReg(preg as u16);
                    t.init(p, degree, 1, MAX_USE);
                    let d = degree.unwrap_or(1);
                    model[preg as usize] = Some((d.min(MAX_USE), d >= MAX_USE));
                }
                Op::Consume { preg } | Op::Read { preg } => {
                    let p = PhysReg(preg as u16);
                    t.consume(p);
                    if let Some((r, pinned)) = &mut model[preg as usize] {
                        if !*pinned {
                            *r = r.saturating_sub(1);
                        }
                    }
                }
                Op::Free { preg } => {
                    t.clear(PhysReg(preg as u16));
                    model[preg as usize] = None;
                }
                Op::Write { .. } | Op::Fill { .. } => {}
            }
            for (i, m) in model.iter().enumerate() {
                let p = PhysReg(i as u16);
                match m {
                    Some((r, pinned)) => {
                        prop_assert!(t.is_active(p));
                        prop_assert_eq!(t.remaining(p), *r, "p{} counter drifted", i);
                        prop_assert_eq!(t.is_pinned(p), *pinned);
                        prop_assert!(t.remaining(p) <= MAX_USE, "p{} counter overflow", i);
                    }
                    None => prop_assert!(!t.is_active(p)),
                }
            }
        }
    }

    #[test]
    fn cache_sets_never_exceed_associativity(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        // 8 sets x 2 ways; each preg keeps the fixed set assignment the
        // pipeline's index assigner would give it for its lifetime, and
        // the ops respect the produce-once/write-once value lifecycle
        // the pipeline guarantees.
        let cfg = RegCacheConfig::use_based(16, 2);
        let ways = cfg.ways;
        let nsets = cfg.entries / cfg.ways;
        let mut cache = RegisterCache::new(cfg, NPREGS);
        let set_of = |preg: u8| (preg as usize % nsets) as u16;
        let mut live = [false; NPREGS];
        let mut written = [false; NPREGS];
        for op in ops {
            let i = match op {
                Op::Init { preg, .. }
                | Op::Consume { preg }
                | Op::Write { preg, .. }
                | Op::Read { preg }
                | Op::Fill { preg }
                | Op::Free { preg } => preg as usize,
            };
            let p = PhysReg(i as u16);
            match op {
                Op::Init { .. } => {
                    // Re-allocating a live register frees it first,
                    // exactly as the rename free-list does.
                    if live[i] {
                        cache.free(p, set_of(i as u8), 0);
                    }
                    cache.produce(p);
                    live[i] = true;
                    written[i] = false;
                }
                Op::Write { remaining, pinned, .. } if live[i] && !written[i] => {
                    cache.write(p, set_of(i as u8), remaining, pinned, 0, 0);
                    written[i] = true;
                }
                Op::Read { .. } | Op::Consume { .. } if live[i] => {
                    cache.read(p, set_of(i as u8), 0);
                }
                Op::Fill { .. } if live[i] && written[i] => {
                    cache.fill(p, set_of(i as u8), 0);
                }
                Op::Free { .. } if live[i] => {
                    cache.free(p, set_of(i as u8), 0);
                    live[i] = false;
                }
                _ => {}
            }
            prop_assert!(cache.audit().is_ok(), "audit failed: {:?}", cache.audit());
            let mut per_set = vec![0usize; nsets];
            for e in cache.entries() {
                per_set[e.set as usize] += 1;
                prop_assert!(
                    e.pinned || e.uses <= MAX_USE,
                    "{} counter {} out of range",
                    e.preg,
                    e.uses
                );
            }
            for (s, &n) in per_set.iter().enumerate() {
                prop_assert!(n <= ways, "set {s} holds {n} entries for {ways} ways");
            }
        }
    }

    #[test]
    fn corrupt_metadata_is_always_caught_by_audit(
        writes in proptest::collection::vec((0u8..NPREGS as u8, 1u8..=MAX_USE), 1..20),
        nth in any::<usize>(),
    ) {
        let cfg = RegCacheConfig::use_based(16, 2);
        let nsets = cfg.entries / cfg.ways;
        let mut cache = RegisterCache::new(cfg, NPREGS);
        let mut seen = [false; NPREGS];
        for (preg, remaining) in writes {
            if std::mem::replace(&mut seen[preg as usize], true) {
                continue; // each value is produced and written once
            }
            let set = (preg as usize % nsets) as u16;
            cache.produce(PhysReg(preg as u16));
            cache.write(PhysReg(preg as u16), set, remaining, false, 0, 0);
        }
        prop_assert!(cache.audit().is_ok());
        // The injector's metadata corruption must never pass the audit.
        prop_assert!(cache.corrupt_metadata(nth).is_some());
        prop_assert!(cache.audit().is_err());
    }

    #[test]
    fn occupancy_cap_is_never_exceeded(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        // 4 hardware threads over a 16-entry 2-way cache under
        // OccupancyCap: no operation sequence may push any thread past
        // its cap of entries/nthreads = 4 live entries, and the cache's
        // own audit (which cross-checks the same bound) stays green.
        let mut cfg = RegCacheConfig::use_based(16, 2);
        cfg.partition = CachePartition::OccupancyCap;
        let nthreads = 4;
        let nsets = cfg.entries / cfg.ways;
        let mut cache = RegisterCache::new_smt(cfg, NPREGS, nthreads);
        let cap = cache.occupancy_cap().expect("OccupancyCap mode has a cap");
        prop_assert_eq!(cap, 4);
        let set_of = |preg: u8| (preg as usize % nsets) as u16;
        let mut live = [false; NPREGS];
        let mut written = [false; NPREGS];
        let mut now = 0u64;
        for op in ops {
            now += 1;
            let i = match op {
                Op::Init { preg, .. }
                | Op::Consume { preg }
                | Op::Write { preg, .. }
                | Op::Read { preg }
                | Op::Fill { preg }
                | Op::Free { preg } => preg as usize,
            };
            let p = PhysReg(i as u16);
            match op {
                Op::Init { .. } => {
                    if live[i] {
                        cache.free(p, set_of(i as u8), now);
                    }
                    cache.produce(p);
                    live[i] = true;
                    written[i] = false;
                }
                Op::Write { remaining, pinned, .. } if live[i] && !written[i] => {
                    cache.write(p, set_of(i as u8), remaining, pinned, 0, now);
                    written[i] = true;
                }
                Op::Read { .. } | Op::Consume { .. } if live[i] => {
                    cache.read(p, set_of(i as u8), now);
                }
                Op::Fill { .. } if live[i] && written[i] => {
                    cache.fill(p, set_of(i as u8), now);
                }
                Op::Free { .. } if live[i] => {
                    cache.free(p, set_of(i as u8), now);
                    live[i] = false;
                }
                _ => {}
            }
            prop_assert!(cache.audit().is_ok(), "audit failed: {:?}", cache.audit());
            let mut per_thread = vec![0usize; nthreads];
            for e in cache.entries() {
                per_thread[e.tid as usize] += 1;
            }
            for (t, &n) in per_thread.iter().enumerate() {
                prop_assert!(n <= cap, "thread {t} holds {n} entries for a cap of {cap}");
            }
        }
    }

    #[test]
    fn dynamic_cap_never_violates_containment_or_conservation(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        // 4 hardware threads over a 16-entry 2-way cache under
        // DynamicCap with an epoch boundary forced every 8 operations:
        // across arbitrary lifecycle sequences interleaved with
        // repartitioning, every thread's occupancy stays at or below
        // its current quota, the quotas always sum to exactly the
        // cache size (no entry is ever orphaned or double-granted),
        // and the cache's own audit stays green.
        let mut cfg = RegCacheConfig::use_based(16, 2);
        cfg.partition = CachePartition::DynamicCap {
            epoch_cycles: 8,
            min_cap: 1,
        };
        let nthreads = 4;
        let nsets = cfg.entries / cfg.ways;
        let entries = cfg.entries;
        let mut cache = RegisterCache::new_smt(cfg, NPREGS, nthreads);
        let set_of = |preg: u8| (preg as usize % nsets) as u16;
        let mut live = [false; NPREGS];
        let mut written = [false; NPREGS];
        let mut now = 0u64;
        for op in ops {
            now += 1;
            let i = match op {
                Op::Init { preg, .. }
                | Op::Consume { preg }
                | Op::Write { preg, .. }
                | Op::Read { preg }
                | Op::Fill { preg }
                | Op::Free { preg } => preg as usize,
            };
            let p = PhysReg(i as u16);
            match op {
                Op::Init { .. } => {
                    if live[i] {
                        cache.free(p, set_of(i as u8), now);
                    }
                    cache.produce(p);
                    live[i] = true;
                    written[i] = false;
                }
                Op::Write { remaining, pinned, .. } if live[i] && !written[i] => {
                    cache.write(p, set_of(i as u8), remaining, pinned, 0, now);
                    written[i] = true;
                }
                Op::Read { .. } | Op::Consume { .. } if live[i] => {
                    cache.read(p, set_of(i as u8), now);
                }
                Op::Fill { .. } if live[i] && written[i] => {
                    cache.fill(p, set_of(i as u8), now);
                }
                Op::Free { .. } if live[i] => {
                    cache.free(p, set_of(i as u8), now);
                    live[i] = false;
                }
                _ => {}
            }
            if now.is_multiple_of(8) {
                let fb = cache.epoch_boundary(now);
                prop_assert_eq!(fb.new_caps.iter().sum::<usize>(), entries);
                prop_assert_eq!(
                    fb.new_caps.as_slice(),
                    cache.dynamic_caps().expect("DynamicCap mode"),
                    "feedback and installed quotas diverged"
                );
            }
            prop_assert!(cache.audit().is_ok(), "audit failed: {:?}", cache.audit());
            let caps = cache.dynamic_caps().expect("DynamicCap mode").to_vec();
            prop_assert_eq!(caps.iter().sum::<usize>(), entries, "quota sum drifted");
            let mut per_thread = vec![0usize; nthreads];
            for e in cache.entries() {
                per_thread[e.tid as usize] += 1;
            }
            for (t, &n) in per_thread.iter().enumerate() {
                prop_assert!(
                    n <= caps[t],
                    "thread {} holds {} entries for a quota of {}",
                    t, n, caps[t]
                );
            }
        }
    }

    #[test]
    fn dynamic_way_never_violates_ownership_or_conservation(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        // 2 hardware threads over a 16-entry 4-way cache under
        // DynamicWay with an epoch boundary forced every 8 operations:
        // across arbitrary lifecycle sequences interleaved with whole-
        // way reassignment, every resident entry sits in a way its
        // thread currently owns, the way counts always sum to exactly
        // the associativity with every thread keeping at least one way,
        // and the cache's own audit stays green.
        let mut cfg = RegCacheConfig::use_based(16, 4);
        cfg.partition = CachePartition::DynamicWay { epoch_cycles: 8 };
        let nthreads = 2;
        let nsets = cfg.entries / cfg.ways;
        let ways = cfg.ways;
        let mut cache = RegisterCache::new_smt(cfg, NPREGS, nthreads);
        let set_of = |preg: u8| (preg as usize % nsets) as u16;
        let mut live = [false; NPREGS];
        let mut written = [false; NPREGS];
        let mut now = 0u64;
        for op in ops {
            now += 1;
            let i = match op {
                Op::Init { preg, .. }
                | Op::Consume { preg }
                | Op::Write { preg, .. }
                | Op::Read { preg }
                | Op::Fill { preg }
                | Op::Free { preg } => preg as usize,
            };
            let p = PhysReg(i as u16);
            match op {
                Op::Init { .. } => {
                    if live[i] {
                        cache.free(p, set_of(i as u8), now);
                    }
                    cache.produce(p);
                    live[i] = true;
                    written[i] = false;
                }
                Op::Write { remaining, pinned, .. } if live[i] && !written[i] => {
                    cache.write(p, set_of(i as u8), remaining, pinned, 0, now);
                    written[i] = true;
                }
                Op::Read { .. } | Op::Consume { .. } if live[i] => {
                    cache.read(p, set_of(i as u8), now);
                }
                Op::Fill { .. } if live[i] && written[i] => {
                    cache.fill(p, set_of(i as u8), now);
                }
                Op::Free { .. } if live[i] => {
                    cache.free(p, set_of(i as u8), now);
                    live[i] = false;
                }
                _ => {}
            }
            if now.is_multiple_of(8) {
                let fb = cache.epoch_boundary(now);
                prop_assert_eq!(fb.new_ways.iter().sum::<usize>(), ways);
                prop_assert_eq!(
                    fb.new_ways.as_slice(),
                    cache.way_counts().expect("DynamicWay mode"),
                    "feedback and installed way counts diverged"
                );
            }
            prop_assert!(cache.audit().is_ok(), "audit failed: {:?}", cache.audit());
            let counts = cache.way_counts().expect("DynamicWay mode").to_vec();
            prop_assert_eq!(counts.iter().sum::<usize>(), ways, "way sum drifted");
            prop_assert!(counts.iter().all(|&c| c >= 1), "a thread owns zero ways");
            for e in cache.entries() {
                let owner = cache
                    .way_owner(e.way as usize)
                    .expect("DynamicWay owns every way");
                prop_assert_eq!(
                    owner, e.tid as usize,
                    "thread {}'s entry sits in way {} owned by thread {}",
                    e.tid, e.way, owner
                );
            }
        }
    }
}
