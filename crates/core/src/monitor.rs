//! Shadow-tag utility monitors and the lookahead quota partitioner
//! behind [`CachePartition::DynamicCap`](crate::CachePartition).
//!
//! The design follows Qureshi & Patt's utility-based cache partitioning
//! (UCP): each SMT thread owns a small *utility monitor* (UMON) — an
//! LRU stack of shadow tags, fed only by a sampled subset of cache sets
//! — whose per-depth hit counters estimate how many extra hits the
//! thread would harvest from each additional cache entry. At every
//! epoch boundary a deterministic *lookahead* partitioner converts the
//! monitored marginal-utility curves into per-thread occupancy quotas
//! that always sum to the cache's total entry count.
//!
//! # Sampling geometry
//!
//! One in every [`SAMPLE_PERIOD`] sets feeds the monitors (set index
//! `s` is sampled when `s % SAMPLE_PERIOD == 0`). Because decoupled
//! indexing spreads values across sets round-robin, the sampled sets
//! see a representative slice of each thread's reuse. A shadow stack
//! of depth `d` fed by `1/SAMPLE_PERIOD` of the sets therefore models
//! a full-cache allocation of `d × SAMPLE_PERIOD` entries: the utility
//! of a quota of `c` entries is the prefix sum of the hit counters
//! down to stack depth `c / SAMPLE_PERIOD`.
//!
//! Everything here is integer arithmetic on deterministic inputs — no
//! RNG, no floating point — so dynamic repartitioning preserves the
//! simulator's bit-reproducibility guarantees.

use crate::PhysReg;

/// Set-sampling period of the monitors: one in this many cache sets
/// feeds the shadow stacks.
pub const SAMPLE_PERIOD: usize = 2;

/// One thread's shadow-tag LRU stack and per-depth hit counters.
#[derive(Clone, Debug)]
struct ThreadMonitor {
    /// Shadow tags, most-recently-used first. Holds physical-register
    /// tags only — no data, no timing state.
    stack: Vec<u16>,
    /// `hits[d]` counts probes that found their tag at stack depth `d`.
    hits: Vec<u64>,
}

/// Per-thread utility monitors for one register cache.
///
/// The cache feeds the monitors from its read/write/free paths (sampled
/// sets only); [`UtilityMonitor::repartition`] turns the accumulated
/// counters into the next epoch's per-thread quotas.
#[derive(Clone, Debug)]
pub struct UtilityMonitor {
    depth: usize,
    threads: Vec<ThreadMonitor>,
}

impl UtilityMonitor {
    /// Creates monitors for `nthreads` threads over a cache of
    /// `entries` total entries. Stack depth is `entries /
    /// SAMPLE_PERIOD` (at least 1): deep enough to score a quota of the
    /// whole cache.
    pub fn new(entries: usize, nthreads: usize) -> Self {
        let depth = (entries / SAMPLE_PERIOD).max(1);
        Self {
            depth,
            threads: vec![
                ThreadMonitor {
                    stack: Vec::with_capacity(depth),
                    hits: vec![0; depth],
                };
                nthreads
            ],
        }
    }

    /// True when set `s` (already reduced modulo the set count) feeds
    /// the monitors.
    pub fn sampled(set: usize) -> bool {
        set.is_multiple_of(SAMPLE_PERIOD)
    }

    /// Records a read probe by `tid` for `preg` in sampled set `set`.
    /// A stack hit at depth `d` bumps `hits[d]`; hit or miss, the tag
    /// moves to the top of the stack.
    pub fn access(&mut self, tid: usize, preg: PhysReg, set: usize) {
        if !Self::sampled(set) {
            return;
        }
        let m = &mut self.threads[tid];
        if let Some(d) = m.stack.iter().position(|&t| t == preg.0) {
            m.hits[d] += 1;
            m.stack.remove(d);
        } else if m.stack.len() == self.depth {
            m.stack.pop();
        }
        m.stack.insert(0, preg.0);
    }

    /// Records a value installation (initial write or fill) by `tid`
    /// for `preg` in sampled set `set`: the tag moves to the top of the
    /// stack without counting a hit.
    pub fn touch(&mut self, tid: usize, preg: PhysReg, set: usize) {
        if !Self::sampled(set) {
            return;
        }
        let m = &mut self.threads[tid];
        if let Some(d) = m.stack.iter().position(|&t| t == preg.0) {
            m.stack.remove(d);
        } else if m.stack.len() == self.depth {
            m.stack.pop();
        }
        m.stack.insert(0, preg.0);
    }

    /// Drops `preg` from `tid`'s shadow stack. Called when the physical
    /// register is freed (including by squash recovery): the tag may be
    /// re-allocated to an unrelated value, so a stale shadow hit would
    /// overstate utility.
    pub fn remove(&mut self, tid: usize, preg: PhysReg) {
        let m = &mut self.threads[tid];
        if let Some(d) = m.stack.iter().position(|&t| t == preg.0) {
            m.stack.remove(d);
        }
    }

    /// Monitored hits a quota of `cap` entries would have served for
    /// `tid` this epoch: the prefix sum of the hit counters down to
    /// stack depth `cap / SAMPLE_PERIOD`.
    pub fn utility(&self, tid: usize, cap: usize) -> u64 {
        let d = (cap / SAMPLE_PERIOD).min(self.depth);
        self.threads[tid].hits[..d].iter().sum()
    }

    /// Ages the hit counters (halving) so the utility curves track
    /// phase changes instead of the whole history.
    pub fn decay(&mut self) {
        for m in &mut self.threads {
            for h in &mut m.hits {
                *h >>= 1;
            }
        }
    }

    /// The lookahead partitioner (UCP §4): splits `total` entries into
    /// per-thread quotas maximizing monitored utility.
    ///
    /// Each thread starts at its floor from `floors` (the caller
    /// guarantees `floors` sums to at most `total`). The remaining
    /// budget is handed out greedily by *marginal utility per entry*:
    /// each round scans every `(thread, block size)` pair and grants
    /// the block with the highest utility gain per entry — the
    /// lookahead over block sizes is what lets a thread with a utility
    /// "cliff" several entries away still win it. Ties favor the
    /// lower-numbered thread and the smaller block, so the result is a
    /// pure function of the counters. Budget no curve wants is spread
    /// round-robin; the returned quotas always sum to exactly `total`.
    pub fn repartition(&self, total: usize, floors: &[usize]) -> Vec<usize> {
        let n = floors.len();
        let mut caps = floors.to_vec();
        let mut budget = total - caps.iter().sum::<usize>().min(total);
        while budget > 0 {
            // (gain, block, tid) of the best marginal-utility step.
            let mut best: Option<(u64, usize, usize)> = None;
            for (tid, &cap) in caps.iter().enumerate() {
                let base = self.utility(tid, cap);
                for k in 1..=budget {
                    let gain = self.utility(tid, cap + k) - base;
                    let better = match best {
                        None => gain > 0,
                        // Strictly higher rate wins: gain/k > bg/bk.
                        Some((bg, bk, _)) => (gain as u128) * bk as u128 > (bg as u128) * k as u128,
                    };
                    if better {
                        best = Some((gain, k, tid));
                    }
                }
            }
            match best {
                Some((_, k, tid)) => {
                    caps[tid] += k;
                    budget -= k;
                }
                None => break, // flat curves: nobody profits further
            }
        }
        // Left-over budget (flat utility everywhere) is spread evenly
        // so the quotas still account for every entry.
        let mut t = 0;
        while budget > 0 {
            caps[t % n] += 1;
            budget -= 1;
            t += 1;
        }
        caps
    }

    /// The lookahead partitioner at *way* granularity, for
    /// [`CachePartition::DynamicWay`](crate::CachePartition): splits
    /// `total_ways` ways into per-thread way counts, where a block of
    /// `k` ways is worth `k × entries_per_way` entries of monitored
    /// utility (`entries_per_way` is the set count — owning a way means
    /// owning it in every set).
    ///
    /// Same contract as [`UtilityMonitor::repartition`]: floors are
    /// honored (the caller guarantees they sum to at most
    /// `total_ways`), blocks are granted by marginal utility per way
    /// with ties to the lower thread and smaller block, leftover ways
    /// are spread round-robin, and the counts always sum to exactly
    /// `total_ways`.
    pub fn repartition_ways(
        &self,
        total_ways: usize,
        entries_per_way: usize,
        floors: &[usize],
    ) -> Vec<usize> {
        let n = floors.len();
        let mut counts = floors.to_vec();
        let mut budget = total_ways - counts.iter().sum::<usize>().min(total_ways);
        while budget > 0 {
            // (gain, block, tid) of the best marginal-utility step.
            let mut best: Option<(u64, usize, usize)> = None;
            for (tid, &ways) in counts.iter().enumerate() {
                let base = self.utility(tid, ways * entries_per_way);
                for k in 1..=budget {
                    let gain = self.utility(tid, (ways + k) * entries_per_way) - base;
                    let better = match best {
                        None => gain > 0,
                        // Strictly higher rate wins: gain/k > bg/bk.
                        Some((bg, bk, _)) => (gain as u128) * bk as u128 > (bg as u128) * k as u128,
                    };
                    if better {
                        best = Some((gain, k, tid));
                    }
                }
            }
            match best {
                Some((_, k, tid)) => {
                    counts[tid] += k;
                    budget -= k;
                }
                None => break, // flat curves: nobody profits further
            }
        }
        let mut t = 0;
        while budget > 0 {
            counts[t % n] += 1;
            budget -= 1;
            t += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_hits_count_by_depth_and_scale_to_entries() {
        let mut m = UtilityMonitor::new(8, 1); // depth 4
                                               // Touch p1 then p2 into the stack (sampled set 0).
        m.touch(0, PhysReg(1), 0);
        m.touch(0, PhysReg(2), 0);
        // p1 now sits at depth 1: reading it is a depth-1 hit, i.e.
        // utility only appears once the quota covers 2*SAMPLE_PERIOD
        // entries.
        m.access(0, PhysReg(1), 0);
        assert_eq!(m.utility(0, SAMPLE_PERIOD), 0);
        assert_eq!(m.utility(0, 2 * SAMPLE_PERIOD), 1);
        // Unsampled sets contribute nothing.
        m.access(0, PhysReg(1), 1);
        assert_eq!(m.utility(0, 8), 1);
    }

    #[test]
    fn remove_forgets_a_tag() {
        let mut m = UtilityMonitor::new(8, 1);
        m.touch(0, PhysReg(1), 0);
        m.remove(0, PhysReg(1));
        m.access(0, PhysReg(1), 0); // miss: no utility anywhere
        assert_eq!(m.utility(0, 8), 0);
    }

    #[test]
    fn repartition_favors_the_thread_with_reuse() {
        let mut m = UtilityMonitor::new(16, 2);
        // Thread 0 re-reads 4 hot values (depth-0..3 hits); thread 1
        // streams without reuse.
        for round in 0..3 {
            for p in 0..4u16 {
                if round == 0 {
                    m.touch(0, PhysReg(p), 0);
                } else {
                    m.access(0, PhysReg(p), 0);
                }
            }
        }
        for p in 100..120u16 {
            m.touch(1, PhysReg(p), 0);
        }
        let caps = m.repartition(16, &[2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 16);
        assert!(caps[0] > caps[1], "reuse thread must win entries: {caps:?}");
    }

    #[test]
    fn repartition_is_deterministic_and_conserves_total() {
        let mut m = UtilityMonitor::new(16, 4);
        for p in 0..6u16 {
            m.touch(0, PhysReg(p), 0);
            m.access(0, PhysReg(p), 0);
        }
        let a = m.repartition(16, &[1, 1, 1, 1]);
        let b = m.repartition(16, &[1, 1, 1, 1]);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 16);
        assert!(a.iter().all(|&c| c >= 1));
    }

    #[test]
    fn flat_curves_spread_the_budget_evenly() {
        let m = UtilityMonitor::new(16, 4);
        let caps = m.repartition(16, &[1, 1, 1, 1]);
        assert_eq!(caps, vec![4, 4, 4, 4]);
    }

    #[test]
    fn repartition_ways_favors_the_thread_with_reuse() {
        // 16-entry 8-way cache: 2 sets, so one way is worth 2 entries.
        let mut m = UtilityMonitor::new(16, 2);
        for round in 0..3 {
            for p in 0..4u16 {
                if round == 0 {
                    m.touch(0, PhysReg(p), 0);
                } else {
                    m.access(0, PhysReg(p), 0);
                }
            }
        }
        for p in 100..120u16 {
            m.touch(1, PhysReg(p), 0);
        }
        let counts = m.repartition_ways(8, 2, &[1, 1]);
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(
            counts[0] > counts[1],
            "reuse thread must win ways: {counts:?}"
        );
        // Way granularity is coarser than entry granularity, but the
        // deterministic contract is the same.
        assert_eq!(counts, m.repartition_ways(8, 2, &[1, 1]));
    }

    #[test]
    fn repartition_ways_spreads_flat_curves_evenly() {
        let m = UtilityMonitor::new(16, 4);
        assert_eq!(m.repartition_ways(8, 2, &[1, 1, 1, 1]), vec![2, 2, 2, 2]);
    }

    #[test]
    fn decay_halves_counters() {
        let mut m = UtilityMonitor::new(4, 1);
        m.touch(0, PhysReg(1), 0);
        for _ in 0..4 {
            m.access(0, PhysReg(1), 0);
        }
        assert_eq!(m.utility(0, 4), 4);
        m.decay();
        assert_eq!(m.utility(0, 4), 2);
    }
}
