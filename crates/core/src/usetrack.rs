use crate::PhysReg;

#[derive(Clone, Copy, Debug, Default)]
struct State {
    remaining: u8,
    pinned: bool,
    active: bool,
    predicted: u8,
    /// Modeled parity error: set by the fault injector, cleared by the
    /// next write ([`UseTracker::init`] / [`UseTracker::scrub`] /
    /// [`UseTracker::clear`]).
    parity_bad: bool,
}

/// Remaining-use bookkeeping for values between rename and the register
/// cache write (§3.3 of the paper).
///
/// At rename, each destination's predicted degree of use initializes a
/// counter (applying the *unknown default* when the predictor abstains
/// and pinning at the saturation limit). Consumers satisfied from the
/// bypass network decrement the counter; when the value reaches the
/// cache-write port, whatever remains becomes the cache entry's count.
///
/// # Examples
///
/// ```
/// use ubrc_core::{PhysReg, UseTracker};
///
/// let mut t = UseTracker::new(512);
/// t.init(PhysReg(3), Some(2), 1, 7);
/// t.consume(PhysReg(3)); // one consumer bypassed
/// assert_eq!(t.remaining(PhysReg(3)), 1);
/// assert!(!t.is_pinned(PhysReg(3)));
/// ```
#[derive(Clone, Debug)]
pub struct UseTracker {
    states: Vec<State>,
}

impl UseTracker {
    /// Creates a tracker for `num_pregs` physical registers.
    pub fn new(num_pregs: usize) -> Self {
        Self {
            states: vec![State::default(); num_pregs],
        }
    }

    /// Initializes the counter for a renamed destination.
    ///
    /// * `prediction` — the degree-of-use prediction, or `None` when the
    ///   predictor had no confident entry;
    /// * `unknown_default` — count assumed for unknown values;
    /// * `max_use_count` — the saturation/pinning limit.
    pub fn init(
        &mut self,
        preg: PhysReg,
        prediction: Option<u8>,
        unknown_default: u8,
        max_use_count: u8,
    ) {
        let degree = prediction.unwrap_or(unknown_default);
        let pinned = degree >= max_use_count;
        self.states[preg.0 as usize] = State {
            remaining: degree.min(max_use_count),
            pinned,
            active: true,
            predicted: degree.min(max_use_count),
            parity_bad: false,
        };
    }

    /// Records one consumer satisfied (bypass or cache read) before the
    /// value reaches the cache. Pinned counters do not decrement.
    pub fn consume(&mut self, preg: PhysReg) {
        let s = &mut self.states[preg.0 as usize];
        if s.active && !s.pinned {
            s.remaining = s.remaining.saturating_sub(1);
        }
    }

    /// The remaining predicted uses.
    pub fn remaining(&self, preg: PhysReg) -> u8 {
        self.states[preg.0 as usize].remaining
    }

    /// The initial (clamped) predicted degree for this value.
    pub fn predicted(&self, preg: PhysReg) -> u8 {
        self.states[preg.0 as usize].predicted
    }

    /// True when the value's degree saturated the counter and it should
    /// be pinned in the cache.
    pub fn is_pinned(&self, preg: PhysReg) -> bool {
        self.states[preg.0 as usize].pinned
    }

    /// True while a live value occupies this physical register
    /// (between [`UseTracker::init`] and [`UseTracker::clear`]).
    pub fn is_active(&self, preg: PhysReg) -> bool {
        self.states[preg.0 as usize].active
    }

    /// Clears the state when the physical register is freed.
    pub fn clear(&mut self, preg: PhysReg) {
        self.states[preg.0 as usize] = State::default();
    }

    /// Fault-injection hook: flips the low bits of a live value's
    /// stored remaining-use counter and clears its pinned flag, as a
    /// bit upset in the counter SRAM would. Returns `false` (no fault
    /// landed) when the register holds no live value.
    pub fn corrupt_counter(&mut self, preg: PhysReg) -> bool {
        let s = &mut self.states[preg.0 as usize];
        if !s.active {
            return false;
        }
        s.remaining ^= 0b111;
        s.pinned = false;
        true
    }

    /// Recoverable fault-injection hook: like
    /// [`UseTracker::corrupt_counter`], but also marks the counter's
    /// parity bad so a protected read ([`ProtectionConfig::counter_parity`](
    /// crate::ProtectionConfig)) detects the upset and scrubs it instead
    /// of consuming the corrupted count. Returns `false` when the
    /// register holds no live value.
    pub fn corrupt_counter_parity(&mut self, preg: PhysReg) -> bool {
        if !self.corrupt_counter(preg) {
            return false;
        }
        self.states[preg.0 as usize].parity_bad = true;
        true
    }

    /// True when the counter word's modeled parity is clean (inactive
    /// registers always read clean).
    pub fn parity_ok(&self, preg: PhysReg) -> bool {
        !self.states[preg.0 as usize].parity_bad
    }

    /// Recovery scrub after a detected parity error: the counter bits
    /// are untrusted, so rewrite the word to the conservative
    /// zero-remaining, unpinned state (the counters are hints — a wrong
    /// scrub costs performance, never correctness). The value stays
    /// active; only [`UseTracker::clear`] deactivates it.
    pub fn scrub(&mut self, preg: PhysReg) {
        let s = &mut self.states[preg.0 as usize];
        s.remaining = 0;
        s.pinned = false;
        s.parity_bad = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_default_applies_when_predictor_abstains() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(0), None, 1, 7);
        assert_eq!(t.remaining(PhysReg(0)), 1);
        assert_eq!(t.predicted(PhysReg(0)), 1);
    }

    #[test]
    fn saturated_predictions_pin() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(0), Some(9), 1, 7);
        assert!(t.is_pinned(PhysReg(0)));
        assert_eq!(t.remaining(PhysReg(0)), 7);
        t.consume(PhysReg(0));
        assert_eq!(
            t.remaining(PhysReg(0)),
            7,
            "pinned counters do not decrement"
        );
    }

    #[test]
    fn consume_decrements_and_saturates_at_zero() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(1), Some(2), 1, 7);
        t.consume(PhysReg(1));
        t.consume(PhysReg(1));
        t.consume(PhysReg(1));
        assert_eq!(t.remaining(PhysReg(1)), 0);
    }

    #[test]
    fn clear_resets_state() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(2), Some(7), 1, 7);
        t.clear(PhysReg(2));
        assert!(!t.is_pinned(PhysReg(2)));
        assert_eq!(t.remaining(PhysReg(2)), 0);
    }

    #[test]
    fn exact_max_prediction_pins() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(3), Some(7), 1, 7);
        assert!(t.is_pinned(PhysReg(3)));
    }

    #[test]
    fn parity_fault_is_detected_and_scrubbed() {
        let mut t = UseTracker::new(8);
        t.init(PhysReg(4), Some(9), 1, 7);
        assert!(t.parity_ok(PhysReg(4)));
        assert!(t.corrupt_counter_parity(PhysReg(4)));
        assert!(!t.parity_ok(PhysReg(4)));
        t.scrub(PhysReg(4));
        assert!(t.parity_ok(PhysReg(4)));
        assert_eq!(t.remaining(PhysReg(4)), 0);
        assert!(!t.is_pinned(PhysReg(4)));
        assert!(t.is_active(PhysReg(4)), "scrub keeps the value live");
    }

    #[test]
    fn parity_faults_need_a_live_value_and_init_rewrites_the_word() {
        let mut t = UseTracker::new(8);
        assert!(!t.corrupt_counter_parity(PhysReg(5)), "inactive: no fault");
        t.init(PhysReg(5), Some(2), 1, 7);
        assert!(t.corrupt_counter_parity(PhysReg(5)));
        t.init(PhysReg(5), Some(3), 1, 7);
        assert!(t.parity_ok(PhysReg(5)), "a fresh init overwrites parity");
    }
}
