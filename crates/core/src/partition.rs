//! Pluggable SMT partition controllers for the register cache.
//!
//! [`CachePartition`] is the *configuration-level* name of a
//! partitioning policy — `Copy`, `Eq`, cheap to put in sweep matrices.
//! The behavior lives behind the object-safe [`PartitionController`]
//! trait, instantiated once at cache construction by
//! [`controller_for`] (the same enum-name / boxed-behavior split as
//! `InsertionPolicy` → `InsertionDecider` in the policy module).
//!
//! The cache consults its controller at exactly three decision points:
//!
//! 1. **Insertion** ([`PartitionController::admit`] +
//!    [`PartitionController::victim_ways`]): may this thread place
//!    freely, and into which ways of the target set? An inadmissible
//!    insert (a thread at its occupancy quota) falls back to evicting
//!    one of the thread's *own* entries in the set, or is dropped.
//! 2. **Epoch pacing** ([`PartitionController::epoch_due`] +
//!    [`PartitionController::epoch_boundary`]): dynamic controllers
//!    decide when a boundary fires and return an [`EpochPlan`] — new
//!    entry quotas or a new way map — which the cache then enforces
//!    (trimming over-quota threads, draining reassigned ways).
//! 3. **Audit** ([`PartitionController::audit`]): self-consistency of
//!    the controller's quota state, folded into the cache's structural
//!    audit.
//!
//! Controllers also expose their quota state read-only (`cap`, `caps`,
//! `way_counts`, `way_owner`) so the simulator's invariant checker can
//! cross-check entry placement against epoch-varying ownership.
//!
//! Adding a controller touches at most three files: implement the trait
//! here (plus a [`CachePartition`] variant in the policy module), and
//! add a typed rejection to the simulator's config validation.

use crate::monitor::UtilityMonitor;
use crate::policy::{CachePartition, EpochAdapt, RegCacheConfig};
use std::fmt;
use std::ops::Range;

/// Read-only epoch-boundary inputs handed to
/// [`PartitionController::epoch_boundary`].
///
/// The cache gathers these from its own state so controllers stay free
/// of entry-array knowledge: the shadow-tag monitors (utility curves),
/// the pinned footprints (quota floors), and the geometry.
#[derive(Debug)]
pub struct EpochContext<'a> {
    /// The shadow-tag utility monitors feeding the partitioner.
    pub monitor: &'a UtilityMonitor,
    /// Valid pinned entries per thread (quota floors: pinned entries
    /// are never evicted by a repartition).
    pub pinned: &'a [usize],
    /// The largest pinned-entry count any single set holds per thread
    /// (way-granularity floors: a thread's new way block must fit its
    /// pinned entries in every set).
    pub pinned_per_set_max: &'a [usize],
    /// Total cache entries.
    pub entries: usize,
    /// Cache associativity.
    pub ways: usize,
    /// Cache set count (= entries the ownership of one way is worth).
    pub sets: usize,
}

/// A dynamic controller's repartition decision, enforced by the cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochPlan {
    /// New per-thread occupancy quotas (summing to the entry count);
    /// the cache trims each over-quota thread by evicting its own
    /// unpinned entries, lowest replacement score first.
    Caps(Vec<usize>),
    /// New per-thread way counts (summing to the associativity, laid
    /// out as contiguous blocks in thread order); the cache drains
    /// reassigned ways — evicting the losing thread's unpinned entries
    /// and migrating its pinned entries into its remaining block.
    Ways(Vec<usize>),
}

/// Object-safe SMT partition behavior (see the module docs).
///
/// Implementations must be deterministic functions of their inputs and
/// the feedback stream — the golden-snapshot matrix pins their timing.
pub trait PartitionController: fmt::Debug + Send {
    /// May `tid` place a new entry freely (into
    /// [`PartitionController::victim_ways`])? `false` means the thread
    /// is at its occupancy quota: the cache falls back to evicting one
    /// of the thread's own entries in the target set, dropping the
    /// insertion if it has none there.
    fn admit(&self, tid: usize, occupancy: &[usize]) -> bool;

    /// The candidate ways (relative to the set base) an admitted
    /// insertion by `tid` may fill or evict from.
    fn victim_ways(&self, tid: usize) -> Range<usize>;

    /// Notification: an entry owned by `tid` was installed. Default
    /// no-op (the cache keeps the occupancy counters).
    fn on_insert(&mut self, _tid: usize) {}

    /// Notification: an entry owned by `tid` was evicted or
    /// invalidated. Default no-op.
    fn on_evict(&mut self, _tid: usize) {}

    /// The occupancy cap currently binding `tid`, if this controller
    /// caps occupancy (`None` for way-partitioned and shared caches).
    fn cap(&self, _tid: usize) -> Option<usize> {
        None
    }

    /// The full dynamic entry-quota vector
    /// ([`CachePartition::DynamicCap`] only; always sums to the entry
    /// count).
    fn caps(&self) -> Option<&[usize]> {
        None
    }

    /// The per-thread way counts ([`CachePartition::DynamicWay`] only;
    /// always sums to the associativity).
    fn way_counts(&self) -> Option<&[usize]> {
        None
    }

    /// The thread owning `way` (in every set), when ways are owned at
    /// all (`None` for shared and occupancy-capped caches).
    fn way_owner(&self, _way: usize) -> Option<usize> {
        None
    }

    /// The configured repartition period of a dynamic controller
    /// (`None` for the static policies). Under [`EpochAdapt`] this is
    /// the *initial* period; the live period varies.
    fn epoch_cycles(&self) -> Option<u64> {
        None
    }

    /// True when an epoch boundary must fire at cycle `now` (static
    /// controllers never fire).
    fn epoch_due(&self, _now: u64) -> bool {
        false
    }

    /// Closes an epoch: recomputes this controller's quota state from
    /// the monitored utility curves and returns the plan for the cache
    /// to enforce. `None` for static controllers (never called on
    /// them).
    fn epoch_boundary(&mut self, _cx: &EpochContext<'_>) -> Option<EpochPlan> {
        None
    }

    /// Self-consistency of the controller's quota state (quota sums,
    /// positivity). Folded into [`crate::RegisterCache::audit`].
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` when internal quota state is
    /// inconsistent.
    fn audit(&self, _entries: usize, _ways: usize) -> Result<(), String> {
        Ok(())
    }

    /// Clones the controller behind the object (cloning caches).
    fn clone_box(&self) -> Box<dyn PartitionController>;
}

impl Clone for Box<dyn PartitionController> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Builds the controller implementing `config.partition` for an
/// `nthreads`-thread cache. With one thread every policy degenerates to
/// the shared controller (partitioning is inert), preserving the
/// single-thread golden contract.
///
/// # Panics
///
/// Panics on an infeasible configuration: a
/// [`CachePartition::WayPartition`] or [`CachePartition::DynamicWay`]
/// whose ways don't divide by the thread count, an occupancy-capped
/// partition with fewer entries than threads, a zero dynamic epoch, a
/// [`CachePartition::DynamicCap`] `min_cap` that overcommits the cache,
/// or an [`EpochAdapt`] with an empty `[min, max]` range or a static
/// partition. Callers wanting typed errors should validate first (the
/// simulator's `try_new_smt` does).
pub fn controller_for(config: &RegCacheConfig, nthreads: usize) -> Box<dyn PartitionController> {
    AnyController::from_config(config, nthreads).into_boxed()
}

/// Statically dispatched partition controller: one enum variant per
/// shipped [`CachePartition`], plus an [`AnyController::Custom`] escape
/// hatch for user-supplied [`PartitionController`] implementations.
///
/// The cache stores this enum instead of a
/// `Box<dyn PartitionController>`: the controller is consulted at four
/// decision points on every insertion (`admit`, `victim_ways`,
/// `on_evict`, `on_insert`), so resolving the shipped controllers with
/// a jump table over inlined monomorphic bodies instead of virtual
/// calls pays on every cache write. Behavior is identical to
/// dispatching through the boxed object — the golden-snapshot matrix
/// and the equivalence proptests pin this — and the object-safe trait
/// remains the documented ≤3-file extension seam: any
/// [`PartitionController`] implementation rides along in
/// [`AnyController::Custom`] with unchanged semantics.
#[derive(Clone, Debug)]
pub enum AnyController {
    /// [`CachePartition::Shared`] (and every single-thread cache),
    /// statically dispatched.
    Shared(SharedController),
    /// [`CachePartition::WayPartition`], statically dispatched.
    WayPartition(WayPartitionController),
    /// [`CachePartition::OccupancyCap`], statically dispatched.
    OccupancyCap(OccupancyCapController),
    /// [`CachePartition::DynamicCap`], statically dispatched.
    DynamicCap(DynamicCapController),
    /// [`CachePartition::DynamicWay`], statically dispatched.
    DynamicWay(DynamicWayController),
    /// A user-supplied controller, dispatched through the object-safe
    /// trait exactly as before the enum existed.
    Custom(Box<dyn PartitionController>),
}

/// Forwards one [`PartitionController`] method to whichever concrete
/// controller the [`AnyController`] holds, monomorphically for the
/// shipped variants.
macro_rules! dispatch {
    ($self:expr, $c:pat => $body:expr) => {
        match $self {
            AnyController::Shared($c) => $body,
            AnyController::WayPartition($c) => $body,
            AnyController::OccupancyCap($c) => $body,
            AnyController::DynamicCap($c) => $body,
            AnyController::DynamicWay($c) => $body,
            AnyController::Custom($c) => $body,
        }
    };
}

impl AnyController {
    /// Builds the statically dispatched controller implementing
    /// `config.partition` for an `nthreads`-thread cache. Same contract
    /// as [`controller_for`] (which now delegates here), including the
    /// panics on infeasible configurations.
    ///
    /// # Panics
    ///
    /// See [`controller_for`].
    pub fn from_config(config: &RegCacheConfig, nthreads: usize) -> Self {
        let ways = config.ways;
        if nthreads <= 1 {
            return AnyController::Shared(SharedController { ways });
        }
        if let Some(a) = config.epoch_adapt {
            assert!(
                config.partition.is_dynamic(),
                "epoch_adapt requires a dynamic partition"
            );
            assert!(
                a.min_cycles >= 1 && a.min_cycles <= a.max_cycles,
                "epoch_adapt needs 1 <= min_cycles <= max_cycles"
            );
        }
        match config.partition {
            CachePartition::Shared => AnyController::Shared(SharedController { ways }),
            CachePartition::WayPartition => {
                assert!(
                    ways.is_multiple_of(nthreads),
                    "WayPartition needs ways divisible by nthreads"
                );
                AnyController::WayPartition(WayPartitionController {
                    ways_per_thread: ways / nthreads,
                })
            }
            CachePartition::OccupancyCap => {
                assert!(
                    config.entries >= nthreads,
                    "OccupancyCap needs at least one entry per thread"
                );
                AnyController::OccupancyCap(OccupancyCapController {
                    ways,
                    cap: config.entries / nthreads,
                })
            }
            CachePartition::DynamicCap {
                epoch_cycles,
                min_cap,
            } => {
                assert!(epoch_cycles >= 1, "DynamicCap needs a non-zero epoch");
                assert!(
                    config.entries >= nthreads,
                    "DynamicCap needs at least one entry per thread"
                );
                assert!(
                    min_cap * nthreads <= config.entries,
                    "DynamicCap min_cap x nthreads exceeds the cache"
                );
                // Initial quotas: the even OccupancyCap split, remainder to
                // the lower-numbered threads so the quotas sum to `entries`
                // exactly.
                let caps = (0..nthreads)
                    .map(|t| config.entries / nthreads + usize::from(t < config.entries % nthreads))
                    .collect();
                AnyController::DynamicCap(DynamicCapController {
                    ways,
                    min_cap,
                    caps,
                    pacer: EpochPacer::new(epoch_cycles, config.epoch_adapt),
                })
            }
            CachePartition::DynamicWay { epoch_cycles } => {
                assert!(epoch_cycles >= 1, "DynamicWay needs a non-zero epoch");
                assert!(
                    ways.is_multiple_of(nthreads),
                    "DynamicWay needs ways divisible by nthreads"
                );
                AnyController::DynamicWay(DynamicWayController {
                    counts: vec![ways / nthreads; nthreads],
                    pacer: EpochPacer::new(epoch_cycles, config.epoch_adapt),
                })
            }
        }
    }

    /// Moves the controller behind a `Box<dyn PartitionController>`,
    /// restoring the virtual-dispatch form [`controller_for`]
    /// advertises (the shipped variants box their concrete type; a
    /// [`AnyController::Custom`] controller is returned as-is).
    pub fn into_boxed(self) -> Box<dyn PartitionController> {
        match self {
            AnyController::Shared(c) => Box::new(c),
            AnyController::WayPartition(c) => Box::new(c),
            AnyController::OccupancyCap(c) => Box::new(c),
            AnyController::DynamicCap(c) => Box::new(c),
            AnyController::DynamicWay(c) => Box::new(c),
            AnyController::Custom(c) => c,
        }
    }

    /// Forwards [`PartitionController::admit`] without a virtual call
    /// for the shipped controllers.
    #[inline]
    pub fn admit(&self, tid: usize, occupancy: &[usize]) -> bool {
        dispatch!(self, c => c.admit(tid, occupancy))
    }

    /// Forwards [`PartitionController::victim_ways`] without a virtual
    /// call for the shipped controllers.
    #[inline]
    pub fn victim_ways(&self, tid: usize) -> Range<usize> {
        dispatch!(self, c => c.victim_ways(tid))
    }

    /// Forwards [`PartitionController::on_insert`] without a virtual
    /// call for the shipped controllers.
    #[inline]
    pub fn on_insert(&mut self, tid: usize) {
        dispatch!(self, c => c.on_insert(tid))
    }

    /// Forwards [`PartitionController::on_evict`] without a virtual
    /// call for the shipped controllers.
    #[inline]
    pub fn on_evict(&mut self, tid: usize) {
        dispatch!(self, c => c.on_evict(tid))
    }

    /// Forwards [`PartitionController::cap`].
    #[inline]
    pub fn cap(&self, tid: usize) -> Option<usize> {
        dispatch!(self, c => c.cap(tid))
    }

    /// Forwards [`PartitionController::caps`].
    pub fn caps(&self) -> Option<&[usize]> {
        dispatch!(self, c => c.caps())
    }

    /// Forwards [`PartitionController::way_counts`].
    pub fn way_counts(&self) -> Option<&[usize]> {
        dispatch!(self, c => c.way_counts())
    }

    /// Forwards [`PartitionController::way_owner`] without a virtual
    /// call for the shipped controllers.
    #[inline]
    pub fn way_owner(&self, way: usize) -> Option<usize> {
        dispatch!(self, c => c.way_owner(way))
    }

    /// Forwards [`PartitionController::epoch_cycles`].
    pub fn epoch_cycles(&self) -> Option<u64> {
        dispatch!(self, c => c.epoch_cycles())
    }

    /// Forwards [`PartitionController::epoch_due`] without a virtual
    /// call for the shipped controllers (checked every cycle by the
    /// epoch stage).
    #[inline]
    pub fn epoch_due(&self, now: u64) -> bool {
        dispatch!(self, c => c.epoch_due(now))
    }

    /// Forwards [`PartitionController::epoch_boundary`] (cold path:
    /// fires once per epoch).
    pub fn epoch_boundary(&mut self, cx: &EpochContext<'_>) -> Option<EpochPlan> {
        dispatch!(self, c => c.epoch_boundary(cx))
    }

    /// Forwards [`PartitionController::audit`].
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` when the controller's quota state is
    /// inconsistent (see [`PartitionController::audit`]).
    pub fn audit(&self, entries: usize, ways: usize) -> Result<(), String> {
        dispatch!(self, c => c.audit(entries, ways))
    }
}

impl From<Box<dyn PartitionController>> for AnyController {
    /// Wraps a boxed controller in the escape-hatch variant.
    fn from(controller: Box<dyn PartitionController>) -> Self {
        AnyController::Custom(controller)
    }
}

/// Shared epoch pacing for the dynamic controllers: fixed-period
/// (byte-identical to the pre-controller `now % epoch_cycles` gate) or
/// [`EpochAdapt`]-driven variable-length epochs.
#[derive(Clone, Debug)]
struct EpochPacer {
    /// The configured base period.
    base: u64,
    adapt: Option<EpochAdapt>,
    /// Current period (== `base` when not adapting).
    len: u64,
    /// Next boundary cycle (adaptive mode only).
    next: u64,
    /// The allocation installed at the previous boundary, for the
    /// agreement test.
    last_alloc: Option<Vec<usize>>,
}

impl EpochPacer {
    fn new(epoch_cycles: u64, adapt: Option<EpochAdapt>) -> Self {
        let len = match adapt {
            Some(a) => epoch_cycles.clamp(a.min_cycles, a.max_cycles),
            None => epoch_cycles,
        };
        Self {
            base: epoch_cycles,
            adapt,
            len,
            next: len,
            last_alloc: None,
        }
    }

    fn due(&self, now: u64) -> bool {
        match self.adapt {
            // The fixed-period gate the pre-controller epoch stage
            // used, verbatim: never at cycle 0, then every `base`th
            // cycle.
            None => now != 0 && now.is_multiple_of(self.base),
            Some(_) => now != 0 && now == self.next,
        }
    }

    /// Records the allocation a boundary installed and schedules the
    /// next boundary: agreement within the hysteresis band doubles the
    /// period, disagreement halves it, both clamped to `[min, max]`.
    fn advance(&mut self, alloc: &[usize]) {
        let Some(a) = self.adapt else {
            return;
        };
        let agreed = self
            .last_alloc
            .as_deref()
            .is_some_and(|prev| l1_distance(prev, alloc) <= a.band);
        self.len = if agreed {
            self.len.saturating_mul(2).clamp(a.min_cycles, a.max_cycles)
        } else {
            (self.len / 2).clamp(a.min_cycles, a.max_cycles)
        };
        self.last_alloc = Some(alloc.to_vec());
        self.next += self.len;
    }
}

fn l1_distance(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).sum()
}

/// [`CachePartition::Shared`] (and every single-thread cache): all ways
/// compete freely, no quotas, no epochs.
#[derive(Clone, Debug)]
pub struct SharedController {
    ways: usize,
}

impl PartitionController for SharedController {
    fn admit(&self, _tid: usize, _occupancy: &[usize]) -> bool {
        true
    }
    fn victim_ways(&self, _tid: usize) -> Range<usize> {
        0..self.ways
    }
    fn clone_box(&self) -> Box<dyn PartitionController> {
        Box::new(self.clone())
    }
}

/// [`CachePartition::WayPartition`]: thread `t` statically owns ways
/// `[t·w, (t+1)·w)` of every set.
#[derive(Clone, Debug)]
pub struct WayPartitionController {
    ways_per_thread: usize,
}

impl PartitionController for WayPartitionController {
    fn admit(&self, _tid: usize, _occupancy: &[usize]) -> bool {
        true
    }
    fn victim_ways(&self, tid: usize) -> Range<usize> {
        tid * self.ways_per_thread..(tid + 1) * self.ways_per_thread
    }
    fn way_owner(&self, way: usize) -> Option<usize> {
        Some(way / self.ways_per_thread)
    }
    fn clone_box(&self) -> Box<dyn PartitionController> {
        Box::new(self.clone())
    }
}

/// [`CachePartition::OccupancyCap`]: shared ways, a static
/// `entries / nthreads` live-entry cap per thread.
#[derive(Clone, Debug)]
pub struct OccupancyCapController {
    ways: usize,
    cap: usize,
}

impl PartitionController for OccupancyCapController {
    fn admit(&self, tid: usize, occupancy: &[usize]) -> bool {
        occupancy[tid] < self.cap
    }
    fn victim_ways(&self, _tid: usize) -> Range<usize> {
        0..self.ways
    }
    fn cap(&self, _tid: usize) -> Option<usize> {
        Some(self.cap)
    }
    fn clone_box(&self) -> Box<dyn PartitionController> {
        Box::new(self.clone())
    }
}

/// [`CachePartition::DynamicCap`]: shared ways, per-thread quotas
/// recomputed from the utility monitors every epoch.
#[derive(Clone, Debug)]
pub struct DynamicCapController {
    ways: usize,
    min_cap: usize,
    caps: Vec<usize>,
    pacer: EpochPacer,
}

impl PartitionController for DynamicCapController {
    fn admit(&self, tid: usize, occupancy: &[usize]) -> bool {
        occupancy[tid] < self.caps[tid]
    }
    fn victim_ways(&self, _tid: usize) -> Range<usize> {
        0..self.ways
    }
    fn cap(&self, tid: usize) -> Option<usize> {
        Some(self.caps[tid])
    }
    fn caps(&self) -> Option<&[usize]> {
        Some(&self.caps)
    }
    fn epoch_cycles(&self) -> Option<u64> {
        Some(self.pacer.base)
    }
    fn epoch_due(&self, now: u64) -> bool {
        self.pacer.due(now)
    }
    fn epoch_boundary(&mut self, cx: &EpochContext<'_>) -> Option<EpochPlan> {
        // Quota floors guarantee feasibility: every thread keeps at
        // least `max(1, pinned entries)`, raised toward the configured
        // `min_cap` in thread order while budget remains.
        let mut floors: Vec<usize> = cx.pinned.iter().map(|&p| p.max(1)).collect();
        let mut extra = cx.entries - floors.iter().sum::<usize>();
        for f in floors.iter_mut() {
            let want = self.min_cap.saturating_sub(*f).min(extra);
            *f += want;
            extra -= want;
        }
        let new_caps = cx.monitor.repartition(cx.entries, &floors);
        self.caps.clone_from(&new_caps);
        self.pacer.advance(&new_caps);
        Some(EpochPlan::Caps(new_caps))
    }
    fn audit(&self, entries: usize, _ways: usize) -> Result<(), String> {
        if self.caps.iter().sum::<usize>() != entries {
            return Err(format!(
                "dynamic caps {:?} do not sum to {entries} entries",
                self.caps
            ));
        }
        if let Some(t) = self.caps.iter().position(|&c| c == 0) {
            return Err(format!("thread {t} has a zero dynamic cap"));
        }
        Ok(())
    }
    fn clone_box(&self) -> Box<dyn PartitionController> {
        Box::new(self.clone())
    }
}

/// [`CachePartition::DynamicWay`]: contiguous per-thread way blocks (in
/// thread order), reassigned from the utility monitors every epoch.
#[derive(Clone, Debug)]
pub struct DynamicWayController {
    /// Ways owned per thread; thread `t`'s block starts at the prefix
    /// sum of `counts[..t]`.
    counts: Vec<usize>,
    pacer: EpochPacer,
}

impl DynamicWayController {
    fn start(&self, tid: usize) -> usize {
        self.counts[..tid].iter().sum()
    }
}

impl PartitionController for DynamicWayController {
    fn admit(&self, _tid: usize, _occupancy: &[usize]) -> bool {
        true
    }
    fn victim_ways(&self, tid: usize) -> Range<usize> {
        let lo = self.start(tid);
        lo..lo + self.counts[tid]
    }
    fn way_counts(&self) -> Option<&[usize]> {
        Some(&self.counts)
    }
    fn way_owner(&self, way: usize) -> Option<usize> {
        let mut end = 0;
        for (t, &c) in self.counts.iter().enumerate() {
            end += c;
            if way < end {
                return Some(t);
            }
        }
        None
    }
    fn epoch_cycles(&self) -> Option<u64> {
        Some(self.pacer.base)
    }
    fn epoch_due(&self, now: u64) -> bool {
        self.pacer.due(now)
    }
    fn epoch_boundary(&mut self, cx: &EpochContext<'_>) -> Option<EpochPlan> {
        // Way floors: every thread keeps at least one way, and enough
        // ways to hold its pinned entries in the fullest set (pinned
        // entries are confined to the thread's block in every set, so
        // `pinned_per_set_max[t] <= counts[t]` and the floors always
        // fit — by induction the counts stay >= 1 and conserve the
        // associativity at every boundary).
        let floors: Vec<usize> = cx.pinned_per_set_max.iter().map(|&p| p.max(1)).collect();
        let new_counts = cx.monitor.repartition_ways(cx.ways, cx.sets, &floors);
        self.counts.clone_from(&new_counts);
        self.pacer.advance(&new_counts);
        Some(EpochPlan::Ways(new_counts))
    }
    fn audit(&self, _entries: usize, ways: usize) -> Result<(), String> {
        if self.counts.iter().sum::<usize>() != ways {
            return Err(format!(
                "dynamic way counts {:?} do not sum to {ways} ways",
                self.counts
            ));
        }
        if let Some(t) = self.counts.iter().position(|&c| c == 0) {
            return Err(format!("thread {t} owns zero ways"));
        }
        Ok(())
    }
    fn clone_box(&self) -> Box<dyn PartitionController> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysReg;

    fn cfg(partition: CachePartition) -> RegCacheConfig {
        let mut c = RegCacheConfig::use_based(16, 4);
        c.partition = partition;
        c
    }

    #[test]
    fn single_thread_always_gets_the_shared_controller() {
        let c = controller_for(&cfg(CachePartition::OccupancyCap), 1);
        assert!(c.admit(0, &[999]));
        assert_eq!(c.victim_ways(0), 0..4);
        assert_eq!(c.cap(0), None);
        assert_eq!(c.epoch_cycles(), None);
        assert!(!c.epoch_due(128));
    }

    #[test]
    fn way_partition_controller_confines_and_names_owners() {
        let c = controller_for(&cfg(CachePartition::WayPartition), 2);
        assert_eq!(c.victim_ways(0), 0..2);
        assert_eq!(c.victim_ways(1), 2..4);
        assert_eq!(c.way_owner(1), Some(0));
        assert_eq!(c.way_owner(2), Some(1));
        assert!(c.admit(0, &[16, 0]));
    }

    #[test]
    fn occupancy_cap_controller_admits_under_the_static_cap() {
        let c = controller_for(&cfg(CachePartition::OccupancyCap), 2);
        assert!(c.admit(0, &[7, 0]));
        assert!(!c.admit(0, &[8, 0]));
        assert_eq!(c.cap(1), Some(8));
        assert_eq!(c.victim_ways(1), 0..4);
    }

    #[test]
    fn dynamic_cap_controller_paces_fixed_epochs_like_the_modulo_gate() {
        let c = controller_for(
            &cfg(CachePartition::DynamicCap {
                epoch_cycles: 64,
                min_cap: 1,
            }),
            2,
        );
        assert_eq!(c.epoch_cycles(), Some(64));
        assert!(!c.epoch_due(0));
        assert!(!c.epoch_due(63));
        assert!(c.epoch_due(64));
        assert!(c.epoch_due(128));
        assert_eq!(c.caps(), Some(&[8usize, 8][..]));
    }

    #[test]
    fn dynamic_way_controller_reassigns_toward_reuse() {
        let config = cfg(CachePartition::DynamicWay { epoch_cycles: 64 });
        let mut c = controller_for(&config, 2);
        assert_eq!(c.way_counts(), Some(&[2usize, 2][..]));
        // Thread 0 shows reuse over 4 hot tags (sampled set 0 of 4).
        let mut m = UtilityMonitor::new(16, 2);
        for round in 0..3 {
            for p in 0..4u16 {
                if round == 0 {
                    m.touch(0, PhysReg(p), 0);
                } else {
                    m.access(0, PhysReg(p), 0);
                }
            }
        }
        let cx = EpochContext {
            monitor: &m,
            pinned: &[0, 0],
            pinned_per_set_max: &[0, 0],
            entries: 16,
            ways: 4,
            sets: 4,
        };
        let plan = c.epoch_boundary(&cx).expect("dynamic controllers plan");
        let EpochPlan::Ways(counts) = plan else {
            panic!("DynamicWay plans ways, got {plan:?}");
        };
        assert_eq!(counts.iter().sum::<usize>(), 4);
        assert!(counts[0] > counts[1], "reuse thread wins ways: {counts:?}");
        assert_eq!(c.way_counts(), Some(&counts[..]));
        assert_eq!(c.way_owner(0), Some(0));
        assert_eq!(c.way_owner(3), Some(1));
        assert_eq!(c.victim_ways(1), counts[0]..4);
        c.audit(16, 4).unwrap();
    }

    #[test]
    fn way_floors_cover_pinned_entries() {
        let config = cfg(CachePartition::DynamicWay { epoch_cycles: 64 });
        let mut c = controller_for(&config, 2);
        // Thread 1 pins two entries in one set; thread 0 shows reuse.
        let mut m = UtilityMonitor::new(16, 2);
        for round in 0..3 {
            for p in 0..6u16 {
                if round == 0 {
                    m.touch(0, PhysReg(p), 0);
                } else {
                    m.access(0, PhysReg(p), 0);
                }
            }
        }
        let cx = EpochContext {
            monitor: &m,
            pinned: &[0, 3],
            pinned_per_set_max: &[0, 2],
            entries: 16,
            ways: 4,
            sets: 4,
        };
        let Some(EpochPlan::Ways(counts)) = c.epoch_boundary(&cx) else {
            panic!("expected a way plan");
        };
        assert!(counts[1] >= 2, "floor must cover pins: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 4);
    }

    #[test]
    fn adaptive_pacer_lengthens_on_agreement_and_shortens_on_change() {
        let mut p = EpochPacer::new(
            64,
            Some(EpochAdapt {
                min_cycles: 16,
                max_cycles: 256,
                band: 1,
            }),
        );
        assert!(p.due(64), "first boundary at the base period");
        assert!(!p.due(63));
        // First boundary: no previous allocation, counts as
        // disagreement — the period halves to 32.
        p.advance(&[8, 8]);
        assert_eq!(p.len, 32);
        assert!(p.due(96));
        // Agreement within the band doubles, clamped at max.
        p.advance(&[8, 8]);
        assert_eq!(p.len, 64);
        p.advance(&[8, 7]);
        assert_eq!(p.len, 128);
        p.advance(&[8, 7]);
        p.advance(&[8, 7]);
        assert_eq!(p.len, 256, "clamped at max_cycles");
        // A phase change (outside the band) halves.
        p.advance(&[14, 2]);
        assert_eq!(p.len, 128);
        for i in 0..8 {
            // Keep flip-flopping so every boundary disagrees.
            p.advance(if i % 2 == 0 { &[2, 14] } else { &[14, 2] });
        }
        assert_eq!(p.len, 16, "clamped at min_cycles");
    }

    #[test]
    #[should_panic(expected = "epoch_adapt requires a dynamic partition")]
    fn epoch_adapt_rejects_static_partitions() {
        let mut c = cfg(CachePartition::WayPartition);
        c.epoch_adapt = Some(EpochAdapt::default_band());
        let _ = controller_for(&c, 2);
    }

    #[test]
    #[should_panic(expected = "1 <= min_cycles <= max_cycles")]
    fn epoch_adapt_rejects_an_empty_range() {
        let mut c = cfg(CachePartition::DynamicWay { epoch_cycles: 64 });
        c.epoch_adapt = Some(EpochAdapt {
            min_cycles: 128,
            max_cycles: 64,
            band: 1,
        });
        let _ = controller_for(&c, 2);
    }

    #[test]
    #[should_panic(expected = "DynamicWay needs ways divisible by nthreads")]
    fn dynamic_way_rejects_indivisible_ways() {
        let mut c = RegCacheConfig::use_based(9, 3);
        c.partition = CachePartition::DynamicWay { epoch_cycles: 64 };
        let _ = controller_for(&c, 2);
    }

    #[test]
    fn controllers_clone_behind_the_box() {
        let c = controller_for(
            &cfg(CachePartition::DynamicCap {
                epoch_cycles: 64,
                min_cap: 2,
            }),
            4,
        );
        let d = c.clone();
        assert_eq!(c.caps(), d.caps());
        assert_eq!(c.victim_ways(2), d.victim_ways(2));
    }
}
