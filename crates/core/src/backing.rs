use crate::PhysReg;

/// Access tallies for the backing register file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackingStats {
    /// Reads (one per register-cache miss).
    pub reads: u64,
    /// Writes (every produced value writes the backing file).
    pub writes: u64,
    /// Cycles of extra delay caused by read-port contention.
    pub port_contention_cycles: u64,
    /// Cycles of extra delay waiting for the producer's backing-file
    /// write to complete.
    pub write_wait_cycles: u64,
}

/// The multi-cycle backing register file behind a register cache
/// (§2.2 of the paper).
///
/// Every produced value is written here (the cache may drop values; the
/// backing file may not). Because the cache filters almost all reads, a
/// *single* read port suffices; simultaneous misses arbitrate for it.
/// A miss read must also wait until the producer's write has completed.
///
/// # Examples
///
/// ```
/// use ubrc_core::{BackingFile, PhysReg};
///
/// let mut bf = BackingFile::new(2, 2, 512);
/// bf.write(PhysReg(4), 100);          // write completes at cycle 102
/// let ready = bf.read(PhysReg(4), 101);
/// assert_eq!(ready, 104);             // waits for the write, then 2-cycle read
/// ```
#[derive(Clone, Debug)]
pub struct BackingFile {
    read_latency: u32,
    write_latency: u32,
    write_done: Vec<u64>,
    read_port_free: Vec<u64>,
    /// Modeled per-word parity errors: set by the fault injector,
    /// cleared by the next write of the word (or a recovery scrub).
    parity_bad: Vec<bool>,
    stats: BackingStats,
}

impl BackingFile {
    /// Creates a backing file with the given read/write latencies (the
    /// paper's default is 2 cycles each) for `num_pregs` registers.
    pub fn new(read_latency: u32, write_latency: u32, num_pregs: usize) -> Self {
        Self::with_read_ports(read_latency, write_latency, num_pregs, 1)
    }

    /// Creates a backing file with `read_ports` shared read ports (the
    /// paper argues one suffices; the port ablation experiment checks
    /// that claim).
    ///
    /// # Panics
    ///
    /// Panics if `read_ports` is zero.
    pub fn with_read_ports(
        read_latency: u32,
        write_latency: u32,
        num_pregs: usize,
        read_ports: usize,
    ) -> Self {
        assert!(read_ports > 0, "need at least one read port");
        Self {
            read_latency,
            write_latency,
            write_done: vec![0; num_pregs],
            read_port_free: vec![0; read_ports],
            parity_bad: vec![false; num_pregs],
            stats: BackingStats::default(),
        }
    }

    /// Read latency in cycles.
    pub fn read_latency(&self) -> u32 {
        self.read_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BackingStats {
        &self.stats
    }

    /// Records the write of a produced value starting at `now`; the
    /// value becomes readable once the write completes.
    pub fn write(&mut self, preg: PhysReg, now: u64) {
        self.stats.writes += 1;
        self.write_done[preg.0 as usize] = now + self.write_latency as u64;
        // A full-word write replaces whatever bits were upset.
        self.parity_bad[preg.0 as usize] = false;
    }

    /// Fault-injection hook: flips a bit in the stored word, marking
    /// its modeled parity bad until the word is rewritten or scrubbed.
    /// Returns `false` when the word was already marked.
    pub fn corrupt_word(&mut self, preg: PhysReg) -> bool {
        let w = &mut self.parity_bad[preg.0 as usize];
        let landed = !*w;
        *w = true;
        landed
    }

    /// True when the word's modeled parity is clean.
    pub fn parity_ok(&self, preg: PhysReg) -> bool {
        !self.parity_bad[preg.0 as usize]
    }

    /// Recovery scrub after a detected parity error: the word is
    /// rewritten (by the machine-check handler's checkpoint restore in
    /// the timing model above), clearing the parity flag.
    pub fn scrub(&mut self, preg: PhysReg) {
        self.parity_bad[preg.0 as usize] = false;
    }

    /// Schedules a miss read issued at `now`. Returns the cycle at
    /// which the value is available to the consumer, accounting for the
    /// single read port and the producer's write completion (§5.2).
    pub fn read(&mut self, preg: PhysReg, now: u64) -> u64 {
        self.stats.reads += 1;
        let write_done = self.write_done[preg.0 as usize];
        // Arbitrate for the earliest-free read port.
        let port = self
            .read_port_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one port");
        let start = now.max(self.read_port_free[port]).max(write_done);
        self.stats.port_contention_cycles += start.saturating_sub(now.max(write_done));
        self.stats.write_wait_cycles += write_done.saturating_sub(now);
        // Each port is pipelined: busy for one cycle per read.
        self.read_port_free[port] = start + 1;
        start + self.read_latency as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_completes_is_unobstructed() {
        let mut bf = BackingFile::new(2, 2, 16);
        bf.write(PhysReg(1), 10); // done at 12
        assert_eq!(bf.read(PhysReg(1), 20), 22);
        assert_eq!(bf.stats().write_wait_cycles, 0);
    }

    #[test]
    fn read_waits_for_write_completion() {
        let mut bf = BackingFile::new(2, 2, 16);
        bf.write(PhysReg(1), 10); // done at 12
        assert_eq!(bf.read(PhysReg(1), 10), 14);
        assert_eq!(bf.stats().write_wait_cycles, 2);
    }

    #[test]
    fn simultaneous_misses_serialize_on_the_port() {
        let mut bf = BackingFile::new(2, 2, 16);
        bf.write(PhysReg(1), 0);
        bf.write(PhysReg(2), 0);
        bf.write(PhysReg(3), 0);
        assert_eq!(bf.read(PhysReg(1), 10), 12);
        assert_eq!(bf.read(PhysReg(2), 10), 13); // port busy at 10
        assert_eq!(bf.read(PhysReg(3), 10), 14);
        assert_eq!(bf.stats().port_contention_cycles, 3);
        assert_eq!(bf.stats().reads, 3);
    }

    #[test]
    fn extra_read_ports_remove_contention() {
        let mut bf = BackingFile::with_read_ports(2, 2, 16, 2);
        bf.write(PhysReg(1), 0);
        bf.write(PhysReg(2), 0);
        bf.write(PhysReg(3), 0);
        assert_eq!(bf.read(PhysReg(1), 10), 12);
        assert_eq!(bf.read(PhysReg(2), 10), 12); // second port
        assert_eq!(bf.read(PhysReg(3), 10), 13); // both busy
        assert_eq!(bf.stats().port_contention_cycles, 1);
    }

    #[test]
    #[should_panic(expected = "at least one read port")]
    fn zero_ports_rejected() {
        let _ = BackingFile::with_read_ports(2, 2, 4, 0);
    }

    #[test]
    fn parity_marks_clear_on_write_or_scrub() {
        let mut bf = BackingFile::new(2, 2, 16);
        assert!(bf.parity_ok(PhysReg(7)));
        assert!(bf.corrupt_word(PhysReg(7)));
        assert!(!bf.corrupt_word(PhysReg(7)), "already marked");
        assert!(!bf.parity_ok(PhysReg(7)));
        bf.write(PhysReg(7), 5);
        assert!(bf.parity_ok(PhysReg(7)), "writes repair the word");
        bf.corrupt_word(PhysReg(7));
        bf.scrub(PhysReg(7));
        assert!(bf.parity_ok(PhysReg(7)));
    }

    #[test]
    fn different_latencies_respected() {
        let mut bf = BackingFile::new(5, 3, 16);
        bf.write(PhysReg(0), 100); // done 103
        assert_eq!(bf.read(PhysReg(0), 100), 108);
        assert_eq!(bf.read_latency(), 5);
    }
}
