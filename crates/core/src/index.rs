use crate::PhysReg;

/// How register-cache set indices are chosen for new values (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexPolicy {
    /// Standard indexing: low-order bits of the physical register tag.
    /// The only option that is *not* decoupled.
    Standard,
    /// Decoupled: sets assigned sequentially as instructions rename.
    RoundRobin,
    /// Decoupled: the set with the minimum sum of predicted uses among
    /// values currently assigned to it.
    Minimum,
    /// Decoupled: round-robin, but sets holding more than
    /// `associativity/2` high-use (predicted degree > 5) values are
    /// skipped.
    FilteredRoundRobin,
    /// Decoupled: the least-subscribed set — the one with the fewest
    /// values currently assigned to it, regardless of their predicted
    /// degrees. Where [`IndexPolicy::Minimum`] balances predicted
    /// *work*, min-load balances raw *population*, so a burst of
    /// unknown-degree values cannot crowd one set.
    MinLoad,
}

/// Rename-time set assignment for decoupled indexing.
///
/// One assigner instance lives beside the rename map. At rename, the
/// destination's cache set is chosen by [`IndexAssigner::assign`] and
/// recorded in the map alongside the physical register; when the
/// physical register is freed, [`IndexAssigner::release`] retires the
/// assignment so the policies' bookkeeping stays balanced.
///
/// # Examples
///
/// ```
/// use ubrc_core::{IndexAssigner, IndexPolicy, PhysReg};
///
/// let mut a = IndexAssigner::new(IndexPolicy::RoundRobin, 32, 2);
/// let s0 = a.assign(PhysReg(100), 1);
/// let s1 = a.assign(PhysReg(101), 1);
/// assert_eq!((s0, s1), (0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct IndexAssigner {
    policy: IndexPolicy,
    sets: usize,
    cursor: usize,
    /// Minimum policy: per-set sum of predicted uses.
    use_sums: Vec<u64>,
    /// Min-load policy: per-set count of live assignments (maintained
    /// for every policy; only min-load reads it).
    occupancy: Vec<u32>,
    /// Filtered round-robin: per-set count of high-use values.
    high_use_counts: Vec<u32>,
    /// Filtered round-robin: predicted degree above which a value is
    /// "high-use".
    high_use_degree: u8,
    /// Filtered round-robin: sets with more high-use values than this
    /// are skipped.
    skip_above: u32,
}

/// Predicted degree above which a value counts as "high-use" for the
/// filtered round-robin policy (the paper found > 5 works well).
pub const HIGH_USE_THRESHOLD: u8 = 5;

impl IndexAssigner {
    /// Creates an assigner for a cache with `sets` sets of `ways`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(policy: IndexPolicy, sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "sets must be positive");
        assert!(ways > 0, "ways must be positive");
        Self {
            policy,
            sets,
            cursor: 0,
            use_sums: vec![0; sets],
            occupancy: vec![0; sets],
            high_use_counts: vec![0; sets],
            high_use_degree: HIGH_USE_THRESHOLD,
            skip_above: (ways / 2) as u32,
        }
    }

    /// Overrides the filtered round-robin parameters (the paper's
    /// defaults are high-use degree > 5 and a skip threshold of half
    /// the associativity). Used by the ablation experiments.
    pub fn set_filter_params(&mut self, high_use_degree: u8, skip_above: u32) {
        self.high_use_degree = high_use_degree;
        self.skip_above = skip_above;
    }

    /// The policy in use.
    pub fn policy(&self) -> IndexPolicy {
        self.policy
    }

    /// Chooses the cache set for a value produced into `preg` with
    /// `predicted_uses` predicted consumers. Called once per renamed
    /// destination.
    pub fn assign(&mut self, preg: PhysReg, predicted_uses: u8) -> u16 {
        let set = match self.policy {
            IndexPolicy::Standard => preg.0 as usize % self.sets,
            IndexPolicy::RoundRobin => {
                let s = self.cursor;
                self.cursor = (self.cursor + 1) % self.sets;
                s
            }
            IndexPolicy::Minimum => {
                // Scan from a rotating start so ties do not cluster
                // consecutive values into the lowest-numbered set.
                let start = self.cursor;
                let mut best = start;
                for k in 0..self.sets {
                    let s = (start + k) % self.sets;
                    if self.use_sums[s] < self.use_sums[best] {
                        best = s;
                    }
                }
                self.cursor = (start + 1) % self.sets;
                best
            }
            IndexPolicy::FilteredRoundRobin => {
                let threshold = self.skip_above;
                let mut s = self.cursor;
                let mut picked = None;
                for _ in 0..self.sets {
                    if self.high_use_counts[s] <= threshold {
                        picked = Some(s);
                        break;
                    }
                    s = (s + 1) % self.sets;
                }
                // All sets saturated with high-use values: fall back to
                // the plain round-robin position.
                let s = picked.unwrap_or(self.cursor);
                self.cursor = (s + 1) % self.sets;
                s
            }
            IndexPolicy::MinLoad => {
                // Same rotating-start tie-break as `Minimum`, scanning
                // live-assignment counts instead of predicted-use sums.
                let start = self.cursor;
                let mut best = start;
                for k in 0..self.sets {
                    let s = (start + k) % self.sets;
                    if self.occupancy[s] < self.occupancy[best] {
                        best = s;
                    }
                }
                self.cursor = (start + 1) % self.sets;
                best
            }
        };
        self.use_sums[set] += predicted_uses as u64;
        self.occupancy[set] += 1;
        if predicted_uses > self.high_use_degree {
            self.high_use_counts[set] += 1;
        }
        set as u16
    }

    /// Retires an assignment when its physical register is freed.
    /// `predicted_uses` must be the value passed to the matching
    /// [`IndexAssigner::assign`].
    pub fn release(&mut self, set: u16, predicted_uses: u8) {
        let set = set as usize % self.sets;
        self.use_sums[set] = self.use_sums[set].saturating_sub(predicted_uses as u64);
        self.occupancy[set] = self.occupancy[set].saturating_sub(1);
        if predicted_uses > self.high_use_degree {
            self.high_use_counts[set] = self.high_use_counts[set].saturating_sub(1);
        }
    }

    /// Number of sets being assigned over.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_indexing_uses_preg_low_bits() {
        let mut a = IndexAssigner::new(IndexPolicy::Standard, 32, 2);
        assert_eq!(a.assign(PhysReg(5), 1), 5);
        assert_eq!(a.assign(PhysReg(37), 1), 5);
        assert_eq!(a.assign(PhysReg(64), 1), 0);
    }

    #[test]
    fn round_robin_cycles_through_sets() {
        let mut a = IndexAssigner::new(IndexPolicy::RoundRobin, 4, 2);
        let sets: Vec<u16> = (0..6).map(|i| a.assign(PhysReg(i), 1)).collect();
        assert_eq!(sets, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn minimum_picks_least_loaded_set() {
        let mut a = IndexAssigner::new(IndexPolicy::Minimum, 2, 2);
        assert_eq!(a.assign(PhysReg(0), 5), 0); // sums [5, 0]
        assert_eq!(a.assign(PhysReg(1), 1), 1); // sums [5, 1]
        assert_eq!(a.assign(PhysReg(2), 1), 1); // sums [5, 2]
        assert_eq!(a.assign(PhysReg(3), 9), 1); // sums [5, 11]
        assert_eq!(a.assign(PhysReg(4), 1), 0);
    }

    #[test]
    fn minimum_release_rebalances() {
        let mut a = IndexAssigner::new(IndexPolicy::Minimum, 2, 2);
        let s = a.assign(PhysReg(0), 7); // sums [7, 0]
        assert_eq!(s, 0);
        assert_eq!(a.assign(PhysReg(1), 1), 1); // sums [7, 1]
        a.release(0, 7); // sums [0, 1]
        assert_eq!(a.assign(PhysReg(2), 1), 0);
    }

    #[test]
    fn filtered_round_robin_skips_high_use_sets() {
        // 2-way cache -> threshold = 1 high-use value per set.
        let mut a = IndexAssigner::new(IndexPolicy::FilteredRoundRobin, 3, 2);
        // Two high-use values land in set 0 (count 2 > threshold 1).
        assert_eq!(a.assign(PhysReg(0), 7), 0);
        assert_eq!(a.assign(PhysReg(1), 7), 1);
        assert_eq!(a.assign(PhysReg(2), 7), 2);
        assert_eq!(a.assign(PhysReg(3), 7), 0); // counts now [2,1,1]
                                                // Set 0 exceeds the threshold; round-robin cursor (1) is fine.
        assert_eq!(a.assign(PhysReg(4), 1), 1);
        assert_eq!(a.assign(PhysReg(5), 1), 2);
        // Cursor wraps to 0, which is saturated -> skipped to 1.
        assert_eq!(a.assign(PhysReg(6), 1), 1);
    }

    #[test]
    fn filtered_round_robin_falls_back_when_all_sets_saturated() {
        let mut a = IndexAssigner::new(IndexPolicy::FilteredRoundRobin, 2, 2);
        for i in 0..4 {
            a.assign(PhysReg(i), 7);
        }
        // Both sets now hold 2 high-use values (> threshold 1); the
        // assigner must still produce a set.
        let s = a.assign(PhysReg(9), 7);
        assert!(s < 2);
    }

    #[test]
    fn filtered_release_unskips_sets() {
        let mut a = IndexAssigner::new(IndexPolicy::FilteredRoundRobin, 2, 2);
        assert_eq!(a.assign(PhysReg(0), 7), 0);
        assert_eq!(a.assign(PhysReg(1), 7), 1);
        assert_eq!(a.assign(PhysReg(2), 7), 0); // set 0 count 2 (saturated)
        assert_eq!(a.assign(PhysReg(3), 7), 1); // set 1 count 2 (saturated)
        a.release(0, 7);
        a.release(0, 7); // set 0 count back to 0
        let s = a.assign(PhysReg(4), 1);
        assert_eq!(s, 0);
    }

    #[test]
    fn low_use_values_do_not_count_toward_filtering() {
        let mut a = IndexAssigner::new(IndexPolicy::FilteredRoundRobin, 2, 2);
        for i in 0..10 {
            // Degree 5 is NOT high-use (threshold is > 5).
            a.assign(PhysReg(i), 5);
        }
        assert_eq!(a.high_use_counts, vec![0, 0]);
    }

    #[test]
    fn min_load_picks_least_subscribed_set() {
        let mut a = IndexAssigner::new(IndexPolicy::MinLoad, 2, 2);
        // Predicted degrees are irrelevant: only population counts.
        assert_eq!(a.assign(PhysReg(0), 9), 0); // occupancy [1, 0]
        assert_eq!(a.assign(PhysReg(1), 9), 1); // occupancy [1, 1]
        assert_eq!(a.assign(PhysReg(2), 1), 0); // tie -> rotating start
        assert_eq!(a.assign(PhysReg(3), 1), 1); // occupancy [2, 2]
        assert_eq!(a.assign(PhysReg(4), 1), 0);
    }

    #[test]
    fn min_load_release_rebalances() {
        let mut a = IndexAssigner::new(IndexPolicy::MinLoad, 2, 2);
        assert_eq!(a.assign(PhysReg(0), 1), 0); // occupancy [1, 0]
        assert_eq!(a.assign(PhysReg(1), 1), 1); // occupancy [1, 1]
        a.release(0, 1); // occupancy [0, 1]
        assert_eq!(a.assign(PhysReg(2), 1), 0);
        // After releasing every assignment the counts return to zero.
        a.release(0, 1);
        a.release(1, 1);
        assert_eq!(a.occupancy, vec![0, 0]);
    }

    #[test]
    fn release_saturates_at_zero() {
        let mut a = IndexAssigner::new(IndexPolicy::Minimum, 2, 2);
        a.release(0, 9); // never assigned; must not underflow
        assert_eq!(a.use_sums[0], 0);
    }
}
