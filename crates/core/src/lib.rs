//! Use-based register caching with decoupled indexing.
//!
//! This crate is the primary contribution of Butts & Sohi, *Use-Based
//! Register Caching with Decoupled Indexing* (ISCA 2004): the register
//! storage hierarchy of a wide, deeply-pipelined out-of-order core, built
//! from
//!
//! * [`RegisterCache`] — a small set-associative cache over the physical
//!   register file, with pluggable policies behind the object-safe
//!   [`InsertionDecider`] / [`ReplacementScorer`] traits (named at the
//!   configuration level by [`InsertionPolicy`] and
//!   [`ReplacementPolicy`]: write-all / non-bypass / use-based
//!   insertion, LRU / fewest-remaining-uses / expected-hit-count
//!   replacement), per-entry remaining-use counters with pinning, and
//!   miss classification (not-written / capacity / conflict) against a
//!   fully-associative shadow;
//! * [`IndexAssigner`] — decoupled indexing: register-cache set indices
//!   assigned at rename time, independent of the physical register tag,
//!   by one of four policies ([`IndexPolicy`]);
//! * [`UseTracker`] — the per-value remaining-use bookkeeping between
//!   rename and the cache write (the bypass window);
//! * [`PartitionController`] — the object-safe SMT partitioning layer
//!   (named at the configuration level by [`CachePartition`]): shared,
//!   static way/occupancy partitions, and the dynamic quota
//!   ([`CachePartition::DynamicCap`]) and whole-way
//!   ([`CachePartition::DynamicWay`]) controllers with optional
//!   adaptive epoch pacing ([`EpochAdapt`]);
//! * [`UtilityMonitor`] — per-thread shadow-tag utility monitors and
//!   the lookahead partitioners that recompute dynamic quotas and way
//!   maps at epoch boundaries, fed back into the policies through
//!   [`EpochFeedback`];
//! * [`BackingFile`] — the multi-cycle backing register file with its
//!   single shared read port and write-completion interlock;
//! * [`TwoLevelFile`] — the optimistic two-level register file baseline
//!   (Balasubramonian et al.) the paper compares against.
//!
//! The timing simulator (`ubrc-sim`) drives these structures cycle by
//! cycle; everything here is also directly usable (and tested) in
//! isolation.
//!
//! # Examples
//!
//! ```
//! use ubrc_core::{PhysReg, RegCacheConfig, RegisterCache};
//!
//! let mut cache = RegisterCache::new(RegCacheConfig::use_based(64, 2), 512);
//! let p = PhysReg(7);
//! cache.produce(p);
//! // Value written with 2 predicted uses remaining, no bypasses yet.
//! cache.write(p, 3, 2, false, 0, 100);
//! assert!(cache.read(p, 3, 101)); // hit; one use left
//! assert!(cache.read(p, 3, 102)); // hit; zero left (stays until evicted)
//! cache.free(p, 3, 110);
//! assert!(!cache.contains(p));
//! ```

#![warn(missing_docs)]

mod backing;
mod cache;
mod index;
pub mod monitor;
pub mod partition;
mod policy;
mod twolevel;
mod usetrack;

pub use backing::{BackingFile, BackingStats};
pub use cache::{EntryView, MissClass, RegCacheStats, RegisterCache, WriteOutcome};
pub use index::{IndexAssigner, IndexPolicy};
pub use monitor::UtilityMonitor;
pub use partition::{
    controller_for, AnyController, DynamicCapController, DynamicWayController, EpochContext,
    EpochPlan, OccupancyCapController, PartitionController, SharedController,
    WayPartitionController,
};
pub use policy::{
    AdaptiveUseThresholdInsertion, AnyInsertion, AnyScorer, CachePartition, EpochAdapt,
    EpochFeedback, ExpectedHitCountScorer, FewestUsesScorer, InsertionContext, InsertionDecider,
    InsertionPolicy, LruScorer, NonBypassInsertion, ProtectionConfig, RegCacheConfig,
    ReplacementPolicy, ReplacementScorer, UseBasedInsertion, VictimScore, VictimView,
    WriteAllInsertion, ADAPTIVE_THRESHOLD_MAX,
};
pub use twolevel::{TwoLevelConfig, TwoLevelFile, TwoLevelStats};
pub use usetrack::UseTracker;

/// A physical register identifier.
///
/// The paper's machine has 512 physical registers; the simulator
/// allocates them from a free list at rename.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl std::fmt::Display for PhysReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}
