use crate::PhysReg;
use std::collections::VecDeque;

/// Configuration of the two-level register file baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoLevelConfig {
    /// L1 register file entries (the paper compares an N-entry cache
    /// against an N+32-entry L1).
    pub l1_entries: usize,
    /// Transfers begin when the free-register count drops below this
    /// threshold (avoids high recovery penalties; §2.1).
    pub free_threshold: usize,
    /// L1↔L2 transfer bandwidth in registers per cycle (the paper's
    /// optimistic version uses 4; the ablation drops it to 2).
    pub transfers_per_cycle: u32,
    /// L2 register file latency (only observed during recovery).
    pub l2_latency: u32,
}

impl TwoLevelConfig {
    /// The paper's optimistic configuration for a given L1 size.
    pub fn optimistic(l1_entries: usize) -> Self {
        Self {
            l1_entries,
            free_threshold: l1_entries / 4,
            transfers_per_cycle: 4,
            l2_latency: 2,
        }
    }
}

/// Statistics for the two-level register file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoLevelStats {
    /// Values transferred from L1 to L2.
    pub transfers: u64,
    /// Rename-side allocation failures (each is a rename stall cycle
    /// cause).
    pub alloc_failures: u64,
    /// Mis-speculation recovery events that required L2→L1 copies.
    pub recoveries: u64,
    /// Registers copied back during recoveries.
    pub recovered_regs: u64,
}

/// The optimistic two-level register file of Balasubramonian et al.,
/// with the paper's four modifications (§5.5): 4-regs/cycle L1↔L2
/// bandwidth, explicit recovery transfers, infinite L2, and a unified
/// int/FP file.
///
/// Values move from the L1 file to the L2 when (a) their architectural
/// register has been reassigned, (b) all renamed consumers have read
/// them, and (c) the free-register count is below a threshold. Rename
/// stalls when no L1 register is free. On a mis-speculation, values
/// moved while their reassigner was still speculative must be copied
/// back (modeled via the in-order retirement boundary — see DESIGN.md
/// for the substitution rationale).
///
/// # Examples
///
/// ```
/// use ubrc_core::{PhysReg, TwoLevelConfig, TwoLevelFile};
///
/// let mut f = TwoLevelFile::new(TwoLevelConfig::optimistic(96), 512);
/// assert!(f.try_allocate(PhysReg(0)));
/// assert_eq!(f.free_count(), 95);
/// ```
#[derive(Clone, Debug)]
pub struct TwoLevelFile {
    config: TwoLevelConfig,
    free: usize,
    resident: Vec<bool>,
    allocated: Vec<bool>,
    /// Dead-eligible values awaiting transfer: (preg, reassigner seq).
    eligible: VecDeque<(PhysReg, u64)>,
    /// Values moved to L2: reassigner seq, while the value's storage is
    /// still live.
    moved: Vec<Option<u64>>,
    stats: TwoLevelStats,
}

impl TwoLevelFile {
    /// Creates an empty file for a machine with `num_pregs` physical
    /// register names.
    pub fn new(config: TwoLevelConfig, num_pregs: usize) -> Self {
        Self {
            config,
            free: config.l1_entries,
            resident: vec![false; num_pregs],
            allocated: vec![false; num_pregs],
            eligible: VecDeque::new(),
            moved: vec![None; num_pregs],
            stats: TwoLevelStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TwoLevelConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TwoLevelStats {
        &self.stats
    }

    /// Free L1 registers.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Attempts to allocate an L1 register at rename. Returns `false`
    /// (and records a stall) when none is free.
    pub fn try_allocate(&mut self, preg: PhysReg) -> bool {
        if self.free == 0 {
            self.stats.alloc_failures += 1;
            return false;
        }
        self.free -= 1;
        self.resident[preg.0 as usize] = true;
        self.allocated[preg.0 as usize] = true;
        self.moved[preg.0 as usize] = None;
        true
    }

    /// Marks a value transfer-eligible: its architectural register was
    /// reassigned by the instruction with sequence number
    /// `reassign_seq`, and every renamed consumer has read it.
    pub fn mark_eligible(&mut self, preg: PhysReg, reassign_seq: u64) {
        if self.allocated[preg.0 as usize] && self.resident[preg.0 as usize] {
            self.eligible.push_back((preg, reassign_seq));
        }
    }

    /// One cycle of background transfer work: if the free count is
    /// below the threshold, moves up to `transfers_per_cycle` eligible
    /// values to the L2.
    pub fn tick(&mut self) {
        if self.free >= self.config.free_threshold {
            return;
        }
        for _ in 0..self.config.transfers_per_cycle {
            let Some((preg, seq)) = self.eligible.pop_front() else {
                break;
            };
            let i = preg.0 as usize;
            if !self.allocated[i] || !self.resident[i] {
                continue; // freed or already handled
            }
            self.resident[i] = false;
            self.moved[i] = Some(seq);
            self.free += 1;
            self.stats.transfers += 1;
        }
    }

    /// The value is now architecturally dead (its reassigner retired):
    /// release its storage entirely.
    pub fn release(&mut self, preg: PhysReg) {
        let i = preg.0 as usize;
        if !self.allocated[i] {
            return;
        }
        if self.resident[i] {
            self.resident[i] = false;
            self.free += 1;
        }
        self.allocated[i] = false;
        self.moved[i] = None;
    }

    /// True when the value is in the L1 file (normal reads require
    /// this; only recovery ever touches the L2).
    pub fn is_resident(&self, preg: PhysReg) -> bool {
        self.resident[preg.0 as usize]
    }

    /// Mis-speculation recovery: values moved to L2 while their
    /// reassigner was still speculative (sequence number greater than
    /// `retired_boundary`) must be copied back into the L1. Returns the
    /// number of copies; the caller converts that to stall cycles at
    /// the configured bandwidth.
    pub fn on_mispredict(&mut self, retired_boundary: u64) -> usize {
        let mut count = 0;
        for i in 0..self.moved.len() {
            if let Some(seq) = self.moved[i] {
                if seq > retired_boundary && self.allocated[i] {
                    self.moved[i] = None;
                    self.resident[i] = true;
                    self.free = self.free.saturating_sub(1);
                    count += 1;
                    // Still dead-eligible; re-queue so it can move again
                    // once the speculation boundary passes.
                    self.eligible.push_back((PhysReg(i as u16), seq));
                }
            }
        }
        if count > 0 {
            self.stats.recoveries += 1;
            self.stats.recovered_regs += count as u64;
        }
        count
    }

    /// Extra rename-stall cycles a recovery of `count` registers costs
    /// beyond a pipeline refill of `refill_cycles` (transfers overlap
    /// the refill; §5.5 footnote).
    pub fn recovery_stall(&self, count: usize, refill_cycles: u64) -> u64 {
        let cycles = (count as u64).div_ceil(self.config.transfers_per_cycle as u64);
        cycles.saturating_sub(refill_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(l1: usize) -> TwoLevelFile {
        TwoLevelFile::new(
            TwoLevelConfig {
                l1_entries: l1,
                free_threshold: l1, // always transfer when possible
                transfers_per_cycle: 4,
                l2_latency: 2,
            },
            64,
        )
    }

    #[test]
    fn allocation_exhausts_and_stalls() {
        let mut f = file(2);
        assert!(f.try_allocate(PhysReg(0)));
        assert!(f.try_allocate(PhysReg(1)));
        assert!(!f.try_allocate(PhysReg(2)));
        assert_eq!(f.stats().alloc_failures, 1);
    }

    #[test]
    fn transfer_frees_l1_slots() {
        let mut f = file(2);
        f.try_allocate(PhysReg(0));
        f.try_allocate(PhysReg(1));
        f.mark_eligible(PhysReg(0), 10);
        f.tick();
        assert_eq!(f.free_count(), 1);
        assert!(!f.is_resident(PhysReg(0)));
        assert!(f.is_resident(PhysReg(1)));
        assert_eq!(f.stats().transfers, 1);
        assert!(f.try_allocate(PhysReg(2)));
    }

    #[test]
    fn threshold_gates_transfers() {
        let mut f = TwoLevelFile::new(
            TwoLevelConfig {
                l1_entries: 8,
                free_threshold: 2,
                transfers_per_cycle: 4,
                l2_latency: 2,
            },
            64,
        );
        for p in 0..4 {
            f.try_allocate(PhysReg(p));
        }
        // free = 4 >= threshold 2: no transfers happen.
        f.mark_eligible(PhysReg(0), 1);
        f.tick();
        assert_eq!(f.stats().transfers, 0);
        for p in 4..8 {
            f.try_allocate(PhysReg(p));
        }
        // free = 0 < 2: now it moves.
        f.tick();
        assert_eq!(f.stats().transfers, 1);
    }

    #[test]
    fn bandwidth_limits_transfers_per_tick() {
        let mut f = file(8);
        for p in 0..8 {
            f.try_allocate(PhysReg(p));
            f.mark_eligible(PhysReg(p), p as u64);
        }
        f.tick();
        assert_eq!(f.stats().transfers, 4);
        f.tick();
        assert_eq!(f.stats().transfers, 8);
    }

    #[test]
    fn release_of_resident_and_moved_values() {
        let mut f = file(2);
        f.try_allocate(PhysReg(0));
        f.try_allocate(PhysReg(1));
        f.mark_eligible(PhysReg(0), 5);
        f.tick(); // preg 0 moved to L2
        f.release(PhysReg(0)); // moved value: no L1 slot to free
        assert_eq!(f.free_count(), 1);
        f.release(PhysReg(1)); // resident value: slot freed
        assert_eq!(f.free_count(), 2);
    }

    #[test]
    fn mispredict_recovers_speculatively_moved_values() {
        let mut f = file(4);
        for p in 0..4 {
            f.try_allocate(PhysReg(p));
        }
        f.mark_eligible(PhysReg(0), 100); // reassigner not yet retired
        f.mark_eligible(PhysReg(1), 50); // reassigner retired (<= boundary)
        f.tick();
        assert_eq!(f.stats().transfers, 2);
        let recovered = f.on_mispredict(80);
        assert_eq!(recovered, 1);
        assert!(f.is_resident(PhysReg(0)));
        assert!(!f.is_resident(PhysReg(1)));
        assert_eq!(f.stats().recovered_regs, 1);
    }

    #[test]
    fn recovery_stall_overlaps_refill() {
        let f = file(4);
        // 10 regs at 4/cycle = 3 cycles; refill 15 covers it.
        assert_eq!(f.recovery_stall(10, 15), 0);
        // 100 regs = 25 cycles; 10 beyond the refill.
        assert_eq!(f.recovery_stall(100, 15), 10);
    }

    #[test]
    fn stale_eligible_entries_are_skipped() {
        let mut f = file(2);
        f.try_allocate(PhysReg(0));
        f.try_allocate(PhysReg(1));
        f.mark_eligible(PhysReg(0), 1);
        f.release(PhysReg(0)); // freed before the transfer happens
        f.tick();
        assert_eq!(f.stats().transfers, 0);
        assert_eq!(f.free_count(), 1);
    }
}
