use std::fmt;

/// Register-cache insertion policy: which produced values get written
/// into the cache at all.
///
/// This enum is the *configuration-level* name of a policy — `Copy`,
/// `Eq`, `Hash`, cheap to put in sweep matrices. The behavior itself
/// lives behind the object-safe [`InsertionDecider`] trait;
/// [`InsertionPolicy::decider`] is the factory connecting the two. New
/// policies are added by implementing the trait and (optionally) naming
/// them here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InsertionPolicy {
    /// Every produced value is written (Yung & Wilhelm's original
    /// register cache, the paper's "LRU" reference design).
    WriteAll,
    /// Skip the write if the value bypassed to *any* consumer before the
    /// write occurred (Cruz et al.'s heuristic, the paper's
    /// "non-bypass" reference design).
    NonBypass,
    /// Skip the write if the value has no predicted uses remaining after
    /// first-stage bypasses are accounted — the paper's contribution
    /// (§3.1). Pinned (saturated-degree) values are always written.
    UseBased,
    /// [`InsertionPolicy::UseBased`] with a *per-thread* use threshold
    /// retuned from epoch feedback: a thread running at its occupancy
    /// quota demands more predicted uses per insertion (up to
    /// [`ADAPTIVE_THRESHOLD_MAX`]), a thread under quota relaxes back
    /// toward the use-based baseline of 1. Identical to `UseBased`
    /// until the first epoch boundary fires, and on single-thread or
    /// statically partitioned caches forever (no boundaries ever fire).
    AdaptiveUseThreshold,
}

impl InsertionPolicy {
    /// Builds the decider implementing this policy.
    pub fn decider(self) -> Box<dyn InsertionDecider> {
        match self {
            InsertionPolicy::WriteAll => Box::new(WriteAllInsertion),
            InsertionPolicy::NonBypass => Box::new(NonBypassInsertion),
            InsertionPolicy::UseBased => Box::new(UseBasedInsertion),
            InsertionPolicy::AdaptiveUseThreshold => Box::new(AdaptiveUseThresholdInsertion::new()),
        }
    }
}

/// Register-cache replacement policy: which entry of a full set is
/// evicted.
///
/// Like [`InsertionPolicy`], this is the configuration-level name; the
/// behavior is an object-safe [`ReplacementScorer`] built by
/// [`ReplacementPolicy::scorer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used entry.
    Lru,
    /// Entry with the fewest remaining uses, LRU tie-break; pinned
    /// entries are never chosen unless every entry in the set is pinned
    /// (§3.2).
    FewestUses,
    /// Fewest *expected hits*: like [`ReplacementPolicy::FewestUses`],
    /// but a fill-installed entry's expectation is floored at one — the
    /// miss that refetched it is direct evidence the degree prediction
    /// undercounted, so it likely has more unpredicted readers coming.
    /// The observed-behavior-over-static-prediction idea follows Vakil
    /// Ghahani et al., *Making Belady-Inspired Replacement Policies
    /// More Effective Using Expected Hit Count*.
    ExpectedHitCount,
}

impl ReplacementPolicy {
    /// Builds the scorer implementing this policy.
    pub fn scorer(self) -> Box<dyn ReplacementScorer> {
        match self {
            ReplacementPolicy::Lru => Box::new(LruScorer),
            ReplacementPolicy::FewestUses => Box::new(FewestUsesScorer),
            ReplacementPolicy::ExpectedHitCount => Box::new(ExpectedHitCountScorer),
        }
    }
}

/// Per-thread telemetry handed to every policy object (and to the
/// dynamic partitioner) at an epoch boundary.
///
/// Produced by the cache itself when [`CachePartition::DynamicCap`] is
/// active: the simulator's epoch controller triggers the boundary, the
/// cache gathers the deltas since the previous boundary, recomputes the
/// per-thread quotas, and broadcasts the result through the
/// [`InsertionDecider::on_epoch`] / [`ReplacementScorer::on_epoch`]
/// hooks. All vectors are indexed by thread id and have one slot per
/// SMT thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochFeedback {
    /// Zero-based index of the epoch that just closed.
    pub epoch: u64,
    /// Cycle at which the boundary fired.
    pub cycle: u64,
    /// Read hits per thread during the closed epoch.
    pub hits: Vec<u64>,
    /// Read misses per thread during the closed epoch.
    pub misses: Vec<u64>,
    /// Live cache entries per thread at the boundary (after any
    /// repartition evictions).
    pub occupancy: Vec<usize>,
    /// Per-thread occupancy quotas in force during the closed epoch.
    /// Under [`CachePartition::DynamicWay`] these are entry-equivalents
    /// (owned ways × sets), so quota consumers see a uniform scale.
    pub old_caps: Vec<usize>,
    /// Per-thread occupancy quotas for the epoch now starting (same
    /// entry-equivalent convention as
    /// [`EpochFeedback::old_caps`]).
    pub new_caps: Vec<usize>,
    /// Per-thread *way* counts for the epoch now starting — populated
    /// only by [`CachePartition::DynamicWay`] boundaries, empty for
    /// occupancy-quota partitions.
    pub new_ways: Vec<usize>,
}

impl EpochFeedback {
    /// Read hit rate of one thread over the closed epoch, or `None`
    /// when the thread made no cache reads.
    pub fn hit_rate(&self, tid: usize) -> Option<f64> {
        let total = self.hits[tid] + self.misses[tid];
        (total > 0).then(|| self.hits[tid] as f64 / total as f64)
    }
}

/// Everything an insertion decision may consult about a produced value
/// arriving at the cache-write port.
#[derive(Clone, Copy, Debug)]
pub struct InsertionContext {
    /// Predicted uses still outstanding after first-stage bypasses were
    /// deducted (from [`crate::UseTracker`]).
    pub remaining: u8,
    /// The predicted degree saturated the counter (§3.3): the value is
    /// expected to be read many times and is pinned while cached.
    pub pinned: bool,
    /// Consumers already satisfied from the first bypass stage — the
    /// only consumers visible to the write decision (§3.1).
    pub first_stage_bypasses: u32,
    /// The producing SMT thread (always 0 on single-thread caches).
    /// Feedback-driven deciders key per-thread state off this; the
    /// static policies ignore it.
    pub tid: usize,
}

/// Object-safe insertion decision: should this produced value occupy a
/// cache entry at all?
///
/// Implementations must be pure functions of the context — the cache
/// calls them on the configured write path and expects deterministic,
/// state-free answers (determinism is what the golden-snapshot matrix
/// pins).
pub trait InsertionDecider: fmt::Debug + Send {
    /// `true` to write the value into the cache, `false` to filter it.
    fn should_insert(&self, ctx: &InsertionContext) -> bool;
    /// Clones the decider behind the object (used by the shadow cache
    /// and by cloning simulators).
    fn clone_box(&self) -> Box<dyn InsertionDecider>;
    /// Epoch-boundary feedback hook. The default is a no-op, so every
    /// static policy is untouched by the feedback architecture (their
    /// timing stays bit-identical to the pre-epoch model); adaptive
    /// deciders override this to retune themselves from the telemetry.
    fn on_epoch(&mut self, _fb: &EpochFeedback) {}
}

impl Clone for Box<dyn InsertionDecider> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// What a replacement decision may consult about one candidate victim.
#[derive(Clone, Copy, Debug)]
pub struct VictimView {
    /// Remaining-use counter of the entry.
    pub uses: u8,
    /// Entry is pinned (saturated predicted degree).
    pub pinned: bool,
    /// Entry was installed by a miss fill rather than the initial
    /// write, so its counter carries the fill default instead of the
    /// tracker's prediction.
    pub from_fill: bool,
    /// Last-touch tick for recency ordering (larger = more recent).
    pub lru: u64,
    /// Hits this entry has served since installation.
    pub reads: u64,
}

/// A replacement preference key: the candidate with the *smallest* score
/// in the set is evicted, compared lexicographically as
/// `(keep_class, expected_value, recency)`. Ties fall back to the
/// recency tick, which is unique, so victim selection is total and
/// deterministic.
pub type VictimScore = (bool, u64, u64);

/// Object-safe replacement scoring: rank a full set's entries for
/// eviction.
///
/// Implementations must be deterministic functions of the
/// [`VictimView`]; the cache evicts the entry whose score is smallest.
pub trait ReplacementScorer: fmt::Debug + Send {
    /// Scores one candidate; the set's minimum is evicted.
    fn score(&self, v: &VictimView) -> VictimScore;
    /// Clones the scorer behind the object.
    fn clone_box(&self) -> Box<dyn ReplacementScorer>;
    /// Epoch-boundary feedback hook (no-op by default; see
    /// [`InsertionDecider::on_epoch`]).
    fn on_epoch(&mut self, _fb: &EpochFeedback) {}
}

impl Clone for Box<dyn ReplacementScorer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// [`InsertionPolicy::WriteAll`] as a decider.
#[derive(Clone, Copy, Debug)]
pub struct WriteAllInsertion;

impl InsertionDecider for WriteAllInsertion {
    fn should_insert(&self, _ctx: &InsertionContext) -> bool {
        true
    }
    fn clone_box(&self) -> Box<dyn InsertionDecider> {
        Box::new(*self)
    }
}

/// [`InsertionPolicy::NonBypass`] as a decider.
#[derive(Clone, Copy, Debug)]
pub struct NonBypassInsertion;

impl InsertionDecider for NonBypassInsertion {
    fn should_insert(&self, ctx: &InsertionContext) -> bool {
        ctx.first_stage_bypasses == 0
    }
    fn clone_box(&self) -> Box<dyn InsertionDecider> {
        Box::new(*self)
    }
}

/// [`InsertionPolicy::UseBased`] as a decider (§3.1).
#[derive(Clone, Copy, Debug)]
pub struct UseBasedInsertion;

impl InsertionDecider for UseBasedInsertion {
    fn should_insert(&self, ctx: &InsertionContext) -> bool {
        ctx.pinned || ctx.remaining > 0
    }
    fn clone_box(&self) -> Box<dyn InsertionDecider> {
        Box::new(*self)
    }
}

/// Ceiling of the per-thread use threshold
/// [`InsertionPolicy::AdaptiveUseThreshold`] may tighten to. Beyond
/// this, filtering becomes so aggressive the cache starves on the
/// kernels' mostly-degree-1/2 values.
pub const ADAPTIVE_THRESHOLD_MAX: u8 = 3;

/// [`InsertionPolicy::AdaptiveUseThreshold`] as a decider: the
/// use-based filter with a per-thread minimum-use threshold retuned
/// from [`EpochFeedback`].
///
/// A thread that closed the epoch *at* its occupancy quota is fighting
/// for space, so demanding more predicted uses per insertion (one more
/// than before, capped at [`ADAPTIVE_THRESHOLD_MAX`]) keeps only its
/// hottest values; a thread under quota relaxes back toward the
/// baseline threshold of 1, which is exactly [`UseBasedInsertion`].
/// Pinned values always insert, as in the base policy. Everything is a
/// pure function of the feedback stream, so runs stay deterministic.
#[derive(Clone, Debug)]
pub struct AdaptiveUseThresholdInsertion {
    /// Per-thread minimum remaining-use count; sized lazily on the
    /// first epoch (an unseen thread uses the baseline of 1).
    thresholds: Vec<u8>,
}

impl AdaptiveUseThresholdInsertion {
    /// Starts at the use-based baseline (threshold 1 for every thread).
    pub fn new() -> Self {
        Self {
            thresholds: Vec::new(),
        }
    }

    /// The threshold currently applied to `tid`.
    pub fn threshold(&self, tid: usize) -> u8 {
        self.thresholds.get(tid).copied().unwrap_or(1)
    }
}

impl Default for AdaptiveUseThresholdInsertion {
    fn default() -> Self {
        Self::new()
    }
}

impl InsertionDecider for AdaptiveUseThresholdInsertion {
    fn should_insert(&self, ctx: &InsertionContext) -> bool {
        ctx.pinned || ctx.remaining >= self.threshold(ctx.tid)
    }
    fn clone_box(&self) -> Box<dyn InsertionDecider> {
        Box::new(self.clone())
    }
    fn on_epoch(&mut self, fb: &EpochFeedback) {
        if self.thresholds.len() < fb.new_caps.len() {
            self.thresholds.resize(fb.new_caps.len(), 1);
        }
        for (t, th) in self.thresholds.iter_mut().enumerate() {
            if fb.occupancy[t] >= fb.new_caps[t] {
                *th = (*th + 1).min(ADAPTIVE_THRESHOLD_MAX);
            } else {
                *th = th.saturating_sub(1).max(1);
            }
        }
    }
}

/// [`ReplacementPolicy::Lru`] as a scorer: pure recency, blind to use
/// counts and pinning.
#[derive(Clone, Copy, Debug)]
pub struct LruScorer;

impl ReplacementScorer for LruScorer {
    fn score(&self, v: &VictimView) -> VictimScore {
        (false, 0, v.lru)
    }
    fn clone_box(&self) -> Box<dyn ReplacementScorer> {
        Box::new(*self)
    }
}

/// [`ReplacementPolicy::FewestUses`] as a scorer (§3.2): fewest
/// remaining uses, LRU tie-break, pinned entries last.
#[derive(Clone, Copy, Debug)]
pub struct FewestUsesScorer;

impl ReplacementScorer for FewestUsesScorer {
    fn score(&self, v: &VictimView) -> VictimScore {
        (v.pinned, v.uses as u64, v.lru)
    }
    fn clone_box(&self) -> Box<dyn ReplacementScorer> {
        Box::new(*self)
    }
}

/// [`ReplacementPolicy::ExpectedHitCount`] as a scorer: fewest
/// *expected* hits. The expectation is the remaining-use counter, but
/// an entry installed by a miss fill is floored at one expected hit —
/// the fill proves the static prediction undercounted this value, so
/// its `fill_default` counter (usually 0) understates its future.
#[derive(Clone, Copy, Debug)]
pub struct ExpectedHitCountScorer;

impl ReplacementScorer for ExpectedHitCountScorer {
    fn score(&self, v: &VictimView) -> VictimScore {
        let expected = if v.from_fill {
            (v.uses as u64).max(1)
        } else {
            v.uses as u64
        };
        (v.pinned, expected, v.lru)
    }
    fn clone_box(&self) -> Box<dyn ReplacementScorer> {
        Box::new(*self)
    }
}

/// Statically dispatched insertion decider: one enum variant per
/// shipped [`InsertionPolicy`], plus a [`AnyInsertion::Custom`] escape
/// hatch for user-supplied [`InsertionDecider`] implementations.
///
/// The cache stores this enum instead of a `Box<dyn InsertionDecider>`
/// so the hot write path resolves the shipped policies with a jump
/// table over inlined monomorphic bodies rather than a virtual call.
/// Behavior is identical to dispatching through the boxed trait object
/// — the golden-snapshot matrix and the equivalence proptests pin this
/// — and the object-safe trait remains the extension seam: anything
/// that implements [`InsertionDecider`] rides along in
/// [`AnyInsertion::Custom`] with unchanged semantics.
#[derive(Clone, Debug)]
pub enum AnyInsertion {
    /// [`InsertionPolicy::WriteAll`], statically dispatched.
    WriteAll(WriteAllInsertion),
    /// [`InsertionPolicy::NonBypass`], statically dispatched.
    NonBypass(NonBypassInsertion),
    /// [`InsertionPolicy::UseBased`], statically dispatched.
    UseBased(UseBasedInsertion),
    /// [`InsertionPolicy::AdaptiveUseThreshold`], statically
    /// dispatched.
    AdaptiveUseThreshold(AdaptiveUseThresholdInsertion),
    /// A user-supplied decider, dispatched through the object-safe
    /// trait exactly as before the enum existed.
    Custom(Box<dyn InsertionDecider>),
}

impl AnyInsertion {
    /// Builds the statically dispatched decider for a shipped policy.
    pub fn from_policy(policy: InsertionPolicy) -> Self {
        match policy {
            InsertionPolicy::WriteAll => AnyInsertion::WriteAll(WriteAllInsertion),
            InsertionPolicy::NonBypass => AnyInsertion::NonBypass(NonBypassInsertion),
            InsertionPolicy::UseBased => AnyInsertion::UseBased(UseBasedInsertion),
            InsertionPolicy::AdaptiveUseThreshold => {
                AnyInsertion::AdaptiveUseThreshold(AdaptiveUseThresholdInsertion::new())
            }
        }
    }

    /// Forwards [`InsertionDecider::should_insert`] to the wrapped
    /// decider without a virtual call for the shipped policies.
    #[inline]
    pub fn should_insert(&self, ctx: &InsertionContext) -> bool {
        match self {
            AnyInsertion::WriteAll(d) => d.should_insert(ctx),
            AnyInsertion::NonBypass(d) => d.should_insert(ctx),
            AnyInsertion::UseBased(d) => d.should_insert(ctx),
            AnyInsertion::AdaptiveUseThreshold(d) => d.should_insert(ctx),
            AnyInsertion::Custom(d) => d.should_insert(ctx),
        }
    }

    /// Forwards [`InsertionDecider::on_epoch`] to the wrapped decider
    /// (cold path: fires once per epoch boundary, not per access).
    pub fn on_epoch(&mut self, fb: &EpochFeedback) {
        match self {
            AnyInsertion::WriteAll(d) => d.on_epoch(fb),
            AnyInsertion::NonBypass(d) => d.on_epoch(fb),
            AnyInsertion::UseBased(d) => d.on_epoch(fb),
            AnyInsertion::AdaptiveUseThreshold(d) => d.on_epoch(fb),
            AnyInsertion::Custom(d) => d.on_epoch(fb),
        }
    }
}

impl From<Box<dyn InsertionDecider>> for AnyInsertion {
    /// Wraps a boxed decider in the escape-hatch variant.
    fn from(decider: Box<dyn InsertionDecider>) -> Self {
        AnyInsertion::Custom(decider)
    }
}

/// Statically dispatched replacement scorer: one enum variant per
/// shipped [`ReplacementPolicy`], plus a [`AnyScorer::Custom`] escape
/// hatch for user-supplied [`ReplacementScorer`] implementations.
///
/// The victim-selection loop scores every entry of a set, so this is
/// the hottest policy seam in the cache; see [`AnyInsertion`] for the
/// dispatch rationale.
#[derive(Clone, Debug)]
pub enum AnyScorer {
    /// [`ReplacementPolicy::Lru`], statically dispatched.
    Lru(LruScorer),
    /// [`ReplacementPolicy::FewestUses`], statically dispatched.
    FewestUses(FewestUsesScorer),
    /// [`ReplacementPolicy::ExpectedHitCount`], statically dispatched.
    ExpectedHitCount(ExpectedHitCountScorer),
    /// A user-supplied scorer, dispatched through the object-safe
    /// trait exactly as before the enum existed.
    Custom(Box<dyn ReplacementScorer>),
}

impl AnyScorer {
    /// Builds the statically dispatched scorer for a shipped policy.
    pub fn from_policy(policy: ReplacementPolicy) -> Self {
        match policy {
            ReplacementPolicy::Lru => AnyScorer::Lru(LruScorer),
            ReplacementPolicy::FewestUses => AnyScorer::FewestUses(FewestUsesScorer),
            ReplacementPolicy::ExpectedHitCount => {
                AnyScorer::ExpectedHitCount(ExpectedHitCountScorer)
            }
        }
    }

    /// Forwards [`ReplacementScorer::score`] to the wrapped scorer
    /// without a virtual call for the shipped policies.
    #[inline]
    pub fn score(&self, v: &VictimView) -> VictimScore {
        match self {
            AnyScorer::Lru(s) => s.score(v),
            AnyScorer::FewestUses(s) => s.score(v),
            AnyScorer::ExpectedHitCount(s) => s.score(v),
            AnyScorer::Custom(s) => s.score(v),
        }
    }

    /// Forwards [`ReplacementScorer::on_epoch`] to the wrapped scorer
    /// (cold path: fires once per epoch boundary, not per access).
    pub fn on_epoch(&mut self, fb: &EpochFeedback) {
        match self {
            AnyScorer::Lru(s) => s.on_epoch(fb),
            AnyScorer::FewestUses(s) => s.on_epoch(fb),
            AnyScorer::ExpectedHitCount(s) => s.on_epoch(fb),
            AnyScorer::Custom(s) => s.on_epoch(fb),
        }
    }
}

impl From<Box<dyn ReplacementScorer>> for AnyScorer {
    /// Wraps a boxed scorer in the escape-hatch variant.
    fn from(scorer: Box<dyn ReplacementScorer>) -> Self {
        AnyScorer::Custom(scorer)
    }
}

/// How register-cache capacity is divided between SMT threads.
///
/// With one thread every variant degenerates to [`CachePartition::Shared`];
/// the knob only changes behavior on a cache built with
/// [`crate::RegisterCache::new_smt`] and more than one thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CachePartition {
    /// All entries compete freely — the single-thread behavior and the
    /// default. Threads can starve each other under pressure.
    #[default]
    Shared,
    /// Each thread owns `ways / nthreads` ways of every set: insertions
    /// only consider the inserting thread's own ways, so a thread can
    /// never evict another thread's entries. Requires `ways` divisible
    /// by the thread count.
    WayPartition,
    /// Ways stay shared, but each thread is capped at
    /// `entries / nthreads` live entries. A thread at its cap may only
    /// evict one of its *own* entries in the target set; if it has none
    /// there, the insertion is dropped instead of displacing a peer.
    OccupancyCap,
    /// Like [`CachePartition::OccupancyCap`], but the per-thread quotas
    /// are *recomputed every `epoch_cycles` cycles* by a lookahead
    /// utility partitioner fed by per-thread shadow-tag monitors
    /// (UMON-style, see [`crate::monitor`]): threads whose monitored
    /// reuse would convert extra entries into hits grow their quota,
    /// threads that would not shrink toward `min_cap`. Quotas always
    /// sum to `entries`, and at every boundary each thread's occupancy
    /// is trimmed (unpinned entries only — quotas never drop below a
    /// thread's pinned footprint) so containment holds on every cycle.
    DynamicCap {
        /// Repartition period in cycles (must be at least 1).
        epoch_cycles: u64,
        /// Quota floor the partitioner aims to preserve per thread
        /// (best-effort: a thread's pinned footprint may force a peer
        /// below the floor, never below 1).
        min_cap: usize,
    },
    /// Like [`CachePartition::WayPartition`], but the per-thread way
    /// blocks are *reassigned every `epoch_cycles` cycles* by the same
    /// lookahead utility partitioner that drives
    /// [`CachePartition::DynamicCap`], run at way granularity (a block
    /// of `k` ways is worth `k × sets` entries of monitored utility).
    /// Each thread always owns a contiguous block of at least one way
    /// in every set (blocks laid out in thread order), so insertions
    /// stay conflict-isolated like the static way partition; when a way
    /// changes owner at a boundary, the losing thread's unpinned
    /// entries in it are evicted and its pinned entries migrate into
    /// the thread's remaining block. Requires `ways` divisible by the
    /// thread count (the initial even split).
    DynamicWay {
        /// Way-reassignment period in cycles (must be at least 1).
        epoch_cycles: u64,
    },
}

impl CachePartition {
    /// True for the epoch-driven partitions
    /// ([`CachePartition::DynamicCap`] and
    /// [`CachePartition::DynamicWay`]).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            CachePartition::DynamicCap { .. } | CachePartition::DynamicWay { .. }
        )
    }

    /// The repartition period of a dynamic partition (`None` for the
    /// static policies).
    pub fn epoch_cycles(&self) -> Option<u64> {
        match *self {
            CachePartition::DynamicCap { epoch_cycles, .. }
            | CachePartition::DynamicWay { epoch_cycles } => Some(epoch_cycles),
            _ => None,
        }
    }
}

/// Adaptive epoch-length control for the dynamic partitions
/// ([`CachePartition::DynamicCap`] / [`CachePartition::DynamicWay`]).
///
/// With `RegCacheConfig::epoch_adapt` set, the partition's
/// `epoch_cycles` becomes the *initial* period (clamped into
/// `[min_cycles, max_cycles]`): when two consecutive repartitions agree
/// within `band` (the L1 distance between the allocation vectors — caps
/// in entries, or way counts), the workload is stable and the period
/// doubles; on disagreement it halves, reacting to the phase change.
/// The period is always clamped to `[min_cycles, max_cycles]`, and the
/// schedule stays a pure function of the simulated access stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EpochAdapt {
    /// Shortest allowed epoch, in cycles (at least 1).
    pub min_cycles: u64,
    /// Longest allowed epoch, in cycles (at least `min_cycles`).
    pub max_cycles: u64,
    /// Hysteresis band: consecutive allocations whose L1 distance is at
    /// most this count as "agreeing".
    pub band: usize,
}

impl EpochAdapt {
    /// A default band: 32–512-cycle epochs, agreement within an L1
    /// distance of 2.
    pub fn default_band() -> Self {
        Self {
            min_cycles: 32,
            max_cycles: 512,
            band: 2,
        }
    }
}

/// Soft-error protection switches for the register storage structures.
///
/// Each flag adds a modeled parity tag to one structure — register-cache
/// entries, the use-counter bank, or the backing-file words — that is
/// checked on every read of that structure. The timing model carries no
/// data bits, so "parity" is a per-element poison flag set by the fault
/// injector and cleared by writes; the flags only gate *detection*, and
/// with everything off (the default) no protection code runs at all, so
/// timing is bit-identical to an unprotected build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ProtectionConfig {
    /// Parity on register-cache entries: a corrupted entry is detected
    /// at its next read and invalidated (the clean copy in the backing
    /// file makes this recoverable by a re-fill).
    pub cache_parity: bool,
    /// Parity on the remaining-use counter bank: a corrupted counter is
    /// detected at its next read and scrubbed to zero-remaining,
    /// unpinned (the counters are performance hints, never values).
    pub counter_parity: bool,
    /// Parity on backing-file words: a corrupted word is detected at
    /// the next backing read and must escalate — the backing file *is*
    /// the clean copy, so there is nothing local to re-fill from.
    pub backing_parity: bool,
}

impl ProtectionConfig {
    /// No protection (the default): zero overhead, zero detection.
    pub fn off() -> Self {
        Self::default()
    }

    /// Parity on all three structures.
    pub fn full() -> Self {
        Self {
            cache_parity: true,
            counter_parity: true,
            backing_parity: true,
        }
    }

    /// True when at least one structure is protected.
    pub fn any(&self) -> bool {
        self.cache_parity || self.counter_parity || self.backing_parity
    }
}

/// Full configuration of a [`crate::RegisterCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegCacheConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity; `ways == entries` is fully associative.
    pub ways: usize,
    /// Insertion policy.
    pub insertion: InsertionPolicy,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Saturation limit of the remaining-use counters. Values whose
    /// *predicted* degree reaches this limit are pinned: their counters
    /// stop decrementing and they stay cached until their physical
    /// register is freed (§3.3). The paper settles on 7.
    pub max_use_count: u8,
    /// Remaining-use count assumed for values with no confident degree
    /// prediction (§3.3; the paper settles on 1).
    pub unknown_default: u8,
    /// Remaining-use count assigned on a fill after a miss (§3.3; the
    /// paper settles on 0).
    pub fill_default: u8,
    /// Track a fully-associative shadow cache to classify misses into
    /// capacity vs. conflict (used by the Figure 8 experiment; costs
    /// extra simulation work, not hardware).
    pub classify_misses: bool,
    /// How capacity is divided between SMT threads (ignored with one
    /// thread; see [`CachePartition`]).
    pub partition: CachePartition,
    /// Adaptive epoch-length control for a dynamic `partition` (`None`
    /// — the default — keeps the fixed `epoch_cycles` period; see
    /// [`EpochAdapt`]). Ignored by the static partitions and on
    /// single-thread caches.
    pub epoch_adapt: Option<EpochAdapt>,
    /// Soft-error parity protection on the storage structures (off by
    /// default; see [`ProtectionConfig`]).
    pub protection: ProtectionConfig,
}

impl RegCacheConfig {
    /// The paper's proposed configuration at a given geometry:
    /// use-based insertion and replacement, max use count 7, unknown
    /// default 1, fill default 0.
    pub fn use_based(entries: usize, ways: usize) -> Self {
        Self {
            entries,
            ways,
            insertion: InsertionPolicy::UseBased,
            replacement: ReplacementPolicy::FewestUses,
            max_use_count: 7,
            unknown_default: 1,
            fill_default: 0,
            classify_misses: false,
            partition: CachePartition::Shared,
            epoch_adapt: None,
            protection: ProtectionConfig::off(),
        }
    }

    /// The "LRU" reference design: write-all insertion, LRU replacement.
    pub fn lru(entries: usize, ways: usize) -> Self {
        Self {
            insertion: InsertionPolicy::WriteAll,
            replacement: ReplacementPolicy::Lru,
            ..Self::use_based(entries, ways)
        }
    }

    /// The "non-bypass" reference design: bypass-filtered insertion,
    /// LRU replacement.
    pub fn non_bypass(entries: usize, ways: usize) -> Self {
        Self {
            insertion: InsertionPolicy::NonBypass,
            replacement: ReplacementPolicy::Lru,
            ..Self::use_based(entries, ways)
        }
    }

    /// The expected-hit-count extension: use-based insertion with
    /// [`ReplacementPolicy::ExpectedHitCount`] replacement (fill-backed
    /// entries are credited with at least one expected future hit).
    pub fn expected_hit_count(entries: usize, ways: usize) -> Self {
        Self {
            replacement: ReplacementPolicy::ExpectedHitCount,
            ..Self::use_based(entries, ways)
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (`entries` not divisible
    /// by `ways`) — note non-power-of-two *set counts* are explicitly
    /// allowed: decoupled indexing does not require power-of-two caches
    /// (§4.1).
    pub fn sets(&self) -> usize {
        assert!(self.ways >= 1, "ways must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        self.entries / self.ways
    }

    /// True when the configuration is fully associative.
    pub fn is_fully_associative(&self) -> bool {
        self.ways == self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_papers_reference_designs() {
        let ub = RegCacheConfig::use_based(64, 2);
        assert_eq!(ub.insertion, InsertionPolicy::UseBased);
        assert_eq!(ub.replacement, ReplacementPolicy::FewestUses);
        assert_eq!(ub.max_use_count, 7);
        assert_eq!(ub.unknown_default, 1);
        assert_eq!(ub.fill_default, 0);
        assert_eq!(ub.partition, CachePartition::Shared);
        assert_eq!(ub.sets(), 32);

        let lru = RegCacheConfig::lru(64, 2);
        assert_eq!(lru.insertion, InsertionPolicy::WriteAll);
        assert_eq!(lru.replacement, ReplacementPolicy::Lru);

        let nb = RegCacheConfig::non_bypass(64, 2);
        assert_eq!(nb.insertion, InsertionPolicy::NonBypass);
        assert_eq!(nb.replacement, ReplacementPolicy::Lru);
    }

    #[test]
    fn non_power_of_two_set_counts_are_allowed() {
        // 48-entry 4-way -> 12 sets: legal under decoupled indexing.
        let c = RegCacheConfig::use_based(48, 4);
        assert_eq!(c.sets(), 12);
    }

    #[test]
    fn fully_associative_detection() {
        assert!(RegCacheConfig::use_based(64, 64).is_fully_associative());
        assert!(!RegCacheConfig::use_based(64, 4).is_fully_associative());
    }

    #[test]
    #[should_panic(expected = "divide into ways")]
    fn inconsistent_geometry_rejected() {
        let _ = RegCacheConfig::use_based(64, 3).sets();
    }

    fn view(uses: u8, pinned: bool, from_fill: bool, lru: u64) -> VictimView {
        VictimView {
            uses,
            pinned,
            from_fill,
            lru,
            reads: 0,
        }
    }

    #[test]
    fn deciders_match_their_enum_semantics() {
        let ctx = |remaining, pinned, first_stage_bypasses| InsertionContext {
            remaining,
            pinned,
            first_stage_bypasses,
            tid: 0,
        };
        let write_all = InsertionPolicy::WriteAll.decider();
        assert!(write_all.should_insert(&ctx(0, false, 5)));

        let non_bypass = InsertionPolicy::NonBypass.decider();
        assert!(non_bypass.should_insert(&ctx(0, false, 0)));
        assert!(!non_bypass.should_insert(&ctx(3, false, 1)));

        let use_based = InsertionPolicy::UseBased.decider();
        assert!(use_based.should_insert(&ctx(1, false, 4)));
        assert!(use_based.should_insert(&ctx(0, true, 4)));
        assert!(!use_based.should_insert(&ctx(0, false, 1)));
    }

    #[test]
    fn scorers_rank_victims_like_their_enum_semantics() {
        let lru = ReplacementPolicy::Lru.scorer();
        // Pure recency: a pinned high-use entry with an older tick loses.
        assert!(lru.score(&view(7, true, false, 1)) < lru.score(&view(0, false, false, 2)));

        let fu = ReplacementPolicy::FewestUses.scorer();
        assert!(fu.score(&view(0, false, false, 9)) < fu.score(&view(1, false, false, 1)));
        // Pinned entries are only chosen when everything is pinned.
        assert!(fu.score(&view(7, false, false, 9)) < fu.score(&view(0, true, false, 1)));
    }

    #[test]
    fn expected_hit_count_floors_fill_entries_at_one() {
        let ehc = ReplacementPolicy::ExpectedHitCount.scorer();
        let fu = ReplacementPolicy::FewestUses.scorer();
        // A zero-use write-installed entry is a better victim than a
        // zero-use fill-installed one (the fill is evidence of future
        // hits); FewestUses cannot tell them apart.
        let dead_write = view(0, false, false, 5);
        let dead_fill = view(0, false, true, 1);
        assert!(ehc.score(&dead_write) < ehc.score(&dead_fill));
        assert!(fu.score(&dead_fill) < fu.score(&dead_write));
        // Above zero the floor is inert: counters dominate as usual.
        assert!(ehc.score(&view(1, false, true, 9)) < ehc.score(&view(2, false, false, 1)));
    }

    #[test]
    fn boxed_policies_clone_and_stay_deterministic() {
        let scorer = ReplacementPolicy::ExpectedHitCount.scorer();
        let cloned = scorer.clone();
        let v = view(3, false, true, 17);
        assert_eq!(scorer.score(&v), cloned.score(&v));

        let decider = InsertionPolicy::UseBased.decider();
        let cloned = decider.clone();
        let c = InsertionContext {
            remaining: 0,
            pinned: true,
            first_stage_bypasses: 2,
            tid: 0,
        };
        assert_eq!(decider.should_insert(&c), cloned.should_insert(&c));
    }

    #[test]
    fn expected_hit_count_preset() {
        let c = RegCacheConfig::expected_hit_count(64, 2);
        assert_eq!(c.insertion, InsertionPolicy::UseBased);
        assert_eq!(c.replacement, ReplacementPolicy::ExpectedHitCount);
        assert_eq!(c.sets(), 32);
    }

    fn feedback(occupancy: Vec<usize>, new_caps: Vec<usize>) -> EpochFeedback {
        EpochFeedback {
            occupancy,
            new_caps,
            ..EpochFeedback::default()
        }
    }

    #[test]
    fn adaptive_threshold_starts_as_use_based() {
        let d = InsertionPolicy::AdaptiveUseThreshold.decider();
        let ub = InsertionPolicy::UseBased.decider();
        for remaining in 0..4u8 {
            for pinned in [false, true] {
                let c = InsertionContext {
                    remaining,
                    pinned,
                    first_stage_bypasses: 0,
                    tid: 1,
                };
                assert_eq!(d.should_insert(&c), ub.should_insert(&c));
            }
        }
    }

    #[test]
    fn adaptive_threshold_tightens_at_quota_and_relaxes_under_it() {
        let mut d = AdaptiveUseThresholdInsertion::new();
        // Thread 0 sits at its quota, thread 1 is well under.
        d.on_epoch(&feedback(vec![8, 2], vec![8, 8]));
        assert_eq!(d.threshold(0), 2);
        assert_eq!(d.threshold(1), 1);
        let at = |remaining, tid| InsertionContext {
            remaining,
            pinned: false,
            first_stage_bypasses: 0,
            tid,
        };
        assert!(
            !d.should_insert(&at(1, 0)),
            "over-quota thread filters 1-use"
        );
        assert!(d.should_insert(&at(2, 0)));
        assert!(
            d.should_insert(&at(1, 1)),
            "under-quota thread keeps baseline"
        );
        // Pinned values always insert regardless of the threshold.
        assert!(d.should_insert(&InsertionContext {
            remaining: 0,
            pinned: true,
            first_stage_bypasses: 0,
            tid: 0,
        }));
        // The threshold saturates at the ceiling...
        for _ in 0..10 {
            d.on_epoch(&feedback(vec![8, 2], vec![8, 8]));
        }
        assert_eq!(d.threshold(0), ADAPTIVE_THRESHOLD_MAX);
        // ...and relaxes back down to 1 when the pressure lifts.
        for _ in 0..10 {
            d.on_epoch(&feedback(vec![1, 2], vec![8, 8]));
        }
        assert_eq!(d.threshold(0), 1);
    }

    #[test]
    fn adaptive_threshold_clones_with_its_state() {
        let mut d = AdaptiveUseThresholdInsertion::new();
        d.on_epoch(&feedback(vec![8], vec![8]));
        let cloned = d.clone_box();
        let c = InsertionContext {
            remaining: 1,
            pinned: false,
            first_stage_bypasses: 0,
            tid: 0,
        };
        assert_eq!(d.should_insert(&c), cloned.should_insert(&c));
        assert!(!cloned.should_insert(&c));
    }

    #[test]
    fn partition_dynamic_helpers() {
        assert!(!CachePartition::Shared.is_dynamic());
        assert!(!CachePartition::WayPartition.is_dynamic());
        assert!(CachePartition::DynamicCap {
            epoch_cycles: 128,
            min_cap: 4
        }
        .is_dynamic());
        assert!(CachePartition::DynamicWay { epoch_cycles: 128 }.is_dynamic());
        assert_eq!(
            CachePartition::DynamicWay { epoch_cycles: 128 }.epoch_cycles(),
            Some(128)
        );
        assert_eq!(CachePartition::OccupancyCap.epoch_cycles(), None);
    }

    #[test]
    fn epoch_adapt_default_band_is_well_formed() {
        let a = EpochAdapt::default_band();
        assert!(a.min_cycles >= 1);
        assert!(a.min_cycles <= a.max_cycles);
        // The presets never enable adaptation: the fixed-epoch golden
        // rows depend on it.
        assert_eq!(RegCacheConfig::use_based(64, 4).epoch_adapt, None);
    }
}
