/// Register-cache insertion policy: which produced values get written
/// into the cache at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InsertionPolicy {
    /// Every produced value is written (Yung & Wilhelm's original
    /// register cache, the paper's "LRU" reference design).
    WriteAll,
    /// Skip the write if the value bypassed to *any* consumer before the
    /// write occurred (Cruz et al.'s heuristic, the paper's
    /// "non-bypass" reference design).
    NonBypass,
    /// Skip the write if the value has no predicted uses remaining after
    /// first-stage bypasses are accounted — the paper's contribution
    /// (§3.1). Pinned (saturated-degree) values are always written.
    UseBased,
}

/// Register-cache replacement policy: which entry of a full set is
/// evicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used entry.
    Lru,
    /// Entry with the fewest remaining uses, LRU tie-break; pinned
    /// entries are never chosen unless every entry in the set is pinned
    /// (§3.2).
    FewestUses,
}

/// Full configuration of a [`crate::RegisterCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegCacheConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity; `ways == entries` is fully associative.
    pub ways: usize,
    /// Insertion policy.
    pub insertion: InsertionPolicy,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Saturation limit of the remaining-use counters. Values whose
    /// *predicted* degree reaches this limit are pinned: their counters
    /// stop decrementing and they stay cached until their physical
    /// register is freed (§3.3). The paper settles on 7.
    pub max_use_count: u8,
    /// Remaining-use count assumed for values with no confident degree
    /// prediction (§3.3; the paper settles on 1).
    pub unknown_default: u8,
    /// Remaining-use count assigned on a fill after a miss (§3.3; the
    /// paper settles on 0).
    pub fill_default: u8,
    /// Track a fully-associative shadow cache to classify misses into
    /// capacity vs. conflict (used by the Figure 8 experiment; costs
    /// extra simulation work, not hardware).
    pub classify_misses: bool,
}

impl RegCacheConfig {
    /// The paper's proposed configuration at a given geometry:
    /// use-based insertion and replacement, max use count 7, unknown
    /// default 1, fill default 0.
    pub fn use_based(entries: usize, ways: usize) -> Self {
        Self {
            entries,
            ways,
            insertion: InsertionPolicy::UseBased,
            replacement: ReplacementPolicy::FewestUses,
            max_use_count: 7,
            unknown_default: 1,
            fill_default: 0,
            classify_misses: false,
        }
    }

    /// The "LRU" reference design: write-all insertion, LRU replacement.
    pub fn lru(entries: usize, ways: usize) -> Self {
        Self {
            insertion: InsertionPolicy::WriteAll,
            replacement: ReplacementPolicy::Lru,
            ..Self::use_based(entries, ways)
        }
    }

    /// The "non-bypass" reference design: bypass-filtered insertion,
    /// LRU replacement.
    pub fn non_bypass(entries: usize, ways: usize) -> Self {
        Self {
            insertion: InsertionPolicy::NonBypass,
            replacement: ReplacementPolicy::Lru,
            ..Self::use_based(entries, ways)
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (`entries` not divisible
    /// by `ways`) — note non-power-of-two *set counts* are explicitly
    /// allowed: decoupled indexing does not require power-of-two caches
    /// (§4.1).
    pub fn sets(&self) -> usize {
        assert!(self.ways >= 1, "ways must be at least 1");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        self.entries / self.ways
    }

    /// True when the configuration is fully associative.
    pub fn is_fully_associative(&self) -> bool {
        self.ways == self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_papers_reference_designs() {
        let ub = RegCacheConfig::use_based(64, 2);
        assert_eq!(ub.insertion, InsertionPolicy::UseBased);
        assert_eq!(ub.replacement, ReplacementPolicy::FewestUses);
        assert_eq!(ub.max_use_count, 7);
        assert_eq!(ub.unknown_default, 1);
        assert_eq!(ub.fill_default, 0);
        assert_eq!(ub.sets(), 32);

        let lru = RegCacheConfig::lru(64, 2);
        assert_eq!(lru.insertion, InsertionPolicy::WriteAll);
        assert_eq!(lru.replacement, ReplacementPolicy::Lru);

        let nb = RegCacheConfig::non_bypass(64, 2);
        assert_eq!(nb.insertion, InsertionPolicy::NonBypass);
        assert_eq!(nb.replacement, ReplacementPolicy::Lru);
    }

    #[test]
    fn non_power_of_two_set_counts_are_allowed() {
        // 48-entry 4-way -> 12 sets: legal under decoupled indexing.
        let c = RegCacheConfig::use_based(48, 4);
        assert_eq!(c.sets(), 12);
    }

    #[test]
    fn fully_associative_detection() {
        assert!(RegCacheConfig::use_based(64, 64).is_fully_associative());
        assert!(!RegCacheConfig::use_based(64, 4).is_fully_associative());
    }

    #[test]
    #[should_panic(expected = "divide into ways")]
    fn inconsistent_geometry_rejected() {
        let _ = RegCacheConfig::use_based(64, 3).sets();
    }
}
