use crate::monitor::UtilityMonitor;
use crate::partition::{AnyController, EpochContext, EpochPlan};
use crate::policy::{
    AnyInsertion, AnyScorer, CachePartition, EpochFeedback, InsertionContext, RegCacheConfig,
    VictimView,
};
use crate::PhysReg;
use ubrc_stats::TimeWeighted;

/// Result of presenting a produced value to the cache-write port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The value was written into a cache entry.
    Inserted,
    /// The insertion policy filtered the write (a later read of this
    /// value will miss with [`MissClass::NotWritten`]).
    Filtered,
    /// The insertion policy accepted the write but the
    /// [`CachePartition::OccupancyCap`] dropped it: the producing thread
    /// is at its cap and owns nothing evictable in the target set.
    Capped,
}

/// Classification of a register-cache read miss (Figure 8 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissClass {
    /// The value was never written into the cache (filtered at insert).
    NotWritten,
    /// The value was evicted and a fully-associative cache of the same
    /// capacity would also have evicted it.
    Capacity,
    /// The value was evicted but still resides in the fully-associative
    /// shadow: a conflict miss.
    Conflict,
    /// Classification disabled ([`RegCacheConfig::classify_misses`] is
    /// false).
    Unclassified,
}

/// Statistics accumulated by a [`RegisterCache`].
///
/// Everything needed for Figures 8-10 and Table 2 of the paper.
#[derive(Clone, Debug, Default)]
pub struct RegCacheStats {
    /// Read-port lookups (one per source operand that reaches the
    /// cache).
    pub reads: u64,
    /// Lookups that hit.
    pub read_hits: u64,
    /// Lookups that missed.
    pub read_misses: u64,
    /// Misses on values never written (insertion-filtered).
    pub misses_not_written: u64,
    /// Misses a same-capacity fully-associative cache would share.
    pub misses_capacity: u64,
    /// Misses caused by set conflicts.
    pub misses_conflict: u64,
    /// Values presented to the write port.
    pub writes_attempted: u64,
    /// Values actually written.
    pub writes_inserted: u64,
    /// Values filtered by the insertion policy.
    pub writes_filtered: u64,
    /// Fills performed after misses.
    pub fills: u64,
    /// Evictions (replacement victims; invalidations not included).
    pub evictions: u64,
    /// Evictions whose victim had zero remaining uses.
    pub evictions_zero_use: u64,
    /// Values produced (one per renamed destination).
    pub values_produced: u64,
    /// Values whose physical register has been freed.
    pub values_freed: u64,
    /// Freed values that never occupied a cache entry at all.
    pub values_never_cached: u64,
    /// Entry-creation events (initial writes + fills) — "times each
    /// value is cached" uses this.
    pub cached_events: u64,
    /// Entries that reached eviction/invalidation without ever being
    /// read.
    pub cached_never_read: u64,
    /// Sum of entry lifetimes in cycles (creation to eviction or
    /// invalidation).
    pub entry_lifetime_sum: u64,
    /// Entries whose lifetime has completed.
    pub entry_lifetime_count: u64,
    /// Time-weighted occupancy tracker.
    pub occupancy: TimeWeighted,
    /// Insertions (writes or fills) dropped by the per-thread occupancy
    /// cap ([`CachePartition::OccupancyCap`]).
    pub inserts_capped: u64,
    /// Entries invalidated by a detected parity error
    /// ([`RegisterCache::take_parity_fault`]); not counted as evictions.
    pub parity_invalidations: u64,
    /// Per-thread time-weighted occupancy (one slot per SMT thread;
    /// a single slot on single-thread caches).
    pub thread_occupancy: Vec<TimeWeighted>,
    /// Per-thread read hits (one slot per SMT thread; only maintained
    /// on multi-thread caches, empty otherwise).
    pub thread_read_hits: Vec<u64>,
    /// Per-thread read misses (see
    /// [`RegCacheStats::thread_read_hits`]).
    pub thread_read_misses: Vec<u64>,
    /// Epoch boundaries processed ([`CachePartition::DynamicCap`]
    /// only).
    pub epochs: u64,
    /// Entries evicted at epoch boundaries to fit a shrunken quota
    /// (also counted in [`RegCacheStats::evictions`]).
    pub epoch_evictions: u64,
}

impl RegCacheStats {
    /// Miss rate per operand lookup.
    pub fn miss_rate(&self) -> Option<f64> {
        if self.reads == 0 {
            None
        } else {
            Some(self.read_misses as f64 / self.reads as f64)
        }
    }

    /// Table 2: average reads served per cached value.
    pub fn reads_per_cached_value(&self) -> Option<f64> {
        if self.cached_events == 0 {
            None
        } else {
            Some(self.read_hits as f64 / self.cached_events as f64)
        }
    }

    /// Table 2: average number of times each produced value is cached.
    pub fn cache_count_per_value(&self) -> Option<f64> {
        if self.values_produced == 0 {
            None
        } else {
            Some(self.cached_events as f64 / self.values_produced as f64)
        }
    }

    /// Table 2: average entry lifetime in cycles.
    pub fn avg_entry_lifetime(&self) -> Option<f64> {
        if self.entry_lifetime_count == 0 {
            None
        } else {
            Some(self.entry_lifetime_sum as f64 / self.entry_lifetime_count as f64)
        }
    }

    /// Figure 10: fraction of cached values never read.
    pub fn frac_cached_never_read(&self) -> Option<f64> {
        if self.cached_events == 0 {
            None
        } else {
            Some(self.cached_never_read as f64 / self.cached_events as f64)
        }
    }

    /// Figure 10: fraction of initial writes filtered from the cache.
    pub fn frac_writes_filtered(&self) -> Option<f64> {
        if self.writes_attempted == 0 {
            None
        } else {
            Some(self.writes_filtered as f64 / self.writes_attempted as f64)
        }
    }

    /// Figure 10: fraction of retired values never cached at all.
    pub fn frac_never_cached(&self) -> Option<f64> {
        if self.values_freed == 0 {
            None
        } else {
            Some(self.values_never_cached as f64 / self.values_freed as f64)
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    preg: u16,
    /// Owning SMT thread, derived from the preg partition at insert.
    tid: u16,
    uses: u8,
    pinned: bool,
    from_fill: bool,
    lru: u64,
    reads: u64,
    inserted_at: u64,
    valid: bool,
    /// Modeled data-parity error: set by the fault injector, cleared
    /// when the entry is rewritten (every insert stores a fresh word).
    parity_bad: bool,
}

/// Read-only snapshot of one valid cache entry, for external invariant
/// checking (the timing simulator's `check` mode audits these against
/// its own mirror of the use tracker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryView {
    /// The set this entry resides in.
    pub set: u16,
    /// The way (within the set) this entry resides in, for partition
    /// containment checks.
    pub way: u16,
    /// Owning SMT thread (0 on single-thread caches).
    pub tid: u16,
    /// Physical register tag.
    pub preg: PhysReg,
    /// Remaining-use counter.
    pub uses: u8,
    /// Pinned (saturated prediction) — immune to use decrement and
    /// deprioritized for replacement.
    pub pinned: bool,
    /// Entry was (re)installed by a miss fill, so its counter carries
    /// the fill default rather than the tracker's prediction.
    pub from_fill: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct PregState {
    /// The current value has occupied a cache entry at least once.
    ever_cached: bool,
    /// A value is live in this physical register (produce..free).
    active: bool,
}

/// The register cache (§2.2-§3 of the paper).
///
/// A small set-associative cache over physical register values, with
/// per-entry remaining-use counters. The *set* for each value is chosen
/// externally (decoupled indexing, see [`crate::IndexAssigner`]) and
/// passed to every operation; the full physical register tag is stored
/// in the entry.
///
/// See the crate documentation for a usage example.
#[derive(Clone, Debug)]
pub struct RegisterCache {
    config: RegCacheConfig,
    sets: usize,
    entries: Vec<Entry>,
    tick: u64,
    valid_count: usize,
    per_preg: Vec<PregState>,
    stats: RegCacheStats,
    shadow: Option<Box<RegisterCache>>,
    // SMT partitioning: thread count, the evenly-split preg quota used
    // to derive a preg's owning thread, and live entries per thread.
    nthreads: usize,
    preg_quota: usize,
    thread_valid: Vec<usize>,
    // The behavioral halves of `config.insertion` / `config.replacement`,
    // instantiated once at construction (see `ubrc_core::policy`).
    // Statically dispatched: the shipped policies resolve without a
    // virtual call on the read/write hot paths.
    insertion: AnyInsertion,
    replacement: AnyScorer,
    // The behavioral half of `config.partition` (see
    // `ubrc_core::partition`): consulted at insertion for admission and
    // victim ways, and at epoch boundaries for quota/way replanning.
    partition: AnyController,
    // Dynamic repartitioning (a dynamic `config.partition`, nthreads >
    // 1): the shadow-tag monitors feeding the partitioner and the
    // cumulative hit/miss marks of the previous epoch boundary (for
    // per-epoch deltas). Empty/None otherwise.
    monitor: Option<UtilityMonitor>,
    epoch_hits: Vec<u64>,
    epoch_misses: Vec<u64>,
}

impl RegisterCache {
    /// Creates an empty cache for a machine with `num_pregs` physical
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`RegCacheConfig::sets`]).
    pub fn new(config: RegCacheConfig, num_pregs: usize) -> Self {
        Self::new_smt(config, num_pregs, 1)
    }

    /// Creates an empty cache shared by `nthreads` SMT threads over an
    /// evenly partitioned physical register file: preg `p` belongs to
    /// thread `p / (num_pregs / nthreads)`. With `nthreads == 1` this is
    /// [`RegisterCache::new`] and [`RegCacheConfig::partition`] is inert.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry, `num_pregs` not divisible by
    /// `nthreads`, or an infeasible [`RegCacheConfig::partition`] /
    /// [`RegCacheConfig::epoch_adapt`] combination (see
    /// [`crate::controller_for`]). Callers wanting typed errors should
    /// validate first (the simulator's `try_new_smt` does).
    pub fn new_smt(config: RegCacheConfig, num_pregs: usize, nthreads: usize) -> Self {
        let sets = config.sets();
        assert!(nthreads >= 1, "nthreads must be at least 1");
        assert!(
            num_pregs.is_multiple_of(nthreads),
            "num_pregs must divide evenly across threads"
        );
        let partition = AnyController::from_config(&config, nthreads);
        let shadow = config.classify_misses.then(|| {
            // The shadow is the fully-associative *shared* baseline: it
            // classifies misses, it does not model partitioning.
            let shadow_config = RegCacheConfig {
                ways: config.entries,
                classify_misses: false,
                partition: CachePartition::Shared,
                ..config
            };
            Box::new(RegisterCache::new(shadow_config, num_pregs))
        });
        let multi = nthreads > 1;
        let stats = RegCacheStats {
            thread_occupancy: vec![TimeWeighted::default(); nthreads],
            thread_read_hits: vec![0; if multi { nthreads } else { 0 }],
            thread_read_misses: vec![0; if multi { nthreads } else { 0 }],
            ..RegCacheStats::default()
        };
        let dynamic = multi && config.partition.is_dynamic();
        Self {
            config,
            sets,
            entries: vec![Entry::default(); config.entries],
            tick: 0,
            valid_count: 0,
            per_preg: vec![PregState::default(); num_pregs],
            stats,
            shadow,
            nthreads,
            preg_quota: num_pregs / nthreads,
            thread_valid: vec![0; nthreads],
            insertion: AnyInsertion::from_policy(config.insertion),
            replacement: AnyScorer::from_policy(config.replacement),
            partition,
            monitor: dynamic.then(|| UtilityMonitor::new(config.entries, nthreads)),
            epoch_hits: vec![0; if dynamic { nthreads } else { 0 }],
            epoch_misses: vec![0; if dynamic { nthreads } else { 0 }],
        }
    }

    /// The owning thread of a physical register (always 0 with one
    /// thread).
    fn thread_of(&self, preg: PhysReg) -> usize {
        preg.0 as usize / self.preg_quota
    }

    /// The number of SMT threads this cache was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Replaces the insertion policy with a caller-supplied decider,
    /// routed through the [`AnyInsertion::Custom`] escape hatch — the
    /// dynamic-dispatch path every external
    /// [`InsertionDecider`](crate::InsertionDecider) implementation
    /// takes. The shipped policies reach the same decision logic
    /// through monomorphic enum variants instead.
    pub fn set_insertion(&mut self, decider: Box<dyn crate::InsertionDecider>) {
        self.insertion = decider.into();
    }

    /// Replaces the replacement scorer via the [`AnyScorer::Custom`]
    /// escape hatch; see [`RegisterCache::set_insertion`].
    pub fn set_replacement(&mut self, scorer: Box<dyn crate::ReplacementScorer>) {
        self.replacement = scorer.into();
    }

    /// Replaces the partition controller via the
    /// [`AnyController::Custom`] escape hatch; see
    /// [`RegisterCache::set_insertion`]. The controller must agree with
    /// [`RegCacheConfig::partition`] on feasibility (way counts,
    /// quotas) for the cache's occupancy accounting to stay coherent.
    pub fn set_partition(&mut self, controller: Box<dyn crate::PartitionController>) {
        self.partition = controller.into();
    }

    /// Live entries owned by `tid`.
    pub fn thread_occupancy(&self, tid: usize) -> usize {
        self.thread_valid[tid]
    }

    /// The per-thread live-entry cap, when [`CachePartition::OccupancyCap`]
    /// is active (`None` otherwise).
    pub fn occupancy_cap(&self) -> Option<usize> {
        (self.nthreads > 1 && self.config.partition == CachePartition::OccupancyCap)
            .then(|| self.config.entries / self.nthreads)
    }

    /// Ways of each set owned by one thread, when
    /// [`CachePartition::WayPartition`] is active (`None` otherwise).
    pub fn ways_per_thread(&self) -> Option<usize> {
        (self.nthreads > 1 && self.config.partition == CachePartition::WayPartition)
            .then(|| self.config.ways / self.nthreads)
    }

    /// The live-entry cap currently binding thread `tid`, under either
    /// occupancy-capped partition: the static `entries / nthreads`
    /// quota of [`CachePartition::OccupancyCap`], or the current
    /// dynamic quota of [`CachePartition::DynamicCap`]. `None` when no
    /// per-thread cap applies (shared or way-partitioned caches, or a
    /// single thread).
    pub fn current_cap(&self, tid: usize) -> Option<usize> {
        self.partition.cap(tid)
    }

    /// The per-thread quotas currently in force under
    /// [`CachePartition::DynamicCap`] (`None` otherwise). The slice
    /// always sums to the cache's total entry count.
    pub fn dynamic_caps(&self) -> Option<&[usize]> {
        self.partition.caps()
    }

    /// The per-thread way counts currently in force under
    /// [`CachePartition::DynamicWay`] (`None` otherwise). The slice
    /// always sums to the cache's associativity, laid out as contiguous
    /// blocks in thread order.
    pub fn way_counts(&self) -> Option<&[usize]> {
        self.partition.way_counts()
    }

    /// The thread owning `way` of every set, when ways are owned at all
    /// ([`CachePartition::WayPartition`] and
    /// [`CachePartition::DynamicWay`]; `None` otherwise).
    pub fn way_owner(&self, way: usize) -> Option<usize> {
        self.partition.way_owner(way)
    }

    /// The configured repartition period, when a dynamic partition
    /// ([`CachePartition::DynamicCap`] or [`CachePartition::DynamicWay`])
    /// is active on a multi-thread cache (`None` otherwise). Under
    /// [`EpochAdapt`](crate::EpochAdapt) the *live* period varies; gate the
    /// epoch stage on [`RegisterCache::epoch_due`] instead.
    pub fn epoch_cycles(&self) -> Option<u64> {
        self.partition.epoch_cycles()
    }

    /// True when a dynamic-partition epoch boundary must fire at cycle
    /// `now` (always false on static partitions and single-thread
    /// caches).
    pub fn epoch_due(&self, now: u64) -> bool {
        self.partition.epoch_due(now)
    }

    /// The configuration in use.
    pub fn config(&self) -> &RegCacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RegCacheStats {
        &self.stats
    }

    /// Consumes the cache and returns its accumulated statistics
    /// without copying them (the simulator's end-of-run path).
    pub fn into_stats(self) -> RegCacheStats {
        self.stats
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid_count
    }

    /// Flushes the occupancy integral up to `now`. Call once at the end
    /// of simulation before reading `stats().occupancy.average(now)`.
    pub fn finalize(&mut self, now: u64) {
        self.note_occupancy(now);
        if let Some(s) = &mut self.shadow {
            s.finalize(now);
        }
    }

    fn find(&self, preg: PhysReg, set: u16) -> Option<usize> {
        let s = set as usize % self.sets;
        let w = self.config.ways;
        (s * w..(s + 1) * w).find(|&i| self.entries[i].valid && self.entries[i].preg == preg.0)
    }

    fn note_occupancy(&mut self, now: u64) {
        self.stats.occupancy.update(now, self.valid_count as f64);
        for (t, &v) in self.thread_valid.iter().enumerate() {
            self.stats.thread_occupancy[t].update(now, v as f64);
        }
    }

    /// Declares a newly renamed destination value. Must be called once
    /// per produced value, before its `write`.
    pub fn produce(&mut self, preg: PhysReg) {
        let st = &mut self.per_preg[preg.0 as usize];
        debug_assert!(!st.active, "produce() on a live physical register");
        *st = PregState {
            ever_cached: false,
            active: true,
        };
        self.stats.values_produced += 1;
        if let Some(s) = &mut self.shadow {
            s.produce(preg);
        }
    }

    /// Retires one entry's lifetime statistics.
    fn close_entry(&mut self, e: Entry, now: u64) {
        self.stats.entry_lifetime_sum += now.saturating_sub(e.inserted_at);
        self.stats.entry_lifetime_count += 1;
        if e.reads == 0 {
            self.stats.cached_never_read += 1;
        }
    }

    /// Picks the way (relative to the set base) holding the minimum
    /// replacement score among `candidates`.
    fn min_score_way(&self, candidates: impl Iterator<Item = usize>, base: usize) -> Option<usize> {
        let scorer = &self.replacement;
        candidates.min_by_key(|&i| {
            let e = &self.entries[base + i];
            scorer.score(&VictimView {
                uses: e.uses,
                pinned: e.pinned,
                from_fill: e.from_fill,
                lru: e.lru,
                reads: e.reads,
            })
        })
    }

    /// Installs `preg` into `set`, evicting if necessary. Returns `false`
    /// when the per-thread occupancy cap dropped the insertion.
    fn insert(
        &mut self,
        preg: PhysReg,
        set: u16,
        uses: u8,
        pinned: bool,
        from_fill: bool,
        now: u64,
    ) -> bool {
        debug_assert!(self.find(preg, set).is_none(), "double insert");
        self.tick += 1;
        let tick = self.tick;
        let s = set as usize % self.sets;
        let w = self.config.ways;
        let base = s * w;
        let tid = self.thread_of(preg);
        let victim_idx = if self.partition.admit(tid, &self.thread_valid) {
            // Admitted: fill an invalid way of the controller's victim
            // range, else evict its minimum-score entry.
            let range = self.partition.victim_ways(tid);
            let slice = &self.entries[base..base + w];
            match range.clone().find(|&i| !slice[i].valid) {
                Some(i) => i,
                None => self
                    .min_score_way(range, base)
                    .expect("victim ranges are non-empty"),
            }
        } else {
            // At its occupancy cap: only this thread's own entries in
            // the set are evictable; with none here, drop the insertion.
            let own = (0..w).filter(|&i| {
                let e = &self.entries[base + i];
                e.valid && e.tid as usize == tid
            });
            match self.min_score_way(own, base) {
                Some(i) => i,
                None => {
                    self.stats.inserts_capped += 1;
                    return false;
                }
            }
        };
        let victim = self.entries[base + victim_idx];
        self.entries[base + victim_idx] = Entry {
            preg: preg.0,
            tid: tid as u16,
            uses,
            pinned,
            from_fill,
            lru: tick,
            reads: 0,
            inserted_at: now,
            valid: true,
            parity_bad: false,
        };
        if victim.valid {
            self.stats.evictions += 1;
            if victim.uses == 0 && !victim.pinned {
                self.stats.evictions_zero_use += 1;
            }
            self.close_entry(victim, now);
            self.thread_valid[victim.tid as usize] -= 1;
            self.partition.on_evict(victim.tid as usize);
        } else {
            self.valid_count += 1;
        }
        self.thread_valid[tid] += 1;
        self.partition.on_insert(tid);
        self.per_preg[preg.0 as usize].ever_cached = true;
        self.stats.cached_events += 1;
        self.note_occupancy(now);
        true
    }

    /// Presents a produced value to the write port, the cycle after its
    /// execution completes.
    ///
    /// * `remaining` — predicted uses still outstanding after
    ///   first-stage bypasses were deducted (from [`crate::UseTracker`]);
    /// * `pinned` — the predicted degree saturated at
    ///   [`RegCacheConfig::max_use_count`];
    /// * `first_stage_bypasses` — consumers satisfied from the bypass
    ///   network before this write (the non-bypass policy keys on it).
    pub fn write(
        &mut self,
        preg: PhysReg,
        set: u16,
        remaining: u8,
        pinned: bool,
        first_stage_bypasses: u32,
        now: u64,
    ) -> WriteOutcome {
        self.stats.writes_attempted += 1;
        let tid = self.thread_of(preg);
        let insert = self.insertion.should_insert(&InsertionContext {
            remaining,
            pinned,
            first_stage_bypasses,
            tid,
        });
        if !insert {
            self.stats.writes_filtered += 1;
            if let Some(s) = &mut self.shadow {
                s.write(preg, 0, remaining, pinned, first_stage_bypasses, now);
            }
            return WriteOutcome::Filtered;
        }
        if let Some(m) = &mut self.monitor {
            // Accepted writes mark the tag in the shadow stack even if
            // the quota drops the real insertion — a larger quota is
            // exactly what would have kept it.
            m.touch(tid, preg, set as usize % self.sets);
        }
        let inserted = self.insert(preg, set, remaining, pinned, false, now);
        if inserted {
            self.stats.writes_inserted += 1;
        }
        if let Some(s) = &mut self.shadow {
            s.write(preg, 0, remaining, pinned, first_stage_bypasses, now);
        }
        if inserted {
            WriteOutcome::Inserted
        } else {
            WriteOutcome::Capped
        }
    }

    /// Looks up a source operand. On a hit the remaining-use counter is
    /// decremented (unless pinned) and `true` is returned. On a miss the
    /// miss is classified into the statistics and `false` is returned;
    /// the caller fetches the value from the backing file and calls
    /// [`RegisterCache::fill`].
    // `now` is only forwarded to the shadow cache, but it keeps the
    // read/write/fill signatures uniform for callers.
    #[allow(clippy::only_used_in_recursion)]
    pub fn read(&mut self, preg: PhysReg, set: u16, now: u64) -> bool {
        self.stats.reads += 1;
        self.tick += 1;
        let tick = self.tick;
        let tid = preg.0 as usize / self.preg_quota;
        if let Some(m) = &mut self.monitor {
            // Monitored hit-or-miss: the shadow-stack depth this probe
            // lands at is the quota at which it would have been a hit.
            m.access(tid, preg, set as usize % self.sets);
        }
        if let Some(i) = self.find(preg, set) {
            let e = &mut self.entries[i];
            e.lru = tick;
            e.reads += 1;
            if !e.pinned {
                e.uses = e.uses.saturating_sub(1);
            }
            self.stats.read_hits += 1;
            if self.nthreads > 1 {
                self.stats.thread_read_hits[tid] += 1;
            }
            if let Some(s) = &mut self.shadow {
                s.read(preg, 0, now);
            }
            return true;
        }
        self.stats.read_misses += 1;
        if self.nthreads > 1 {
            self.stats.thread_read_misses[tid] += 1;
        }
        let class = self.classify_miss(preg);
        match class {
            MissClass::NotWritten => self.stats.misses_not_written += 1,
            MissClass::Capacity => self.stats.misses_capacity += 1,
            MissClass::Conflict => self.stats.misses_conflict += 1,
            MissClass::Unclassified => {}
        }
        if let Some(s) = &mut self.shadow {
            s.read(preg, 0, now);
        }
        false
    }

    fn classify_miss(&self, preg: PhysReg) -> MissClass {
        let Some(shadow) = &self.shadow else {
            return MissClass::Unclassified;
        };
        if !self.per_preg[preg.0 as usize].ever_cached {
            MissClass::NotWritten
        } else if shadow.contains(preg) {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        }
    }

    /// Installs a value fetched from the backing file after a miss. The
    /// remaining-use counter takes the *fill default* (§3.3).
    pub fn fill(&mut self, preg: PhysReg, set: u16, now: u64) {
        self.stats.fills += 1;
        // The read that triggered this fill has already been performed
        // from the backing file; the filled entry starts with the fill
        // default (the use count was lost at eviction).
        if let Some(m) = &mut self.monitor {
            let tid = preg.0 as usize / self.preg_quota;
            m.touch(tid, preg, set as usize % self.sets);
        }
        if self.find(preg, set).is_none() {
            // May be dropped by the occupancy cap; the caller already has
            // the value from the backing file either way.
            let _ = self.insert(preg, set, self.config.fill_default, false, true, now);
        }
        if let Some(s) = &mut self.shadow {
            s.fill(preg, 0, now);
        }
    }

    /// Records a consumer satisfied by the *second* bypass stage (the
    /// cache-write-to-read forward). Such consumers cannot affect the
    /// write decision (§3.1) but their use must still be deducted from
    /// the cached entry's remaining-use count. No-op if the value is
    /// not resident (it was filtered).
    pub fn bypass_consume(&mut self, preg: PhysReg, set: u16) {
        if let Some(i) = self.find(preg, set) {
            let e = &mut self.entries[i];
            if !e.pinned {
                e.uses = e.uses.saturating_sub(1);
            }
        }
        if let Some(s) = &mut self.shadow {
            s.bypass_consume(preg, 0);
        }
    }

    /// Invalidates the value when its physical register is freed
    /// (required for correctness, §2.2) and closes out the value's
    /// statistics.
    pub fn free(&mut self, preg: PhysReg, set: u16, now: u64) {
        let st = self.per_preg[preg.0 as usize];
        if st.active {
            self.stats.values_freed += 1;
            if !st.ever_cached {
                self.stats.values_never_cached += 1;
            }
        }
        self.per_preg[preg.0 as usize].active = false;
        if let Some(m) = &mut self.monitor {
            // The tag may be re-allocated to an unrelated value (this
            // path also runs under squash recovery), so the shadow
            // stack must forget it.
            let tid = preg.0 as usize / self.preg_quota;
            m.remove(tid, preg);
        }
        if let Some(i) = self.find(preg, set) {
            let e = self.entries[i];
            self.entries[i].valid = false;
            self.valid_count -= 1;
            self.thread_valid[e.tid as usize] -= 1;
            self.partition.on_evict(e.tid as usize);
            self.close_entry(e, now);
            self.note_occupancy(now);
        }
        if let Some(s) = &mut self.shadow {
            s.free(preg, 0, now);
        }
    }

    /// True when a value for `preg` is resident (any set — used by the
    /// shadow classifier and by tests).
    pub fn contains(&self, preg: PhysReg) -> bool {
        self.entries.iter().any(|e| e.valid && e.preg == preg.0)
    }

    /// The remaining-use count of a resident value, or `None` if not
    /// resident (for tests and assertions).
    pub fn remaining_uses(&self, preg: PhysReg) -> Option<u8> {
        self.entries
            .iter()
            .find(|e| e.valid && e.preg == preg.0)
            .map(|e| e.uses)
    }

    /// True when a resident value is pinned.
    pub fn is_pinned(&self, preg: PhysReg) -> Option<bool> {
        self.entries
            .iter()
            .find(|e| e.valid && e.preg == preg.0)
            .map(|e| e.pinned)
    }

    /// Snapshots every valid entry, for external invariant checking.
    pub fn entries(&self) -> impl Iterator<Item = EntryView> + '_ {
        let w = self.config.ways;
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(move |(i, e)| EntryView {
                set: (i / w) as u16,
                way: (i % w) as u16,
                tid: e.tid,
                preg: PhysReg(e.preg),
                uses: e.uses,
                pinned: e.pinned,
                from_fill: e.from_fill,
            })
    }

    /// Structural self-audit: checks that the cached `valid_count`
    /// matches the entry array, no physical register is resident twice,
    /// and every counter respects the configured saturation limit.
    /// Returns a description of the first violated invariant.
    ///
    /// # Errors
    ///
    /// Returns `Err(description)` when internal state is inconsistent
    /// (only possible after external corruption, e.g. fault injection).
    pub fn audit(&self) -> Result<(), String> {
        let live = self.entries.iter().filter(|e| e.valid).count();
        if live != self.valid_count {
            return Err(format!(
                "valid_count {} disagrees with {} live entries",
                self.valid_count, live
            ));
        }
        let mut seen = vec![false; self.per_preg.len()];
        let mut per_thread = vec![0usize; self.nthreads];
        let w = self.config.ways;
        for (i, e) in self.entries.iter().enumerate().filter(|(_, e)| e.valid) {
            let p = e.preg as usize;
            if p >= seen.len() {
                return Err(format!("entry tag p{p} out of range"));
            }
            if seen[p] {
                return Err(format!("p{p} resident in two entries"));
            }
            seen[p] = true;
            if e.uses > self.config.max_use_count {
                return Err(format!(
                    "p{p} remaining-use counter {} exceeds max_use_count {}",
                    e.uses, self.config.max_use_count
                ));
            }
            if e.tid as usize != self.thread_of(PhysReg(e.preg)) {
                return Err(format!(
                    "p{p} tagged thread {} but partitions to thread {}",
                    e.tid,
                    self.thread_of(PhysReg(e.preg))
                ));
            }
            per_thread[e.tid as usize] += 1;
            let way = i % w;
            if let Some(owner) = self.partition.way_owner(way) {
                if owner != e.tid as usize {
                    return Err(format!(
                        "p{p} (thread {}) resident in way {way}, owned by \
                         thread {owner}",
                        e.tid
                    ));
                }
            }
        }
        if per_thread != self.thread_valid {
            return Err(format!(
                "per-thread valid counts {:?} disagree with entries {:?}",
                self.thread_valid, per_thread
            ));
        }
        for (t, &v) in self.thread_valid.iter().enumerate() {
            if let Some(cap) = self.current_cap(t) {
                if v > cap {
                    return Err(format!(
                        "thread {t} holds {v} entries, above its occupancy cap {cap}"
                    ));
                }
            }
        }
        self.partition.audit(self.config.entries, w)?;
        Ok(())
    }

    /// Fault-injection hook: corrupts the replacement metadata of the
    /// `nth` valid entry (modulo occupancy) by unpinning it and forcing
    /// its remaining-use counter to 255 — the bit pattern a real SRAM
    /// upset could leave. Returns the victim's tag, or `None` when the
    /// cache is empty.
    pub fn corrupt_metadata(&mut self, nth: usize) -> Option<PhysReg> {
        if self.valid_count == 0 {
            return None;
        }
        let target = nth % self.valid_count;
        let e = self
            .entries
            .iter_mut()
            .filter(|e| e.valid)
            .nth(target)
            .expect("target < valid_count");
        e.pinned = false;
        e.uses = 255;
        Some(PhysReg(e.preg))
    }

    /// Fault-injection hook: flips a data bit in the `nth` valid entry
    /// (modulo occupancy), marking its modeled parity bad. A protected
    /// read ([`crate::ProtectionConfig::cache_parity`]) detects the
    /// upset via [`RegisterCache::take_parity_fault`] and re-fills from
    /// the backing file. Returns the victim's tag, or `None` when the
    /// cache is empty.
    pub fn corrupt_data(&mut self, nth: usize) -> Option<PhysReg> {
        if self.valid_count == 0 {
            return None;
        }
        let target = nth % self.valid_count;
        let e = self
            .entries
            .iter_mut()
            .filter(|e| e.valid)
            .nth(target)
            .expect("target < valid_count");
        e.parity_bad = true;
        Some(PhysReg(e.preg))
    }

    /// Targeted variant of [`RegisterCache::corrupt_data`]: marks the
    /// resident entry for `preg` parity-bad. Returns `false` (no fault
    /// landed) when the value is not resident.
    pub fn corrupt_preg_data(&mut self, preg: PhysReg) -> bool {
        match self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.preg == preg.0)
        {
            Some(e) => {
                e.parity_bad = true;
                true
            }
            None => false,
        }
    }

    /// Parity check performed by a protected read port *before* the
    /// lookup: when the resident entry for `preg` carries a parity
    /// error, the entry is invalidated (the clean copy lives in the
    /// backing file, so the subsequent [`RegisterCache::read`] misses
    /// and takes the ordinary fill path) and `true` is returned.
    ///
    /// The invalidation is not an eviction (no replacement decision was
    /// made) and is deliberately *not* forwarded to the shadow
    /// classifier, which models a fault-free baseline.
    pub fn take_parity_fault(&mut self, preg: PhysReg, set: u16, now: u64) -> bool {
        let Some(i) = self.find(preg, set) else {
            return false;
        };
        if !self.entries[i].parity_bad {
            return false;
        }
        let e = self.entries[i];
        self.entries[i].valid = false;
        self.valid_count -= 1;
        self.thread_valid[e.tid as usize] -= 1;
        self.partition.on_evict(e.tid as usize);
        self.close_entry(e, now);
        self.stats.parity_invalidations += 1;
        self.note_occupancy(now);
        true
    }

    /// The partition's current quota state in *entry equivalents*: the
    /// dynamic caps verbatim, or way counts × sets under
    /// [`CachePartition::DynamicWay`] (a way's ownership is worth one
    /// entry per set). Empty for static partitions.
    fn quota_view(&self) -> Vec<usize> {
        if let Some(caps) = self.partition.caps() {
            caps.to_vec()
        } else if let Some(counts) = self.partition.way_counts() {
            counts.iter().map(|&c| c * self.sets).collect()
        } else {
            Vec::new()
        }
    }

    /// Runs one dynamic-partition epoch boundary at cycle `now`:
    /// snapshots per-thread hit/miss deltas since the previous boundary,
    /// asks the [`PartitionController`](crate::PartitionController) for a new plan computed from the
    /// lookahead utility partitioner (see [`crate::monitor`]), enforces
    /// it — under [`CachePartition::DynamicCap`] by trimming each
    /// over-quota thread down to its new cap (evicting its own *unpinned*
    /// entries, lowest replacement score first — the same victims an
    /// at-cap insert would pick); under [`CachePartition::DynamicWay`]
    /// by draining reassigned ways (see
    /// `RegisterCache::reassign_ways`) — ages the monitors, and
    /// broadcasts the resulting [`EpochFeedback`] to the insertion and
    /// replacement policies' `on_epoch` hooks.
    ///
    /// Quota floors guarantee feasibility: every thread keeps at least
    /// `max(1, pinned entries)` (under `DynamicCap`, raised toward the
    /// configured `min_cap` in thread order while budget remains) or
    /// `max(1, pinned per fullest set)` ways (under `DynamicWay`).
    /// Between boundaries the occupancy and placement invariants bound
    /// the pinned footprints by the current quotas, so the floors always
    /// fit — by induction the quotas stay ≥ 1 each and conserve the
    /// total at every boundary.
    ///
    /// Boundary evictions are deliberately *not* forwarded to the
    /// shadow classifier, which models the fully-associative shared
    /// baseline (the same reasoning as
    /// [`RegisterCache::take_parity_fault`]).
    ///
    /// # Panics
    ///
    /// Panics when the cache is not a multi-thread dynamic-partition
    /// cache; the simulator only schedules the epoch stage when it is.
    pub fn epoch_boundary(&mut self, now: u64) -> EpochFeedback {
        assert!(
            self.nthreads > 1 && self.config.partition.is_dynamic(),
            "epoch_boundary on a non-dynamic cache"
        );
        let n = self.nthreads;
        let w = self.config.ways;
        let mut hits = vec![0u64; n];
        let mut misses = vec![0u64; n];
        for t in 0..n {
            hits[t] = self.stats.thread_read_hits[t] - self.epoch_hits[t];
            misses[t] = self.stats.thread_read_misses[t] - self.epoch_misses[t];
            self.epoch_hits[t] = self.stats.thread_read_hits[t];
            self.epoch_misses[t] = self.stats.thread_read_misses[t];
        }
        let old_caps = self.quota_view();
        let mut pinned = vec![0usize; n];
        for e in self.entries.iter().filter(|e| e.valid && e.pinned) {
            pinned[e.tid as usize] += 1;
        }
        let mut pinned_per_set_max = vec![0usize; n];
        for s in 0..self.sets {
            let mut in_set = vec![0usize; n];
            for e in self.entries[s * w..(s + 1) * w]
                .iter()
                .filter(|e| e.valid && e.pinned)
            {
                in_set[e.tid as usize] += 1;
            }
            for t in 0..n {
                pinned_per_set_max[t] = pinned_per_set_max[t].max(in_set[t]);
            }
        }
        let cx = EpochContext {
            monitor: self
                .monitor
                .as_ref()
                .expect("dynamic-partition caches carry monitors"),
            pinned: &pinned,
            pinned_per_set_max: &pinned_per_set_max,
            entries: self.config.entries,
            ways: w,
            sets: self.sets,
        };
        let plan = self
            .partition
            .epoch_boundary(&cx)
            .expect("dynamic controllers plan every boundary");
        let (new_caps, new_ways) = match plan {
            EpochPlan::Caps(caps) => {
                for (t, &cap) in caps.iter().enumerate().take(n) {
                    while self.thread_valid[t] > cap {
                        let victim = self
                            .entries
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| e.valid && e.tid as usize == t && !e.pinned)
                            .min_by_key(|(_, e)| {
                                self.replacement.score(&VictimView {
                                    uses: e.uses,
                                    pinned: e.pinned,
                                    from_fill: e.from_fill,
                                    lru: e.lru,
                                    reads: e.reads,
                                })
                            })
                            .map(|(i, _)| i)
                            .expect("floors cover every pinned entry");
                        let e = self.entries[victim];
                        self.entries[victim].valid = false;
                        self.valid_count -= 1;
                        self.thread_valid[t] -= 1;
                        self.partition.on_evict(t);
                        self.stats.evictions += 1;
                        if e.uses == 0 && !e.pinned {
                            self.stats.evictions_zero_use += 1;
                        }
                        self.stats.epoch_evictions += 1;
                        self.close_entry(e, now);
                    }
                }
                (caps, Vec::new())
            }
            EpochPlan::Ways(counts) => {
                self.reassign_ways(now);
                let caps = counts.iter().map(|&c| c * self.sets).collect();
                (caps, counts)
            }
        };
        self.note_occupancy(now);
        self.monitor
            .as_mut()
            .expect("dynamic-partition caches carry monitors")
            .decay();
        self.stats.epochs += 1;
        let fb = EpochFeedback {
            epoch: self.stats.epochs,
            cycle: now,
            hits,
            misses,
            occupancy: self.thread_valid.clone(),
            old_caps,
            new_caps,
            new_ways,
        };
        self.insertion.on_epoch(&fb);
        self.replacement.on_epoch(&fb);
        fb
    }

    /// Enforces a freshly installed [`CachePartition::DynamicWay`] way
    /// map (the controller already holds the *new* ownership when this
    /// runs). Two passes per the dataflow in DESIGN.md:
    ///
    /// 1. **Drain** — every valid entry sitting in a way its thread no
    ///    longer owns is removed: unpinned entries are evicted (counted
    ///    like quota-trim evictions), pinned entries are set aside as
    ///    migrants.
    /// 2. **Migrate** — each pinned migrant is re-placed in its own
    ///    set inside its thread's new way block, filling an invalid way
    ///    first, else evicting the block's minimum-score *unpinned*
    ///    entry. The way floors cover each thread's pinned entries in
    ///    its fullest set, so a slot always exists. Migration preserves
    ///    the entry verbatim (LRU stamp, use count, lifetime origin) —
    ///    it is not an eviction or a re-insertion.
    fn reassign_ways(&mut self, now: u64) {
        let w = self.config.ways;
        let mut migrants: Vec<(usize, Entry)> = Vec::new();
        for s in 0..self.sets {
            let base = s * w;
            for i in 0..w {
                let e = self.entries[base + i];
                if !e.valid {
                    continue;
                }
                let owner = self
                    .partition
                    .way_owner(i)
                    .expect("DynamicWay owns every way");
                if owner == e.tid as usize {
                    continue;
                }
                self.entries[base + i].valid = false;
                self.valid_count -= 1;
                self.thread_valid[e.tid as usize] -= 1;
                self.partition.on_evict(e.tid as usize);
                if e.pinned {
                    migrants.push((s, e));
                } else {
                    self.stats.evictions += 1;
                    if e.uses == 0 {
                        self.stats.evictions_zero_use += 1;
                    }
                    self.stats.epoch_evictions += 1;
                    self.close_entry(e, now);
                }
            }
        }
        for (s, e) in migrants {
            let base = s * w;
            let tid = e.tid as usize;
            let range = self.partition.victim_ways(tid);
            let slot = match range.clone().find(|&i| !self.entries[base + i].valid) {
                Some(i) => i,
                None => {
                    let i = self
                        .min_score_way(range.filter(|&i| !self.entries[base + i].pinned), base)
                        .expect("way floors cover every pinned entry");
                    let v = self.entries[base + i];
                    self.stats.evictions += 1;
                    if v.uses == 0 && !v.pinned {
                        self.stats.evictions_zero_use += 1;
                    }
                    self.stats.epoch_evictions += 1;
                    self.close_entry(v, now);
                    self.valid_count -= 1;
                    self.thread_valid[v.tid as usize] -= 1;
                    self.partition.on_evict(v.tid as usize);
                    i
                }
            };
            self.entries[base + slot] = e;
            self.valid_count += 1;
            self.thread_valid[tid] += 1;
            self.partition.on_insert(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RegCacheConfig;

    const NPREGS: usize = 64;

    fn ub(entries: usize, ways: usize) -> RegisterCache {
        RegisterCache::new(RegCacheConfig::use_based(entries, ways), NPREGS)
    }

    #[test]
    fn write_then_read_hits_and_decrements() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        assert_eq!(
            c.write(PhysReg(1), 0, 2, false, 0, 10),
            WriteOutcome::Inserted
        );
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(2));
        assert!(c.read(PhysReg(1), 0, 11));
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(1));
        assert!(c.read(PhysReg(1), 0, 12));
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(0));
        // Zero uses does not mean eviction: still readable.
        assert!(c.read(PhysReg(1), 0, 13));
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(0));
    }

    #[test]
    fn use_based_insertion_filters_dead_values() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        assert_eq!(
            c.write(PhysReg(1), 0, 0, false, 1, 10),
            WriteOutcome::Filtered
        );
        assert!(!c.contains(PhysReg(1)));
        assert!(!c.read(PhysReg(1), 0, 11));
        assert_eq!(c.stats().writes_filtered, 1);
    }

    #[test]
    fn use_based_insertion_keeps_values_with_remaining_uses_despite_bypasses() {
        // The key advantage over non-bypass (§3.1): a value that
        // bypassed to SOME consumers but still has uses left is cached.
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        assert_eq!(
            c.write(PhysReg(1), 0, 2, false, 3, 10),
            WriteOutcome::Inserted
        );
        assert!(c.contains(PhysReg(1)));
    }

    #[test]
    fn non_bypass_filters_on_any_bypass() {
        let mut c = RegisterCache::new(RegCacheConfig::non_bypass(8, 2), NPREGS);
        c.produce(PhysReg(1));
        c.produce(PhysReg(2));
        assert_eq!(
            c.write(PhysReg(1), 0, 2, false, 1, 10),
            WriteOutcome::Filtered
        );
        assert_eq!(
            c.write(PhysReg(2), 0, 0, false, 0, 10),
            WriteOutcome::Inserted
        );
    }

    #[test]
    fn write_all_always_inserts() {
        let mut c = RegisterCache::new(RegCacheConfig::lru(8, 2), NPREGS);
        c.produce(PhysReg(1));
        assert_eq!(
            c.write(PhysReg(1), 0, 0, false, 5, 10),
            WriteOutcome::Inserted
        );
    }

    #[test]
    fn pinned_values_always_insert_and_never_decrement() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        assert_eq!(
            c.write(PhysReg(1), 0, 7, true, 7, 10),
            WriteOutcome::Inserted
        );
        for t in 11..30 {
            assert!(c.read(PhysReg(1), 0, t));
        }
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(7));
        assert_eq!(c.is_pinned(PhysReg(1)), Some(true));
    }

    #[test]
    fn fewest_uses_replacement_picks_lowest_count() {
        let mut c = ub(2, 2); // one set of two ways
        for (p, uses) in [(1u16, 3u8), (2, 1)] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, uses, false, 0, 10);
        }
        c.produce(PhysReg(3));
        c.write(PhysReg(3), 0, 2, false, 0, 11);
        // Victim must be preg 2 (1 use) not preg 1 (3 uses).
        assert!(c.contains(PhysReg(1)));
        assert!(!c.contains(PhysReg(2)));
        assert!(c.contains(PhysReg(3)));
    }

    #[test]
    fn fewest_uses_prefers_zero_use_victims() {
        let mut c = ub(2, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 1, false, 0, 10);
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 1, false, 0, 10);
        assert!(c.read(PhysReg(2), 0, 11)); // preg 2 now zero uses
        c.produce(PhysReg(3));
        c.write(PhysReg(3), 0, 1, false, 0, 12);
        assert!(!c.contains(PhysReg(2)));
        assert_eq!(c.stats().evictions_zero_use, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn pinned_entries_resist_replacement() {
        let mut c = ub(2, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 7, true, 0, 10);
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 5, false, 0, 10);
        c.produce(PhysReg(3));
        c.write(PhysReg(3), 0, 1, false, 0, 11);
        // preg 2 (5 uses, unpinned) must be the victim, not pinned preg 1.
        assert!(c.contains(PhysReg(1)));
        assert!(!c.contains(PhysReg(2)));
    }

    #[test]
    fn expected_hit_count_spares_fill_entries() {
        // One set of two ways, EHC replacement. A zero-use fill entry
        // outranks a zero-use write entry, so the write entry is the
        // victim — FewestUses would have evicted the *fill* entry (its
        // older tie-break tick loses).
        let mk = |cfg: RegCacheConfig| {
            let mut c = RegisterCache::new(cfg, NPREGS);
            c.produce(PhysReg(1));
            c.write(PhysReg(1), 0, 0, false, 1, 1); // filtered
            assert!(!c.read(PhysReg(1), 0, 2)); // miss
            c.fill(PhysReg(1), 0, 3); // fill-installed, 0 uses
            c.produce(PhysReg(2));
            c.write(PhysReg(2), 0, 1, false, 0, 4);
            assert!(c.read(PhysReg(2), 0, 5)); // preg 2 now 0 uses, newer tick
            c.produce(PhysReg(3));
            c.write(PhysReg(3), 0, 1, false, 0, 6); // forces an eviction
            c
        };
        let ehc = mk(RegCacheConfig::expected_hit_count(2, 2));
        assert!(ehc.contains(PhysReg(1)), "fill entry must survive");
        assert!(!ehc.contains(PhysReg(2)));

        let fu = mk(RegCacheConfig::use_based(2, 2));
        assert!(!fu.contains(PhysReg(1)), "FewestUses evicts the older");
        assert!(fu.contains(PhysReg(2)));
    }

    #[test]
    fn lru_replacement_ignores_use_counts() {
        let mut c = RegisterCache::new(RegCacheConfig::lru(2, 2), NPREGS);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 7, false, 0, 10);
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 0, false, 0, 11);
        c.read(PhysReg(1), 0, 12); // refresh preg 1
        c.produce(PhysReg(3));
        c.write(PhysReg(3), 0, 0, false, 0, 13);
        // LRU victim is preg 2 despite preg 1 having more uses.
        assert!(c.contains(PhysReg(1)));
        assert!(!c.contains(PhysReg(2)));
    }

    #[test]
    fn fill_uses_fill_default_and_is_unpinned() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 0, false, 1, 10); // filtered
        assert!(!c.read(PhysReg(1), 0, 11)); // miss
        c.fill(PhysReg(1), 0, 12);
        assert_eq!(c.remaining_uses(PhysReg(1)), Some(0)); // fill default 0
        assert_eq!(c.is_pinned(PhysReg(1)), Some(false));
        assert!(c.read(PhysReg(1), 0, 13)); // now hits
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn free_invalidates_and_counts_never_cached() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 0, false, 1, 10); // filtered, never cached
        c.free(PhysReg(1), 0, 20);
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 1, false, 0, 21);
        c.free(PhysReg(2), 0, 30);
        assert!(!c.contains(PhysReg(2)));
        let s = c.stats();
        assert_eq!(s.values_freed, 2);
        assert_eq!(s.values_never_cached, 1);
    }

    #[test]
    fn entry_lifetime_and_never_read_accounting() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 1, false, 0, 100);
        c.free(PhysReg(1), 0, 130);
        let s = c.stats();
        assert_eq!(s.entry_lifetime_sum, 30);
        assert_eq!(s.entry_lifetime_count, 1);
        assert_eq!(s.cached_never_read, 1);
        assert_eq!(s.frac_cached_never_read(), Some(1.0));
    }

    #[test]
    fn miss_classification_not_written_vs_conflict_vs_capacity() {
        let mut cfg = RegCacheConfig::use_based(2, 1); // 2 sets, direct-mapped
        cfg.classify_misses = true;
        let mut c = RegisterCache::new(cfg, NPREGS);

        // Not-written: filtered value.
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 0, false, 1, 1);
        assert!(!c.read(PhysReg(1), 0, 2));
        assert_eq!(c.stats().misses_not_written, 1);

        // Conflict: two live values forced into set 0 of the
        // direct-mapped cache while the 2-entry FA shadow holds both.
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 3, false, 0, 3);
        c.produce(PhysReg(3));
        c.write(PhysReg(3), 0, 3, false, 0, 4); // evicts preg 2 in real, not in shadow
        assert!(!c.read(PhysReg(2), 0, 5));
        assert_eq!(c.stats().misses_conflict, 1);
    }

    #[test]
    fn miss_classification_capacity() {
        let mut cfg = RegCacheConfig::use_based(2, 2); // 1 set of 2 (FA)
        cfg.classify_misses = true;
        let mut c = RegisterCache::new(cfg, NPREGS);
        for p in 1..=3u16 {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, 3, false, 0, p as u64);
        }
        // preg 1 evicted from both real and shadow (same capacity).
        assert!(!c.read(PhysReg(1), 0, 10));
        assert_eq!(c.stats().misses_capacity, 1);
        assert_eq!(c.stats().misses_conflict, 0);
    }

    #[test]
    fn fully_associative_cache_has_no_conflict_misses() {
        let mut cfg = RegCacheConfig::use_based(4, 4);
        cfg.classify_misses = true;
        let mut c = RegisterCache::new(cfg, NPREGS);
        for p in 1..=8u16 {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, 3, false, 0, p as u64);
        }
        for p in 1..=8u16 {
            c.read(PhysReg(p), 0, 20 + p as u64);
        }
        assert_eq!(c.stats().misses_conflict, 0);
        assert!(c.stats().misses_capacity > 0);
    }

    #[test]
    fn occupancy_integrates_over_time() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 1, false, 0, 0);
        c.free(PhysReg(1), 0, 50);
        c.finalize(100);
        // One entry for 50 cycles out of 100 -> average 0.5.
        let avg = c.stats().occupancy.average(100).unwrap();
        assert!((avg - 0.5).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn table2_metric_helpers() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 2, false, 0, 0);
        c.read(PhysReg(1), 0, 1);
        c.read(PhysReg(1), 0, 2);
        c.free(PhysReg(1), 0, 10);
        let s = c.stats();
        assert_eq!(s.reads_per_cached_value(), Some(2.0));
        assert_eq!(s.cache_count_per_value(), Some(1.0));
        assert_eq!(s.avg_entry_lifetime(), Some(10.0));
        assert_eq!(s.miss_rate(), Some(0.0));
    }

    // --- SMT partitioning ---------------------------------------------
    //
    // Two threads over 64 pregs: thread 0 owns p0..p31, thread 1 owns
    // p32..p63.

    fn smt(partition: CachePartition, entries: usize, ways: usize) -> RegisterCache {
        let mut cfg = RegCacheConfig::lru(entries, ways); // write-all: every write lands
        cfg.partition = partition;
        RegisterCache::new_smt(cfg, NPREGS, 2)
    }

    #[test]
    fn single_thread_cache_ignores_partition_policy() {
        let mut cfg = RegCacheConfig::lru(2, 2);
        cfg.partition = CachePartition::OccupancyCap;
        let mut c = RegisterCache::new(cfg, NPREGS);
        // Cap would be 2 for the single thread anyway; behavior is Shared.
        for p in 1..=3u16 {
            c.produce(PhysReg(p));
            assert_eq!(
                c.write(PhysReg(p), 0, 1, false, 0, p as u64),
                WriteOutcome::Inserted
            );
        }
        assert_eq!(c.occupancy(), 2);
        assert_eq!(c.thread_occupancy(0), 2);
        c.audit().unwrap();
    }

    #[test]
    fn way_partition_confines_each_thread_to_its_ways() {
        // One set of 4 ways, 2 threads -> each owns 2 ways.
        let mut c = smt(CachePartition::WayPartition, 4, 4);
        for p in [0u16, 1, 2] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, 1, false, 0, 1 + p as u64);
        }
        // Thread 0 overflowed its 2 ways: p0 evicted by p2, both remain
        // confined to ways 0..2.
        assert!(!c.contains(PhysReg(0)));
        assert!(c.contains(PhysReg(1)));
        assert!(c.contains(PhysReg(2)));
        // Thread 1 still inserts into its own empty ways.
        c.produce(PhysReg(40));
        c.write(PhysReg(40), 0, 1, false, 0, 9);
        assert!(c.contains(PhysReg(40)));
        for e in c.entries() {
            let owner = e.preg.0 as usize / 32;
            assert_eq!(e.tid as usize, owner);
            assert_eq!(e.way as usize / 2, owner, "way {} tid {}", e.way, e.tid);
        }
        c.audit().unwrap();
    }

    #[test]
    fn way_partition_never_evicts_a_peer() {
        let mut c = smt(CachePartition::WayPartition, 4, 4);
        // Thread 1 fills its two ways.
        for p in [40u16, 41] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, 1, false, 0, 1);
        }
        // Thread 0 hammers the same set far past its own capacity.
        for p in 0..8u16 {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), 0, 1, false, 0, 2 + p as u64);
        }
        assert!(c.contains(PhysReg(40)));
        assert!(c.contains(PhysReg(41)));
        assert_eq!(c.thread_occupancy(0), 2);
        assert_eq!(c.thread_occupancy(1), 2);
        c.audit().unwrap();
    }

    #[test]
    fn occupancy_cap_evicts_own_entries_once_at_cap() {
        // 4 entries, 2 ways (2 sets), cap = 2 per thread.
        let mut c = smt(CachePartition::OccupancyCap, 4, 2);
        for (p, set) in [(0u16, 0u16), (1, 1)] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), set, 1, false, 0, 1);
        }
        assert_eq!(c.thread_occupancy(0), 2); // at cap
                                              // A third insert from thread 0 must evict thread 0's own entry
                                              // in the target set, leaving total occupancy at the cap.
        c.produce(PhysReg(2));
        assert_eq!(
            c.write(PhysReg(2), 0, 1, false, 0, 2),
            WriteOutcome::Inserted
        );
        assert!(!c.contains(PhysReg(0)));
        assert!(c.contains(PhysReg(2)));
        assert_eq!(c.thread_occupancy(0), 2);
        c.audit().unwrap();
    }

    #[test]
    fn occupancy_cap_drops_inserts_with_nothing_evictable() {
        let mut c = smt(CachePartition::OccupancyCap, 4, 2);
        // Thread 0 reaches its cap entirely in set 0's ways... that is
        // impossible with 2 ways, so: cap filled across sets 0 and 1.
        for (p, set) in [(0u16, 0u16), (1, 1)] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), set, 1, false, 0, 1);
        }
        // Free p1 so nothing of thread 0's lives in set 1, then re-reach
        // the cap in set 0 only... cap is 2, set 0 has 2 ways: fill both.
        c.free(PhysReg(1), 1, 2);
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 0, 1, false, 0, 3);
        assert_eq!(c.thread_occupancy(0), 2);
        // At cap, inserting into set 1 where thread 0 owns nothing: drop.
        c.produce(PhysReg(3));
        assert_eq!(c.write(PhysReg(3), 1, 1, false, 0, 4), WriteOutcome::Capped);
        assert!(!c.contains(PhysReg(3)));
        assert_eq!(c.stats().inserts_capped, 1);
        assert_eq!(c.stats().writes_inserted, 3);
        c.audit().unwrap();
    }

    #[test]
    fn occupancy_cap_under_cap_may_evict_peers() {
        // Shared ways: a thread below its cap replaces whatever scores
        // lowest, including a peer's entry.
        let mut c = smt(CachePartition::OccupancyCap, 2, 2);
        // cap = 1. Thread 1 fills both ways? cap=1 stops it at one.
        c.produce(PhysReg(40));
        c.write(PhysReg(40), 0, 1, false, 0, 1);
        c.produce(PhysReg(41));
        assert_eq!(
            c.write(PhysReg(41), 0, 1, false, 0, 2),
            WriteOutcome::Inserted
        );
        assert!(!c.contains(PhysReg(40)), "own-entry eviction at cap");
        // Thread 0 (under cap) takes the free way.
        c.produce(PhysReg(0));
        assert_eq!(
            c.write(PhysReg(0), 0, 1, false, 0, 3),
            WriteOutcome::Inserted
        );
        assert_eq!(c.thread_occupancy(0), 1);
        assert_eq!(c.thread_occupancy(1), 1);
        c.audit().unwrap();
    }

    #[test]
    fn shared_partition_matches_legacy_behavior_with_two_threads() {
        // Same op sequence against a 1-thread cache and a 2-thread
        // Shared cache: identical hits, misses, and residency.
        let ops = |c: &mut RegisterCache| {
            for (t, p) in [0u16, 1, 33, 34, 2, 35].into_iter().enumerate() {
                c.produce(PhysReg(p));
                c.write(PhysReg(p), p, 2, false, 0, t as u64);
            }
            (0..NPREGS as u16)
                .map(|p| c.read(PhysReg(p), p, 100))
                .collect::<Vec<_>>()
        };
        let mut solo = RegisterCache::new(RegCacheConfig::lru(8, 2), NPREGS);
        let mut duo = smt(CachePartition::Shared, 8, 2);
        assert_eq!(ops(&mut solo), ops(&mut duo));
        assert_eq!(solo.stats().read_hits, duo.stats().read_hits);
        assert_eq!(
            duo.thread_occupancy(0) + duo.thread_occupancy(1),
            duo.occupancy()
        );
        duo.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "ways divisible by nthreads")]
    fn way_partition_rejects_indivisible_ways() {
        let mut cfg = RegCacheConfig::use_based(9, 3);
        cfg.partition = CachePartition::WayPartition;
        let _ = RegisterCache::new_smt(cfg, NPREGS, 2);
    }

    fn dyncap(entries: usize, ways: usize) -> RegisterCache {
        smt(
            CachePartition::DynamicCap {
                epoch_cycles: 64,
                min_cap: 1,
            },
            entries,
            ways,
        )
    }

    #[test]
    fn dynamic_cap_starts_at_the_even_split_and_enforces_it() {
        // 8 entries, 2 threads: initial quotas are the OccupancyCap
        // split [4, 4], binding until the first epoch boundary.
        let mut c = dyncap(8, 2);
        assert_eq!(c.dynamic_caps(), Some(&[4usize, 4][..]));
        assert_eq!(c.current_cap(0), Some(4));
        assert_eq!(c.epoch_cycles(), Some(64));
        for (i, p) in [40u16, 41, 42, 43, 44].into_iter().enumerate() {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), i as u16, 1, false, 0, 1 + i as u64);
        }
        // The fifth write was at cap: it evicted one of thread 1's own
        // entries rather than growing past the quota.
        assert_eq!(c.thread_occupancy(1), 4);
        c.audit().unwrap();
    }

    #[test]
    fn epoch_boundary_moves_quota_to_the_reuse_thread_and_trims() {
        let mut c = dyncap(8, 2); // 4 sets; sets 0 and 2 feed the monitors
                                  // Thread 0 keeps two hot values and re-reads them.
        for (p, set) in [(0u16, 0u16), (1, 2)] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), set, 7, false, 0, 1);
        }
        for now in 2..6u64 {
            assert!(c.read(PhysReg(0), 0, now));
            assert!(c.read(PhysReg(1), 2, now));
        }
        // Thread 1 streams writes without any reuse, filling its quota.
        for (i, p) in (40u16..45).enumerate() {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), i as u16, 1, false, 0, 6 + i as u64);
        }
        assert_eq!(c.thread_occupancy(1), 4);
        let fb = c.epoch_boundary(64);
        // The partitioner hands the reuse thread the larger quota and
        // conserves the total; thread 1 was trimmed down to its new cap
        // by evicting its own entries.
        assert!(
            fb.new_caps[0] > fb.new_caps[1],
            "reuse thread must win quota: {:?}",
            fb.new_caps
        );
        assert_eq!(fb.new_caps.iter().sum::<usize>(), 8);
        assert_eq!(fb.old_caps, vec![4, 4]);
        assert!(c.thread_occupancy(1) <= fb.new_caps[1]);
        assert!(c.stats().epoch_evictions > 0, "trim must evict");
        assert_eq!(c.stats().epochs, 1);
        // The hot values survived the boundary.
        assert!(c.contains(PhysReg(0)));
        assert!(c.contains(PhysReg(1)));
        c.audit().unwrap();
    }

    #[test]
    fn epoch_boundary_never_evicts_pinned_entries() {
        let mut c = dyncap(8, 2);
        // Thread 1 holds three pinned values; thread 0 shows heavy reuse
        // so the partitioner wants to shrink thread 1's quota.
        for (i, p) in (40u16..43).enumerate() {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), i as u16, 3, true, 0, 1 + i as u64);
        }
        for (p, set) in [(0u16, 0u16), (1, 2)] {
            c.produce(PhysReg(p));
            c.write(PhysReg(p), set, 7, false, 0, 4);
        }
        for now in 5..12u64 {
            assert!(c.read(PhysReg(0), 0, now));
            assert!(c.read(PhysReg(1), 2, now));
        }
        let fb = c.epoch_boundary(64);
        // The quota floor covers every pinned entry, so all three stay.
        assert!(fb.new_caps[1] >= 3, "floor must cover pins: {fb:?}");
        for p in 40u16..43 {
            assert!(c.contains(PhysReg(p)), "pinned p{p} evicted");
        }
        c.audit().unwrap();
    }

    #[test]
    fn epoch_feedback_reports_per_epoch_deltas() {
        let mut c = dyncap(8, 2);
        c.produce(PhysReg(0));
        c.write(PhysReg(0), 0, 7, false, 0, 1);
        for now in 2..5u64 {
            assert!(c.read(PhysReg(0), 0, now));
        }
        assert!(!c.read(PhysReg(33), 0, 5)); // thread 1 miss
        let fb1 = c.epoch_boundary(64);
        assert_eq!(fb1.hits, vec![3, 0]);
        assert_eq!(fb1.misses, vec![0, 1]);
        assert_eq!(fb1.epoch, 1);
        assert_eq!(fb1.cycle, 64);
        assert_eq!(fb1.hit_rate(0), Some(1.0));
        assert_eq!(fb1.hit_rate(1), Some(0.0));
        // The second epoch reports only its own delta.
        assert!(c.read(PhysReg(0), 0, 70));
        let fb2 = c.epoch_boundary(128);
        assert_eq!(fb2.hits, vec![1, 0]);
        assert_eq!(fb2.misses, vec![0, 0]);
        assert_eq!(fb2.hit_rate(1), None, "no accesses this epoch");
        assert_eq!(fb2.epoch, 2);
    }

    #[test]
    #[should_panic(expected = "min_cap x nthreads exceeds the cache")]
    fn dynamic_cap_rejects_an_infeasible_min_cap() {
        let _ = smt(
            CachePartition::DynamicCap {
                epoch_cycles: 64,
                min_cap: 5,
            },
            8,
            2,
        );
    }

    #[test]
    fn parity_fault_invalidates_on_protected_read() {
        let mut c = ub(8, 2);
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 3, false, 0, 10);
        assert_eq!(c.corrupt_data(0), Some(PhysReg(1)));
        // A clean entry in another set is untouched.
        c.produce(PhysReg(2));
        c.write(PhysReg(2), 1, 3, false, 0, 10);
        assert!(!c.take_parity_fault(PhysReg(2), 1, 11), "clean entry");
        // The protected read detects, invalidates, then misses.
        assert!(c.take_parity_fault(PhysReg(1), 0, 11));
        assert!(!c.read(PhysReg(1), 0, 11));
        assert_eq!(c.stats().parity_invalidations, 1);
        assert_eq!(c.stats().evictions, 0, "invalidation is not an eviction");
        // The fill reinstalls a clean word.
        c.fill(PhysReg(1), 0, 15);
        assert!(!c.take_parity_fault(PhysReg(1), 0, 16));
        assert!(c.read(PhysReg(1), 0, 16));
        c.audit().unwrap();
    }

    #[test]
    fn targeted_data_corruption_needs_a_resident_value() {
        let mut c = ub(8, 2);
        assert!(!c.corrupt_preg_data(PhysReg(1)), "not resident: no fault");
        assert_eq!(c.corrupt_data(5), None, "empty cache");
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 0, 3, false, 0, 10);
        assert!(c.corrupt_preg_data(PhysReg(1)));
        assert!(c.take_parity_fault(PhysReg(1), 0, 11));
        // Rewriting the entry stores a fresh, clean word.
        c.fill(PhysReg(1), 0, 12);
        assert!(c.corrupt_preg_data(PhysReg(1)));
        c.free(PhysReg(1), 0, 13);
        assert!(!c.corrupt_preg_data(PhysReg(1)), "freed: no fault");
    }

    #[test]
    fn different_sets_do_not_alias() {
        let mut c = ub(8, 2); // 4 sets
        c.produce(PhysReg(1));
        c.write(PhysReg(1), 2, 1, false, 0, 0);
        // Lookup in the wrong set misses even though the preg is
        // resident elsewhere — decoupled indexing stores the full tag
        // but only probes the renamed set.
        assert!(!c.read(PhysReg(1), 3, 1));
        assert!(c.read(PhysReg(1), 2, 2));
    }
}
