//! Error-path tests for the assembler: every malformed input must
//! produce a line-numbered error, never a panic or silent misassembly.

use ubrc_isa::{assemble, AsmError};

fn err_of(src: &str) -> AsmError {
    assemble(src).expect_err("source must be rejected")
}

#[test]
fn bad_register_names() {
    let e = err_of("main: add r32, r1, r2\n");
    assert_eq!(e.line, 1);
    let e = err_of("main: add rx, r1, r2\n");
    assert_eq!(e.line, 1);
    // f-registers cannot take integer ALU ops operands? They can be
    // parsed; but a malformed bank digit must fail.
    let e = err_of("main: fadd f32, f1, f2\n");
    assert_eq!(e.line, 1);
}

#[test]
fn immediate_range_checks() {
    assert!(assemble("main: addi r1, r0, 32767\nhalt\n").is_ok());
    let e = err_of("main: addi r1, r0, 32768\n");
    assert!(e.msg.contains("16 signed bits"));
    assert!(assemble("main: addi r1, r0, -32768\nhalt\n").is_ok());
    let e = err_of("main: addi r1, r0, -32769\n");
    assert!(e.msg.contains("16 signed bits"));
}

#[test]
fn li_range_checks() {
    assert!(assemble("main: li r1, 0xffffffff\nhalt\n").is_ok());
    let e = err_of("main: li r1, 0x100000000\n");
    assert!(e.msg.contains("not representable"));
}

#[test]
fn memory_operand_errors() {
    let e = err_of("main: ld r1, 8(r99)\n");
    assert!(e.msg.contains("bad base register"));
    let e = err_of("main: ld r1, 8(r2\n");
    assert!(e.msg.contains("malformed") || e.msg.contains("unrecognized"));
    let e = err_of("main: ld r1, 70000(r2)\n");
    assert!(e.msg.contains("16 signed bits"));
}

#[test]
fn degenerate_memory_operands_do_not_panic() {
    // `0()` leaves an empty base token; the register parser used to
    // slice into it byte-blind. These must all be line-numbered errors.
    for src in [
        "main: ld r1, 0()\n",
        "main: sd r1, ()\n",
        "main: ld r1, 8(é)\n",
        "main: ld r1, 8(r)\n",
        "main: add r1, é, r2\n",
    ] {
        let e = err_of(src);
        assert_eq!(e.line, 1, "wrong line for {src:?}");
    }
}

#[test]
fn branch_out_of_range_is_detected() {
    // Place the target > 32767 instructions away.
    let mut src = String::from("main: beq r0, r0, far\n");
    for _ in 0..33_000 {
        src.push_str("nop\n");
    }
    src.push_str("far: halt\n");
    let e = err_of(&src);
    assert!(e.msg.contains("exceeds range"), "{}", e.msg);
}

#[test]
fn directive_errors() {
    let e = err_of(".data\nx: .space -5\n");
    assert_eq!(e.line, 2);
    let e = err_of(".data\nx: .align 3\n");
    assert!(e.msg.contains("power of two"));
    let e = err_of(".data\nx: .double nope\n");
    assert!(e.msg.contains("bad .double"));
    let e = err_of(".frobnicate 3\n");
    assert!(e.msg.contains("unknown directive"));
}

#[test]
fn instructions_in_data_section_rejected() {
    let e = err_of(".data\nadd r1, r2, r3\n");
    assert!(e.msg.contains("outside .text"));
}

#[test]
fn missing_operands_reported() {
    assert!(err_of("main: add r1, r2\n").msg.contains("register"));
    assert!(err_of("main: beq r1, r2\n").msg.contains("branch target"));
    assert!(err_of("main: li r1\n").msg.contains("missing immediate"));
    assert!(err_of("main: jal\n").msg.contains("jump target"));
}

#[test]
fn lui_requires_unsigned_16() {
    assert!(assemble("main: lui r1, 0xffff\nhalt\n").is_ok());
    let e = err_of("main: lui r1, 0x10000\n");
    assert!(e.msg.contains("16 bits"));
    let e = err_of("main: lui r1, -1\n");
    assert!(e.msg.contains("16 bits"));
}

#[test]
fn error_line_numbers_are_exact() {
    let e = err_of("nop\nnop\nbogus r1\nnop\n");
    assert_eq!(e.line, 3);
    assert!(e.to_string().starts_with("line 3:"));
}

#[test]
fn labels_with_invalid_characters_are_not_labels() {
    // `1abel:` does not parse as a label; it falls through to
    // instruction parsing and fails there.
    assert!(assemble("1abel: nop\n").is_err());
}

#[test]
fn duplicate_data_and_text_labels_collide() {
    let e = err_of(".data\nx: .quad 1\n.text\nx: nop\n");
    assert!(e.msg.contains("duplicate"));
}
