//! Property tests: every constructible instruction encodes to 32 bits and
//! decodes back to itself, and decoding never panics on arbitrary words.

use proptest::prelude::*;
use ubrc_isa::{AluImmOp, AluOp, BranchCond, CvtDir, FpuOp, Inst, MemWidth, Reg};

fn any_int_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::int)
}

fn any_fp_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::fp)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn any_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
    ]
}

fn any_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word),
        Just(MemWidth::Quad),
    ]
}

fn any_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn any_fpu3_op() -> impl Strategy<Value = FpuOp> {
    prop_oneof![
        Just(FpuOp::Fadd),
        Just(FpuOp::Fsub),
        Just(FpuOp::Fmul),
        Just(FpuOp::Fdiv),
        Just(FpuOp::Fneg),
        Just(FpuOp::Fmov),
        Just(FpuOp::Feq),
        Just(FpuOp::Flt),
        Just(FpuOp::Fle),
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (any_alu_op(), any_int_reg(), any_int_reg(), any_int_reg())
            .prop_map(|(op, rd, rs, rt)| Inst::Alu { op, rd, rs, rt }),
        (any_alu_imm_op(), any_int_reg(), any_int_reg(), any::<i16>())
            .prop_map(|(op, rd, rs, imm)| Inst::AluImm { op, rd, rs, imm }),
        (any_int_reg(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (
            any_width(),
            any::<bool>(),
            any_int_reg(),
            any_int_reg(),
            any::<i16>()
        )
            .prop_map(|(width, signed, rd, base, off)| Inst::Load {
                width,
                signed: signed || width == MemWidth::Quad,
                rd,
                base,
                off
            }),
        (any_fp_reg(), any_int_reg(), any::<i16>()).prop_map(|(rd, base, off)| Inst::Load {
            width: MemWidth::Quad,
            signed: true,
            rd,
            base,
            off
        }),
        (any_width(), any_int_reg(), any_int_reg(), any::<i16>()).prop_map(
            |(width, src, base, off)| Inst::Store {
                width,
                src,
                base,
                off
            }
        ),
        (any_fp_reg(), any_int_reg(), any::<i16>()).prop_map(|(src, base, off)| Inst::Store {
            width: MemWidth::Quad,
            src,
            base,
            off
        }),
        (any_cond(), any_int_reg(), any_int_reg(), any::<i16>())
            .prop_map(|(cond, rs, rt, off)| Inst::Branch { cond, rs, rt, off }),
        (any::<bool>(), -(1i32 << 25)..(1i32 << 25))
            .prop_map(|(link, off)| Inst::Jump { link, off }),
        (any::<bool>(), any_int_reg(), any_int_reg()).prop_map(|(link, rd, rs)| Inst::JumpReg {
            link,
            rd,
            rs
        }),
        (any_fpu3_op(), any_fp_reg(), any_fp_reg(), any_fp_reg()).prop_map(|(op, rd, rs, rt)| {
            let rd = if op.writes_int() {
                Reg::int(rd.bank_index())
            } else {
                rd
            };
            Inst::Fpu { op, rd, rs, rt }
        }),
        (any::<bool>(), 0u8..32, 0u8..32).prop_map(|(to_fp, a, b)| if to_fp {
            Inst::Cvt {
                dir: CvtDir::IntToFp,
                rd: Reg::fp(a),
                rs: Reg::int(b),
            }
        } else {
            Inst::Cvt {
                dir: CvtDir::FpToInt,
                rd: Reg::int(a),
                rs: Reg::fp(b),
            }
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        // Normalize single-source FPU ops: their `rt` field is
        // don't-care in the semantics but is preserved by the encoding,
        // so the roundtrip must still be exact.
        let word = inst.encode().expect("in-range instructions encode");
        let back = Inst::decode(word).expect("encoded words decode");
        prop_assert_eq!(inst, back);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Inst::decode(word);
    }

    #[test]
    fn decode_encode_refixes(word in any::<u32>()) {
        // Any word that decodes must re-encode to a word that decodes to
        // the same instruction (the encoding may canonicalize unused
        // bits, so compare instructions, not words).
        if let Ok(inst) = Inst::decode(word) {
            let word2 = inst.encode().expect("decoded instructions re-encode");
            prop_assert_eq!(Inst::decode(word2).unwrap(), inst);
        }
    }

    #[test]
    fn display_never_panics(inst in any_inst()) {
        let _ = inst.to_string();
    }

    #[test]
    fn sources_and_dest_never_include_r0(inst in any_inst()) {
        prop_assert!(inst.dest() != Some(Reg::int(0)));
        for s in inst.sources().into_iter().flatten() {
            prop_assert!(!s.is_zero());
        }
    }
}
