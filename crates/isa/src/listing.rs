//! Program listings (disassembly) and a flat binary container format.
//!
//! The listing renders a [`Program`] the way an `objdump`-style tool
//! would: addresses, encoded words, mnemonics, and label annotations
//! from the symbol table. The binary format serializes a program to a
//! self-contained byte image and back — useful for shipping assembled
//! workloads without their source.

use crate::inst::Inst;
use crate::program::Program;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Renders a disassembly listing of the text segment.
///
/// # Examples
///
/// ```
/// use ubrc_isa::{assemble, listing};
///
/// let p = assemble("main: li r1, 2\n loop: subi r1, r1, 1\n bnez r1, loop\n halt\n")?;
/// let text = listing(&p);
/// assert!(text.contains("loop:"));
/// assert!(text.contains("addi r1, r1, -1"));
/// # Ok::<(), ubrc_isa::AsmError>(())
/// ```
pub fn listing(program: &Program) -> String {
    // Invert the symbol table for label annotations.
    let mut labels: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, &addr) in &program.symbols {
        labels.entry(addr).or_default().push(name);
    }
    let mut out = String::new();
    for (i, inst) in program.text.iter().enumerate() {
        let addr = program.text_base + 4 * i as u64;
        if let Some(names) = labels.get(&addr) {
            for name in names {
                let _ = writeln!(out, "{name}:");
            }
        }
        let word = inst
            .encode()
            .map(|w| format!("{w:08x}"))
            .unwrap_or_else(|_| "????????".into());
        let marker = if addr == program.entry { ">" } else { " " };
        let _ = writeln!(out, "{marker}{addr:#010x}:  {word}  {inst}");
    }
    out
}

/// Error deserializing a [`Program`] image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The image is shorter than its header claims.
    Truncated,
    /// The magic number is wrong (not a UBRC image).
    BadMagic,
    /// An instruction word failed to decode.
    BadInstruction {
        /// Index of the bad word in the text segment.
        index: usize,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic => write!(f, "bad magic number"),
            ImageError::BadInstruction { index } => {
                write!(f, "undecodable instruction at text index {index}")
            }
        }
    }
}

impl Error for ImageError {}

const MAGIC: u32 = 0x5542_5243; // "UBRC"

/// Serializes a program to a flat binary image (symbols are not
/// preserved; the entry point is).
///
/// # Examples
///
/// ```
/// use ubrc_isa::{assemble, from_image, to_image};
///
/// let p = assemble("main: li r1, 7\n halt\n")?;
/// let image = to_image(&p);
/// let q = from_image(&image).unwrap();
/// assert_eq!(p.text, q.text);
/// assert_eq!(p.entry, q.entry);
/// # Ok::<(), ubrc_isa::AsmError>(())
/// ```
pub fn to_image(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&program.text_base.to_le_bytes());
    out.extend_from_slice(&program.data_base.to_le_bytes());
    out.extend_from_slice(&program.entry.to_le_bytes());
    out.extend_from_slice(&(program.text.len() as u64).to_le_bytes());
    out.extend_from_slice(&(program.data.len() as u64).to_le_bytes());
    for inst in &program.text {
        let word = inst
            .encode()
            .expect("programs contain encodable instructions");
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&program.data);
    out
}

/// Deserializes a program image produced by [`to_image`].
///
/// # Errors
///
/// Returns [`ImageError`] for truncated input, a wrong magic number, or
/// undecodable instruction words.
pub fn from_image(bytes: &[u8]) -> Result<Program, ImageError> {
    fn take<const N: usize>(bytes: &[u8], off: &mut usize) -> Result<[u8; N], ImageError> {
        let end = *off + N;
        let slice = bytes.get(*off..end).ok_or(ImageError::Truncated)?;
        *off = end;
        Ok(slice.try_into().expect("length checked"))
    }
    let mut off = 0;
    let magic = u32::from_le_bytes(take::<4>(bytes, &mut off)?);
    if magic != MAGIC {
        return Err(ImageError::BadMagic);
    }
    let text_base = u64::from_le_bytes(take::<8>(bytes, &mut off)?);
    let data_base = u64::from_le_bytes(take::<8>(bytes, &mut off)?);
    let entry = u64::from_le_bytes(take::<8>(bytes, &mut off)?);
    let text_len = u64::from_le_bytes(take::<8>(bytes, &mut off)?) as usize;
    let data_len = u64::from_le_bytes(take::<8>(bytes, &mut off)?) as usize;
    let mut text = Vec::with_capacity(text_len);
    for index in 0..text_len {
        let word = u32::from_le_bytes(take::<4>(bytes, &mut off)?);
        text.push(Inst::decode(word).map_err(|_| ImageError::BadInstruction { index })?);
    }
    let data = bytes
        .get(off..off + data_len)
        .ok_or(ImageError::Truncated)?
        .to_vec();
    Ok(Program {
        text_base,
        text,
        data_base,
        data,
        entry,
        symbols: BTreeMap::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            ".data\nv: .quad 9\n.text\n\
             main: la r1, v\n\
                   ld r2, 0(r1)\n\
             done: halt\n",
        )
        .unwrap()
    }

    #[test]
    fn listing_contains_labels_addresses_and_mnemonics() {
        let p = sample();
        let l = listing(&p);
        assert!(l.contains("main:"));
        assert!(l.contains("done:"));
        assert!(l.contains("ld r2, 0(r1)"));
        assert!(l.contains(">")); // entry marker
        assert!(l.contains("0x00001000"));
    }

    #[test]
    fn image_roundtrip_preserves_everything_but_symbols() {
        let p = sample();
        let img = to_image(&p);
        let q = from_image(&img).unwrap();
        assert_eq!(p.text, q.text);
        assert_eq!(p.data, q.data);
        assert_eq!(p.text_base, q.text_base);
        assert_eq!(p.data_base, q.data_base);
        assert_eq!(p.entry, q.entry);
        assert!(q.symbols.is_empty());
    }

    #[test]
    fn truncated_image_rejected() {
        let img = to_image(&sample());
        for cut in [0, 3, 10, img.len() - 1] {
            assert!(
                matches!(from_image(&img[..cut]), Err(ImageError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = to_image(&sample());
        img[0] ^= 0xff;
        assert_eq!(from_image(&img), Err(ImageError::BadMagic));
    }

    #[test]
    fn bad_instruction_rejected() {
        let mut img = to_image(&sample());
        // Corrupt the first instruction word (after the 44-byte
        // header) to opcode 63.
        img[44 + 3] = 0xff;
        assert!(matches!(
            from_image(&img),
            Err(ImageError::BadInstruction { index: 0 })
        ));
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let p = sample();
        let once = to_image(&from_image(&to_image(&p)).unwrap());
        assert_eq!(once, to_image(&p));
    }
}
