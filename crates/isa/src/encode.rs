//! Fixed 32-bit binary encoding of the UBRC ISA.
//!
//! Layout (big fields first):
//!
//! ```text
//! [31:26] opcode
//! [25:21] field a (rd, or rs for branches/stores)
//! [20:16] field b (rs, or rt)
//! [15:11] field c (rt, register-register forms)
//! [15:0]  imm16  (immediate forms)
//! [25:0]  off26  (jumps, signed)
//! ```
//!
//! Register fields hold the 5-bit bank index; the bank (integer vs.
//! floating-point) is implied by the opcode.

use crate::inst::{AluImmOp, AluOp, BranchCond, CvtDir, FpuOp, Inst, MemWidth};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Error produced when decoding an invalid instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeInstError {
    /// The offending opcode field.
    pub opcode: u8,
}

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid opcode {:#04x}", self.opcode)
    }
}

impl Error for DecodeInstError {}

/// Error produced when an instruction cannot be represented in 32 bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodeInstError {
    /// The out-of-range jump offset.
    pub offset: i32,
}

impl fmt::Display for EncodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jump offset {} exceeds 26 signed bits", self.offset)
    }
}

impl Error for EncodeInstError {}

const OP_NOP: u8 = 0;
const OP_HALT: u8 = 1;
const OP_ALU_BASE: u8 = 2; // 14 ops: 2..=15
const OP_ALUIMM_BASE: u8 = 16; // 9 ops: 16..=24
const OP_LUI: u8 = 25;
const OP_LB: u8 = 26;
const OP_LBU: u8 = 27;
const OP_LH: u8 = 28;
const OP_LHU: u8 = 29;
const OP_LW: u8 = 30;
const OP_LWU: u8 = 31;
const OP_LD: u8 = 32;
const OP_FLD: u8 = 33;
const OP_SB: u8 = 34;
const OP_SH: u8 = 35;
const OP_SW: u8 = 36;
const OP_SD: u8 = 37;
const OP_FSD: u8 = 38;
const OP_BRANCH_BASE: u8 = 39; // 6 ops: 39..=44
const OP_J: u8 = 45;
const OP_JAL: u8 = 46;
const OP_JR: u8 = 47;
const OP_JALR: u8 = 48;
const OP_FPU_BASE: u8 = 49; // 9 ops: 49..=57
const OP_CVTIF: u8 = 58;
const OP_CVTFI: u8 = 59;

const ALU_OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Nor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const ALUIMM_OPS: [AluImmOp; 9] = [
    AluImmOp::Addi,
    AluImmOp::Andi,
    AluImmOp::Ori,
    AluImmOp::Xori,
    AluImmOp::Slli,
    AluImmOp::Srli,
    AluImmOp::Srai,
    AluImmOp::Slti,
    AluImmOp::Sltiu,
];

const BRANCH_OPS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

const FPU_OPS: [FpuOp; 9] = [
    FpuOp::Fadd,
    FpuOp::Fsub,
    FpuOp::Fmul,
    FpuOp::Fdiv,
    FpuOp::Fneg,
    FpuOp::Fmov,
    FpuOp::Feq,
    FpuOp::Flt,
    FpuOp::Fle,
];

fn idx_of<T: PartialEq>(table: &[T], v: &T) -> u8 {
    table.iter().position(|t| t == v).expect("op in table") as u8
}

fn word(op: u8, a: u8, b: u8, low: u16) -> u32 {
    (op as u32) << 26 | (a as u32) << 21 | (b as u32) << 16 | low as u32
}

impl Inst {
    /// Encodes the instruction to its 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeInstError`] if a jump offset exceeds 26 signed
    /// bits; all other instructions always encode.
    pub fn encode(self) -> Result<u32, EncodeInstError> {
        let w = match self {
            Inst::Nop => word(OP_NOP, 0, 0, 0),
            Inst::Halt => word(OP_HALT, 0, 0, 0),
            Inst::Alu { op, rd, rs, rt } => word(
                OP_ALU_BASE + idx_of(&ALU_OPS, &op),
                rd.bank_index(),
                rs.bank_index(),
                (rt.bank_index() as u16) << 11,
            ),
            Inst::AluImm { op, rd, rs, imm } => word(
                OP_ALUIMM_BASE + idx_of(&ALUIMM_OPS, &op),
                rd.bank_index(),
                rs.bank_index(),
                imm as u16,
            ),
            Inst::Lui { rd, imm } => word(OP_LUI, rd.bank_index(), 0, imm),
            Inst::Load {
                width,
                signed,
                rd,
                base,
                off,
            } => {
                let op = if rd.is_fp() {
                    OP_FLD
                } else {
                    match (width, signed) {
                        (MemWidth::Byte, true) => OP_LB,
                        (MemWidth::Byte, false) => OP_LBU,
                        (MemWidth::Half, true) => OP_LH,
                        (MemWidth::Half, false) => OP_LHU,
                        (MemWidth::Word, true) => OP_LW,
                        (MemWidth::Word, false) => OP_LWU,
                        (MemWidth::Quad, _) => OP_LD,
                    }
                };
                word(op, rd.bank_index(), base.bank_index(), off as u16)
            }
            Inst::Store {
                width,
                src,
                base,
                off,
            } => {
                let op = if src.is_fp() {
                    OP_FSD
                } else {
                    match width {
                        MemWidth::Byte => OP_SB,
                        MemWidth::Half => OP_SH,
                        MemWidth::Word => OP_SW,
                        MemWidth::Quad => OP_SD,
                    }
                };
                word(op, src.bank_index(), base.bank_index(), off as u16)
            }
            Inst::Branch { cond, rs, rt, off } => word(
                OP_BRANCH_BASE + idx_of(&BRANCH_OPS, &cond),
                rs.bank_index(),
                rt.bank_index(),
                off as u16,
            ),
            Inst::Jump { link, off } => {
                if !(-(1 << 25)..(1 << 25)).contains(&off) {
                    return Err(EncodeInstError { offset: off });
                }
                let op = if link { OP_JAL } else { OP_J };
                (op as u32) << 26 | (off as u32 & 0x03ff_ffff)
            }
            Inst::JumpReg { link, rd, rs } => {
                let op = if link { OP_JALR } else { OP_JR };
                word(op, rd.bank_index(), rs.bank_index(), 0)
            }
            Inst::Fpu { op, rd, rs, rt } => word(
                OP_FPU_BASE + idx_of(&FPU_OPS, &op),
                rd.bank_index(),
                rs.bank_index(),
                (rt.bank_index() as u16) << 11,
            ),
            Inst::Cvt { dir, rd, rs } => {
                let op = match dir {
                    CvtDir::IntToFp => OP_CVTIF,
                    CvtDir::FpToInt => OP_CVTFI,
                };
                word(op, rd.bank_index(), rs.bank_index(), 0)
            }
        };
        Ok(w)
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstError`] for unassigned opcodes.
    pub fn decode(w: u32) -> Result<Inst, DecodeInstError> {
        let op = (w >> 26) as u8;
        let a = ((w >> 21) & 0x1f) as u8;
        let b = ((w >> 16) & 0x1f) as u8;
        let c = ((w >> 11) & 0x1f) as u8;
        let imm = w as u16;
        let inst = match op {
            OP_NOP => Inst::Nop,
            OP_HALT => Inst::Halt,
            o if (OP_ALU_BASE..OP_ALU_BASE + 14).contains(&o) => Inst::Alu {
                op: ALU_OPS[(o - OP_ALU_BASE) as usize],
                rd: Reg::int(a),
                rs: Reg::int(b),
                rt: Reg::int(c),
            },
            o if (OP_ALUIMM_BASE..OP_ALUIMM_BASE + 9).contains(&o) => Inst::AluImm {
                op: ALUIMM_OPS[(o - OP_ALUIMM_BASE) as usize],
                rd: Reg::int(a),
                rs: Reg::int(b),
                imm: imm as i16,
            },
            OP_LUI => Inst::Lui {
                rd: Reg::int(a),
                imm,
            },
            OP_LB | OP_LBU | OP_LH | OP_LHU | OP_LW | OP_LWU | OP_LD | OP_FLD => {
                let (width, signed, fp) = match op {
                    OP_LB => (MemWidth::Byte, true, false),
                    OP_LBU => (MemWidth::Byte, false, false),
                    OP_LH => (MemWidth::Half, true, false),
                    OP_LHU => (MemWidth::Half, false, false),
                    OP_LW => (MemWidth::Word, true, false),
                    OP_LWU => (MemWidth::Word, false, false),
                    OP_LD => (MemWidth::Quad, true, false),
                    _ => (MemWidth::Quad, true, true),
                };
                Inst::Load {
                    width,
                    signed,
                    rd: if fp { Reg::fp(a) } else { Reg::int(a) },
                    base: Reg::int(b),
                    off: imm as i16,
                }
            }
            OP_SB | OP_SH | OP_SW | OP_SD | OP_FSD => {
                let (width, fp) = match op {
                    OP_SB => (MemWidth::Byte, false),
                    OP_SH => (MemWidth::Half, false),
                    OP_SW => (MemWidth::Word, false),
                    OP_SD => (MemWidth::Quad, false),
                    _ => (MemWidth::Quad, true),
                };
                Inst::Store {
                    width,
                    src: if fp { Reg::fp(a) } else { Reg::int(a) },
                    base: Reg::int(b),
                    off: imm as i16,
                }
            }
            o if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&o) => Inst::Branch {
                cond: BRANCH_OPS[(o - OP_BRANCH_BASE) as usize],
                rs: Reg::int(a),
                rt: Reg::int(b),
                off: imm as i16,
            },
            OP_J | OP_JAL => {
                // Sign-extend the 26-bit offset.
                let off = ((w & 0x03ff_ffff) as i32) << 6 >> 6;
                Inst::Jump {
                    link: op == OP_JAL,
                    off,
                }
            }
            OP_JR | OP_JALR => Inst::JumpReg {
                link: op == OP_JALR,
                rd: Reg::int(a),
                rs: Reg::int(b),
            },
            o if (OP_FPU_BASE..OP_FPU_BASE + 9).contains(&o) => {
                let fop = FPU_OPS[(o - OP_FPU_BASE) as usize];
                Inst::Fpu {
                    op: fop,
                    rd: if fop.writes_int() {
                        Reg::int(a)
                    } else {
                        Reg::fp(a)
                    },
                    rs: Reg::fp(b),
                    rt: Reg::fp(c),
                }
            }
            OP_CVTIF => Inst::Cvt {
                dir: CvtDir::IntToFp,
                rd: Reg::fp(a),
                rs: Reg::int(b),
            },
            OP_CVTFI => Inst::Cvt {
                dir: CvtDir::FpToInt,
                rd: Reg::int(a),
                rs: Reg::fp(b),
            },
            _ => return Err(DecodeInstError { opcode: op }),
        };
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{RA, ZERO};

    fn roundtrip(i: Inst) {
        let w = i.encode().expect("encodes");
        let back = Inst::decode(w).expect("decodes");
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        roundtrip(Inst::Alu {
            op: AluOp::Nor,
            rd: Reg::int(31),
            rs: Reg::int(17),
            rt: Reg::int(1),
        });
        roundtrip(Inst::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::int(9),
            rs: Reg::int(30),
            imm: -1,
        });
        roundtrip(Inst::Lui {
            rd: Reg::int(4),
            imm: 0xffff,
        });
        roundtrip(Inst::Load {
            width: MemWidth::Half,
            signed: false,
            rd: Reg::int(2),
            base: Reg::int(3),
            off: -32768,
        });
        roundtrip(Inst::Load {
            width: MemWidth::Quad,
            signed: true,
            rd: Reg::fp(11),
            base: Reg::int(3),
            off: 16,
        });
        roundtrip(Inst::Store {
            width: MemWidth::Quad,
            src: Reg::fp(8),
            base: Reg::int(29),
            off: 24,
        });
        roundtrip(Inst::Branch {
            cond: BranchCond::Geu,
            rs: Reg::int(5),
            rt: ZERO,
            off: -100,
        });
        roundtrip(Inst::Jump {
            link: true,
            off: -1234,
        });
        roundtrip(Inst::JumpReg {
            link: false,
            rd: ZERO,
            rs: RA,
        });
        roundtrip(Inst::Fpu {
            op: FpuOp::Flt,
            rd: Reg::int(6),
            rs: Reg::fp(1),
            rt: Reg::fp(2),
        });
        roundtrip(Inst::Cvt {
            dir: CvtDir::FpToInt,
            rd: Reg::int(12),
            rs: Reg::fp(7),
        });
    }

    #[test]
    fn jump_offset_range_is_enforced() {
        let ok = Inst::Jump {
            link: false,
            off: (1 << 25) - 1,
        };
        assert!(ok.encode().is_ok());
        roundtrip(ok);
        let bad = Inst::Jump {
            link: false,
            off: 1 << 25,
        };
        assert_eq!(bad.encode(), Err(EncodeInstError { offset: 1 << 25 }));
        let neg = Inst::Jump {
            link: false,
            off: -(1 << 25),
        };
        roundtrip(neg);
    }

    #[test]
    fn invalid_opcode_errors() {
        let w = 63u32 << 26;
        let err = Inst::decode(w).unwrap_err();
        assert_eq!(err.opcode, 63);
        assert!(err.to_string().contains("invalid opcode"));
    }

    #[test]
    fn fp_compare_decodes_int_destination() {
        let i = Inst::Fpu {
            op: FpuOp::Feq,
            rd: Reg::int(3),
            rs: Reg::fp(4),
            rt: Reg::fp(5),
        };
        let back = Inst::decode(i.encode().unwrap()).unwrap();
        assert_eq!(back, i);
        if let Inst::Fpu { rd, .. } = back {
            assert!(rd.is_int());
        } else {
            panic!("wrong variant");
        }
    }
}
