use std::fmt;

/// Number of integer architectural registers (`r0` is hardwired to zero).
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total architectural register namespace (integer then floating-point).
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// Conventional stack pointer (`r30`).
pub const SP: Reg = Reg(30);
/// Conventional link/return-address register (`r31`, written by `jal`).
pub const RA: Reg = Reg(31);
/// The hardwired zero register (`r0`).
pub const ZERO: Reg = Reg(0);

/// An architectural register in the unified namespace used by rename.
///
/// Indices `0..32` are the integer registers `r0..r31`; indices `32..64`
/// are the floating-point registers `f0..f31`. `r0` reads as zero and
/// ignores writes. The physical register file behind rename is unified
/// (integer and floating-point values share physical registers), matching
/// the machine evaluated in the paper.
///
/// # Examples
///
/// ```
/// use ubrc_isa::Reg;
///
/// let r5 = Reg::int(5);
/// let f2 = Reg::fp(2);
/// assert_eq!(r5.to_string(), "r5");
/// assert_eq!(f2.to_string(), "f2");
/// assert_eq!(f2.index(), 34);
/// assert!(Reg::int(0).is_zero());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The integer register `r{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub const fn int(i: u8) -> Self {
        assert!(i < NUM_INT_REGS);
        Reg(i)
    }

    /// The floating-point register `f{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub const fn fp(i: u8) -> Self {
        assert!(i < NUM_FP_REGS);
        Reg(NUM_INT_REGS + i)
    }

    /// Builds a register from its unified index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub const fn from_index(i: u8) -> Self {
        assert!(i < NUM_ARCH_REGS);
        Reg(i)
    }

    /// The unified architectural index in `0..64`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// True for integer registers.
    pub const fn is_int(self) -> bool {
        self.0 < NUM_INT_REGS
    }

    /// True for floating-point registers.
    pub const fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }

    /// True for the hardwired zero register `r0`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The index within the register's own bank (`r5` and `f5` both
    /// return 5). Used by the instruction encoder's 5-bit fields.
    pub const fn bank_index(self) -> u8 {
        self.0 % NUM_INT_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - NUM_INT_REGS)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_namespaces_are_disjoint() {
        assert_ne!(Reg::int(3), Reg::fp(3));
        assert_eq!(Reg::fp(0).index(), 32);
        assert!(Reg::int(31).is_int());
        assert!(Reg::fp(31).is_fp());
    }

    #[test]
    fn bank_index_strips_the_bank() {
        assert_eq!(Reg::int(7).bank_index(), 7);
        assert_eq!(Reg::fp(7).bank_index(), 7);
    }

    #[test]
    fn from_index_roundtrips() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn int_rejects_out_of_range() {
        let _ = Reg::int(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(ZERO.to_string(), "r0");
        assert_eq!(SP.to_string(), "r30");
        assert_eq!(RA.to_string(), "r31");
        assert_eq!(Reg::fp(12).to_string(), "f12");
    }

    #[test]
    fn only_r0_is_zero() {
        assert!(ZERO.is_zero());
        assert!(!Reg::int(1).is_zero());
        assert!(!Reg::fp(0).is_zero());
    }
}
