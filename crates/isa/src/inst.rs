use crate::reg::Reg;
use std::fmt;

/// Register-register integer ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rs + rt`
    Add,
    /// `rd = rs - rt`
    Sub,
    /// `rd = rs * rt` (low 64 bits)
    Mul,
    /// `rd = rs / rt` (signed; division by zero yields 0)
    Div,
    /// `rd = rs % rt` (signed; modulo by zero yields `rs`)
    Rem,
    /// `rd = rs & rt`
    And,
    /// `rd = rs | rt`
    Or,
    /// `rd = rs ^ rt`
    Xor,
    /// `rd = !(rs | rt)`
    Nor,
    /// `rd = rs << (rt & 63)`
    Sll,
    /// `rd = (rs as u64) >> (rt & 63)`
    Srl,
    /// `rd = (rs as i64) >> (rt & 63)`
    Sra,
    /// `rd = (rs as i64) < (rt as i64)`
    Slt,
    /// `rd = (rs as u64) < (rt as u64)`
    Sltu,
}

/// Register-immediate integer ALU operations (16-bit immediate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rd = rs + sext(imm)`
    Addi,
    /// `rd = rs & zext(imm)`
    Andi,
    /// `rd = rs | zext(imm)`
    Ori,
    /// `rd = rs ^ zext(imm)`
    Xori,
    /// `rd = rs << (imm & 63)`
    Slli,
    /// `rd = (rs as u64) >> (imm & 63)`
    Srli,
    /// `rd = (rs as i64) >> (imm & 63)`
    Srai,
    /// `rd = (rs as i64) < sext(imm)`
    Slti,
    /// `rd = (rs as u64) < (sext(imm) as u64)`
    Sltiu,
}

/// Memory access width in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte
    Byte,
    /// 2 bytes
    Half,
    /// 4 bytes
    Word,
    /// 8 bytes
    Quad,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Quad => 8,
        }
    }
}

/// Branch comparison conditions (`rs` vs `rt`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// signed `rs < rt`
    Lt,
    /// signed `rs >= rt`
    Ge,
    /// unsigned `rs < rt`
    Ltu,
    /// unsigned `rs >= rt`
    Geu,
}

/// Floating-point operations (double precision).
///
/// The compare variants (`Feq`, `Flt`, `Fle`) write an integer register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// `fd = fs + ft`
    Fadd,
    /// `fd = fs - ft`
    Fsub,
    /// `fd = fs * ft`
    Fmul,
    /// `fd = fs / ft`
    Fdiv,
    /// `fd = -fs` (`ft` ignored)
    Fneg,
    /// `fd = fs` (`ft` ignored)
    Fmov,
    /// `rd = (fs == ft) as u64`
    Feq,
    /// `rd = (fs < ft) as u64`
    Flt,
    /// `rd = (fs <= ft) as u64`
    Fle,
}

impl FpuOp {
    /// True for the compare operations, which write an integer register.
    pub const fn writes_int(self) -> bool {
        matches!(self, FpuOp::Feq | FpuOp::Flt | FpuOp::Fle)
    }
}

/// Direction of an int/float conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CvtDir {
    /// Integer register (as `i64`) to floating-point register.
    IntToFp,
    /// Floating-point register to integer register (truncating).
    FpToInt,
}

/// One decoded instruction of the UBRC ISA.
///
/// The ISA is a 64-bit RISC with fixed 32-bit encodings, 32 integer and 32
/// floating-point architectural registers (see [`Reg`]), PC-relative
/// branches, and absolute-offset jumps. It exists to feed the timing
/// simulator with realistic dataflow, standing in for the Alpha ISA the
/// paper used (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use ubrc_isa::{AluOp, Inst, Reg};
///
/// let add = Inst::Alu { op: AluOp::Add, rd: Reg::int(3), rs: Reg::int(1), rt: Reg::int(2) };
/// assert_eq!(add.dest(), Some(Reg::int(3)));
/// assert_eq!(add.to_string(), "add r3, r1, r2");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Register-register integer ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// Register-immediate integer ALU operation.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// 16-bit immediate.
        imm: i16,
    },
    /// Load upper immediate: `rd = (imm as u64) << 16`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Immediate placed in bits 31..16.
        imm: u16,
    },
    /// Memory load into `rd` from `base + off`. `signed` selects sign
    /// extension for sub-quad widths; `rd` may be a floating-point
    /// register (for `fld`, which is always `Quad`).
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend sub-quad loads.
        signed: bool,
        /// Destination register (may be floating-point for `fld`).
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Memory store of `src` to `base + off`. `src` may be a
    /// floating-point register (for `fsd`, which is always `Quad`).
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register (may be floating-point for `fsd`).
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i16,
    },
    /// Conditional PC-relative branch; `off` is in instructions relative
    /// to the next PC.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Offset in instructions relative to the next PC.
        off: i16,
    },
    /// Unconditional PC-relative jump (`off` in instructions relative to
    /// the next PC); `link` writes the return address to `r31`.
    Jump {
        /// Write the return address to `r31`.
        link: bool,
        /// Offset in instructions relative to the next PC.
        off: i32,
    },
    /// Indirect jump to the address in `rs`; `link` writes the return
    /// address to `rd`. `jr rs` is `JumpReg { link: false, rd: r0, rs }`.
    JumpReg {
        /// Write the return address to `rd`.
        link: bool,
        /// Link register destination.
        rd: Reg,
        /// Register holding the target address.
        rs: Reg,
    },
    /// Floating-point operation.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register (integer for the compares).
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register (ignored by `fneg`/`fmov`).
        rt: Reg,
    },
    /// Int/float conversion.
    Cvt {
        /// Conversion direction.
        dir: CvtDir,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// No operation (skipped by the fetch model, like the paper's nops).
    Nop,
    /// Stops the program.
    Halt,
}

/// Execution resource class of an instruction, with the latencies of
/// Table 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// 1-cycle integer ALU (6 units).
    IntAlu,
    /// 2-cycle branch resolution (2 units); includes jumps.
    Branch,
    /// 4-cycle integer multiplier (2 units).
    IntMul,
    /// 18-cycle integer divide (shares the multiplier units).
    IntDiv,
    /// 3-cycle floating-point ALU (4 units).
    FpAlu,
    /// 4-cycle floating-point multiply (2 units).
    FpMul,
    /// 18-cycle floating-point divide (shares the FP multiplier units).
    FpDiv,
    /// Load: 4-cycle load-to-use on an L1 hit (misses add memory time).
    Load,
    /// Store: 3 cycles from execute to earliest retirement.
    Store,
}

impl ExecClass {
    /// Nominal execution latency in cycles (L1-hit latency for loads).
    pub const fn latency(self) -> u32 {
        match self {
            ExecClass::IntAlu => 1,
            ExecClass::Branch => 2,
            ExecClass::IntMul => 4,
            ExecClass::IntDiv => 18,
            ExecClass::FpAlu => 3,
            ExecClass::FpMul => 4,
            ExecClass::FpDiv => 18,
            ExecClass::Load => 4,
            ExecClass::Store => 3,
        }
    }
}

impl Inst {
    /// The execution resource class (and hence latency) of the
    /// instruction. `Nop` and `Halt` execute on the integer ALUs.
    pub fn class(self) -> ExecClass {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Mul => ExecClass::IntMul,
                AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
                _ => ExecClass::IntAlu,
            },
            Inst::AluImm { .. } | Inst::Lui { .. } | Inst::Nop | Inst::Halt => ExecClass::IntAlu,
            Inst::Load { .. } => ExecClass::Load,
            Inst::Store { .. } => ExecClass::Store,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::JumpReg { .. } => ExecClass::Branch,
            Inst::Fpu { op, .. } => match op {
                FpuOp::Fmul => ExecClass::FpMul,
                FpuOp::Fdiv => ExecClass::FpDiv,
                _ => ExecClass::FpAlu,
            },
            Inst::Cvt { .. } => ExecClass::FpAlu,
        }
    }

    /// The destination architectural register, if any.
    ///
    /// Writes to `r0` are reported as `None`: they are architecturally
    /// discarded, so rename allocates nothing for them.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Fpu { rd, .. }
            | Inst::Cvt { rd, .. } => rd,
            Inst::Jump { link: true, .. } => crate::reg::RA,
            Inst::JumpReg { link: true, rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The source architectural registers, in operand order.
    ///
    /// Reads of `r0` are omitted: they never consume a physical register
    /// value, so they create no use.
    pub fn sources(self) -> [Option<Reg>; 2] {
        let raw: [Option<Reg>; 2] = match self {
            Inst::Alu { rs, rt, .. } => [Some(rs), Some(rt)],
            Inst::AluImm { rs, .. } => [Some(rs), None],
            Inst::Lui { .. } | Inst::Jump { .. } | Inst::Nop | Inst::Halt => [None, None],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::Store { src, base, .. } => [Some(src), Some(base)],
            Inst::Branch { rs, rt, .. } => [Some(rs), Some(rt)],
            Inst::JumpReg { rs, .. } => [Some(rs), None],
            Inst::Fpu { op, rs, rt, .. } => match op {
                FpuOp::Fneg | FpuOp::Fmov => [Some(rs), None],
                _ => [Some(rs), Some(rt)],
            },
            Inst::Cvt { rs, .. } => [Some(rs), None],
        };
        raw.map(|r| r.filter(|r| !r.is_zero()))
    }

    /// True for conditional branches and jumps (anything that can change
    /// control flow).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::JumpReg { .. }
        )
    }

    /// True for conditional branches only.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// True for subroutine calls (they push the return address stack).
    pub fn is_call(self) -> bool {
        matches!(
            self,
            Inst::Jump { link: true, .. } | Inst::JumpReg { link: true, .. }
        )
    }

    /// True for returns: an indirect jump through `r31` without link
    /// (they pop the return address stack).
    pub fn is_return(self) -> bool {
        matches!(self, Inst::JumpReg { link: false, rs, .. } if rs == crate::reg::RA)
    }

    /// True for indirect (register-target) jumps.
    pub fn is_indirect(self) -> bool {
        matches!(self, Inst::JumpReg { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs, rt } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Mul => "mul",
                    AluOp::Div => "div",
                    AluOp::Rem => "rem",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Nor => "nor",
                    AluOp::Sll => "sll",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                };
                write!(f, "{m} {rd}, {rs}, {rt}")
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let m = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Slli => "slli",
                    AluImmOp::Srli => "srli",
                    AluImmOp::Srai => "srai",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Sltiu => "sltiu",
                };
                write!(f, "{m} {rd}, {rs}, {imm}")
            }
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Inst::Load {
                width,
                signed,
                rd,
                base,
                off,
            } => {
                let m = match (width, signed, rd.is_fp()) {
                    (_, _, true) => "fld",
                    (MemWidth::Byte, true, _) => "lb",
                    (MemWidth::Byte, false, _) => "lbu",
                    (MemWidth::Half, true, _) => "lh",
                    (MemWidth::Half, false, _) => "lhu",
                    (MemWidth::Word, true, _) => "lw",
                    (MemWidth::Word, false, _) => "lwu",
                    (MemWidth::Quad, _, _) => "ld",
                };
                write!(f, "{m} {rd}, {off}({base})")
            }
            Inst::Store {
                width,
                src,
                base,
                off,
            } => {
                let m = match (width, src.is_fp()) {
                    (_, true) => "fsd",
                    (MemWidth::Byte, _) => "sb",
                    (MemWidth::Half, _) => "sh",
                    (MemWidth::Word, _) => "sw",
                    (MemWidth::Quad, _) => "sd",
                };
                write!(f, "{m} {src}, {off}({base})")
            }
            Inst::Branch { cond, rs, rt, off } => {
                let m = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{m} {rs}, {rt}, {off}")
            }
            Inst::Jump { link, off } => {
                write!(f, "{} {off}", if link { "jal" } else { "j" })
            }
            Inst::JumpReg { link, rd, rs } => {
                if link {
                    write!(f, "jalr {rd}, {rs}")
                } else {
                    write!(f, "jr {rs}")
                }
            }
            Inst::Fpu { op, rd, rs, rt } => {
                let m = match op {
                    FpuOp::Fadd => "fadd",
                    FpuOp::Fsub => "fsub",
                    FpuOp::Fmul => "fmul",
                    FpuOp::Fdiv => "fdiv",
                    FpuOp::Fneg => "fneg",
                    FpuOp::Fmov => "fmov",
                    FpuOp::Feq => "feq",
                    FpuOp::Flt => "flt",
                    FpuOp::Fle => "fle",
                };
                match op {
                    FpuOp::Fneg | FpuOp::Fmov => write!(f, "{m} {rd}, {rs}"),
                    _ => write!(f, "{m} {rd}, {rs}, {rt}"),
                }
            }
            Inst::Cvt { dir, rd, rs } => match dir {
                CvtDir::IntToFp => write!(f, "cvtif {rd}, {rs}"),
                CvtDir::FpToInt => write!(f, "cvtfi {rd}, {rs}"),
            },
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{RA, ZERO};

    #[test]
    fn dest_of_r0_write_is_none() {
        let i = Inst::AluImm {
            op: AluImmOp::Addi,
            rd: ZERO,
            rs: Reg::int(1),
            imm: 4,
        };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn sources_omit_r0() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::int(1),
            rs: ZERO,
            rt: Reg::int(2),
        };
        assert_eq!(i.sources(), [None, Some(Reg::int(2))]);
    }

    #[test]
    fn jal_writes_ra() {
        let i = Inst::Jump { link: true, off: 4 };
        assert_eq!(i.dest(), Some(RA));
        assert!(i.is_call());
        assert!(!i.is_return());
    }

    #[test]
    fn jr_ra_is_a_return() {
        let i = Inst::JumpReg {
            link: false,
            rd: ZERO,
            rs: RA,
        };
        assert!(i.is_return());
        assert!(i.is_indirect());
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [Some(RA), None]);
    }

    #[test]
    fn store_has_two_sources_and_no_dest() {
        let i = Inst::Store {
            width: MemWidth::Quad,
            src: Reg::int(4),
            base: Reg::int(5),
            off: 8,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [Some(Reg::int(4)), Some(Reg::int(5))]);
        assert!(i.is_store());
    }

    #[test]
    fn latency_classes_match_table1() {
        assert_eq!(ExecClass::IntAlu.latency(), 1);
        assert_eq!(ExecClass::Branch.latency(), 2);
        assert_eq!(ExecClass::IntMul.latency(), 4);
        assert_eq!(ExecClass::FpAlu.latency(), 3);
        assert_eq!(ExecClass::FpMul.latency(), 4);
        assert_eq!(ExecClass::FpDiv.latency(), 18);
        assert_eq!(ExecClass::Load.latency(), 4);
        assert_eq!(ExecClass::Store.latency(), 3);
    }

    #[test]
    fn class_dispatch() {
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: Reg::int(1),
            rs: Reg::int(2),
            rt: Reg::int(3),
        };
        assert_eq!(mul.class(), ExecClass::IntMul);
        let fdiv = Inst::Fpu {
            op: FpuOp::Fdiv,
            rd: Reg::fp(1),
            rs: Reg::fp(2),
            rt: Reg::fp(3),
        };
        assert_eq!(fdiv.class(), ExecClass::FpDiv);
        assert_eq!(Inst::Nop.class(), ExecClass::IntAlu);
    }

    #[test]
    fn fp_compare_writes_int() {
        assert!(FpuOp::Flt.writes_int());
        assert!(!FpuOp::Fadd.writes_int());
    }

    #[test]
    fn fmov_has_single_source() {
        let i = Inst::Fpu {
            op: FpuOp::Fmov,
            rd: Reg::fp(1),
            rs: Reg::fp(2),
            rt: Reg::fp(0),
        };
        assert_eq!(i.sources(), [Some(Reg::fp(2)), None]);
    }

    #[test]
    fn display_roundtrip_examples() {
        let i = Inst::Load {
            width: MemWidth::Quad,
            signed: true,
            rd: Reg::int(2),
            base: Reg::int(3),
            off: -8,
        };
        assert_eq!(i.to_string(), "ld r2, -8(r3)");
        assert_eq!(Inst::Halt.to_string(), "halt");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Quad.bytes(), 8);
    }
}
