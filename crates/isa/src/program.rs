use crate::inst::Inst;
use std::collections::BTreeMap;

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x1000;
/// Default base address of the data segment.
pub const DATA_BASE: u64 = 0x0010_0000;

/// An assembled program: a code segment, a data segment, and the symbol
/// table produced by the assembler.
///
/// Instructions are 4 bytes each; `text[i]` lives at address
/// `text_base + 4 * i`. Execution starts at [`Program::entry`] (the
/// address of the `main` label if one exists, otherwise `text_base`).
///
/// # Examples
///
/// ```
/// use ubrc_isa::assemble;
///
/// let prog = assemble("main: addi r1, r0, 5\n halt\n")?;
/// assert_eq!(prog.text.len(), 2);
/// assert_eq!(prog.entry, prog.text_base);
/// assert!(prog.fetch(prog.entry).is_some());
/// # Ok::<(), ubrc_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Address of `text[0]`.
    pub text_base: u64,
    /// The instruction stream.
    pub text: Vec<Inst>,
    /// Address of `data[0]`.
    pub data_base: u64,
    /// Initial contents of the data segment.
    pub data: Vec<u8>,
    /// Initial program counter.
    pub entry: u64,
    /// Label addresses, code and data alike.
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// The instruction at byte address `pc`, or `None` outside the text
    /// segment (including unaligned addresses).
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        if pc < self.text_base || !(pc - self.text_base).is_multiple_of(4) {
            return None;
        }
        self.text.get(((pc - self.text_base) / 4) as usize).copied()
    }

    /// The address of a label.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// One-past-the-end address of the text segment.
    pub fn text_end(&self) -> u64 {
        self.text_base + 4 * self.text.len() as u64
    }

    /// One-past-the-end address of the data segment.
    pub fn data_end(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn fetch_bounds_and_alignment() {
        let p = Program {
            text_base: 0x1000,
            text: vec![Inst::Nop, Inst::Halt],
            ..Program::default()
        };
        assert_eq!(p.fetch(0x1000), Some(Inst::Nop));
        assert_eq!(p.fetch(0x1004), Some(Inst::Halt));
        assert_eq!(p.fetch(0x1008), None);
        assert_eq!(p.fetch(0x1002), None);
        assert_eq!(p.fetch(0xff8), None);
        assert_eq!(p.text_end(), 0x1008);
    }
}
