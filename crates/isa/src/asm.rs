//! A two-pass text assembler for the UBRC ISA.
//!
//! Syntax overview (see the `workloads` crate for full kernels):
//!
//! ```text
//! ; comments run to end of line (also `#` and `//`)
//! .data
//! arr:    .quad 1, 2, 3
//! pi:     .double 3.14159
//! buf:    .space 64
//! .text
//! main:   la   r1, arr
//!         ld   r2, 0(r1)
//!         addi r2, r2, 1
//!         beqz r2, done
//!         call helper
//! done:   halt
//! helper: ret
//! ```
//!
//! Registers are `r0..r31` (aliases `zero`, `sp`, `ra`) and `f0..f31`.
//! Pseudo-instructions (`li`, `la`, `mov`, `b`, `beqz`, `bnez`, `bltz`,
//! `bgez`, `ble`, `bgt`, `subi`, `call`, `ret`, `neg`, `not`) expand to
//! one or two real instructions.

use crate::inst::{AluImmOp, AluOp, BranchCond, CvtDir, FpuOp, Inst, MemWidth};
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An assembly error with the 1-based source line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

#[derive(Clone, Debug, PartialEq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Sym(String),
    /// `off(base)`; the offset may be a literal or a symbol.
    Mem {
        off: Box<Operand>,
        base: Reg,
    },
}

#[derive(Clone, Debug, PartialEq)]
enum Stmt {
    Label(String),
    Text,
    Data,
    Quad(Vec<Operand>),
    Word(Vec<Operand>),
    Half(Vec<Operand>),
    Byte(Vec<Operand>),
    Double(Vec<f64>),
    Space(u64),
    Align(u64),
    Inst {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

fn parse_reg(tok: &str) -> Option<Reg> {
    match tok {
        "zero" => return Some(Reg::int(0)),
        "sp" => return Some(crate::reg::SP),
        "ra" => return Some(crate::reg::RA),
        _ => {}
    }
    // `split_at(1)` would panic on an empty token (e.g. from the
    // malformed memory operand `0()`) or a multi-byte first char, so
    // split bytewise and reject anything that is not ASCII `r`/`f`.
    if !tok.is_ascii() || tok.len() < 2 {
        return None;
    }
    let (bank, rest) = tok.split_at(1);
    let idx: u8 = rest.parse().ok()?;
    if idx >= 32 {
        return None;
    }
    match bank {
        "r" => Some(Reg::int(idx)),
        "f" => Some(Reg::fp(idx)),
        _ => None,
    }
}

fn parse_int(tok: &str) -> Option<i64> {
    let (neg, t) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if tok.is_empty() {
        return err(line, "empty operand");
    }
    // Memory operand: off(base).
    if let Some(open) = tok.find('(') {
        if !tok.ends_with(')') {
            return err(line, format!("malformed memory operand `{tok}`"));
        }
        let off_str = &tok[..open];
        let base_str = &tok[open + 1..tok.len() - 1];
        let base = parse_reg(base_str).ok_or_else(|| AsmError {
            line,
            msg: format!("bad base register `{base_str}`"),
        })?;
        let off = if off_str.is_empty() {
            Operand::Imm(0)
        } else {
            parse_operand(off_str, line)?
        };
        return Ok(Operand::Mem {
            off: Box::new(off),
            base,
        });
    }
    if let Some(r) = parse_reg(tok) {
        return Ok(Operand::Reg(r));
    }
    if let Some(v) = parse_int(tok) {
        return Ok(Operand::Imm(v));
    }
    if tok
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && tok
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        return Ok(Operand::Sym(tok.to_string()));
    }
    err(line, format!("unrecognized operand `{tok}`"))
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in [";", "#", "//"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

fn parse(source: &str) -> Result<Vec<(usize, Stmt)>, AsmError> {
    let mut stmts = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut rest = strip_comment(raw).trim();
        // Leading labels (possibly several).
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || !name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                || name.contains(char::is_whitespace)
            {
                break;
            }
            stmts.push((line, Stmt::Label(name.to_string())));
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = match directive.find(char::is_whitespace) {
                Some(i) => directive.split_at(i),
                None => (directive, ""),
            };
            let args = args.trim();
            let parse_list = |line: usize| -> Result<Vec<Operand>, AsmError> {
                args.split(',').map(|t| parse_operand(t, line)).collect()
            };
            let stmt = match name {
                "text" => Stmt::Text,
                "data" => Stmt::Data,
                "quad" => Stmt::Quad(parse_list(line)?),
                "word" => Stmt::Word(parse_list(line)?),
                "half" => Stmt::Half(parse_list(line)?),
                "byte" => Stmt::Byte(parse_list(line)?),
                "double" => {
                    let vals: Result<Vec<f64>, _> =
                        args.split(',').map(|t| t.trim().parse::<f64>()).collect();
                    match vals {
                        Ok(v) => Stmt::Double(v),
                        Err(_) => return err(line, format!("bad .double list `{args}`")),
                    }
                }
                "space" => match parse_int(args) {
                    Some(n) if n >= 0 => Stmt::Space(n as u64),
                    _ => return err(line, format!("bad .space size `{args}`")),
                },
                "align" => match parse_int(args) {
                    Some(n) if n > 0 && (n as u64).is_power_of_two() => Stmt::Align(n as u64),
                    _ => return err(line, format!("bad .align `{args}` (power of two required)")),
                },
                other => return err(line, format!("unknown directive `.{other}`")),
            };
            stmts.push((line, stmt));
            continue;
        }
        // Instruction: mnemonic [operands, ...]
        let (mnemonic, ops) = match rest.find(char::is_whitespace) {
            Some(i) => rest.split_at(i),
            None => (rest, ""),
        };
        let ops = ops.trim();
        let operands = if ops.is_empty() {
            Vec::new()
        } else {
            ops.split(',')
                .map(|t| parse_operand(t, line))
                .collect::<Result<Vec<_>, _>>()?
        };
        stmts.push((
            line,
            Stmt::Inst {
                mnemonic: mnemonic.to_lowercase(),
                operands,
            },
        ));
    }
    Ok(stmts)
}

/// Number of real instructions a (pseudo-)instruction expands to.
fn inst_size(mnemonic: &str, operands: &[Operand]) -> usize {
    match mnemonic {
        "la" => 2,
        "li" => match operands.get(1) {
            Some(Operand::Imm(v)) if i16::try_from(*v).is_ok() => 1,
            _ => 2,
        },
        _ => 1,
    }
}

/// A boxed emit action for one mnemonic family; the dispatch table in
/// [`Emitter::emit`] builds these from the shared operand list.
type EmitFn<'e> = Box<dyn for<'x> Fn(&mut Emitter<'x>) -> Result<(), AsmError> + 'e>;

struct Emitter<'a> {
    symbols: &'a BTreeMap<String, u64>,
    out: Vec<Inst>,
    text_base: u64,
}

impl Emitter<'_> {
    fn pc(&self) -> u64 {
        self.text_base + 4 * self.out.len() as u64
    }

    fn resolve(&self, op: &Operand, line: usize) -> Result<i64, AsmError> {
        match op {
            Operand::Imm(v) => Ok(*v),
            Operand::Sym(s) => match self.symbols.get(s) {
                Some(&addr) => Ok(addr as i64),
                None => err(line, format!("undefined symbol `{s}`")),
            },
            _ => err(line, "expected an immediate or symbol"),
        }
    }

    fn want_reg(&self, op: Option<&Operand>, line: usize) -> Result<Reg, AsmError> {
        match op {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => err(line, "expected a register operand"),
        }
    }

    fn want_imm16(&self, op: Option<&Operand>, line: usize) -> Result<i16, AsmError> {
        let op = op.ok_or_else(|| AsmError {
            line,
            msg: "missing immediate operand".into(),
        })?;
        let v = self.resolve(op, line)?;
        i16::try_from(v).map_err(|_| AsmError {
            line,
            msg: format!("immediate {v} does not fit in 16 signed bits"),
        })
    }

    fn want_mem(&self, op: Option<&Operand>, line: usize) -> Result<(i16, Reg), AsmError> {
        match op {
            Some(Operand::Mem { off, base }) => {
                let v = self.resolve(off, line)?;
                let off = i16::try_from(v).map_err(|_| AsmError {
                    line,
                    msg: format!("memory offset {v} does not fit in 16 signed bits"),
                })?;
                Ok((off, *base))
            }
            _ => err(line, "expected a memory operand `off(base)`"),
        }
    }

    fn branch_off(&self, op: Option<&Operand>, line: usize) -> Result<i16, AsmError> {
        let op = op.ok_or_else(|| AsmError {
            line,
            msg: "missing branch target".into(),
        })?;
        let target = self.resolve(op, line)?;
        let delta = (target - (self.pc() as i64 + 4)) / 4;
        i16::try_from(delta).map_err(|_| AsmError {
            line,
            msg: format!("branch target {delta} instructions away exceeds range"),
        })
    }

    fn jump_off(&self, op: Option<&Operand>, line: usize) -> Result<i32, AsmError> {
        let op = op.ok_or_else(|| AsmError {
            line,
            msg: "missing jump target".into(),
        })?;
        let target = self.resolve(op, line)?;
        let delta = (target - (self.pc() as i64 + 4)) / 4;
        i32::try_from(delta).map_err(|_| AsmError {
            line,
            msg: "jump target exceeds range".into(),
        })
    }

    fn emit_li(&mut self, rd: Reg, v: i64, line: usize) -> Result<(), AsmError> {
        if let Ok(imm) = i16::try_from(v) {
            self.out.push(Inst::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs: Reg::int(0),
                imm,
            });
            return Ok(());
        }
        let Ok(uv) = u32::try_from(v) else {
            return err(
                line,
                format!("immediate {v} not representable (must fit in i16 or u32)"),
            );
        };
        self.out.push(Inst::Lui {
            rd,
            imm: (uv >> 16) as u16,
        });
        self.out.push(Inst::AluImm {
            op: AluImmOp::Ori,
            rd,
            rs: rd,
            imm: (uv & 0xffff) as i16,
        });
        Ok(())
    }

    fn emit(&mut self, mnemonic: &str, ops: &[Operand], line: usize) -> Result<(), AsmError> {
        let alu = |op: AluOp| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let rd = e.want_reg(ops.first(), line)?;
                let rs = e.want_reg(ops.get(1), line)?;
                let rt = e.want_reg(ops.get(2), line)?;
                e.out.push(Inst::Alu { op, rd, rs, rt });
                Ok(())
            })
        };
        let alu_imm = |op: AluImmOp| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let rd = e.want_reg(ops.first(), line)?;
                let rs = e.want_reg(ops.get(1), line)?;
                let imm = e.want_imm16(ops.get(2), line)?;
                e.out.push(Inst::AluImm { op, rd, rs, imm });
                Ok(())
            })
        };
        let load = |width: MemWidth, signed: bool| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let rd = e.want_reg(ops.first(), line)?;
                let (off, base) = e.want_mem(ops.get(1), line)?;
                e.out.push(Inst::Load {
                    width,
                    signed,
                    rd,
                    base,
                    off,
                });
                Ok(())
            })
        };
        let store = |width: MemWidth| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let src = e.want_reg(ops.first(), line)?;
                let (off, base) = e.want_mem(ops.get(1), line)?;
                e.out.push(Inst::Store {
                    width,
                    src,
                    base,
                    off,
                });
                Ok(())
            })
        };
        let branch = |cond: BranchCond, swap: bool| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let a = e.want_reg(ops.first(), line)?;
                let b = e.want_reg(ops.get(1), line)?;
                let off = e.branch_off(ops.get(2), line)?;
                let (rs, rt) = if swap { (b, a) } else { (a, b) };
                e.out.push(Inst::Branch { cond, rs, rt, off });
                Ok(())
            })
        };
        // Branch pseudo against zero: `beqz rs, target`.
        let branch_z = |cond: BranchCond, zero_first: bool| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let r = e.want_reg(ops.first(), line)?;
                let off = e.branch_off(ops.get(1), line)?;
                let z = Reg::int(0);
                let (rs, rt) = if zero_first { (z, r) } else { (r, z) };
                e.out.push(Inst::Branch { cond, rs, rt, off });
                Ok(())
            })
        };
        let fpu3 = |op: FpuOp| -> EmitFn<'_> {
            Box::new(move |e: &mut Emitter| {
                let rd = e.want_reg(ops.first(), line)?;
                let rs = e.want_reg(ops.get(1), line)?;
                let rt = e.want_reg(ops.get(2), line)?;
                e.out.push(Inst::Fpu { op, rd, rs, rt });
                Ok(())
            })
        };
        match mnemonic {
            "add" => alu(AluOp::Add)(self),
            "sub" => alu(AluOp::Sub)(self),
            "mul" => alu(AluOp::Mul)(self),
            "div" => alu(AluOp::Div)(self),
            "rem" => alu(AluOp::Rem)(self),
            "and" => alu(AluOp::And)(self),
            "or" => alu(AluOp::Or)(self),
            "xor" => alu(AluOp::Xor)(self),
            "nor" => alu(AluOp::Nor)(self),
            "sll" => alu(AluOp::Sll)(self),
            "srl" => alu(AluOp::Srl)(self),
            "sra" => alu(AluOp::Sra)(self),
            "slt" => alu(AluOp::Slt)(self),
            "sltu" => alu(AluOp::Sltu)(self),
            "addi" => alu_imm(AluImmOp::Addi)(self),
            "andi" => alu_imm(AluImmOp::Andi)(self),
            "ori" => alu_imm(AluImmOp::Ori)(self),
            "xori" => alu_imm(AluImmOp::Xori)(self),
            "slli" => alu_imm(AluImmOp::Slli)(self),
            "srli" => alu_imm(AluImmOp::Srli)(self),
            "srai" => alu_imm(AluImmOp::Srai)(self),
            "slti" => alu_imm(AluImmOp::Slti)(self),
            "sltiu" => alu_imm(AluImmOp::Sltiu)(self),
            "subi" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                let imm = self.want_imm16(ops.get(2), line)?;
                let neg = imm.checked_neg().ok_or_else(|| AsmError {
                    line,
                    msg: "subi immediate out of range".into(),
                })?;
                self.out.push(Inst::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs,
                    imm: neg,
                });
                Ok(())
            }
            "lui" => {
                let rd = self.want_reg(ops.first(), line)?;
                let v = self.resolve(
                    ops.get(1).ok_or_else(|| AsmError {
                        line,
                        msg: "missing immediate".into(),
                    })?,
                    line,
                )?;
                let imm = u16::try_from(v).map_err(|_| AsmError {
                    line,
                    msg: format!("lui immediate {v} does not fit in 16 bits"),
                })?;
                self.out.push(Inst::Lui { rd, imm });
                Ok(())
            }
            "lb" => load(MemWidth::Byte, true)(self),
            "lbu" => load(MemWidth::Byte, false)(self),
            "lh" => load(MemWidth::Half, true)(self),
            "lhu" => load(MemWidth::Half, false)(self),
            "lw" => load(MemWidth::Word, true)(self),
            "lwu" => load(MemWidth::Word, false)(self),
            "ld" | "fld" => load(MemWidth::Quad, true)(self),
            "sb" => store(MemWidth::Byte)(self),
            "sh" => store(MemWidth::Half)(self),
            "sw" => store(MemWidth::Word)(self),
            "sd" | "fsd" => store(MemWidth::Quad)(self),
            "beq" => branch(BranchCond::Eq, false)(self),
            "bne" => branch(BranchCond::Ne, false)(self),
            "blt" => branch(BranchCond::Lt, false)(self),
            "bge" => branch(BranchCond::Ge, false)(self),
            "bltu" => branch(BranchCond::Ltu, false)(self),
            "bgeu" => branch(BranchCond::Geu, false)(self),
            "ble" => branch(BranchCond::Ge, true)(self),
            "bgt" => branch(BranchCond::Lt, true)(self),
            "beqz" => branch_z(BranchCond::Eq, false)(self),
            "bnez" => branch_z(BranchCond::Ne, false)(self),
            "bltz" => branch_z(BranchCond::Lt, false)(self),
            "bgez" => branch_z(BranchCond::Ge, false)(self),
            "bgtz" => branch_z(BranchCond::Lt, true)(self),
            "blez" => branch_z(BranchCond::Ge, true)(self),
            "b" => {
                let off = self.branch_off(ops.first(), line)?;
                self.out.push(Inst::Branch {
                    cond: BranchCond::Eq,
                    rs: Reg::int(0),
                    rt: Reg::int(0),
                    off,
                });
                Ok(())
            }
            "j" => {
                let off = self.jump_off(ops.first(), line)?;
                self.out.push(Inst::Jump { link: false, off });
                Ok(())
            }
            "jal" | "call" => {
                let off = self.jump_off(ops.first(), line)?;
                self.out.push(Inst::Jump { link: true, off });
                Ok(())
            }
            "jr" => {
                let rs = self.want_reg(ops.first(), line)?;
                self.out.push(Inst::JumpReg {
                    link: false,
                    rd: Reg::int(0),
                    rs,
                });
                Ok(())
            }
            "jalr" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::JumpReg { link: true, rd, rs });
                Ok(())
            }
            "ret" => {
                self.out.push(Inst::JumpReg {
                    link: false,
                    rd: Reg::int(0),
                    rs: crate::reg::RA,
                });
                Ok(())
            }
            "fadd" => fpu3(FpuOp::Fadd)(self),
            "fsub" => fpu3(FpuOp::Fsub)(self),
            "fmul" => fpu3(FpuOp::Fmul)(self),
            "fdiv" => fpu3(FpuOp::Fdiv)(self),
            "feq" => fpu3(FpuOp::Feq)(self),
            "flt" => fpu3(FpuOp::Flt)(self),
            "fle" => fpu3(FpuOp::Fle)(self),
            "fneg" | "fmov" => {
                let op = if mnemonic == "fneg" {
                    FpuOp::Fneg
                } else {
                    FpuOp::Fmov
                };
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::Fpu {
                    op,
                    rd,
                    rs,
                    rt: Reg::fp(0),
                });
                Ok(())
            }
            "cvtif" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::Cvt {
                    dir: CvtDir::IntToFp,
                    rd,
                    rs,
                });
                Ok(())
            }
            "cvtfi" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::Cvt {
                    dir: CvtDir::FpToInt,
                    rd,
                    rs,
                });
                Ok(())
            }
            "mov" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs,
                    imm: 0,
                });
                Ok(())
            }
            "neg" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::Alu {
                    op: AluOp::Sub,
                    rd,
                    rs: Reg::int(0),
                    rt: rs,
                });
                Ok(())
            }
            "not" => {
                let rd = self.want_reg(ops.first(), line)?;
                let rs = self.want_reg(ops.get(1), line)?;
                self.out.push(Inst::Alu {
                    op: AluOp::Nor,
                    rd,
                    rs,
                    rt: Reg::int(0),
                });
                Ok(())
            }
            "li" => {
                let rd = self.want_reg(ops.first(), line)?;
                let v = self.resolve(
                    ops.get(1).ok_or_else(|| AsmError {
                        line,
                        msg: "missing immediate".into(),
                    })?,
                    line,
                )?;
                self.emit_li(rd, v, line)
            }
            "la" => {
                let rd = self.want_reg(ops.first(), line)?;
                let v = self.resolve(
                    ops.get(1).ok_or_else(|| AsmError {
                        line,
                        msg: "missing symbol".into(),
                    })?,
                    line,
                )?;
                let before = self.out.len();
                self.emit_li(rd, v, line)?;
                // Keep the 2-instruction size promised by pass 1.
                while self.out.len() < before + 2 {
                    self.out.push(Inst::Nop);
                }
                Ok(())
            }
            "nop" => {
                self.out.push(Inst::Nop);
                Ok(())
            }
            "halt" => {
                self.out.push(Inst::Halt);
                Ok(())
            }
            other => err(line, format!("unknown mnemonic `{other}`")),
        }
    }
}

/// Assembles source text into a [`Program`] at the default segment bases.
///
/// # Errors
///
/// Returns [`AsmError`] (with a line number) for syntax errors, unknown
/// mnemonics/directives, undefined or duplicate labels, and out-of-range
/// immediates or branch targets.
///
/// # Examples
///
/// ```
/// use ubrc_isa::assemble;
///
/// let p = assemble(
///     "main: li r1, 10\n\
///      loop: subi r1, r1, 1\n\
///            bnez r1, loop\n\
///            halt\n",
/// )?;
/// assert_eq!(p.text.len(), 4);
/// # Ok::<(), ubrc_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, TEXT_BASE, DATA_BASE)
}

/// Assembles with explicit text/data segment base addresses.
///
/// # Errors
///
/// As for [`assemble`].
pub fn assemble_at(source: &str, text_base: u64, data_base: u64) -> Result<Program, AsmError> {
    let stmts = parse(source)?;

    // Pass 1: lay out symbols.
    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
    let mut in_text = true;
    let mut text_len = 0u64; // in instructions
    let mut data_len = 0u64; // in bytes
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Text => in_text = true,
            Stmt::Data => in_text = false,
            Stmt::Label(name) => {
                let addr = if in_text {
                    text_base + 4 * text_len
                } else {
                    data_base + data_len
                };
                if symbols.insert(name.clone(), addr).is_some() {
                    return err(*line, format!("duplicate label `{name}`"));
                }
            }
            Stmt::Inst { mnemonic, operands } => {
                if !in_text {
                    return err(*line, "instruction outside .text");
                }
                text_len += inst_size(mnemonic, operands) as u64;
            }
            Stmt::Quad(v) => data_len += 8 * v.len() as u64,
            Stmt::Word(v) => data_len += 4 * v.len() as u64,
            Stmt::Half(v) => data_len += 2 * v.len() as u64,
            Stmt::Byte(v) => data_len += v.len() as u64,
            Stmt::Double(v) => data_len += 8 * v.len() as u64,
            Stmt::Space(n) => data_len += n,
            Stmt::Align(n) => data_len = data_len.next_multiple_of(*n),
        }
    }

    // Pass 2: emit.
    let mut emitter = Emitter {
        symbols: &symbols,
        out: Vec::with_capacity(text_len as usize),
        text_base,
    };
    let mut data: Vec<u8> = Vec::with_capacity(data_len as usize);
    for (line, stmt) in &stmts {
        match stmt {
            Stmt::Text | Stmt::Data | Stmt::Label(_) => {}
            Stmt::Inst { mnemonic, operands } => emitter.emit(mnemonic, operands, *line)?,
            Stmt::Quad(v) | Stmt::Word(v) | Stmt::Half(v) | Stmt::Byte(v) => {
                let width = match stmt {
                    Stmt::Quad(_) => 8,
                    Stmt::Word(_) => 4,
                    Stmt::Half(_) => 2,
                    _ => 1,
                };
                for op in v {
                    let val = emitter.resolve(op, *line)?;
                    data.extend_from_slice(&val.to_le_bytes()[..width]);
                }
            }
            Stmt::Double(v) => {
                for d in v {
                    data.extend_from_slice(&d.to_bits().to_le_bytes());
                }
            }
            Stmt::Space(n) => data.extend(std::iter::repeat_n(0u8, *n as usize)),
            Stmt::Align(n) => {
                let target = (data.len() as u64).next_multiple_of(*n) as usize;
                data.resize(target, 0);
            }
        }
    }
    debug_assert_eq!(emitter.out.len() as u64, text_len);
    debug_assert_eq!(data.len() as u64, data_len);

    let entry = symbols.get("main").copied().unwrap_or(text_base);
    Ok(Program {
        text_base,
        text: emitter.out,
        data_base,
        data,
        entry,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_branch_offsets() {
        let p = assemble(
            "main: addi r1, r0, 3\n\
             loop: subi r1, r1, 1\n\
                   bnez r1, loop\n\
                   halt\n",
        )
        .unwrap();
        assert_eq!(p.text.len(), 4);
        match p.text[2] {
            Inst::Branch { cond, off, .. } => {
                assert_eq!(cond, BranchCond::Ne);
                assert_eq!(off, -2); // back to `loop` from pc+4
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn li_small_is_one_instruction_large_is_two() {
        let p = assemble("li r1, 5\nli r2, 0x12345\nhalt\n").unwrap();
        assert_eq!(p.text.len(), 4);
        assert_eq!(
            p.text[0],
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::int(1),
                rs: Reg::int(0),
                imm: 5
            }
        );
        assert_eq!(
            p.text[1],
            Inst::Lui {
                rd: Reg::int(2),
                imm: 0x1
            }
        );
        assert_eq!(
            p.text[2],
            Inst::AluImm {
                op: AluImmOp::Ori,
                rd: Reg::int(2),
                rs: Reg::int(2),
                imm: 0x2345
            }
        );
    }

    #[test]
    fn la_resolves_data_labels() {
        let p = assemble(
            ".data\n\
             x: .quad 7\n\
             y: .quad 8, 9\n\
             .text\n\
             main: la r1, y\n\
                   halt\n",
        )
        .unwrap();
        assert_eq!(p.symbol("x"), Some(DATA_BASE));
        assert_eq!(p.symbol("y"), Some(DATA_BASE + 8));
        assert_eq!(p.data.len(), 24);
        assert_eq!(&p.data[0..8], &7u64.to_le_bytes());
    }

    #[test]
    fn data_directives_layout() {
        let p = assemble(
            ".data\n\
             a: .byte 1, 2\n\
             .align 4\n\
             b: .word 3\n\
             c: .space 5\n\
             d: .double 1.5\n",
        )
        .unwrap();
        assert_eq!(p.symbol("a"), Some(DATA_BASE));
        assert_eq!(p.symbol("b"), Some(DATA_BASE + 4));
        assert_eq!(p.symbol("c"), Some(DATA_BASE + 8));
        assert_eq!(p.symbol("d"), Some(DATA_BASE + 13));
        assert_eq!(&p.data[13..21], &1.5f64.to_bits().to_le_bytes());
    }

    #[test]
    fn entry_defaults_to_main_label() {
        let p = assemble("nop\nmain: halt\n").unwrap();
        assert_eq!(p.entry, p.text_base + 4);
        let p2 = assemble("halt\n").unwrap();
        assert_eq!(p2.entry, p2.text_base);
    }

    #[test]
    fn call_and_ret_expand() {
        let p = assemble(
            "main: call f\n\
                   halt\n\
             f:    ret\n",
        )
        .unwrap();
        assert_eq!(p.text[0], Inst::Jump { link: true, off: 1 });
        assert!(p.text[2].is_return());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_is_an_error() {
        let e = assemble("main: la r1, nowhere\nhalt\n").unwrap_err();
        assert!(e.msg.contains("undefined symbol"));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble(
            "; leading comment\n\
             \n\
             main: nop # trailing\n\
                   halt // also trailing\n",
        )
        .unwrap();
        assert_eq!(p.text.len(), 2);
    }

    #[test]
    fn memory_operands_with_symbolic_offsets() {
        let p =
            assemble(".data\nbase: .space 16\n.text\nmain: ld r1, 8(r2)\n sd r1, (r3)\n halt\n")
                .unwrap();
        assert_eq!(
            p.text[0],
            Inst::Load {
                width: MemWidth::Quad,
                signed: true,
                rd: Reg::int(1),
                base: Reg::int(2),
                off: 8
            }
        );
        assert_eq!(
            p.text[1],
            Inst::Store {
                width: MemWidth::Quad,
                src: Reg::int(1),
                base: Reg::int(3),
                off: 0
            }
        );
    }

    #[test]
    fn register_aliases() {
        let p = assemble("main: mov sp, ra\n addi r1, zero, 1\n halt\n").unwrap();
        assert_eq!(
            p.text[0],
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: crate::reg::SP,
                rs: crate::reg::RA,
                imm: 0
            }
        );
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = assemble("main: ble r1, r2, main\n bgt r3, r4, main\n halt\n").unwrap();
        match p.text[0] {
            Inst::Branch { cond, rs, rt, .. } => {
                assert_eq!(cond, BranchCond::Ge);
                assert_eq!(rs, Reg::int(2));
                assert_eq!(rt, Reg::int(1));
            }
            _ => panic!(),
        }
        match p.text[1] {
            Inst::Branch { cond, rs, rt, .. } => {
                assert_eq!(cond, BranchCond::Lt);
                assert_eq!(rs, Reg::int(4));
                assert_eq!(rt, Reg::int(3));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn fp_instructions_assemble() {
        let p = assemble(
            ".data\nv: .double 2.0\n.text\n\
             main: la r1, v\n\
                   fld f1, 0(r1)\n\
                   fadd f2, f1, f1\n\
                   fmov f3, f2\n\
                   cvtfi r2, f3\n\
                   halt\n",
        )
        .unwrap();
        assert_eq!(p.text.len(), 7);
        match p.text[2] {
            Inst::Load { rd, .. } => assert!(rd.is_fp()),
            _ => panic!(),
        }
    }
}
