//! The UBRC instruction set: a 64-bit RISC ISA with a fixed 32-bit
//! encoding, an assembler, and a disassembler.
//!
//! This crate is the substrate ISA for the reproduction of Butts & Sohi,
//! *Use-Based Register Caching with Decoupled Indexing* (ISCA 2004). The
//! paper's evaluation ran Alpha binaries; this ISA stands in for Alpha
//! with the same register model (32 integer + 32 floating-point
//! architectural registers over a unified physical file, `r0` hardwired
//! to zero) and the same execution latency classes (see [`ExecClass`]).
//!
//! # Examples
//!
//! Assemble and inspect a small program:
//!
//! ```
//! use ubrc_isa::{assemble, Inst};
//!
//! let program = assemble(
//!     "main: li   r1, 4
//!      loop: subi r1, r1, 1
//!            bnez r1, loop
//!            halt",
//! )?;
//! assert_eq!(program.text.len(), 4);
//! let word = program.text[0].encode()?;
//! assert_eq!(Inst::decode(word)?, program.text[0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod asm;
mod encode;
mod inst;
mod listing;
mod program;
mod reg;

pub use asm::{assemble, assemble_at, AsmError};
pub use encode::{DecodeInstError, EncodeInstError};
pub use inst::{AluImmOp, AluOp, BranchCond, CvtDir, ExecClass, FpuOp, Inst, MemWidth};
pub use listing::{from_image, listing, to_image, ImageError};
pub use program::{Program, DATA_BASE, TEXT_BASE};
pub use reg::{Reg, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS, RA, SP, ZERO};
