//! Behavioural tests across the front-end predictors: realistic access
//! patterns (loops, polymorphic call sites, recursive call trees) and
//! accuracy comparisons between predictor families.

use ubrc_frontend::{
    Bimodal, CascadingIndirect, DegreeOfUsePredictor, GlobalHistory, Gshare, ReturnAddressStack,
    Yags,
};

/// A nested-loop branch pattern: inner loop taken 3 times then exits,
/// outer always taken. YAGS must beat bimodal on it.
#[test]
fn yags_beats_bimodal_on_nested_loops() {
    let mut yags = Yags::default();
    let mut bimodal = Bimodal::default();
    let mut hist = GlobalHistory::new();
    let (mut y_ok, mut b_ok, mut total) = (0u32, 0u32, 0u32);
    for outer in 0..500 {
        for inner in 0..4 {
            let pc = 0x4000;
            let taken = inner != 3; // inner back-edge
            let yp = yags.predict(pc, hist);
            let bp = bimodal.predict(pc);
            yags.update(pc, hist, taken, yp);
            bimodal.update(pc, taken);
            hist.push(taken);
            if outer >= 100 {
                total += 1;
                y_ok += (yp == taken) as u32;
                b_ok += (bp == taken) as u32;
            }
        }
    }
    let y_acc = y_ok as f64 / total as f64;
    let b_acc = b_ok as f64 / total as f64;
    assert!(y_acc > 0.95, "YAGS accuracy {y_acc}");
    assert!(y_acc > b_acc, "YAGS ({y_acc}) must beat bimodal ({b_acc})");
}

/// Gshare and YAGS both learn history-correlated branches; a bimodal
/// predictor caps at the bias rate.
#[test]
fn history_predictors_learn_correlated_pairs() {
    // Branch B's outcome equals branch A's previous outcome.
    let mut gshare = Gshare::default();
    let mut hist = GlobalHistory::new();
    let mut correct = 0u32;
    let mut total = 0u32;
    for i in 0..2000 {
        let a_outcome = (i * 7) % 3 == 0; // pseudo-random-ish but deterministic
        let _ap = gshare.predict(0x100, hist);
        gshare.update(0x100, hist, a_outcome);
        hist.push(a_outcome);

        let b_outcome = a_outcome;
        let bp = gshare.predict(0x200, hist);
        gshare.update(0x200, hist, b_outcome);
        hist.push(b_outcome);
        if i > 500 {
            total += 1;
            correct += (bp == b_outcome) as u32;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.9, "correlated branch accuracy {acc}");
}

/// A polymorphic call site alternating between two targets based on
/// history: the cascading second stage must capture it.
#[test]
fn cascading_indirect_learns_alternating_targets() {
    let mut p = CascadingIndirect::default();
    let mut hist = GlobalHistory::new();
    let mut correct = 0u32;
    let mut total = 0u32;
    for i in 0..600 {
        let phase = i % 2 == 0;
        // A conditional branch encoding the phase precedes the call.
        hist.push(phase);
        let target = if phase { 0xaaaa000 } else { 0xbbbb000 };
        let pred = p.predict(0x5000, hist);
        p.update(0x5000, hist, target);
        if i > 100 {
            total += 1;
            correct += (pred == Some(target)) as u32;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.9, "polymorphic target accuracy {acc}");
}

/// The RAS tracks a recursive call tree exactly as long as depth stays
/// within capacity.
#[test]
fn ras_matches_a_recursive_call_tree() {
    fn walk(ras: &mut ReturnAddressStack, depth: u64, errors: &mut u32) {
        if depth == 0 {
            return;
        }
        for child in 0..2u64 {
            let ret = depth * 1000 + child;
            ras.push(ret);
            walk(ras, depth - 1, errors);
            if ras.pop() != Some(ret) {
                *errors += 1;
            }
        }
    }
    let mut ras = ReturnAddressStack::new(64);
    let mut errors = 0;
    walk(&mut ras, 5, &mut errors);
    assert_eq!(errors, 0, "RAS mispredicted {errors} returns");
}

/// The degree-of-use predictor separates contexts for the same static
/// instruction whose consumer count depends on a preceding branch —
/// the reason 6 bits of control-flow history are in the index.
#[test]
fn douse_uses_control_context() {
    let mut p = DegreeOfUsePredictor::default();
    let mut correct = 0u32;
    let mut total = 0u32;
    for i in 0..600 {
        let phase = i % 2 == 0;
        let mut hist = GlobalHistory::new();
        hist.push(phase);
        let actual = if phase { 1 } else { 4 };
        if i > 100 {
            total += 1;
            correct += (p.predict(0x9000, hist) == Some(actual)) as u32;
        }
        p.train(0x9000, hist, actual);
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.95, "context-dependent degree accuracy {acc}");
}
