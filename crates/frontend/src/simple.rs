use crate::history::GlobalHistory;

fn taken2(c: u8) -> bool {
    c >= 2
}

/// A bimodal (per-PC 2-bit counter) conditional branch predictor.
///
/// The simplest hardware direction predictor; used as an ablation
/// baseline against [`crate::Yags`].
///
/// # Examples
///
/// ```
/// use ubrc_frontend::Bimodal;
///
/// let mut p = Bimodal::default();
/// p.update(0x400, true);
/// p.update(0x400, true);
/// assert!(p.predict(0x400));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Default for Bimodal {
    /// 16K entries (4KB of 2-bit counters).
    fn default() -> Self {
        Self::new(14)
    }
}

impl Bimodal {
    /// Creates a predictor with `2^bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 24`.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 24);
        Self {
            counters: vec![1; 1 << bits], // weakly not-taken
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the branch direction.
    pub fn predict(&self, pc: u64) -> bool {
        taken2(self.counters[self.index(pc)])
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        *c = if taken {
            (*c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }
}

/// A gshare conditional branch predictor: 2-bit counters indexed by
/// PC ⊕ global history.
///
/// # Examples
///
/// ```
/// use ubrc_frontend::{GlobalHistory, Gshare};
///
/// let mut p = Gshare::default();
/// let h = GlobalHistory::new();
/// p.update(0x400, h, true);
/// p.update(0x400, h, true);
/// assert!(p.predict(0x400, h));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history_bits: u32,
}

impl Default for Gshare {
    /// 16K entries with 12 bits of history (4KB).
    fn default() -> Self {
        Self::new(14, 12)
    }
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters and `history_bits`
    /// of global history in the index.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 24`.
    pub fn new(bits: u32, history_bits: u32) -> Self {
        assert!(bits <= 24);
        Self {
            counters: vec![1; 1 << bits],
            history_bits: history_bits.min(bits),
        }
    }

    fn index(&self, pc: u64, hist: GlobalHistory) -> usize {
        (((pc >> 2) ^ hist.bits(self.history_bits)) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the branch direction.
    pub fn predict(&self, pc: u64, hist: GlobalHistory) -> bool {
        taken2(self.counters[self.index(pc, hist)])
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: u64, hist: GlobalHistory, taken: bool) {
        let i = self.index(pc, hist);
        let c = &mut self.counters[i];
        *c = if taken {
            (*c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }
}

/// A conditional branch direction predictor of any style, for the
/// simulator's predictor ablation.
#[derive(Clone, Debug)]
pub enum DirectionPredictor {
    /// Always predict not-taken (the degenerate baseline).
    AlwaysNotTaken,
    /// Per-PC 2-bit counters.
    Bimodal(Bimodal),
    /// PC ⊕ history indexed counters.
    Gshare(Gshare),
    /// The paper's 12KB YAGS predictor (default).
    Yags(crate::Yags),
}

impl DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64, hist: GlobalHistory) -> bool {
        match self {
            DirectionPredictor::AlwaysNotTaken => false,
            DirectionPredictor::Bimodal(p) => p.predict(pc),
            DirectionPredictor::Gshare(p) => p.predict(pc, hist),
            DirectionPredictor::Yags(p) => p.predict(pc, hist),
        }
    }

    /// Trains with the resolved outcome; `predicted` is what
    /// [`DirectionPredictor::predict`] returned at fetch.
    pub fn update(&mut self, pc: u64, hist: GlobalHistory, taken: bool, predicted: bool) {
        match self {
            DirectionPredictor::AlwaysNotTaken => {}
            DirectionPredictor::Bimodal(p) => p.update(pc, taken),
            DirectionPredictor::Gshare(p) => p.update(pc, hist, taken),
            DirectionPredictor::Yags(p) => p.update(pc, hist, taken, predicted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(8);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(8);
        let mut correct = 0;
        let mut outcome = false;
        for _ in 0..100 {
            if p.predict(0x200) == outcome {
                correct += 1;
            }
            p.update(0x200, outcome);
            outcome = !outcome;
        }
        assert!(
            correct <= 60,
            "bimodal should fail on alternation: {correct}"
        );
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = Gshare::new(10, 4);
        let mut h = GlobalHistory::new();
        let mut outcome = false;
        for _ in 0..64 {
            p.update(0x300, h, outcome);
            h.push(outcome);
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..64 {
            if p.predict(0x300, h) == outcome {
                correct += 1;
            }
            p.update(0x300, h, outcome);
            h.push(outcome);
            outcome = !outcome;
        }
        assert!(correct >= 60, "gshare should learn alternation: {correct}");
    }

    #[test]
    fn direction_predictor_dispatch() {
        let h = GlobalHistory::new();
        let mut p = DirectionPredictor::AlwaysNotTaken;
        assert!(!p.predict(0x10, h));
        p.update(0x10, h, true, false); // no-op, must not panic

        let mut p = DirectionPredictor::Bimodal(Bimodal::new(6));
        p.update(0x10, h, true, false);
        p.update(0x10, h, true, true);
        assert!(p.predict(0x10, h));

        let mut p = DirectionPredictor::Yags(crate::Yags::new(8, 6));
        let pred = p.predict(0x10, h);
        p.update(0x10, h, true, pred);
    }
}
