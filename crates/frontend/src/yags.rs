use crate::history::GlobalHistory;

/// Saturating 2-bit counter helpers.
fn inc2(c: u8) -> u8 {
    (c + 1).min(3)
}
fn dec2(c: u8) -> u8 {
    c.saturating_sub(1)
}
fn taken2(c: u8) -> bool {
    c >= 2
}

#[derive(Clone, Copy, Debug, Default)]
struct CacheEntry {
    tag: u8,
    ctr: u8,
    valid: bool,
}

/// A YAGS ("Yet Another Global Scheme") conditional branch predictor.
///
/// YAGS keeps a PC-indexed bimodal *choice* table giving each branch's
/// bias, plus two small tagged *direction caches* holding only the
/// exceptions: the T-cache records history contexts in which a
/// biased-not-taken branch was taken, and vice versa for the NT-cache.
/// This is the 12KB configuration from Table 1 of the paper: a 16K-entry
/// choice table (4KB) and two 4K-entry direction caches (6-bit tag +
/// 2-bit counter = 4KB each).
///
/// # Examples
///
/// ```
/// use ubrc_frontend::{GlobalHistory, Yags};
///
/// let mut p = Yags::default();
/// let mut h = GlobalHistory::new();
/// for _ in 0..8 {
///     let pred = p.predict(0x1000, h);
///     p.update(0x1000, h, true, pred);
///     h.push(true);
/// }
/// assert!(p.predict(0x1000, h));
/// ```
#[derive(Clone, Debug)]
pub struct Yags {
    choice: Vec<u8>,
    t_cache: Vec<CacheEntry>,
    nt_cache: Vec<CacheEntry>,
    history_bits: u32,
}

impl Default for Yags {
    fn default() -> Self {
        Self::new(14, 12)
    }
}

impl Yags {
    /// Creates a predictor with `2^choice_bits` choice entries and
    /// `2^cache_bits` entries per direction cache.
    ///
    /// # Panics
    ///
    /// Panics if either size exceeds 2^24 entries.
    pub fn new(choice_bits: u32, cache_bits: u32) -> Self {
        assert!(choice_bits <= 24 && cache_bits <= 24);
        Self {
            // Weakly not-taken.
            choice: vec![1; 1 << choice_bits],
            t_cache: vec![CacheEntry::default(); 1 << cache_bits],
            nt_cache: vec![CacheEntry::default(); 1 << cache_bits],
            history_bits: cache_bits,
        }
    }

    /// Approximate storage budget in bytes (2-bit choice counters, 8-bit
    /// direction-cache entries).
    pub fn size_bytes(&self) -> usize {
        self.choice.len() / 4 + self.t_cache.len() + self.nt_cache.len()
    }

    fn choice_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.choice.len() - 1)
    }

    fn cache_index(&self, pc: u64, hist: GlobalHistory) -> usize {
        (((pc >> 2) ^ hist.bits(self.history_bits)) as usize) & (self.t_cache.len() - 1)
    }

    fn tag(pc: u64) -> u8 {
        ((pc >> 2) & 0x3f) as u8
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64, hist: GlobalHistory) -> bool {
        let bias = taken2(self.choice[self.choice_index(pc)]);
        let idx = self.cache_index(pc, hist);
        let tag = Self::tag(pc);
        // The cache consulted holds exceptions to the bias.
        let cache = if bias { &self.nt_cache } else { &self.t_cache };
        let e = &cache[idx];
        if e.valid && e.tag == tag {
            taken2(e.ctr)
        } else {
            bias
        }
    }

    /// Trains the predictor with the resolved outcome. `predicted` is
    /// what [`Yags::predict`] returned at fetch (used to decide cache
    /// allocation, per the YAGS update rules).
    pub fn update(&mut self, pc: u64, hist: GlobalHistory, taken: bool, predicted: bool) {
        let cidx = self.choice_index(pc);
        let bias = taken2(self.choice[cidx]);
        let idx = self.cache_index(pc, hist);
        let tag = Self::tag(pc);

        let cache = if bias {
            &mut self.nt_cache
        } else {
            &mut self.t_cache
        };
        let e = &mut cache[idx];
        let cache_hit = e.valid && e.tag == tag;
        if cache_hit {
            e.ctr = if taken { inc2(e.ctr) } else { dec2(e.ctr) };
        } else if predicted != taken {
            // Allocate an exception entry when the bias (which supplied
            // the prediction) was wrong.
            *e = CacheEntry {
                tag,
                ctr: if taken { 2 } else { 1 },
                valid: true,
            };
        }

        // The choice table trains except when the exception cache was
        // correct while disagreeing with the bias (keeping the bias
        // stable for mostly-biased branches).
        let exception_correct_disagreeing = cache_hit && {
            let dir = taken2(if bias {
                self.nt_cache[idx].ctr
            } else {
                self.t_cache[idx].ctr
            });
            dir == taken && dir != bias
        };
        if !exception_correct_disagreeing {
            self.choice[cidx] = if taken {
                inc2(self.choice[cidx])
            } else {
                dec2(self.choice[cidx])
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut Yags, pc: u64, h: &mut GlobalHistory, outcome: bool) -> bool {
        let pred = p.predict(pc, *h);
        p.update(pc, *h, outcome, pred);
        h.push(outcome);
        pred
    }

    #[test]
    fn learns_always_taken() {
        let mut p = Yags::default();
        let mut h = GlobalHistory::new();
        for _ in 0..10 {
            train(&mut p, 0x4000, &mut h, true);
        }
        assert!(p.predict(0x4000, h));
    }

    #[test]
    fn learns_alternating_pattern_through_exception_cache() {
        let mut p = Yags::default();
        let mut h = GlobalHistory::new();
        let mut outcome = false;
        // Warm up on a strict alternation; afterwards it should predict
        // nearly perfectly since the 1-bit history context decides.
        for _ in 0..64 {
            train(&mut p, 0x8000, &mut h, outcome);
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..64 {
            if train(&mut p, 0x8000, &mut h, outcome) == outcome {
                correct += 1;
            }
            outcome = !outcome;
        }
        assert!(correct >= 60, "only {correct}/64 correct");
    }

    #[test]
    fn distinct_branches_do_not_interfere_via_choice_table() {
        let mut p = Yags::default();
        let mut h = GlobalHistory::new();
        for _ in 0..20 {
            train(&mut p, 0x1000, &mut h, true);
            train(&mut p, 0x2000, &mut h, false);
        }
        assert!(p.predict(0x1000, h));
        assert!(!p.predict(0x2000, h));
    }

    #[test]
    fn size_budget_matches_table1() {
        let p = Yags::default();
        // 16K * 2 bits + 2 * 4K * 1 byte = 4KB + 8KB = 12KB.
        assert_eq!(p.size_bytes(), 12 << 10);
    }

    #[test]
    fn loop_exit_pattern_accuracy() {
        // Taken 7 times then not-taken once, repeating: a predictor with
        // history context should exceed the 87.5% of always-taken.
        let mut p = Yags::default();
        let mut h = GlobalHistory::new();
        let mut correct = 0u32;
        let mut total = 0u32;
        for i in 0..2048u32 {
            let outcome = i % 8 != 7;
            let pred = train(&mut p, 0x9000, &mut h, outcome);
            if i >= 512 {
                total += 1;
                if pred == outcome {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
