use crate::history::GlobalHistory;

#[derive(Clone, Copy, Debug, Default)]
struct TaggedTarget {
    tag: u16,
    target: u64,
    valid: bool,
}

/// A two-stage cascading indirect branch target predictor.
///
/// Stage 1 is a PC-indexed target cache (the last target of each
/// indirect branch). Stage 2 is a history-hashed, tagged table that
/// captures context-dependent targets; it only allocates for branches
/// the first stage mispredicts — the "cascading" filter that makes the
/// second stage's capacity count. Prediction prefers a tag-matching
/// stage-2 entry. This models the 32KB cascading indirect predictor of
/// Table 1 (two 2K-entry stages of 8-byte targets).
///
/// # Examples
///
/// ```
/// use ubrc_frontend::{CascadingIndirect, GlobalHistory};
///
/// let mut p = CascadingIndirect::default();
/// let h = GlobalHistory::new();
/// p.update(0x1000, h, 0x4000);
/// assert_eq!(p.predict(0x1000, h), Some(0x4000));
/// ```
#[derive(Clone, Debug)]
pub struct CascadingIndirect {
    stage1: Vec<TaggedTarget>,
    stage2: Vec<TaggedTarget>,
    history_bits: u32,
}

impl Default for CascadingIndirect {
    fn default() -> Self {
        Self::new(11, 11)
    }
}

impl CascadingIndirect {
    /// Creates a predictor with `2^s1_bits` stage-1 and `2^s2_bits`
    /// stage-2 entries.
    ///
    /// # Panics
    ///
    /// Panics if either size exceeds 2^24 entries.
    pub fn new(s1_bits: u32, s2_bits: u32) -> Self {
        assert!(s1_bits <= 24 && s2_bits <= 24);
        Self {
            stage1: vec![TaggedTarget::default(); 1 << s1_bits],
            stage2: vec![TaggedTarget::default(); 1 << s2_bits],
            history_bits: s2_bits.min(16),
        }
    }

    /// Approximate storage in bytes (8-byte targets per entry, tags and
    /// valid bits folded into the same word as hardware would).
    pub fn size_bytes(&self) -> usize {
        8 * (self.stage1.len() + self.stage2.len())
    }

    fn s1_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.stage1.len() - 1)
    }

    fn s2_index(&self, pc: u64, hist: GlobalHistory) -> usize {
        (((pc >> 2) ^ hist.bits(self.history_bits).rotate_left(3)) as usize)
            & (self.stage2.len() - 1)
    }

    fn tag(pc: u64) -> u16 {
        ((pc >> 2) & 0xffff) as u16
    }

    /// Predicts the target of the indirect branch at `pc`, or `None` if
    /// neither stage has seen it.
    pub fn predict(&self, pc: u64, hist: GlobalHistory) -> Option<u64> {
        let tag = Self::tag(pc);
        let e2 = &self.stage2[self.s2_index(pc, hist)];
        if e2.valid && e2.tag == tag {
            return Some(e2.target);
        }
        let e1 = &self.stage1[self.s1_index(pc)];
        if e1.valid && e1.tag == tag {
            Some(e1.target)
        } else {
            None
        }
    }

    /// Trains with the resolved target.
    pub fn update(&mut self, pc: u64, hist: GlobalHistory, target: u64) {
        let tag = Self::tag(pc);
        let i1 = self.s1_index(pc);
        let e1 = &self.stage1[i1];
        let s1_correct = e1.valid && e1.tag == tag && e1.target == target;
        // Cascade: allocate in stage 2 only when stage 1 is wrong.
        if !s1_correct {
            let i2 = self.s2_index(pc, hist);
            self.stage2[i2] = TaggedTarget {
                tag,
                target,
                valid: true,
            };
        }
        self.stage1[i1] = TaggedTarget {
            tag,
            target,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_branch_predicts_none() {
        let p = CascadingIndirect::default();
        assert_eq!(p.predict(0x1234, GlobalHistory::new()), None);
    }

    #[test]
    fn monomorphic_target_sticks_in_stage1() {
        let mut p = CascadingIndirect::default();
        let h = GlobalHistory::new();
        p.update(0x100, h, 0x9000);
        assert_eq!(p.predict(0x100, h), Some(0x9000));
    }

    #[test]
    fn history_correlated_targets_use_stage2() {
        let mut p = CascadingIndirect::default();
        let mut ha = GlobalHistory::new();
        ha.push(true);
        let mut hb = GlobalHistory::new();
        hb.push(false);
        // The same branch goes to different targets under different
        // histories; after training, both contexts predict correctly.
        for _ in 0..4 {
            p.update(0x200, ha, 0xaaa0);
            p.update(0x200, hb, 0xbbb0);
        }
        assert_eq!(p.predict(0x200, ha), Some(0xaaa0));
        assert_eq!(p.predict(0x200, hb), Some(0xbbb0));
    }

    #[test]
    fn size_budget_matches_table1() {
        // 2 * 2K entries * 8B = 32KB.
        assert_eq!(CascadingIndirect::default().size_bytes(), 32 << 10);
    }

    #[test]
    fn tag_mismatch_does_not_alias() {
        let mut p = CascadingIndirect::new(4, 4);
        let h = GlobalHistory::new();
        p.update(0x100, h, 0x9000);
        // A different PC mapping to the same set must not steal the
        // prediction unless tags collide.
        let other = 0x100 + (1 << 6); // same low index bits, different tag
        assert_eq!(p.predict(other, h), None);
    }
}
