/// A fixed-depth return address stack.
///
/// Calls push their return address; returns pop the predicted target.
/// On overflow the oldest entry is overwritten (circular), as in real
/// hardware; on underflow `pop` returns `None` and the front end falls
/// back to the indirect predictor.
///
/// # Examples
///
/// ```
/// use ubrc_frontend::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(64);
/// ras.push(0x1004);
/// ras.push(0x2008);
/// assert_eq!(ras.pop(), Some(0x2008));
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Number of live entries (saturates at capacity).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a return address (a call).
    pub fn push(&mut self, addr: u64) {
        self.entries[self.top] = addr;
        self.top = (self.top + 1) % self.entries.len();
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Copies another stack's state into this one, reusing the
    /// existing storage (no allocation). Used for the wrong-path fetch
    /// checkpoint, which is saved on every mispredicted branch.
    ///
    /// # Panics
    ///
    /// Panics if the two stacks have different capacities.
    pub fn copy_from(&mut self, other: &Self) {
        self.entries.copy_from_slice(&other.entries);
        self.top = other.top;
        self.depth = other.depth;
    }

    /// Pops the predicted return target, or `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(self.entries[self.top])
    }
}

impl Default for ReturnAddressStack {
    /// The paper's 64-entry configuration.
    fn default() -> Self {
        Self::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(4);
        for a in [1u64, 2, 3] {
            r.push(a);
        }
        assert_eq!(r.depth(), 3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn deep_call_return_sequences() {
        let mut r = ReturnAddressStack::default();
        for a in 0..64u64 {
            r.push(a);
        }
        for a in (0..64u64).rev() {
            assert_eq!(r.pop(), Some(a));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
