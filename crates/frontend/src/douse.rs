use crate::history::GlobalHistory;

/// Configuration of the degree-of-use predictor.
///
/// The default matches Table 1 of the paper: 4K entries, 4-way
/// set-associative, 2-bit confidence, 6-bit tag, 4-bit prediction, and
/// 6 bits of control-flow context in the index (≈9KB of state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DouseConfig {
    /// Number of sets (entries = `sets * ways`).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Bits of global branch history hashed into the index.
    pub history_bits: u32,
    /// Saturation ceiling of the confidence counter.
    pub conf_max: u8,
    /// Minimum confidence for a usable prediction.
    pub conf_threshold: u8,
    /// Largest representable degree (4-bit field → 15). Predictions
    /// saturate here; the register cache additionally clamps to its own
    /// pinning limit.
    pub max_degree: u8,
}

impl Default for DouseConfig {
    fn default() -> Self {
        Self {
            sets: 1024,
            ways: 4,
            history_bits: 6,
            conf_max: 3,
            conf_threshold: 2,
            max_degree: 15,
        }
    }
}

/// Running accuracy statistics for the predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DouseStats {
    /// Training events where the predictor had supplied a confident
    /// prediction.
    pub predicted: u64,
    /// Of those, how many matched the actual degree.
    pub correct: u64,
    /// Training events with no confident prediction (unknown default
    /// applies at rename).
    pub unknown: u64,
}

impl DouseStats {
    /// Fraction of confident predictions that were exactly right, or
    /// `None` before any prediction has been scored.
    pub fn accuracy(&self) -> Option<f64> {
        if self.predicted == 0 {
            None
        } else {
            Some(self.correct as f64 / self.predicted as f64)
        }
    }

    /// Fraction of training events covered by a confident prediction.
    pub fn coverage(&self) -> Option<f64> {
        let total = self.predicted + self.unknown;
        if total == 0 {
            None
        } else {
            Some(self.predicted as f64 / total as f64)
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u8,
    pred: u8,
    conf: u8,
    lru: u32,
    valid: bool,
}

/// History-based degree-of-use predictor (Butts & Sohi, MICRO 2002).
///
/// At rename, [`DegreeOfUsePredictor::predict`] recalls how many
/// consumers this static instruction's result had on previous dynamic
/// instances with similar control-flow context. Confidence gating makes
/// the common single-use case nearly always correct; unknown values fall
/// back to the register cache's *unknown default*.
///
/// # Examples
///
/// ```
/// use ubrc_frontend::{DegreeOfUsePredictor, GlobalHistory};
///
/// let mut p = DegreeOfUsePredictor::default();
/// let h = GlobalHistory::new();
/// assert_eq!(p.predict(0x1000, h), None); // untrained
/// p.train(0x1000, h, 2);
/// p.train(0x1000, h, 2);
/// assert_eq!(p.predict(0x1000, h), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct DegreeOfUsePredictor {
    config: DouseConfig,
    entries: Vec<Entry>, // sets * ways
    tick: u32,
    stats: DouseStats,
}

impl Default for DegreeOfUsePredictor {
    fn default() -> Self {
        Self::new(DouseConfig::default())
    }
}

impl DegreeOfUsePredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and `ways >= 1`.
    pub fn new(config: DouseConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways >= 1, "ways must be at least 1");
        Self {
            entries: vec![Entry::default(); config.sets * config.ways],
            config,
            tick: 0,
            stats: DouseStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DouseConfig {
        &self.config
    }

    /// Accuracy/coverage statistics accumulated by training.
    pub fn stats(&self) -> &DouseStats {
        &self.stats
    }

    fn index(&self, pc: u64, hist: GlobalHistory) -> usize {
        let h = hist.bits(self.config.history_bits);
        (((pc >> 2) ^ (h << 4)) as usize) & (self.config.sets - 1)
    }

    fn tag(pc: u64) -> u8 {
        ((pc >> 2) & 0x3f) as u8
    }

    fn set(&self, idx: usize) -> &[Entry] {
        &self.entries[idx * self.config.ways..(idx + 1) * self.config.ways]
    }

    fn set_mut(&mut self, idx: usize) -> &mut [Entry] {
        &mut self.entries[idx * self.config.ways..(idx + 1) * self.config.ways]
    }

    /// Predicts the degree of use of the value produced at `pc`, or
    /// `None` when the predictor has no confident entry (the consumer
    /// should apply the unknown default).
    pub fn predict(&self, pc: u64, hist: GlobalHistory) -> Option<u8> {
        let idx = self.index(pc, hist);
        let tag = Self::tag(pc);
        let threshold = self.config.conf_threshold;
        self.set(idx)
            .iter()
            .find(|e| e.valid && e.tag == tag && e.conf >= threshold)
            .map(|e| e.pred)
    }

    /// Trains with the actual consumer count observed when the value's
    /// physical register was freed. Also scores accuracy statistics.
    pub fn train(&mut self, pc: u64, hist: GlobalHistory, actual: u8) {
        let actual = actual.min(self.config.max_degree);
        match self.predict(pc, hist) {
            Some(p) => {
                self.stats.predicted += 1;
                if p == actual {
                    self.stats.correct += 1;
                }
            }
            None => self.stats.unknown += 1,
        }

        self.tick += 1;
        let tick = self.tick;
        let idx = self.index(pc, hist);
        let tag = Self::tag(pc);
        let conf_max = self.config.conf_max;
        let set = self.set_mut(idx);
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == tag) {
            if e.pred == actual {
                e.conf = (e.conf + 1).min(conf_max);
            } else if e.conf == 0 {
                e.pred = actual;
                e.conf = 1;
            } else {
                e.conf -= 1;
            }
            e.lru = tick;
            return;
        }
        // Miss: replace invalid first, else LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|e| (e.valid, e.lru))
            .expect("ways >= 1");
        *victim = Entry {
            tag,
            pred: actual,
            conf: 1,
            lru: tick,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> GlobalHistory {
        GlobalHistory::new()
    }

    #[test]
    fn untrained_predicts_none() {
        let p = DegreeOfUsePredictor::default();
        assert_eq!(p.predict(0x42f0, h()), None);
    }

    #[test]
    fn confidence_gates_predictions() {
        let mut p = DegreeOfUsePredictor::default();
        p.train(0x100, h(), 3);
        // conf = 1 < threshold 2: still unknown.
        assert_eq!(p.predict(0x100, h()), None);
        p.train(0x100, h(), 3);
        assert_eq!(p.predict(0x100, h()), Some(3));
    }

    #[test]
    fn mispredictions_decay_confidence_then_retrain() {
        let mut p = DegreeOfUsePredictor::default();
        for _ in 0..3 {
            p.train(0x200, h(), 1);
        }
        assert_eq!(p.predict(0x200, h()), Some(1));
        // The instruction changes behaviour.
        p.train(0x200, h(), 4); // conf 3 -> 2
        p.train(0x200, h(), 4); // conf 2 -> 1, below threshold
        assert_eq!(p.predict(0x200, h()), None);
        p.train(0x200, h(), 4); // conf 1 -> 0
        p.train(0x200, h(), 4); // retrains pred to 4, conf 1
        p.train(0x200, h(), 4); // conf 2
        assert_eq!(p.predict(0x200, h()), Some(4));
    }

    #[test]
    fn history_context_separates_predictions() {
        let mut p = DegreeOfUsePredictor::default();
        let mut ha = GlobalHistory::new();
        ha.push(true);
        let mut hb = GlobalHistory::new();
        hb.push(false);
        for _ in 0..3 {
            p.train(0x300, ha, 1);
            p.train(0x300, hb, 5);
        }
        assert_eq!(p.predict(0x300, ha), Some(1));
        assert_eq!(p.predict(0x300, hb), Some(5));
    }

    #[test]
    fn degree_saturates_at_max() {
        let mut p = DegreeOfUsePredictor::default();
        p.train(0x400, h(), 200);
        p.train(0x400, h(), 200);
        assert_eq!(p.predict(0x400, h()), Some(15));
    }

    #[test]
    fn lru_replacement_within_set() {
        let cfg = DouseConfig {
            sets: 1,
            ways: 2,
            ..DouseConfig::default()
        };
        let mut p = DegreeOfUsePredictor::new(cfg);
        // Three distinct tags contend for two ways (same set since
        // sets=1). Tags come from pc bits [7:2].
        for _ in 0..2 {
            p.train(0x04, h(), 1);
            p.train(0x08, h(), 2);
        }
        p.train(0x0c, h(), 3); // evicts LRU = tag of 0x04
        p.train(0x0c, h(), 3);
        assert_eq!(p.predict(0x08, h()), Some(2));
        assert_eq!(p.predict(0x0c, h()), Some(3));
        assert_eq!(p.predict(0x04, h()), None);
    }

    #[test]
    fn stats_track_accuracy_and_coverage() {
        let mut p = DegreeOfUsePredictor::default();
        p.train(0x500, h(), 1); // unknown
        p.train(0x500, h(), 1); // unknown (conf 1)
        p.train(0x500, h(), 1); // predicted correct
        p.train(0x500, h(), 2); // predicted wrong
        let s = p.stats();
        assert_eq!(s.unknown, 2);
        assert_eq!(s.predicted, 2);
        assert_eq!(s.correct, 1);
        assert_eq!(s.accuracy(), Some(0.5));
        assert_eq!(s.coverage(), Some(0.5));
    }

    #[test]
    fn high_accuracy_on_stable_code() {
        // A "program" of 64 static instructions with fixed degrees,
        // revisited many times: accuracy should approach the paper's 97%.
        let mut p = DegreeOfUsePredictor::default();
        let degrees: Vec<u8> = (0..64u64)
            .map(|i| (i % 4 + (i % 7 == 0) as u64) as u8)
            .collect();
        for _ in 0..50 {
            for (i, &d) in degrees.iter().enumerate() {
                p.train(0x1000 + 4 * i as u64, h(), d);
            }
        }
        let acc = p.stats().accuracy().unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = DegreeOfUsePredictor::new(DouseConfig {
            sets: 3,
            ..DouseConfig::default()
        });
    }
}
