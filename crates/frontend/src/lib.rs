//! Front-end predictors for the UBRC timing simulator.
//!
//! Implements the prediction structures of Table 1 of the paper:
//!
//! * [`Yags`] — a 12KB YAGS conditional branch predictor,
//! * [`ReturnAddressStack`] — a 64-entry return address stack,
//! * [`CascadingIndirect`] — a 32KB two-stage cascading indirect branch
//!   target predictor,
//! * [`DegreeOfUsePredictor`] — the 9KB degree-of-use predictor of Butts
//!   & Sohi (4K entries, 4-way set-associative, 2-bit confidence, 6-bit
//!   tag, 4-bit prediction), the information source for every use-based
//!   register-cache policy in `ubrc-core`.
//!
//! The BTB is perfect in the paper and therefore has no structure here;
//! the timing simulator answers "is there a branch in this fetch block,
//! and where does it go if taken" from its functional oracle, exactly as
//! a perfect BTB would.
//!
//! One substitution (documented in DESIGN.md): the original degree-of-use
//! predictor indexes with 6 bits of *future* control flow, available in
//! their fetch pipeline via predictor lookahead. This implementation uses
//! the 6 most recent bits of global branch history at fetch instead —
//! speculatively available at the same point and similarly correlated
//! with the consumer set.

#![warn(missing_docs)]

mod douse;
mod history;
mod indirect;
mod ras;
mod simple;
mod yags;

pub use douse::{DegreeOfUsePredictor, DouseConfig, DouseStats};
pub use history::GlobalHistory;
pub use indirect::CascadingIndirect;
pub use ras::ReturnAddressStack;
pub use simple::{Bimodal, DirectionPredictor, Gshare};
pub use yags::Yags;
