/// A global branch-history shift register.
///
/// Holds the outcomes of the most recent conditional branches, newest in
/// the least-significant bit.
///
/// # Examples
///
/// ```
/// use ubrc_frontend::GlobalHistory;
///
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bits(2), 0b10);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GlobalHistory {
    bits: u64,
}

impl GlobalHistory {
    /// Creates an all-not-taken history.
    pub const fn new() -> Self {
        Self { bits: 0 }
    }

    /// Shifts in the outcome of one conditional branch.
    pub fn push(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | taken as u64;
    }

    /// The `n` most recent outcomes (`n <= 64`), newest in bit 0.
    pub fn bits(self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 64 {
            self.bits
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_newest_into_bit_zero() {
        let mut h = GlobalHistory::new();
        h.push(true);
        assert_eq!(h.bits(1), 1);
        h.push(false);
        assert_eq!(h.bits(1), 0);
        assert_eq!(h.bits(2), 0b10);
        h.push(true);
        assert_eq!(h.bits(3), 0b101);
    }

    #[test]
    fn bits_masks_to_requested_width() {
        let mut h = GlobalHistory::new();
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.bits(4), 0b1111);
        assert_eq!(h.bits(0), 0);
    }

    #[test]
    fn full_width_request() {
        let mut h = GlobalHistory::new();
        h.push(true);
        assert_eq!(h.bits(64), 1);
    }
}
