//! Runtime correctness checking: structured error types for the
//! checked run API plus the invariant checker's mirror state.
//!
//! Everything here is *observation-only*: with checking enabled the
//! simulator produces bit-identical [`crate::SimResult`]s — the
//! checker maintains its own mirrors of the use tracker and the fill
//! schedule and cross-checks them against the real structures at the
//! end of every cycle, but never writes into the timing model.

use std::fmt;
use ubrc_core::{PhysReg, RegisterCache, UseTracker};
use ubrc_emu::EmuError;

/// Runtime-checking configuration (`SimConfig::check`).
///
/// The default is everything off except the forward-progress watchdog,
/// which has always guarded the pipeline (it replaces the old
/// hard-coded deadlock assertion and keeps its 500k-cycle budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Run the functional emulator in lockstep and compare every
    /// retired instruction's architectural record against it.
    pub oracle: bool,
    /// Cross-check pipeline/core invariants at the end of every cycle.
    pub invariants: bool,
    /// Abort with a diagnostic dump if no instruction retires for this
    /// many cycles (0 is treated as 1; the watchdog cannot be disabled,
    /// only widened).
    pub watchdog_cycles: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            oracle: false,
            invariants: false,
            watchdog_cycles: 500_000,
        }
    }
}

impl CheckConfig {
    /// Oracle and invariant checking both on, default watchdog.
    pub fn full() -> Self {
        Self {
            oracle: true,
            invariants: true,
            ..Self::default()
        }
    }
}

/// One retired instruction, as remembered by the oracle's history ring.
#[derive(Clone, Debug)]
pub struct RetiredEvent {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Cycle it retired.
    pub cycle: u64,
    /// Fetch address.
    pub pc: u64,
    /// Disassembly.
    pub asm: String,
}

/// The pipeline retired an instruction whose architectural record
/// disagrees with the lockstep functional emulator.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Cycle of the divergent retirement.
    pub cycle: u64,
    /// Dynamic sequence number of the divergent instruction.
    pub seq: u64,
    /// Its ROB slot at retirement (always the head).
    pub rob_slot: usize,
    /// Fetch address according to the pipeline.
    pub pc: u64,
    /// Disassembly of the pipeline's instruction.
    pub asm: String,
    /// Which architectural field diverged first.
    pub field: &'static str,
    /// The oracle's value for that field.
    pub expected: String,
    /// The pipeline's value.
    pub actual: String,
    /// The last instructions retired before the divergence, oldest
    /// first.
    pub recent: Vec<RetiredEvent>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "co-simulation divergence at cycle {}: seq {} (rob slot {}) pc {:#x} `{}`",
            self.cycle, self.seq, self.rob_slot, self.pc, self.asm
        )?;
        writeln!(f, "  field    {}", self.field)?;
        writeln!(f, "  expected {}", self.expected)?;
        writeln!(f, "  actual   {}", self.actual)?;
        writeln!(f, "  last {} retired:", self.recent.len())?;
        for e in &self.recent {
            writeln!(
                f,
                "    seq {:>8} @ cycle {:>8}  pc {:#08x}  {}",
                e.seq, e.cycle, e.pc, e.asm
            )?;
        }
        Ok(())
    }
}

/// A per-cycle pipeline/core invariant failed.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// The cycle whose end-of-cycle audit failed.
    pub cycle: u64,
    /// The hardware thread context the violation belongs to, when the
    /// invariant is per-thread (freelist partition accounting, ROB
    /// lockstep); `None` for core-global invariants.
    pub thread: Option<usize>,
    /// Short name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated at cycle {}",
            self.invariant, self.cycle
        )?;
        if let Some(tid) = self.thread {
            write!(f, " (thread {tid})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Forward-progress watchdog report: nothing retired within the
/// configured budget, with a snapshot of the stuck machine.
#[derive(Clone, Debug)]
pub struct DiagnosticDump {
    /// Cycle the watchdog fired.
    pub cycle: u64,
    /// Cycle of the last retirement.
    pub last_progress: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Occupied fetch-queue slots, summed across threads.
    pub fetch_queue: usize,
    /// Window slots holding un-issued instructions.
    pub window_count: usize,
    /// One summary line per hardware thread context (retirement
    /// progress, ROB/fetch occupancy, stall flags) so the report says
    /// which context wedged.
    pub threads: Vec<String>,
    /// One line per ROB-head entry: thread, seq, pc, status, deadline.
    pub rob_head: Vec<String>,
    /// One line per deferred-event queue: name, length, next due time.
    pub event_queues: Vec<String>,
    /// Total recoveries performed before the stall (local scrubs,
    /// re-fills, and machine checks), summed across threads. Non-zero
    /// distinguishes livelock-after-recovery from a plain deadlock.
    pub recoveries: u64,
    /// Machine-check squashes among those recoveries.
    pub machine_checks: u64,
    /// Cycle of the most recent recovery, if any.
    pub last_recovery: Option<u64>,
    /// Dynamic-repartitioning epoch boundaries completed before the
    /// stall ([`ubrc_core::CachePartition::DynamicCap`] only).
    pub epochs: u64,
    /// The per-thread occupancy quotas in force when the watchdog
    /// fired (`DynamicCap` only) — a starved quota shows up here.
    pub dynamic_caps: Option<Vec<usize>>,
}

impl fmt::Display for DiagnosticDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline deadlock at cycle {} (retired {}, rob {}, fetchq {})",
            self.cycle,
            self.retired,
            self.rob_head.len(),
            self.fetch_queue
        )?;
        writeln!(
            f,
            "  last retirement at cycle {}; window holds {} waiting",
            self.last_progress, self.window_count
        )?;
        match self.last_recovery {
            Some(at) => writeln!(
                f,
                "  recoveries {} ({} machine checks), last at cycle {at} — \
                 possible livelock after recovery",
                self.recoveries, self.machine_checks
            )?,
            None => writeln!(f, "  no recoveries performed")?,
        }
        if let Some(caps) = &self.dynamic_caps {
            writeln!(
                f,
                "  dynamic caps {caps:?} after {} epoch boundaries",
                self.epochs
            )?;
        }
        writeln!(f, "  threads:")?;
        for line in &self.threads {
            writeln!(f, "    {line}")?;
        }
        writeln!(f, "  rob head:")?;
        for line in &self.rob_head {
            writeln!(f, "    {line}")?;
        }
        writeln!(f, "  event queues:")?;
        for line in &self.event_queues {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// A checked simulation ended abnormally.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The co-simulation oracle caught an architectural divergence.
    Divergence(Box<DivergenceReport>),
    /// The per-cycle invariant checker caught corrupted state.
    Invariant(Box<InvariantViolation>),
    /// The forward-progress watchdog fired.
    Watchdog(Box<DiagnosticDump>),
    /// The functional emulator faulted on the correct path.
    Emu(EmuError),
    /// An external cancellation flag (see
    /// [`crate::Simulator::set_cancel`]) stopped the run.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
    },
    /// The simulator was constructed with an invalid configuration (see
    /// [`crate::Simulator::try_new_smt`]).
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Divergence(r) => write!(f, "{r}"),
            SimError::Invariant(v) => write!(f, "{v}"),
            SimError::Watchdog(d) => write!(f, "{d}"),
            SimError::Emu(e) => write!(f, "functional execution faulted: {e}"),
            SimError::Cancelled { cycle } => {
                write!(f, "simulation cancelled at cycle {cycle}")
            }
            SimError::Config(e) => write!(f, "invalid simulator configuration: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A rejected simulator configuration, from
/// [`crate::Simulator::try_new_smt`]. Each variant names the offending
/// parameters so the message is actionable without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// No programs were supplied.
    NoPrograms,
    /// `phys_regs` does not divide evenly across the threads.
    UnevenPartition {
        /// Configured physical register count.
        phys_regs: usize,
        /// Thread count.
        nthreads: usize,
    },
    /// A thread's register partition is not larger than the
    /// architectural set, so rename could never allocate.
    PartitionTooSmall {
        /// Registers per thread (`phys_regs / nthreads`).
        partition: usize,
        /// Architectural registers each thread must map.
        arch_regs: usize,
    },
    /// `fetch_width` or `issue_width` is zero.
    ZeroWidth {
        /// Name of the zero field.
        field: &'static str,
    },
    /// The two-level register file models a single hardware thread.
    TwoLevelSmt {
        /// Requested thread count.
        nthreads: usize,
    },
    /// The two-level L1 cannot hold the architectural state plus one
    /// renaming target.
    L1TooSmall {
        /// Configured L1 entries.
        l1_entries: usize,
        /// Minimum required (`arch_regs + 1`).
        required: usize,
    },
    /// [`ubrc_core::CachePartition::WayPartition`] needs the cache ways
    /// to divide evenly across threads.
    WayPartitionMismatch {
        /// Configured cache associativity.
        ways: usize,
        /// Thread count.
        nthreads: usize,
    },
    /// [`ubrc_core::CachePartition::OccupancyCap`] needs at least one
    /// cache entry per thread.
    OccupancyCapTooSmall {
        /// Configured cache entries.
        entries: usize,
        /// Thread count.
        nthreads: usize,
    },
    /// [`ubrc_core::CachePartition::DynamicCap`] needs a non-zero
    /// repartitioning period.
    DynamicCapZeroEpoch,
    /// [`ubrc_core::CachePartition::DynamicCap`] needs at least one
    /// cache entry per thread.
    DynamicCapTooSmall {
        /// Configured cache entries.
        entries: usize,
        /// Thread count.
        nthreads: usize,
    },
    /// The [`ubrc_core::CachePartition::DynamicCap`] quota floor cannot
    /// be honored for every thread at once.
    DynamicCapMinCapTooLarge {
        /// Configured per-thread quota floor.
        min_cap: usize,
        /// Thread count.
        nthreads: usize,
        /// Configured cache entries (`min_cap * nthreads` exceeds it).
        entries: usize,
    },
    /// [`ubrc_core::CachePartition::DynamicWay`] needs a non-zero
    /// repartitioning period.
    DynamicWayZeroEpoch,
    /// [`ubrc_core::CachePartition::DynamicWay`] starts from an even
    /// way split, so the ways must divide across the threads.
    DynamicWayMismatch {
        /// Configured cache associativity.
        ways: usize,
        /// Thread count.
        nthreads: usize,
    },
    /// An [`ubrc_core::EpochAdapt`] range must satisfy
    /// `1 <= min_cycles <= max_cycles`.
    EpochAdaptInvalidRange {
        /// Configured shortest epoch.
        min_cycles: u64,
        /// Configured longest epoch.
        max_cycles: u64,
    },
    /// [`ubrc_core::EpochAdapt`] paces repartitions, so it requires a
    /// dynamic [`ubrc_core::CachePartition`] (`DynamicCap` or
    /// `DynamicWay`).
    EpochAdaptStaticPartition,
    /// A [`crate::FreelistPolicy::Shared`] pool reassigns register
    /// ownership dynamically, so a statically thread-partitioned cache
    /// ([`ubrc_core::CachePartition`] other than `Shared`) cannot tag
    /// entries by owner.
    SharedFreelistWithPartitionedCache,
    /// A [`crate::FreelistPolicy::Shared`] cap at or below the
    /// architectural register count would deadlock rename.
    SharedFreelistCapTooSmall {
        /// Configured per-thread live-register cap.
        cap: usize,
        /// Architectural registers each thread permanently holds.
        arch_regs: usize,
    },
    /// The fault plan is malformed or incompatible with the protection
    /// configuration (see [`crate::FaultPlanError`]).
    FaultPlan(crate::inject::FaultPlanError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoPrograms => write!(f, "at least one program is required"),
            ConfigError::UnevenPartition {
                phys_regs,
                nthreads,
            } => write!(
                f,
                "phys_regs {phys_regs} does not divide evenly across {nthreads} threads"
            ),
            ConfigError::PartitionTooSmall {
                partition,
                arch_regs,
            } => write!(
                f,
                "each thread's register partition ({partition}) must exceed the \
                 architectural set ({arch_regs}); raise phys_regs or lower nthreads"
            ),
            ConfigError::ZeroWidth { field } => {
                write!(f, "{field} must be at least 1")
            }
            ConfigError::TwoLevelSmt { nthreads } => write!(
                f,
                "the two-level register file is single-threaded (nthreads = {nthreads})"
            ),
            ConfigError::L1TooSmall {
                l1_entries,
                required,
            } => write!(
                f,
                "two-level L1 of {l1_entries} entries cannot hold the architectural \
                 state; it needs at least {required} (arch regs + 1 rename target)"
            ),
            ConfigError::WayPartitionMismatch { ways, nthreads } => write!(
                f,
                "CachePartition::WayPartition needs the cache's {ways} ways to divide \
                 evenly across {nthreads} threads"
            ),
            ConfigError::OccupancyCapTooSmall { entries, nthreads } => write!(
                f,
                "CachePartition::OccupancyCap needs at least one cache entry per \
                 thread ({entries} entries < {nthreads} threads)"
            ),
            ConfigError::DynamicCapZeroEpoch => write!(
                f,
                "CachePartition::DynamicCap needs epoch_cycles of at least 1"
            ),
            ConfigError::DynamicCapTooSmall { entries, nthreads } => write!(
                f,
                "CachePartition::DynamicCap needs at least one cache entry per \
                 thread ({entries} entries < {nthreads} threads)"
            ),
            ConfigError::DynamicCapMinCapTooLarge {
                min_cap,
                nthreads,
                entries,
            } => write!(
                f,
                "CachePartition::DynamicCap min_cap {min_cap} x {nthreads} threads \
                 exceeds the cache's {entries} entries"
            ),
            ConfigError::DynamicWayZeroEpoch => write!(
                f,
                "CachePartition::DynamicWay needs epoch_cycles of at least 1"
            ),
            ConfigError::DynamicWayMismatch { ways, nthreads } => write!(
                f,
                "CachePartition::DynamicWay needs the cache's {ways} ways to divide \
                 evenly across {nthreads} threads"
            ),
            ConfigError::EpochAdaptInvalidRange {
                min_cycles,
                max_cycles,
            } => write!(
                f,
                "EpochAdapt needs 1 <= min_cycles <= max_cycles (got [{min_cycles}, \
                 {max_cycles}])"
            ),
            ConfigError::EpochAdaptStaticPartition => write!(
                f,
                "EpochAdapt requires a dynamic partition (DynamicCap or DynamicWay)"
            ),
            ConfigError::SharedFreelistWithPartitionedCache => write!(
                f,
                "FreelistPolicy::Shared requires CachePartition::Shared (dynamic \
                 register ownership defeats static cache partitioning)"
            ),
            ConfigError::SharedFreelistCapTooSmall { cap, arch_regs } => write!(
                f,
                "shared-freelist cap {cap} must exceed the architectural register \
                 count {arch_regs} or rename deadlocks"
            ),
            ConfigError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// An expected register-cache fill that has been scheduled but not yet
/// applied.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FillObligation {
    pub preg: u16,
    pub gen: u32,
    pub due: u64,
}

/// Mirror state for the invariant checker.
///
/// The mirrors are rebuilt from the same pipeline events that drive
/// the real [`UseTracker`] and fill schedule; a fault injected directly
/// into the real structures (or a future refactoring bug that forgets
/// a bookkeeping step) shows up as a mirror mismatch at the end of the
/// cycle.
pub(crate) struct Checker {
    remaining: Vec<u8>,
    pinned: Vec<bool>,
    active: Vec<bool>,
    /// Registers whose real counter carries an injected-but-undetected
    /// parity fault: the mirror comparison is suspended (the *protected
    /// read* is what must catch it) until the recovery scrub resyncs.
    suspect: Vec<bool>,
    /// Physical registers per thread partition, to attribute per-preg
    /// violations to the owning hardware thread.
    partition: usize,
    pub(crate) fill_obligations: Vec<FillObligation>,
}

impl Checker {
    pub(crate) fn new(npregs: usize, partition: usize) -> Self {
        Self {
            remaining: vec![0; npregs],
            pinned: vec![false; npregs],
            active: vec![false; npregs],
            suspect: vec![false; npregs],
            partition,
            fill_obligations: Vec::new(),
        }
    }

    fn thread_of(&self, preg: usize) -> Option<usize> {
        Some(preg / self.partition)
    }

    /// Mirrors `UseTracker::init` (clamped remaining + pinned flag).
    pub(crate) fn on_init(&mut self, preg: u16, remaining: u8, pinned: bool) {
        let i = preg as usize;
        self.remaining[i] = remaining;
        self.pinned[i] = pinned;
        self.active[i] = true;
    }

    /// Mirrors `UseTracker::consume`.
    pub(crate) fn on_consume(&mut self, preg: u16) {
        let i = preg as usize;
        if self.active[i] && !self.pinned[i] {
            self.remaining[i] = self.remaining[i].saturating_sub(1);
        }
    }

    /// Mirrors `UseTracker::clear` and retires any fill obligations for
    /// the freed register.
    pub(crate) fn on_clear(&mut self, preg: u16) {
        let i = preg as usize;
        self.remaining[i] = 0;
        self.pinned[i] = false;
        self.active[i] = false;
        self.suspect[i] = false;
        self.fill_obligations.retain(|o| o.preg != preg);
    }

    /// A parity-marked counter fault was injected into the real
    /// tracker: suspend the mirror comparison for this register until
    /// the protected read detects it and scrubs.
    pub(crate) fn on_counter_fault(&mut self, preg: u16) {
        self.suspect[preg as usize] = true;
    }

    /// Mirrors `UseTracker::scrub` (the recovery rewrite after a
    /// detected counter parity error) and lifts the suspension.
    pub(crate) fn on_scrub(&mut self, preg: u16) {
        let i = preg as usize;
        self.remaining[i] = 0;
        self.pinned[i] = false;
        self.suspect[i] = false;
    }

    /// A fill was scheduled for `due`; it must land by then (unless the
    /// register is freed first).
    pub(crate) fn on_fill_scheduled(&mut self, preg: u16, gen: u32, due: u64) {
        self.fill_obligations
            .push(FillObligation { preg, gen, due });
    }

    /// A scheduled fill event fired (whether or not the entry was
    /// already resident): discharge the earliest-due matching
    /// obligation. Two misses on the same register can be in flight at
    /// once, and `swap_remove` scrambles vector order, so matching by
    /// position alone could discharge the later fill and leave the
    /// earlier obligation to go stale.
    pub(crate) fn on_fill_applied(&mut self, preg: u16, gen: u32) {
        if let Some(i) = self
            .fill_obligations
            .iter()
            .enumerate()
            .filter(|(_, o)| o.preg == preg && o.gen == gen)
            .min_by_key(|(_, o)| o.due)
            .map(|(i, _)| i)
        {
            self.fill_obligations.swap_remove(i);
        }
    }

    /// Cross-checks the real use tracker against the mirror.
    pub(crate) fn check_tracker(
        &self,
        tracker: &UseTracker,
        cycle: u64,
    ) -> Option<Box<InvariantViolation>> {
        for (i, &active) in self.active.iter().enumerate() {
            let p = PhysReg(i as u16);
            if self.suspect[i] {
                continue;
            }
            if tracker.is_active(p) != active {
                return Some(Box::new(InvariantViolation {
                    cycle,
                    thread: self.thread_of(i),
                    invariant: "use-tracker-liveness",
                    detail: format!(
                        "{p}: tracker active={}, mirror active={active}",
                        tracker.is_active(p)
                    ),
                }));
            }
            if !active {
                continue;
            }
            if tracker.remaining(p) != self.remaining[i] {
                return Some(Box::new(InvariantViolation {
                    cycle,
                    thread: self.thread_of(i),
                    invariant: "use-counter",
                    detail: format!(
                        "{p}: tracker remaining={}, mirror={} (counter corrupted or \
                         decremented past zero)",
                        tracker.remaining(p),
                        self.remaining[i]
                    ),
                }));
            }
            if tracker.is_pinned(p) != self.pinned[i] {
                return Some(Box::new(InvariantViolation {
                    cycle,
                    thread: self.thread_of(i),
                    invariant: "use-counter-pin",
                    detail: format!(
                        "{p}: tracker pinned={}, mirror pinned={}",
                        tracker.is_pinned(p),
                        self.pinned[i]
                    ),
                }));
            }
        }
        None
    }

    /// Audits the register cache: internal consistency plus the
    /// pinned-entry cross-check against the tracker. Fill-installed
    /// entries are exempt from the pin check — a pinned value evicted
    /// and later re-fetched legitimately re-enters unpinned with the
    /// fill default (§3.3).
    pub(crate) fn check_cache(
        &self,
        cache: &RegisterCache,
        tracker: &UseTracker,
        cycle: u64,
    ) -> Option<Box<InvariantViolation>> {
        if let Err(detail) = cache.audit() {
            return Some(Box::new(InvariantViolation {
                cycle,
                thread: None,
                invariant: "cache-audit",
                detail,
            }));
        }
        for e in cache.entries() {
            if e.from_fill || !tracker.is_active(e.preg) {
                continue;
            }
            if tracker.is_pinned(e.preg) && !e.pinned {
                return Some(Box::new(InvariantViolation {
                    cycle,
                    thread: self.thread_of(e.preg.0 as usize),
                    invariant: "pinned-entry",
                    detail: format!(
                        "{}: tracker says pinned but the resident entry (set {}) is not",
                        e.preg, e.set
                    ),
                }));
            }
        }
        None
    }
}
