use crate::check::CheckConfig;
use crate::inject::FaultPlan;
use ubrc_core::{IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc_frontend::DouseConfig;
use ubrc_isa::ExecClass;
use ubrc_memsys::MemSysConfig;

/// Which conditional-branch direction predictor the front end uses.
///
/// The paper's machine uses the 12KB YAGS predictor; the others exist
/// for the front-end ablation experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchPredictorKind {
    /// Static not-taken.
    NotTaken,
    /// Per-PC 2-bit counters (4KB).
    Bimodal,
    /// PC ⊕ global-history indexed counters (4KB).
    Gshare,
    /// The paper's 12KB YAGS configuration.
    #[default]
    Yags,
}

/// SMT fetch-thread selection policy (only consulted with more than one
/// hardware thread; single-thread cores always fetch thread 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FetchPolicy {
    /// ICOUNT.1.8: each cycle the eligible thread with the fewest
    /// in-flight instructions (front-end queue + ROB) fetches one block;
    /// ties break toward the lower thread id. The default.
    #[default]
    Icount,
    /// Strict round-robin over eligible threads, ignoring load.
    RoundRobin,
    /// ICOUNT.2.8-style: the *two* least-loaded eligible threads each
    /// fetch a block per cycle (Tullsen et al.'s higher-bandwidth
    /// front end).
    Icount28,
}

/// How physical registers are divided between SMT threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FreelistPolicy {
    /// Each thread owns a fixed `phys_regs / nthreads` slice of the
    /// register file (the default; what the golden rows pin).
    #[default]
    Partitioned,
    /// One shared free pool: any thread may allocate any register, but
    /// each thread is capped at `cap` live registers so one stalled
    /// thread cannot starve the rest. `cap` must exceed the
    /// architectural register count (each thread permanently holds one
    /// mapping per architectural register).
    Shared {
        /// Per-thread cap on live physical registers.
        cap: usize,
    },
}

/// The register storage organization being evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegStorage {
    /// A monolithic multi-cycle register file (no cache): the baseline
    /// of Figures 6, 11, and 12 (dotted lines).
    Monolithic {
        /// Read latency in cycles (the paper's baseline is 3).
        read_latency: u32,
        /// Write latency in cycles (equal to the read latency in the
        /// paper).
        write_latency: u32,
    },
    /// A single-cycle register cache backed by a multi-cycle backing
    /// file — the framework of §2.2, with policies per
    /// [`RegCacheConfig`] and set assignment per [`IndexPolicy`].
    Cached {
        /// Cache geometry and policies.
        cache: RegCacheConfig,
        /// Set-index assignment policy.
        index: IndexPolicy,
        /// Backing file read latency (the paper's default is 2).
        backing_read: u32,
        /// Backing file write latency.
        backing_write: u32,
    },
    /// The optimistic two-level register file baseline (§5.5).
    TwoLevel(TwoLevelConfig),
}

impl RegStorage {
    /// The paper's proposed design point: 64-entry 2-way use-based
    /// cache, filtered round-robin indexing, 2-cycle backing file.
    pub fn paper_default() -> Self {
        RegStorage::Cached {
            cache: RegCacheConfig::use_based(64, 2),
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: 2,
            backing_write: 2,
        }
    }

    /// The paper's cached design point with utility-driven dynamic
    /// partitioning layered on: an `entries`×`ways` use-based cache
    /// whose per-thread occupancy quotas are recomputed every
    /// `epoch_cycles` cycles with a floor of `min_cap` entries per
    /// thread (see [`ubrc_core::CachePartition::DynamicCap`]). Only
    /// meaningful on an SMT core; with one thread the partition policy
    /// is inert.
    pub fn dynamic_cap(entries: usize, ways: usize, epoch_cycles: u64, min_cap: usize) -> Self {
        let mut cache = RegCacheConfig::use_based(entries, ways);
        cache.partition = ubrc_core::CachePartition::DynamicCap {
            epoch_cycles,
            min_cap,
        };
        RegStorage::Cached {
            cache,
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: 2,
            backing_write: 2,
        }
    }

    /// The paper's cached design point with utility-driven dynamic
    /// *way* partitioning layered on: an `entries`×`ways` use-based
    /// cache whose per-thread way blocks are reassigned every
    /// `epoch_cycles` cycles (see
    /// [`ubrc_core::CachePartition::DynamicWay`]). Only meaningful on
    /// an SMT core; with one thread the partition policy is inert.
    pub fn dynamic_way(entries: usize, ways: usize, epoch_cycles: u64) -> Self {
        let mut cache = RegCacheConfig::use_based(entries, ways);
        cache.partition = ubrc_core::CachePartition::DynamicWay { epoch_cycles };
        RegStorage::Cached {
            cache,
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: 2,
            backing_write: 2,
        }
    }

    /// Storage read latency between issue and execute.
    pub fn read_latency(&self) -> u32 {
        match self {
            RegStorage::Monolithic { read_latency, .. } => *read_latency,
            RegStorage::Cached { .. } => 1,
            RegStorage::TwoLevel(_) => 1,
        }
    }
}

/// How the pipeline reacts to a parity error detected by the
/// register-storage protection layer
/// ([`ubrc_core::ProtectionConfig`]).
///
/// Cache-entry and use-counter faults recover locally (invalidate and
/// re-fill / scrub); a backing-file fault — the architected copy — and
/// a watchdog-detected stall escalate to a machine-check squash of the
/// affected thread, replaying from its last retired instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Master switch. Off (the default) preserves PR 2's
    /// detect-and-report behavior: a detected fault surfaces through
    /// the checker/oracle instead of recovering.
    pub enabled: bool,
    /// Cycles the squashed thread's front end stays quiesced after a
    /// machine check before refetching (pipeline drain + checkpoint
    /// restore).
    pub machine_check_penalty: u64,
}

impl RecoveryPolicy {
    /// Recovery disabled (the default; golden baseline behavior).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            machine_check_penalty: 10,
        }
    }

    /// Recovery enabled with the default 10-cycle machine-check drain.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            machine_check_penalty: 10,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Functional-unit pool sizes (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuPools {
    /// 1-cycle integer ALUs.
    pub int_alu: usize,
    /// Branch resolution units.
    pub branch: usize,
    /// Integer multipliers (divides share them).
    pub int_mul: usize,
    /// Floating-point ALUs.
    pub fp_alu: usize,
    /// Floating-point multiplier/dividers.
    pub fp_mul: usize,
    /// Load units.
    pub load: usize,
    /// Store units.
    pub store: usize,
}

impl FuPools {
    /// Table 1's execution resources.
    pub fn table1() -> Self {
        Self {
            int_alu: 6,
            branch: 2,
            int_mul: 2,
            fp_alu: 4,
            fp_mul: 2,
            load: 4,
            store: 2,
        }
    }

    /// Pool size for an execution class.
    pub fn size(&self, class: ExecClass) -> usize {
        match class {
            ExecClass::IntAlu => self.int_alu,
            ExecClass::Branch => self.branch,
            ExecClass::IntMul | ExecClass::IntDiv => self.int_mul,
            ExecClass::FpAlu => self.fp_alu,
            ExecClass::FpMul | ExecClass::FpDiv => self.fp_mul,
            ExecClass::Load => self.load,
            ExecClass::Store => self.store,
        }
    }

    /// Index of the pool backing a class (for per-cycle accounting).
    pub fn pool_index(class: ExecClass) -> usize {
        match class {
            ExecClass::IntAlu => 0,
            ExecClass::Branch => 1,
            ExecClass::IntMul | ExecClass::IntDiv => 2,
            ExecClass::FpAlu => 3,
            ExecClass::FpMul | ExecClass::FpDiv => 4,
            ExecClass::Load => 5,
            ExecClass::Store => 6,
        }
    }

    /// Number of distinct pools.
    pub const NUM_POOLS: usize = 7;
}

/// Full timing-simulator configuration (Table 1 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Fetch width (one taken branch per block).
    pub fetch_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// Maximum stores retired per cycle.
    pub max_stores_per_retire: usize,
    /// Issue-window entries.
    pub window_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Physical registers.
    pub phys_regs: usize,
    /// Front-end depth in cycles from fetch to window entry
    /// (4 fetch + 2 decode + 3 rename + 2 dispatch = 11).
    pub frontend_stages: u32,
    /// Minimum fetch-to-fetch branch mis-speculation loop.
    pub min_branch_penalty: u32,
    /// Bypass network stages (ALU feedback + cache-write-to-read).
    pub bypass_stages: u32,
    /// Functional units.
    pub fu: FuPools,
    /// Register storage organization under evaluation.
    pub storage: RegStorage,
    /// Memory hierarchy.
    pub memsys: MemSysConfig,
    /// Conditional branch predictor style.
    pub branch_predictor: BranchPredictorKind,
    /// Degree-of-use predictor.
    pub douse: DouseConfig,
    /// Backing-file shared read ports (the paper's design uses 1).
    pub backing_read_ports: usize,
    /// Overrides the filtered round-robin index parameters
    /// `(high_use_degree, skip_above)`; `None` uses the paper's
    /// defaults (degree > 5, half the associativity).
    pub filter_params: Option<(u8, u32)>,
    /// Stop after this many retired instructions (0 = run to halt).
    pub max_instructions: u64,
    /// Collect per-value lifetime events (Figures 1 and 2; costs
    /// memory proportional to instruction count).
    pub collect_lifetimes: bool,
    /// Record a pipeline trace for the first N instructions (0 = off);
    /// see [`crate::Timeline`].
    pub trace_instructions: usize,
    /// Model store→load ordering through the load/store queues: a load
    /// waits for the youngest older store to its address to execute,
    /// then forwards at L1 latency. Disable to measure the cost of
    /// memory dependences.
    pub model_store_forwarding: bool,
    /// Model load-hit speculation (the Alpha 21264 scheme the paper
    /// cites): dependents of a load issue assuming an L1 hit; on a
    /// miss, everything issued in the two-cycle shadow replays, exactly
    /// like a register-cache miss (§2.2/§5.2).
    pub load_hit_speculation: bool,
    /// Runtime correctness checking (lockstep oracle, per-cycle
    /// invariants, forward-progress watchdog). Observation-only:
    /// enabling it never changes the simulated timing.
    pub check: CheckConfig,
    /// Deterministic fault-injection plan (`None` = no faults). Used by
    /// the robustness tests to prove the oracle/checker detect each
    /// corruption class.
    pub fault_plan: Option<FaultPlan>,
    /// Reaction to parity errors detected by the protection layer
    /// (see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
    /// Collect per-stage wall-time and call-count attribution
    /// ([`crate::SimResult::profile`]). Off by default: the per-cycle
    /// loop takes the original untimed path and no profiling code runs
    /// at all. Wall-time-only instrumentation — enabling it never
    /// changes the simulated timing.
    pub profile: bool,
    /// Hardware thread contexts (SMT). Set by
    /// [`crate::Simulator::new_smt`] to the number of co-scheduled
    /// programs; 1 for the classic single-threaded core. The physical
    /// register file is partitioned evenly between contexts, so
    /// `phys_regs` must divide by `nthreads` and leave each partition
    /// more registers than the architectural set.
    pub nthreads: usize,
    /// SMT fetch-thread selection (ignored with one thread).
    pub fetch_policy: FetchPolicy,
    /// Physical-register pool organization across threads (ignored with
    /// one thread unless [`FreelistPolicy::Shared`] caps are wanted).
    pub freelist: FreelistPolicy,
}

impl SimConfig {
    /// The machine of Table 1 with the given register storage.
    pub fn table1(storage: RegStorage) -> Self {
        Self {
            fetch_width: 8,
            issue_width: 8,
            retire_width: 8,
            max_stores_per_retire: 2,
            window_entries: 128,
            rob_entries: 512,
            phys_regs: 512,
            frontend_stages: 11,
            min_branch_penalty: 15,
            bypass_stages: 2,
            fu: FuPools::table1(),
            storage,
            memsys: MemSysConfig::table1(),
            branch_predictor: BranchPredictorKind::Yags,
            backing_read_ports: 1,
            douse: DouseConfig::default(),
            filter_params: None,
            max_instructions: 0,
            collect_lifetimes: false,
            trace_instructions: 0,
            model_store_forwarding: true,
            load_hit_speculation: true,
            check: CheckConfig::default(),
            fault_plan: None,
            recovery: RecoveryPolicy::disabled(),
            profile: false,
            nthreads: 1,
            fetch_policy: FetchPolicy::Icount,
            freelist: FreelistPolicy::Partitioned,
        }
    }

    /// The paper's proposed design point (64-entry 2-way use-based
    /// cache with filtered round-robin indexing).
    pub fn paper_default() -> Self {
        Self::table1(RegStorage::paper_default())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let c = SimConfig::paper_default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.window_entries, 128);
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.phys_regs, 512);
        assert_eq!(c.min_branch_penalty, 15);
        assert_eq!(c.bypass_stages, 2);
        assert_eq!(c.fu.int_alu, 6);
        assert_eq!(c.fu.load, 4);
    }

    #[test]
    fn storage_read_latencies() {
        assert_eq!(RegStorage::paper_default().read_latency(), 1);
        assert_eq!(
            RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3
            }
            .read_latency(),
            3
        );
    }

    #[test]
    fn dynamic_cap_storage_wraps_the_paper_cache() {
        let s = RegStorage::dynamic_cap(64, 4, 2048, 4);
        let RegStorage::Cached { cache, index, .. } = s else {
            panic!("dynamic_cap builds cached storage");
        };
        assert_eq!(cache.entries, 64);
        assert_eq!(cache.ways, 4);
        assert_eq!(
            cache.partition,
            ubrc_core::CachePartition::DynamicCap {
                epoch_cycles: 2048,
                min_cap: 4
            }
        );
        assert_eq!(index, IndexPolicy::FilteredRoundRobin);
        assert_eq!(s.read_latency(), 1);
    }

    #[test]
    fn dynamic_way_storage_wraps_the_paper_cache() {
        let s = RegStorage::dynamic_way(64, 8, 128);
        let RegStorage::Cached { cache, index, .. } = s else {
            panic!("dynamic_way builds cached storage");
        };
        assert_eq!(cache.entries, 64);
        assert_eq!(cache.ways, 8);
        assert_eq!(
            cache.partition,
            ubrc_core::CachePartition::DynamicWay { epoch_cycles: 128 }
        );
        assert_eq!(index, IndexPolicy::FilteredRoundRobin);
        assert_eq!(s.read_latency(), 1);
    }

    #[test]
    fn fu_pool_lookup() {
        let fu = FuPools::table1();
        assert_eq!(fu.size(ExecClass::IntAlu), 6);
        assert_eq!(fu.size(ExecClass::IntDiv), 2); // shares multipliers
        assert_eq!(fu.size(ExecClass::FpDiv), 2);
        assert_eq!(
            FuPools::pool_index(ExecClass::IntMul),
            FuPools::pool_index(ExecClass::IntDiv)
        );
    }
}
