//! The cycle-level out-of-order pipeline model.
//!
//! Execution-driven, functional-first: one emulator (`ubrc-emu`) per
//! hardware thread runs ahead and supplies
//! [`ExecRecord`](ubrc_emu::ExecRecord)s; this model charges cycles.
//! The pipeline implements the machine of Table 1 — 8-wide fetch with
//! one taken branch per block, an 11-stage front end, a 128-entry issue
//! window with oldest-ready-first issue, 512 physical registers, a
//! two-stage bypass network, the Alpha-21264-style register-cache miss
//! replay model (§5.2), and retirement at 8 per cycle (≤2 stores).
//!
//! The stage logic itself lives in the [`crate::stage`] modules
//! (`fetch`, `rename`, `issue`, `execute`, `retire`, `squash`), each an
//! `impl` block over the shared `CoreState`; one cycle is the
//! declarative stage schedule (`stage::SCHEDULE`). This module owns
//! construction and the run loop.
//!
//! SMT: [`Simulator::new_smt`] co-schedules several programs on one
//! core. Each context gets a replicated front end and an even slice of
//! the physical-register file ([`crate::stage::ThreadState`]); the
//! issue window, execute units, register cache, backing file, and
//! memory hierarchy are shared. With one program the construction and
//! cycle-level behavior reduce exactly to the classic single-threaded
//! core.
//!
//! Timing rules (derived from Figure 3; see DESIGN.md):
//!
//! * a consumer may issue `X` cycles after its producer (X = producer
//!   execute latency) and catch the result on the bypass network for
//!   `bypass_stages` consecutive issue slots;
//! * later consumers read storage: a 1-cycle register cache (which may
//!   miss) or the multi-cycle monolithic file (readable only once the
//!   producer's write completes — the issue-restriction gap of §2.2);
//! * a cache miss squashes every instruction issued in the following
//!   cycle and fetches the value through the backing file's single
//!   read port, waiting out the producer's backing-file write.

use crate::check::{Checker, ConfigError, SimError};
use crate::config::{BranchPredictorKind, FreelistPolicy, RegStorage, SimConfig};
use crate::inject::Injector;
use crate::oracle::Oracle;
use crate::stage::{
    CoreState, EventLatch, FetchLatch, PregInfo, PregTime, ReplayLatch, SharedPool, StageProfiler,
    Storage, ThreadState,
};
use crate::stats::{LifetimeCollector, SimResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use ubrc_core::{BackingFile, IndexAssigner, PhysReg, RegisterCache, TwoLevelFile, UseTracker};
use ubrc_emu::Machine;
use ubrc_frontend::{
    Bimodal, CascadingIndirect, DegreeOfUsePredictor, DirectionPredictor, GlobalHistory, Gshare,
    ReturnAddressStack, Yags,
};
use ubrc_isa::Program;
use ubrc_memsys::MemSys;

/// The simulator: the shared pipeline core plus the run loop.
pub struct Simulator {
    pub(crate) core: CoreState,
}

impl Simulator {
    /// Builds a single-threaded simulator over a loaded program.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (fewer physical
    /// registers than architectural, zero widths).
    pub fn new(program: Program, config: SimConfig) -> Self {
        Self::new_smt(vec![program], config)
    }

    /// Builds a single-threaded simulator like [`Simulator::new`], but
    /// reports a rejected configuration as a typed [`ConfigError`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the configuration violates.
    pub fn try_new(program: Program, config: SimConfig) -> Result<Self, ConfigError> {
        Self::try_new_smt(vec![program], config)
    }

    /// Builds a simulator co-scheduling one program per hardware
    /// thread. `config.nthreads` is overwritten with the program count;
    /// the physical register file is partitioned evenly between the
    /// contexts.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulator::try_new_smt`] rejects the configuration:
    /// no programs, zero widths, a register file that does not divide
    /// evenly into partitions each larger than the architectural set, an
    /// SMT-incompatible storage organization, or an undersized two-level
    /// L1.
    pub fn new_smt(programs: Vec<Program>, config: SimConfig) -> Self {
        match Self::try_new_smt(programs, config) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid simulator configuration: {e}"),
        }
    }

    /// Validates the `(programs, config)` combination without building
    /// anything, returning the first problem found.
    fn validate_smt(nprograms: usize, config: &SimConfig) -> Result<(), ConfigError> {
        let nthreads = nprograms;
        if nthreads == 0 {
            return Err(ConfigError::NoPrograms);
        }
        if config.fetch_width == 0 {
            return Err(ConfigError::ZeroWidth {
                field: "fetch_width",
            });
        }
        if config.issue_width == 0 {
            return Err(ConfigError::ZeroWidth {
                field: "issue_width",
            });
        }
        let npregs = config.phys_regs;
        let narch = ubrc_isa::NUM_ARCH_REGS as usize;
        if !npregs.is_multiple_of(nthreads) {
            return Err(ConfigError::UnevenPartition {
                phys_regs: npregs,
                nthreads,
            });
        }
        let partition = npregs / nthreads;
        if partition <= narch {
            return Err(ConfigError::PartitionTooSmall {
                partition,
                arch_regs: narch,
            });
        }
        match &config.storage {
            RegStorage::TwoLevel(tl) => {
                if nthreads > 1 {
                    // Its transfer-eligibility bookkeeping is keyed by a
                    // single program order.
                    return Err(ConfigError::TwoLevelSmt { nthreads });
                }
                if tl.l1_entries <= narch {
                    return Err(ConfigError::L1TooSmall {
                        l1_entries: tl.l1_entries,
                        required: narch + 1,
                    });
                }
            }
            RegStorage::Cached { cache, .. } if nthreads > 1 => {
                if let Some(a) = cache.epoch_adapt {
                    if a.min_cycles == 0 || a.min_cycles > a.max_cycles {
                        return Err(ConfigError::EpochAdaptInvalidRange {
                            min_cycles: a.min_cycles,
                            max_cycles: a.max_cycles,
                        });
                    }
                    if !cache.partition.is_dynamic() {
                        return Err(ConfigError::EpochAdaptStaticPartition);
                    }
                }
                match cache.partition {
                    ubrc_core::CachePartition::Shared => {}
                    ubrc_core::CachePartition::WayPartition => {
                        if !cache.ways.is_multiple_of(nthreads) {
                            return Err(ConfigError::WayPartitionMismatch {
                                ways: cache.ways,
                                nthreads,
                            });
                        }
                    }
                    ubrc_core::CachePartition::OccupancyCap => {
                        if cache.entries < nthreads {
                            return Err(ConfigError::OccupancyCapTooSmall {
                                entries: cache.entries,
                                nthreads,
                            });
                        }
                    }
                    ubrc_core::CachePartition::DynamicCap {
                        epoch_cycles,
                        min_cap,
                    } => {
                        if epoch_cycles == 0 {
                            return Err(ConfigError::DynamicCapZeroEpoch);
                        }
                        if cache.entries < nthreads {
                            return Err(ConfigError::DynamicCapTooSmall {
                                entries: cache.entries,
                                nthreads,
                            });
                        }
                        if min_cap * nthreads > cache.entries {
                            return Err(ConfigError::DynamicCapMinCapTooLarge {
                                min_cap,
                                nthreads,
                                entries: cache.entries,
                            });
                        }
                    }
                    ubrc_core::CachePartition::DynamicWay { epoch_cycles } => {
                        if epoch_cycles == 0 {
                            return Err(ConfigError::DynamicWayZeroEpoch);
                        }
                        if !cache.ways.is_multiple_of(nthreads) {
                            return Err(ConfigError::DynamicWayMismatch {
                                ways: cache.ways,
                                nthreads,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        if let FreelistPolicy::Shared { cap } = config.freelist {
            if cap <= narch {
                return Err(ConfigError::SharedFreelistCapTooSmall {
                    cap,
                    arch_regs: narch,
                });
            }
            if let RegStorage::Cached { cache, .. } = &config.storage {
                if nthreads > 1 && cache.partition != ubrc_core::CachePartition::Shared {
                    return Err(ConfigError::SharedFreelistWithPartitionedCache);
                }
            }
        }
        if let Some(plan) = &config.fault_plan {
            // Recoverable fault kinds need the cache's protection layer;
            // non-cached storage has no parity model at all.
            let protection = match &config.storage {
                RegStorage::Cached { cache, .. } => cache.protection,
                _ => ubrc_core::ProtectionConfig::off(),
            };
            plan.validate(npregs, protection)
                .map_err(ConfigError::FaultPlan)?;
        }
        Ok(())
    }

    /// Builds a simulator like [`Simulator::new_smt`], but reports a
    /// rejected configuration as a typed [`ConfigError`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the `(programs, config)`
    /// combination violates.
    pub fn try_new_smt(programs: Vec<Program>, mut config: SimConfig) -> Result<Self, ConfigError> {
        Self::validate_smt(programs.len(), &config)?;
        let nthreads = programs.len();
        config.nthreads = nthreads;
        let npregs = config.phys_regs;
        let narch = ubrc_isa::NUM_ARCH_REGS as usize;
        let partition = npregs / nthreads;

        let mut checker = config
            .check
            .invariants
            .then(|| Checker::new(npregs, partition));
        let injector = config.fault_plan.as_ref().map(Injector::new);

        // A shared freelist reassigns register ownership dynamically, so
        // the cache cannot key partitioning off a static preg split.
        let cache_threads = match config.freelist {
            FreelistPolicy::Partitioned => nthreads,
            FreelistPolicy::Shared { .. } => 1,
        };

        let mut storage = match &config.storage {
            RegStorage::Monolithic { write_latency, .. } => Storage::Monolithic {
                write_latency: *write_latency,
            },
            RegStorage::Cached {
                cache,
                index,
                backing_read,
                backing_write,
            } => {
                let mut assigner = IndexAssigner::new(*index, cache.sets(), cache.ways);
                if let Some((degree, skip)) = config.filter_params {
                    assigner.set_filter_params(degree, skip);
                }
                Storage::Cached {
                    cache: RegisterCache::new_smt(*cache, npregs, cache_threads),
                    backing: BackingFile::with_read_ports(
                        *backing_read,
                        *backing_write,
                        npregs,
                        config.backing_read_ports,
                    ),
                    assigner,
                    tracker: UseTracker::new(npregs),
                }
            }
            RegStorage::TwoLevel(tl) => Storage::TwoLevel {
                file: TwoLevelFile::new(*tl, npregs),
            },
        };
        let read_latency = config.storage.read_latency();

        // Shared-freelist mode: thread t's architectural state occupies
        // the contiguous block [t*narch, (t+1)*narch); everything above
        // nthreads*narch goes into one common pool.
        let shared_cap = match config.freelist {
            FreelistPolicy::Partitioned => None,
            FreelistPolicy::Shared { cap } => Some(cap),
        };
        let shared_pool = shared_cap.map(|cap| SharedPool {
            free: ((nthreads * narch) as u16..npregs as u16).rev().collect(),
            owner: (0..npregs)
                .map(|p| (p / narch).min(nthreads - 1) as u16)
                .collect(),
            live: vec![narch; nthreads],
            cap,
        });

        let mut preg_time = vec![PregTime::UNKNOWN; npregs];
        let mut preg_info = vec![PregInfo::EMPTY; npregs];
        let mut threads = Vec::with_capacity(nthreads);
        for (tid, program) in programs.into_iter().enumerate() {
            let (lo, hi) = if shared_pool.is_some() {
                // Only the fixed architectural block is thread-owned;
                // renamed registers come from (and return to) the pool.
                ((tid * narch) as u16, ((tid + 1) * narch) as u16)
            } else {
                ((tid * partition) as u16, ((tid + 1) * partition) as u16)
            };
            let machine = Machine::new(program);
            // The oracle forks the thread's machine: same shared
            // program, fresh architectural state — no deep copy of the
            // instruction stream.
            let oracle = config.check.oracle.then(|| Oracle::for_machine(&machine));
            // The machine-check checkpoint is another fork, stepped
            // once per retirement (see `retire`), so it always sits at
            // the thread's retired architectural state.
            let recover = config
                .recovery
                .enabled
                .then(|| Box::new(machine.fork_fresh()));

            // Initial architectural state: arch reg i -> preg lo + i,
            // the rest of the partition free.
            let map: Vec<u16> = (lo..lo + narch as u16).collect();
            let freelist: Vec<u16> = (lo + narch as u16..hi).rev().collect();
            for p in lo..lo + narch as u16 {
                preg_time[p as usize] = PregTime::ANCIENT;
                preg_info[p as usize] = PregInfo {
                    active: true,
                    ..PregInfo::EMPTY
                };
                match &mut storage {
                    Storage::Cached {
                        cache,
                        assigner,
                        tracker,
                        ..
                    } => {
                        cache.produce(PhysReg(p));
                        tracker.init(PhysReg(p), Some(0), 0, u8::MAX);
                        if let Some(ck) = checker.as_mut() {
                            ck.on_init(p, 0, false);
                        }
                        let set = assigner.assign(PhysReg(p), 1);
                        preg_info[p as usize].set = set;
                        preg_info[p as usize].predicted = 1;
                    }
                    Storage::TwoLevel { file } => {
                        // try_new_smt validated l1_entries > narch, so
                        // the architectural state always fits.
                        let allocated = file.try_allocate(PhysReg(p));
                        assert!(allocated, "validated L1 rejected arch state");
                    }
                    Storage::Monolithic { .. } => {}
                }
            }

            threads.push(ThreadState {
                machine,
                stream_done: false,
                peeked: None,
                seq: 0,
                retired: 0,
                last_retired_seq: 0,
                halted: false,
                fetch_resume: 0,
                waiting_on_branch: None,
                wrong_path: false,
                wp_resolve_seq: None,
                wp_map_checkpoint: Vec::new(),
                wp_map_saved: false,
                wp_ghist: GlobalHistory::new(),
                wp_ras: ReturnAddressStack::default(),
                wp_ras_saved: false,
                fetch_latch: FetchLatch::new(),
                ghist: GlobalHistory::new(),
                branch_pred: match config.branch_predictor {
                    BranchPredictorKind::NotTaken => DirectionPredictor::AlwaysNotTaken,
                    BranchPredictorKind::Bimodal => DirectionPredictor::Bimodal(Bimodal::default()),
                    BranchPredictorKind::Gshare => DirectionPredictor::Gshare(Gshare::default()),
                    BranchPredictorKind::Yags => DirectionPredictor::Yags(Yags::default()),
                },
                ras: ReturnAddressStack::default(),
                indirect: CascadingIndirect::default(),
                douse: DegreeOfUsePredictor::new(config.douse),
                halt_fetched: false,
                map,
                preg_lo: lo,
                preg_hi: hi,
                freelist,
                rob: VecDeque::new(),
                sched: VecDeque::new(),
                due_hint: 0,
                sched_base: 0,
                timed: Vec::new(),
                store_granules: crate::stage::GranuleMap::default(),
                oracle,
                recover,
                recoveries: 0,
                machine_checks: 0,
                last_recovery: None,
                recovery_pending_since: None,
            });
        }

        let lifetimes = config.collect_lifetimes.then(LifetimeCollector::new);
        let memsys = MemSys::new(config.memsys);
        let core = CoreState {
            threads,
            partition,
            shared_pool,
            last_fetch_tid: nthreads - 1,
            now: 0,
            age: 0,
            retired: 0,
            last_progress: 0,
            halted: false,
            wp_squashed: 0,
            preg_time,
            preg_info,
            window_count: 0,
            preg_waiters: vec![Vec::new(); npregs],
            due_buf: Vec::new(),
            selected_buf: Vec::new(),
            due_bounds: Vec::new(),
            merge_heads: Vec::new(),
            squash_buf: Vec::new(),
            storage,
            read_latency,
            events: EventLatch::new(),
            replay: ReplayLatch::new(),
            preg_gen: vec![0; npregs],
            load_replay_squashes: 0,
            store_forward_stalls: 0,
            memsys,
            cond_branches: 0,
            branch_mispredicts: 0,
            indirect_branches: 0,
            indirect_mispredicts: 0,
            replayed: 0,
            miss_events: 0,
            dispatch_stall_pregs: 0,
            operands_bypassed: 0,
            operands_from_storage: 0,
            lifetimes,
            trace: Vec::new(),
            epoch_timeline: Vec::new(),
            checker,
            injector,
            error: None,
            cancel: None,
            pending_machine_check: None,
            recovery_cycles: 0,
            recovery_latency: ubrc_stats::Histogram::new(),
            forced_recovery: false,
            profiler: config.profile.then(|| Box::new(StageProfiler::new())),
            config,
        };
        Ok(Self { core })
    }

    /// Installs a cancellation flag polled periodically by
    /// [`Simulator::run_checked`]; setting it makes the run return
    /// [`SimError::Cancelled`]. Used by the bench runner's wall-clock
    /// timeout so a hung configuration's worker thread can be reaped.
    pub fn set_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.core.cancel = Some(flag);
    }

    /// Runs the simulation to completion (program halt or the
    /// configured instruction budget) and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation) or the functional emulator faults (a bad workload).
    pub fn run(self) -> SimResult {
        match self.run_checked() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion like [`Simulator::run`], but
    /// returns abnormal endings — oracle divergence, invariant
    /// violation, watchdog timeout, emulator fault, cancellation — as
    /// a structured [`SimError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered; the simulation
    /// cannot be resumed afterwards.
    pub fn run_checked(self) -> Result<SimResult, Box<SimError>> {
        let mut core = self.core;
        let budget = if core.config.max_instructions == 0 {
            u64::MAX
        } else {
            core.config.max_instructions
        };
        let watchdog = core.config.check.watchdog_cycles.max(1);
        while !core.halted && core.retired < budget {
            core.cycle();
            if let Some(e) = core.error.take() {
                return Err(e);
            }
            if core.checker.is_some() {
                if let Some(v) = core.check_invariants() {
                    return Err(Box::new(SimError::Invariant(v)));
                }
            }
            if core.now - core.last_progress >= watchdog {
                // With recovery enabled the watchdog escalates once: a
                // forced machine-check squash of every live thread (the
                // stall may be fault-induced state the squash clears).
                // A second trip is a real deadlock.
                if core.config.recovery.enabled && !core.forced_recovery {
                    core.forced_recovery = true;
                    let now = core.now;
                    for tid in 0..core.threads.len() {
                        if !core.threads[tid].halted {
                            core.machine_check_squash(tid, now);
                        }
                    }
                    core.last_progress = core.now;
                    continue;
                }
                return Err(Box::new(SimError::Watchdog(core.diagnostic_dump())));
            }
            if let Some(flag) = &core.cancel {
                if core.now & 0x3FF == 0 && flag.load(Ordering::Relaxed) {
                    return Err(Box::new(SimError::Cancelled { cycle: core.now }));
                }
            }
        }
        Ok(core.finish())
    }
}
