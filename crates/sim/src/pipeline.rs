//! The cycle-level out-of-order pipeline model.
//!
//! Execution-driven, functional-first: the emulator (`ubrc-emu`) runs
//! ahead and supplies [`ExecRecord`]s; this model charges cycles. The
//! pipeline implements the machine of Table 1 — 8-wide fetch with one
//! taken branch per block, an 11-stage front end, a 128-entry issue
//! window with oldest-ready-first issue, 512 physical registers, a
//! two-stage bypass network, the Alpha-21264-style register-cache miss
//! replay model (§5.2), and retirement at 8 per cycle (≤2 stores).
//!
//! Timing rules (derived from Figure 3; see DESIGN.md):
//!
//! * a consumer may issue `X` cycles after its producer (X = producer
//!   execute latency) and catch the result on the bypass network for
//!   `bypass_stages` consecutive issue slots;
//! * later consumers read storage: a 1-cycle register cache (which may
//!   miss) or the multi-cycle monolithic file (readable only once the
//!   producer's write completes — the issue-restriction gap of §2.2);
//! * a cache miss squashes every instruction issued in the following
//!   cycle and fetches the value through the backing file's single
//!   read port, waiting out the producer's backing-file write.

use crate::check::{Checker, DiagnosticDump, InvariantViolation, SimError};
use crate::config::{BranchPredictorKind, FuPools, RegStorage, SimConfig};
use crate::inject::{FaultKind, Injector};
use crate::oracle::Oracle;
use crate::stats::{LifetimeCollector, SimResult};
use crate::trace::{InstTrace, OperandPath, Timeline};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use ubrc_core::{BackingFile, IndexAssigner, PhysReg, RegisterCache, TwoLevelFile, UseTracker};
use ubrc_emu::{ExecRecord, Machine, StepOutcome};
use ubrc_frontend::{
    Bimodal, CascadingIndirect, DegreeOfUsePredictor, DirectionPredictor, GlobalHistory, Gshare,
    ReturnAddressStack, Yags,
};
use ubrc_isa::{ExecClass, Inst, Program};
use ubrc_memsys::MemSys;

/// Per-value timing: when consumers may issue against this physical
/// register.
#[derive(Clone, Copy, Debug)]
struct PregTime {
    known: bool,
    bypass_start: u64,
    bypass_end: u64,
    storage_avail: u64,
}

impl PregTime {
    const UNKNOWN: PregTime = PregTime {
        known: false,
        bypass_start: 0,
        bypass_end: 0,
        storage_avail: 0,
    };
    /// Available-from-storage-forever (initial architectural values).
    const ANCIENT: PregTime = PregTime {
        known: true,
        bypass_start: 0,
        bypass_end: 0,
        storage_avail: 0,
    };

    fn operand_ready(&self, now: u64) -> bool {
        self.known
            && now >= self.bypass_start
            && (now <= self.bypass_end || now >= self.storage_avail)
    }

    fn on_bypass(&self, now: u64) -> bool {
        now >= self.bypass_start && now <= self.bypass_end
    }

    /// Earliest cycle `>= t` at which the operand is readable.
    ///
    /// A lower bound, not a promise: the producer's timing can only be
    /// revised *later* (load-miss retimes, register-cache misses), so a
    /// consumer woken here re-checks and re-keys itself if needed.
    fn next_ready_at(&self, t: u64) -> u64 {
        if t < self.bypass_start {
            self.bypass_start
        } else if t <= self.bypass_end {
            t
        } else {
            t.max(self.storage_avail)
        }
    }
}

/// Deferred timed events with an O(1) "anything due?" fast path, so
/// quiet cycles skip the scan entirely.
///
/// Firing cycles run the exact same index/`swap_remove` scan the model
/// has always used (the within-cycle processing order is part of the
/// golden-snapshot contract); only the no-op scans are elided.
struct EventQueue<T> {
    items: Vec<(u64, T)>,
    next_due: u64,
}

impl<T> EventQueue<T> {
    fn new() -> Self {
        EventQueue {
            items: Vec::new(),
            next_due: u64::MAX,
        }
    }

    fn push(&mut self, at: u64, event: T) {
        self.next_due = self.next_due.min(at);
        self.items.push((at, event));
    }

    fn due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    fn refresh_due(&mut self) {
        self.next_due = self.items.iter().map(|e| e.0).min().unwrap_or(u64::MAX);
    }
}

/// Per-value lifecycle bookkeeping.
#[derive(Clone, Copy, Debug)]
struct PregInfo {
    producer_pc: u64,
    producer_hist: GlobalHistory,
    trainable: bool,
    consumers_renamed: u32,
    consumers_outstanding: u32,
    set: u16,
    predicted: u8,
    pre_write_bypasses: u32,
    alloc_time: u64,
    write_time: u64,
    last_use: u64,
    reassigned_seq: Option<u64>,
    active: bool,
}

impl PregInfo {
    const EMPTY: PregInfo = PregInfo {
        producer_pc: 0,
        producer_hist: GlobalHistory::new(),
        trainable: false,
        consumers_renamed: 0,
        consumers_outstanding: 0,
        set: 0,
        predicted: 0,
        pre_write_bypasses: 0,
        alloc_time: 0,
        write_time: 0,
        last_use: 0,
        reassigned_seq: None,
        active: false,
    };
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Waiting,
    Issued,
}

#[derive(Clone, Debug)]
struct DynInst {
    seq: u64,
    rec: ExecRecord,
    class: ExecClass,
    srcs: [Option<u16>; 2],
    dest: Option<u16>,
    prev: Option<u16>,
    status: Status,
    earliest_issue: u64,
    exec_done: u64,
    fetch_cycle: u64,
    mispredicted: bool,
    wrong_path: bool,
}

#[derive(Clone, Debug)]
struct FetchedEntry {
    rec: ExecRecord,
    ready_at: u64,
    fetch_cycle: u64,
    hist: GlobalHistory,
    mispredicted: bool,
    /// The speculatively-fetched wrong target of a mispredicted branch
    /// (begins wrong-path fetch when the entry is created).
    wrong_path: bool,
}

// One `Storage` exists per simulator and it is accessed on every
// operand read in the issue loop; boxing the cached variants would
// trade this one-time size imbalance for a pointer chase on the hot
// path.
#[allow(clippy::large_enum_variant)]
enum Storage {
    Monolithic {
        write_latency: u32,
    },
    Cached {
        cache: RegisterCache,
        backing: BackingFile,
        assigner: IndexAssigner,
        tracker: UseTracker,
    },
    TwoLevel {
        file: TwoLevelFile,
    },
}

/// The simulator: pipeline state plus all substrate models.
pub struct Simulator {
    config: SimConfig,
    machine: Machine,
    stream_done: bool,
    peeked: Option<ExecRecord>,

    now: u64,
    seq: u64,
    retired: u64,
    last_retired_seq: u64,
    last_progress: u64,
    halted: bool,

    // Front end.
    fetch_resume: u64,
    waiting_on_branch: Option<u64>, // seq of unresolved mispredicted control inst
    // Wrong-path (speculative) fetch state: set when fetch follows a
    // mispredicted branch's predicted target; cleared by the squash at
    // resolution.
    wrong_path: bool,
    wp_resolve_seq: Option<u64>,
    wp_map_checkpoint: Option<Vec<u16>>,
    wp_ghist: GlobalHistory,
    wp_ras: Option<ReturnAddressStack>,
    wp_squashed: u64,
    fetch_queue: VecDeque<FetchedEntry>,
    ghist: GlobalHistory,
    branch_pred: DirectionPredictor,
    ras: ReturnAddressStack,
    indirect: CascadingIndirect,
    douse: DegreeOfUsePredictor,
    halt_fetched: bool,

    // Rename.
    map: Vec<u16>, // arch reg -> preg
    freelist: Vec<u16>,
    preg_time: Vec<PregTime>,
    preg_info: Vec<PregInfo>,

    // Window / ROB.
    rob: VecDeque<DynInst>,
    window_count: usize,

    // Event-driven wake-up/select. `sched[i]` is `rob[i]`'s wake
    // deadline: the earliest cycle its operands could be ready, a lower
    // bound derived from its sources' `PregTime`, or `u64::MAX` once it
    // has issued or while it is parked on a producer whose timing is
    // unknown (re-armed from `preg_waiters` when the producer issues).
    // Kept as a dense parallel array so the per-cycle select scan
    // filters the whole window on one word per slot instead of walking
    // the fat `DynInst` entries.
    sched: VecDeque<u64>,
    preg_waiters: Vec<Vec<u64>>,
    // Reused per-cycle scratch (hoisted allocations).
    due_buf: Vec<usize>,
    selected_buf: Vec<(u64, usize)>,
    squash_buf: Vec<DynInst>,

    // Storage under test.
    storage: Storage,
    read_latency: u32,

    // Deferred register-cache events: time -> (preg, set, generation).
    // The generation guards against a physical register being freed and
    // reallocated before a stale event fires (possible when a producer
    // retires in the same cycle its cache write is scheduled).
    pending_writes: EventQueue<(u16, u16, u32)>,
    pending_fills: EventQueue<(u16, u16, u32)>,
    pending_bypass_decs: EventQueue<(u16, u16, u32)>,
    preg_gen: Vec<u32>,

    // Replay model: issue groups in these cycles are squashed (register
    // cache misses and load-hit mis-speculations both land here). A
    // handful of near-future cycles at most, so a plain vec beats a
    // hash set.
    squash_cycles: Vec<u64>,
    // Load-hit speculation: detect_time -> (preg, gen, true timing) —
    // the destination's advertised timing is corrected at detection.
    pending_retimes: EventQueue<(u16, u32, PregTime)>,
    load_replay_squashes: u64,

    // Memory disambiguation: in-flight stores per 8-byte granule, in
    // program order -> (seq, exec_done once issued).
    store_granules: std::collections::HashMap<u64, Vec<(u64, Option<u64>)>>,
    store_forward_stalls: u64,

    memsys: MemSys,

    // Statistics.
    cond_branches: u64,
    branch_mispredicts: u64,
    indirect_branches: u64,
    indirect_mispredicts: u64,
    replayed: u64,
    miss_events: u64,
    dispatch_stall_pregs: u64,
    operands_bypassed: u64,
    operands_from_storage: u64,
    lifetimes: Option<LifetimeCollector>,
    trace: Vec<InstTrace>,

    // Runtime checking and fault injection (`SimConfig::check` /
    // `SimConfig::fault_plan`). All observation-only except the
    // injector, whose whole point is corrupting live state.
    oracle: Option<Oracle>,
    checker: Option<Checker>,
    injector: Option<Injector>,
    error: Option<Box<SimError>>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Simulator {
    /// Builds a simulator over a loaded program.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (fewer physical
    /// registers than architectural, zero widths).
    pub fn new(program: Program, config: SimConfig) -> Self {
        let npregs = config.phys_regs;
        let narch = ubrc_isa::NUM_ARCH_REGS as usize;
        assert!(
            npregs > narch,
            "need more physical than architectural registers"
        );
        assert!(config.issue_width > 0 && config.fetch_width > 0);

        let oracle = config.check.oracle.then(|| Oracle::new(program.clone()));
        let mut checker = config.check.invariants.then(|| Checker::new(npregs));
        let injector = config.fault_plan.as_ref().map(Injector::new);

        let mut storage = match &config.storage {
            RegStorage::Monolithic { write_latency, .. } => Storage::Monolithic {
                write_latency: *write_latency,
            },
            RegStorage::Cached {
                cache,
                index,
                backing_read,
                backing_write,
            } => {
                let mut assigner = IndexAssigner::new(*index, cache.sets(), cache.ways);
                if let Some((degree, skip)) = config.filter_params {
                    assigner.set_filter_params(degree, skip);
                }
                Storage::Cached {
                    cache: RegisterCache::new(*cache, npregs),
                    backing: BackingFile::with_read_ports(
                        *backing_read,
                        *backing_write,
                        npregs,
                        config.backing_read_ports,
                    ),
                    assigner,
                    tracker: UseTracker::new(npregs),
                }
            }
            RegStorage::TwoLevel(tl) => Storage::TwoLevel {
                file: TwoLevelFile::new(*tl, npregs),
            },
        };
        let read_latency = config.storage.read_latency();

        // Initial architectural state: arch reg i -> preg i.
        let map: Vec<u16> = (0..narch as u16).collect();
        let freelist: Vec<u16> = (narch as u16..npregs as u16).rev().collect();
        let mut preg_time = vec![PregTime::UNKNOWN; npregs];
        let mut preg_info = vec![PregInfo::EMPTY; npregs];
        for p in 0..narch as u16 {
            preg_time[p as usize] = PregTime::ANCIENT;
            preg_info[p as usize] = PregInfo {
                active: true,
                ..PregInfo::EMPTY
            };
            match &mut storage {
                Storage::Cached {
                    cache,
                    assigner,
                    tracker,
                    ..
                } => {
                    cache.produce(PhysReg(p));
                    tracker.init(PhysReg(p), Some(0), 0, u8::MAX);
                    if let Some(ck) = checker.as_mut() {
                        ck.on_init(p, 0, false);
                    }
                    let set = assigner.assign(PhysReg(p), 1);
                    preg_info[p as usize].set = set;
                    preg_info[p as usize].predicted = 1;
                }
                Storage::TwoLevel { file } => {
                    assert!(file.try_allocate(PhysReg(p)), "L1 too small for arch state");
                }
                Storage::Monolithic { .. } => {}
            }
        }

        let lifetimes = config.collect_lifetimes.then(LifetimeCollector::new);
        let memsys = MemSys::new(config.memsys);
        let douse = DegreeOfUsePredictor::new(config.douse);
        Self {
            machine: Machine::new(program),
            stream_done: false,
            peeked: None,
            now: 0,
            seq: 0,
            retired: 0,
            last_retired_seq: 0,
            last_progress: 0,
            halted: false,
            fetch_resume: 0,
            waiting_on_branch: None,
            wrong_path: false,
            wp_resolve_seq: None,
            wp_map_checkpoint: None,
            wp_ghist: GlobalHistory::new(),
            wp_ras: None,
            wp_squashed: 0,
            fetch_queue: VecDeque::new(),
            ghist: GlobalHistory::new(),
            branch_pred: match config.branch_predictor {
                BranchPredictorKind::NotTaken => DirectionPredictor::AlwaysNotTaken,
                BranchPredictorKind::Bimodal => DirectionPredictor::Bimodal(Bimodal::default()),
                BranchPredictorKind::Gshare => DirectionPredictor::Gshare(Gshare::default()),
                BranchPredictorKind::Yags => DirectionPredictor::Yags(Yags::default()),
            },
            ras: ReturnAddressStack::default(),
            indirect: CascadingIndirect::default(),
            douse,
            halt_fetched: false,
            map,
            freelist,
            preg_time,
            preg_info,
            rob: VecDeque::new(),
            window_count: 0,
            sched: VecDeque::new(),
            preg_waiters: vec![Vec::new(); npregs],
            due_buf: Vec::new(),
            selected_buf: Vec::new(),
            squash_buf: Vec::new(),
            storage,
            read_latency,
            pending_writes: EventQueue::new(),
            pending_fills: EventQueue::new(),
            pending_bypass_decs: EventQueue::new(),
            preg_gen: vec![0; npregs],
            squash_cycles: Vec::new(),
            pending_retimes: EventQueue::new(),
            load_replay_squashes: 0,
            store_granules: std::collections::HashMap::new(),
            store_forward_stalls: 0,
            memsys,
            cond_branches: 0,
            branch_mispredicts: 0,
            indirect_branches: 0,
            indirect_mispredicts: 0,
            replayed: 0,
            miss_events: 0,
            dispatch_stall_pregs: 0,
            operands_bypassed: 0,
            operands_from_storage: 0,
            lifetimes,
            trace: Vec::new(),
            oracle,
            checker,
            injector,
            error: None,
            cancel: None,
            config,
        }
    }

    /// Installs a cancellation flag polled periodically by
    /// [`Simulator::run_checked`]; setting it makes the run return
    /// [`SimError::Cancelled`]. Used by the bench runner's wall-clock
    /// timeout so a hung configuration's worker thread can be reaped.
    pub fn set_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Runs the simulation to completion (program halt or the
    /// configured instruction budget) and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant
    /// violation) or the functional emulator faults (a bad workload).
    pub fn run(self) -> SimResult {
        match self.run_checked() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion like [`Simulator::run`], but
    /// returns abnormal endings — oracle divergence, invariant
    /// violation, watchdog timeout, emulator fault, cancellation — as
    /// a structured [`SimError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered; the simulation
    /// cannot be resumed afterwards.
    pub fn run_checked(mut self) -> Result<SimResult, Box<SimError>> {
        let budget = if self.config.max_instructions == 0 {
            u64::MAX
        } else {
            self.config.max_instructions
        };
        let watchdog = self.config.check.watchdog_cycles.max(1);
        while !self.halted && self.retired < budget {
            self.cycle();
            if let Some(e) = self.error.take() {
                return Err(e);
            }
            if self.checker.is_some() {
                if let Some(v) = self.check_invariants() {
                    return Err(Box::new(SimError::Invariant(v)));
                }
            }
            if self.now - self.last_progress >= watchdog {
                return Err(Box::new(SimError::Watchdog(self.diagnostic_dump())));
            }
            if let Some(flag) = &self.cancel {
                if self.now & 0x3FF == 0 && flag.load(Ordering::Relaxed) {
                    return Err(Box::new(SimError::Cancelled { cycle: self.now }));
                }
            }
        }
        Ok(self.finish())
    }

    /// Snapshot of the stuck machine for the watchdog report.
    fn diagnostic_dump(&self) -> Box<DiagnosticDump> {
        let rob_head = self
            .rob
            .iter()
            .enumerate()
            .take(8)
            .map(|(i, inst)| {
                let deadline = match self.sched.get(i) {
                    Some(&u64::MAX) | None => "-".to_string(),
                    Some(&t) => t.to_string(),
                };
                format!(
                    "seq {:>8} pc {:#08x} `{}` {:?} earliest_issue {} wake {}",
                    inst.seq,
                    inst.rec.pc,
                    inst.rec.inst,
                    inst.status,
                    inst.earliest_issue,
                    deadline
                )
            })
            .collect();
        let queue_line = |name: &str, items: usize, next: u64| {
            let next = if next == u64::MAX {
                "-".to_string()
            } else {
                next.to_string()
            };
            format!("{name}: {items} queued, next due {next}")
        };
        let event_queues = vec![
            queue_line(
                "pending_writes",
                self.pending_writes.items.len(),
                self.pending_writes.next_due,
            ),
            queue_line(
                "pending_fills",
                self.pending_fills.items.len(),
                self.pending_fills.next_due,
            ),
            queue_line(
                "pending_bypass_decs",
                self.pending_bypass_decs.items.len(),
                self.pending_bypass_decs.next_due,
            ),
            queue_line(
                "pending_retimes",
                self.pending_retimes.items.len(),
                self.pending_retimes.next_due,
            ),
            format!("squash_cycles: {:?}", self.squash_cycles),
        ];
        Box::new(DiagnosticDump {
            cycle: self.now,
            last_progress: self.last_progress,
            retired: self.retired,
            fetch_queue: self.fetch_queue.len(),
            window_count: self.window_count,
            rob_head,
            event_queues,
        })
    }

    /// End-of-cycle invariant audit (`check.invariants`). Read-only:
    /// returns the first violation found, if any.
    fn check_invariants(&self) -> Option<Box<InvariantViolation>> {
        let cycle = self.now.saturating_sub(1);
        let viol = |invariant: &'static str, detail: String| {
            Some(Box::new(InvariantViolation {
                cycle,
                invariant,
                detail,
            }))
        };
        if self.sched.len() != self.rob.len() {
            return viol(
                "sched-rob-lockstep",
                format!(
                    "{} wake deadlines for {} rob entries",
                    self.sched.len(),
                    self.rob.len()
                ),
            );
        }
        let waiting = self
            .rob
            .iter()
            .filter(|i| i.status == Status::Waiting)
            .count();
        if waiting != self.window_count {
            return viol(
                "window-count",
                format!(
                    "{waiting} waiting instructions but window_count={}",
                    self.window_count
                ),
            );
        }
        let active = self.preg_info.iter().filter(|i| i.active).count();
        if active + self.freelist.len() != self.config.phys_regs {
            return viol(
                "preg-accounting",
                format!(
                    "{active} live + {} free != {} physical registers",
                    self.freelist.len(),
                    self.config.phys_regs
                ),
            );
        }
        // Event queues drain monotonically: everything due by the cycle
        // just completed must have been consumed by its processor.
        let queues: [(&str, Option<u64>); 4] = [
            (
                "pending_writes",
                self.pending_writes.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_fills",
                self.pending_fills.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_bypass_decs",
                self.pending_bypass_decs.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_retimes",
                self.pending_retimes.items.iter().map(|e| e.0).min(),
            ),
        ];
        for (name, min_due) in queues {
            if let Some(t) = min_due {
                if t <= cycle {
                    return viol(
                        "event-drain",
                        format!("{name} still holds an event due at cycle {t}"),
                    );
                }
            }
        }
        if let Storage::Cached { cache, tracker, .. } = &self.storage {
            if let Some(ck) = &self.checker {
                if let Some(v) = ck.check_tracker(tracker, cycle) {
                    return Some(v);
                }
                if let Some(v) = ck.check_cache(cache, tracker, cycle) {
                    return Some(v);
                }
                for o in &ck.fill_obligations {
                    if o.due <= cycle
                        && self.preg_gen[o.preg as usize] == o.gen
                        && self.preg_info[o.preg as usize].active
                    {
                        return viol(
                            "fill-obligation",
                            format!(
                                "fill for p{} scheduled for cycle {} never applied",
                                o.preg, o.due
                            ),
                        );
                    }
                }
            }
        }
        None
    }

    /// Lands armed faults whose target state exists this cycle.
    fn apply_faults(&mut self, now: u64) {
        let Some(mut inj) = self.injector.take() else {
            return;
        };
        inj.arm(now);
        let mut i = 0;
        while i < inj.armed.len() {
            let landed = match inj.armed[i] {
                FaultKind::FlipUsePrediction => {
                    let r = inj.next_u64() as usize;
                    if let Storage::Cached { tracker, .. } = &mut self.storage {
                        let n = self.config.phys_regs;
                        (0..n).any(|k| tracker.corrupt_counter(PhysReg(((r + k) % n) as u16)))
                    } else {
                        false
                    }
                }
                FaultKind::CorruptReplacement => {
                    let r = inj.next_u64() as usize;
                    if let Storage::Cached { cache, .. } = &mut self.storage {
                        cache.corrupt_metadata(r).is_some()
                    } else {
                        false
                    }
                }
                FaultKind::DropFill => {
                    if self.pending_fills.items.is_empty() {
                        false
                    } else {
                        let idx = (inj.next_u64() as usize) % self.pending_fills.items.len();
                        self.pending_fills.items.swap_remove(idx);
                        self.pending_fills.refresh_due();
                        true
                    }
                }
                // Lands on the fetch path when a correct-path record
                // with a data result comes by.
                FaultKind::CorruptRecord => false,
            };
            if landed {
                inj.armed.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.injector = Some(inj);
    }

    fn cycle(&mut self) {
        let now = self.now;
        if self.injector.is_some() {
            self.apply_faults(now);
        }
        self.process_retimes(now);
        self.process_cache_events(now);
        self.retire(now);
        self.issue(now);
        self.dispatch(now);
        self.fetch(now);
        if let Storage::TwoLevel { file } = &mut self.storage {
            file.tick();
        }
        self.now += 1;
    }

    // ----- load-hit speculation -----------------------------------------

    /// Corrects the advertised readiness of load results whose L1-hit
    /// assumption just failed: dependents that have not issued yet wait
    /// for the true latency (those in the shadow were squashed when the
    /// miss was detected).
    fn process_retimes(&mut self, now: u64) {
        if !self.pending_retimes.due(now) {
            return;
        }
        let mut i = 0;
        while i < self.pending_retimes.items.len() {
            let (t, (p, gen, timing)) = self.pending_retimes.items[i];
            if t == now {
                self.pending_retimes.items.swap_remove(i);
                if self.preg_gen[p as usize] == gen {
                    self.preg_time[p as usize] = timing;
                }
            } else {
                i += 1;
            }
        }
        self.pending_retimes.refresh_due();
    }

    // ----- deferred register-cache events ------------------------------

    fn process_cache_events(&mut self, now: u64) {
        let Storage::Cached { cache, tracker, .. } = &mut self.storage else {
            return;
        };
        // Initial writes the cycle after execution completes.
        if self.pending_writes.due(now) {
            let mut i = 0;
            while i < self.pending_writes.items.len() {
                let (t, (p, set, gen)) = self.pending_writes.items[i];
                if t == now {
                    self.pending_writes.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        let remaining = tracker.remaining(PhysReg(p));
                        let pinned = tracker.is_pinned(PhysReg(p));
                        let bypasses = self.preg_info[p as usize].pre_write_bypasses;
                        cache.write(PhysReg(p), set, remaining, pinned, bypasses, now);
                    }
                } else {
                    i += 1;
                }
            }
            self.pending_writes.refresh_due();
        }
        // Fills completing after a backing-file read.
        if self.pending_fills.due(now) {
            let mut i = 0;
            while i < self.pending_fills.items.len() {
                let (t, (p, set, gen)) = self.pending_fills.items[i];
                if t == now {
                    self.pending_fills.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        cache.fill(PhysReg(p), set, now);
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_fill_applied(p, gen);
                        }
                    }
                } else {
                    i += 1;
                }
            }
            self.pending_fills.refresh_due();
        }
        // Second-stage bypass consumers decrement the entry after the
        // write lands (§3.1: they cannot affect the write decision).
        if self.pending_bypass_decs.due(now) {
            let mut i = 0;
            while i < self.pending_bypass_decs.items.len() {
                let (t, (p, set, gen)) = self.pending_bypass_decs.items[i];
                if t <= now {
                    self.pending_bypass_decs.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        cache.bypass_consume(PhysReg(p), set);
                    }
                } else {
                    i += 1;
                }
            }
            self.pending_bypass_decs.refresh_due();
        }
    }

    // ----- retirement ---------------------------------------------------

    fn retire(&mut self, now: u64) {
        let mut stores = 0;
        for _ in 0..self.config.retire_width {
            let Some(head) = self.rob.front() else { break };
            if head.status != Status::Issued || head.exec_done > now {
                break;
            }
            if head.rec.inst.is_store() {
                if stores == self.config.max_stores_per_retire {
                    break;
                }
                let addr = head.rec.mem_addr.expect("store has an address");
                if !self.memsys.store_retire(addr, now) {
                    break; // store buffer full: stall retirement
                }
                stores += 1;
            }
            let inst = self.rob.pop_front().expect("checked non-empty");
            self.sched.pop_front();
            debug_assert!(!inst.wrong_path, "a wrong-path instruction retired");
            self.retired += 1;
            if self.config.model_store_forwarding && inst.rec.inst.is_store() {
                // Younger loads are now ordered by the store buffer in
                // the memory system, not the LSQ.
                let granule = inst.rec.mem_addr.expect("store has an address") / 8;
                if let Some(stores) = self.store_granules.get_mut(&granule) {
                    stores.retain(|&(sseq, _)| sseq != inst.seq);
                    if stores.is_empty() {
                        self.store_granules.remove(&granule);
                    }
                }
            }
            if let Some(t) = self.trace.get_mut(inst.seq as usize) {
                t.retire = now;
            }
            self.last_retired_seq = inst.seq;
            self.last_progress = now;
            if let Some(oracle) = self.oracle.as_mut() {
                if let Err(report) = oracle.check_retire(now, &inst.rec) {
                    self.error = Some(Box::new(SimError::Divergence(report)));
                    return;
                }
            }
            if inst.rec.inst == Inst::Halt {
                self.halted = true;
                return;
            }
            // The set-assignment bookkeeping (minimum sums, filtered
            // round-robin high-use counts) retires with the producing
            // instruction (§4.2).
            if let Some(d) = inst.dest {
                if let Storage::Cached { assigner, .. } = &mut self.storage {
                    let info = &self.preg_info[d as usize];
                    assigner.release(info.set, info.predicted);
                }
            }
            if let Some(prev) = inst.prev {
                self.free_preg(prev, now);
            }
        }
    }

    fn free_preg(&mut self, p: u16, now: u64) {
        let info = self.preg_info[p as usize];
        debug_assert!(info.active, "freeing an inactive preg");
        if info.trainable {
            self.douse.train(
                info.producer_pc,
                info.producer_hist,
                info.consumers_renamed.min(u8::MAX as u32) as u8,
            );
        }
        match &mut self.storage {
            Storage::Cached { cache, tracker, .. } => {
                cache.free(PhysReg(p), info.set, now);
                tracker.clear(PhysReg(p));
            }
            Storage::TwoLevel { file } => file.release(PhysReg(p)),
            Storage::Monolithic { .. } => {}
        }
        if let Some(lt) = &mut self.lifetimes {
            lt.record_value(info.alloc_time, info.write_time, info.last_use, now);
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.on_clear(p);
        }
        self.preg_info[p as usize] = PregInfo::EMPTY;
        self.preg_time[p as usize] = PregTime::UNKNOWN;
        self.preg_gen[p as usize] = self.preg_gen[p as usize].wrapping_add(1);
        // In-order retirement guarantees every correct-path consumer
        // issued before the overwriting instruction retires, so any
        // waiter left here is a squashed seq — drop it.
        self.preg_waiters[p as usize].clear();
        self.freelist.push(p);
    }

    // ----- issue ---------------------------------------------------------

    /// ROB position of a live instruction, by seq. The ROB is sorted by
    /// seq but *not* contiguous: a wrong-path squash removes the tail
    /// without rolling back the seq counter, leaving a gap. `None`
    /// means retired or squashed.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        self.rob.binary_search_by(|i| i.seq.cmp(&seq)).ok()
    }

    /// Re-arms a waiting instruction's `next_wake` deadline: if a
    /// source's timing is unknown it parks on that register's waiter
    /// list (re-armed when the producer issues); otherwise the deadline
    /// becomes the earliest cycle every operand could be ready.
    ///
    /// Deadlines are lower bounds — readiness only moves *later* after
    /// being advertised (miss-raised `storage_avail`, load retimes),
    /// and an instruction that fails its ready check at the deadline
    /// simply re-arms itself — so no wake-up is ever lost.
    fn rearm_wake(&mut self, idx: usize, lower: u64) {
        let inst = &self.rob[idx];
        let seq = inst.seq;
        let srcs = inst.srcs;
        let mut wake = lower.max(inst.earliest_issue);
        loop {
            let mut next = wake;
            for &p in srcs.iter().flatten() {
                let pt = self.preg_time[p as usize];
                if !pt.known {
                    self.preg_waiters[p as usize].push(seq);
                    self.sched[idx] = u64::MAX;
                    return;
                }
                next = next.max(pt.next_ready_at(next));
            }
            if next == wake {
                break;
            }
            wake = next;
        }
        self.sched[idx] = wake;
    }

    /// Un-parks everything waiting on `p`, called when the producer
    /// issues and `p`'s timing becomes known. The deadline is reset
    /// lazily to the next cycle; the select scan recomputes it from the
    /// now-known timing on examination.
    fn wake_preg_waiters(&mut self, p: u16, now: u64) {
        if self.preg_waiters[p as usize].is_empty() {
            return;
        }
        let mut waiters = std::mem::take(&mut self.preg_waiters[p as usize]);
        for seq in waiters.drain(..) {
            if let Some(idx) = self.rob_index(seq) {
                if self.rob[idx].status == Status::Waiting {
                    self.sched[idx] = now + 1;
                }
            }
        }
        // Hand the (empty) buffer back to keep its capacity.
        self.preg_waiters[p as usize] = waiters;
    }

    fn mark_squash_cycle(&mut self, cycle: u64) {
        if !self.squash_cycles.contains(&cycle) {
            self.squash_cycles.push(cycle);
        }
    }

    fn take_squash_cycle(&mut self, now: u64) -> bool {
        match self.squash_cycles.iter().position(|&c| c == now) {
            Some(i) => {
                self.squash_cycles.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn issue(&mut self, now: u64) {
        let squashing = self.take_squash_cycle(now);
        let mut pool_used = [0usize; FuPools::NUM_POOLS];
        let mut total = 0;

        // Select oldest-ready-first, in age order (the exact order the
        // full-window scan visited) but filtering the window down to
        // the instructions whose wake deadline has arrived on one word
        // per slot. Instructions losing a slot to issue width or a
        // full FU pool keep a due deadline and are re-examined next
        // cycle; a failed ready check re-arms the deadline.
        let mut due = std::mem::take(&mut self.due_buf);
        let mut selected = std::mem::take(&mut self.selected_buf);
        due.clear();
        selected.clear();
        due.extend(
            self.sched
                .iter()
                .enumerate()
                .filter_map(|(i, &w)| (w <= now).then_some(i)),
        );
        for &i in &due {
            if total == self.config.issue_width {
                break;
            }
            let inst = &self.rob[i];
            debug_assert_eq!(inst.status, Status::Waiting);
            let ready = inst.earliest_issue <= now
                && inst
                    .srcs
                    .iter()
                    .flatten()
                    .all(|&p| self.preg_time[p as usize].operand_ready(now));
            if !ready {
                self.rearm_wake(i, now + 1);
                continue;
            }
            let inst = &self.rob[i];
            if self.config.model_store_forwarding && inst.rec.inst.is_load() {
                let granule = inst.rec.mem_addr.expect("load has an address") / 8;
                if let Some(stores) = self.store_granules.get(&granule) {
                    // The youngest store older than this load is the
                    // one it forwards from; it must have executed.
                    let blocking = stores
                        .iter()
                        .rev()
                        .find(|&&(sseq, _)| sseq < inst.seq)
                        .is_some_and(|&(_, done)| done.is_none_or(|d| d > now));
                    if blocking {
                        self.store_forward_stalls += 1;
                        continue;
                    }
                }
            }
            let pool = FuPools::pool_index(inst.class);
            if pool_used[pool] == self.config.fu.size(inst.class) {
                continue;
            }
            pool_used[pool] += 1;
            total += 1;
            selected.push((inst.seq, i));
        }

        if squashing {
            // Register-cache miss in the previous cycle: everything
            // issuing now replays (§5.2). The slots are consumed but no
            // effects occur; independents may reissue next cycle (their
            // deadlines stay due).
            self.replayed += selected.len() as u64;
            for &(seq, i) in &selected {
                self.rob[i].earliest_issue = now + 1;
                if let Some(t) = self.trace.get_mut(seq as usize) {
                    t.replays += 1;
                }
            }
        } else {
            for &(seq, i) in &selected {
                // A wrong-path squash during this loop removes the ROB
                // tail; later selections pointing into it are gone.
                if self.rob.get(i).is_none_or(|inst| inst.seq != seq) {
                    continue;
                }
                self.issue_one(i, now);
            }
        }
        self.due_buf = due;
        self.selected_buf = selected;
    }

    fn issue_one(&mut self, idx: usize, now: u64) {
        let (srcs, class, rec, fetch_cycle, mispredicted, dest, seq) = {
            let inst = &self.rob[idx];
            (
                inst.srcs,
                inst.class,
                inst.rec,
                inst.fetch_cycle,
                inst.mispredicted,
                inst.dest,
                inst.seq,
            )
        };

        // Obtain each source operand: bypass, storage hit, or miss.
        let mut miss_avail: u64 = 0;
        let mut operand_paths: [Option<OperandPath>; 2] = [None, None];
        for (slot, p) in srcs
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
        {
            let t = self.preg_time[p as usize];
            if t.on_bypass(now) {
                self.operands_bypassed += 1;
                operand_paths[slot] = Some(OperandPath::Bypass((now - t.bypass_start) as u8));
                let stage = now - t.bypass_start;
                if let Storage::Cached { tracker, .. } = &mut self.storage {
                    if stage == 0 {
                        // First-stage bypass: visible to the write
                        // decision (§3.1).
                        tracker.consume(PhysReg(p));
                        self.preg_info[p as usize].pre_write_bypasses += 1;
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_consume(p);
                        }
                    } else {
                        // Later stage: decrement the cache entry once
                        // the write has landed.
                        let set = self.preg_info[p as usize].set;
                        let gen = self.preg_gen[p as usize];
                        self.pending_bypass_decs
                            .push(t.storage_avail, (p, set, gen));
                    }
                }
            } else {
                // Storage path.
                self.operands_from_storage += 1;
                operand_paths[slot] = Some(OperandPath::Storage);
                if let Storage::Cached { cache, backing, .. } = &mut self.storage {
                    let set = self.preg_info[p as usize].set;
                    operand_paths[slot] = Some(OperandPath::CacheHit);
                    if !cache.read(PhysReg(p), set, now) {
                        operand_paths[slot] = Some(OperandPath::CacheMiss);
                        // Miss (Figure 3 star): file read through the
                        // single port, after the producer's write.
                        let avail = backing.read(PhysReg(p), now + 1);
                        let gen = self.preg_gen[p as usize];
                        self.pending_fills.push(avail, (p, set, gen));
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_fill_scheduled(p, gen, avail);
                        }
                        self.preg_time[p as usize].storage_avail = avail + 1;
                        self.mark_squash_cycle(now + 1);
                        self.miss_events += 1;
                        miss_avail = miss_avail.max(avail);
                    }
                }
            }
            // Common consumer bookkeeping. The value is actually read
            // when the consumer enters execute (issue + storage read),
            // which is what the live-time statistics measure.
            let info = &mut self.preg_info[p as usize];
            info.consumers_outstanding = info.consumers_outstanding.saturating_sub(1);
            if self.lifetimes.is_some() {
                let read_at = now + self.read_latency as u64 + 1;
                info.last_use = info.last_use.max(read_at);
            }
            if info.consumers_outstanding == 0 {
                if let Some(rseq) = info.reassigned_seq {
                    if let Storage::TwoLevel { file } = &mut self.storage {
                        file.mark_eligible(PhysReg(p), rseq);
                    }
                }
            }
        }

        // Effective issue time: delayed by the latest miss (the value
        // arrives at `avail`; execution begins the next cycle).
        let eff_issue = if miss_avail > 0 {
            now.max(miss_avail.saturating_sub(self.read_latency as u64))
        } else {
            now
        };

        // Execution latency; loads consult the memory hierarchy.
        let mut load_missed = false;
        let x = if class == ExecClass::Load {
            let addr = rec.mem_addr.expect("load has an address");
            let real = self.memsys.load_latency(addr, now);
            load_missed = real > ExecClass::Load.latency();
            real
        } else {
            class.latency()
        };
        let rl = self.read_latency as u64;
        let exec_done = eff_issue + rl + x as u64;

        // Load-hit speculation (21264-style, the model the paper reuses
        // for register cache misses): the scheduler advertises the
        // L1-hit latency; a miss squashes the two-cycle issue shadow
        // and the true readiness is installed at detection.
        let speculate_hit = load_missed && self.config.load_hit_speculation && dest.is_some();

        // Destination value timing and deferred cache write.
        if let Some(d) = dest {
            let adv_x = if speculate_hit {
                ExecClass::Load.latency() as u64
            } else {
                x as u64
            };
            let bypass_start = eff_issue + adv_x;
            let bypass_end = bypass_start + self.config.bypass_stages as u64 - 1;
            let storage_avail = match &self.storage {
                // A monolithic file's value is readable only after the
                // full write completes AND a full read can start after
                // it: consumers in between stall (the issue-restriction
                // gap of §2.2 that grows with file latency).
                Storage::Monolithic { write_latency } => {
                    eff_issue + adv_x + rl + *write_latency as u64
                }
                Storage::Cached { .. } | Storage::TwoLevel { .. } => bypass_end + 1,
            };
            self.preg_time[d as usize] = PregTime {
                known: true,
                bypass_start,
                bypass_end,
                storage_avail,
            };
            // The value's timing just became known: wake consumers
            // parked on it. (On a load-hit mis-speculation they wake
            // against the advertised timing, issue into the squashed
            // shadow, and re-key — exactly as the scan model replayed
            // them.)
            self.wake_preg_waiters(d, now);
            if speculate_hit {
                // The miss is detected as the first shadow dependents
                // head for execute: both advertised bypass cycles are
                // squashed (the 21264's two-cycle shadow) and the true
                // timing is installed at the end of the shadow.
                let detect = bypass_end;
                self.mark_squash_cycle(bypass_start);
                self.mark_squash_cycle(detect);
                self.load_replay_squashes += 1;
                let real_bypass_start = eff_issue + x as u64;
                let real_bypass_end = real_bypass_start + self.config.bypass_stages as u64 - 1;
                let real_storage = match &self.storage {
                    Storage::Monolithic { write_latency } => exec_done + *write_latency as u64,
                    _ => real_bypass_end + 1,
                };
                let real = PregTime {
                    known: true,
                    bypass_start: real_bypass_start,
                    bypass_end: real_bypass_end,
                    storage_avail: real_storage,
                };
                self.pending_retimes
                    .push(detect, (d, self.preg_gen[d as usize], real));
            }
            let collect_lifetimes = self.lifetimes.is_some();
            let info = &mut self.preg_info[d as usize];
            if collect_lifetimes {
                info.write_time = exec_done;
                info.last_use = info.last_use.max(exec_done);
            }
            let set = info.set;
            if let Storage::Cached { backing, .. } = &mut self.storage {
                backing.write(PhysReg(d), exec_done + 1);
                let gen = self.preg_gen[d as usize];
                self.pending_writes.push(exec_done + 1, (d, set, gen));
            }
        }

        // Branch resolution redirects fetch (and squashes the wrong
        // path when one was fetched).
        if mispredicted {
            let mut resume =
                (exec_done + 1).max(fetch_cycle + self.config.min_branch_penalty as u64);
            if self.wp_resolve_seq == Some(seq) {
                self.squash_wrong_path(seq, now);
            }
            if let Storage::TwoLevel { file } = &mut self.storage {
                // Values speculatively moved to the L2 by wrong-path
                // reassignments return during the refill.
                let count = file.on_mispredict(seq);
                resume += file.recovery_stall(count, resume.saturating_sub(now));
            }
            self.fetch_resume = resume;
            if self.waiting_on_branch == Some(seq) {
                self.waiting_on_branch = None;
            }
        }

        if self.config.model_store_forwarding && rec.inst.is_store() {
            let granule = rec.mem_addr.expect("store has an address") / 8;
            if let Some(stores) = self.store_granules.get_mut(&granule) {
                if let Some(entry) = stores.iter_mut().find(|e| e.0 == seq) {
                    entry.1 = Some(exec_done);
                }
            }
        }
        let inst = &mut self.rob[idx];
        inst.status = Status::Issued;
        inst.exec_done = exec_done;
        self.sched[idx] = u64::MAX;
        self.window_count -= 1;
        if let Some(t) = self.trace.get_mut(seq as usize) {
            t.issue = now;
            t.exec_start = eff_issue + rl + 1;
            t.exec_done = exec_done;
            t.operands = operand_paths;
        }
    }

    // ----- dispatch (rename) ----------------------------------------------

    fn dispatch(&mut self, now: u64) {
        for _ in 0..self.config.fetch_width {
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.ready_at > now {
                break;
            }
            if self.rob.len() == self.config.rob_entries
                || self.window_count == self.config.window_entries
            {
                break;
            }
            let has_dest = front.rec.inst.dest().is_some();
            if has_dest {
                if self.freelist.is_empty() {
                    self.dispatch_stall_pregs += 1;
                    break;
                }
                if let Storage::TwoLevel { file } = &self.storage {
                    if file.free_count() == 0 {
                        self.dispatch_stall_pregs += 1;
                        break;
                    }
                }
            }
            let entry = self.fetch_queue.pop_front().expect("checked non-empty");
            self.rename_and_insert(entry, now);
        }
    }

    fn rename_and_insert(&mut self, entry: FetchedEntry, now: u64) {
        let rec = entry.rec;
        let seq = self.seq;
        self.seq += 1;

        // Sources: current mappings.
        let mut srcs = [None, None];
        for (slot, src) in rec.inst.sources().into_iter().enumerate() {
            if let Some(r) = src {
                let p = self.map[r.index() as usize];
                srcs[slot] = Some(p);
                let info = &mut self.preg_info[p as usize];
                info.consumers_renamed += 1;
                info.consumers_outstanding += 1;
            }
        }

        // Destination: allocate and remap.
        let mut dest = None;
        let mut prev = None;
        if let Some(r) = rec.inst.dest() {
            let p = self.freelist.pop().expect("dispatch checked the freelist");
            let old = self.map[r.index() as usize];
            self.map[r.index() as usize] = p;
            prev = Some(old);
            dest = Some(p);

            // The old value's architectural name is gone: transfer
            // eligibility (two-level) begins once consumers drain.
            let old_info = &mut self.preg_info[old as usize];
            old_info.reassigned_seq = Some(seq);
            if old_info.consumers_outstanding == 0 {
                if let Storage::TwoLevel { file } = &mut self.storage {
                    file.mark_eligible(PhysReg(old), seq);
                }
            }

            // Degree-of-use prediction for the new value.
            let prediction = self.douse.predict(rec.pc, entry.hist);
            self.preg_time[p as usize] = PregTime::UNKNOWN;
            let mut info = PregInfo {
                producer_pc: rec.pc,
                producer_hist: entry.hist,
                // Wrong-path values never complete a real lifetime, so
                // they do not train the degree predictor (their *reads*
                // of correct-path values still pollute use counts, as
                // in §3.4).
                trainable: !entry.wrong_path,
                alloc_time: now,
                active: true,
                ..PregInfo::EMPTY
            };
            match &mut self.storage {
                Storage::Cached {
                    cache,
                    assigner,
                    tracker,
                    ..
                } => {
                    let cfg = *cache.config();
                    tracker.init(
                        PhysReg(p),
                        prediction,
                        cfg.unknown_default,
                        cfg.max_use_count,
                    );
                    let degree = tracker.predicted(PhysReg(p));
                    if let Some(ck) = self.checker.as_mut() {
                        ck.on_init(
                            p,
                            tracker.remaining(PhysReg(p)),
                            tracker.is_pinned(PhysReg(p)),
                        );
                    }
                    info.predicted = degree;
                    info.set = assigner.assign(PhysReg(p), degree);
                    cache.produce(PhysReg(p));
                }
                Storage::TwoLevel { file } => {
                    let ok = file.try_allocate(PhysReg(p));
                    debug_assert!(ok, "dispatch checked the L1 free count");
                }
                Storage::Monolithic { .. } => {}
            }
            self.preg_info[p as usize] = info;
        }

        if (seq as usize) < self.config.trace_instructions {
            self.trace.push(InstTrace {
                seq,
                pc: rec.pc,
                asm: rec.inst.to_string(),
                fetch: entry.fetch_cycle,
                dispatch: now,
                issue: 0,
                exec_start: 0,
                exec_done: 0,
                retire: 0,
                operands: [None, None],
                replays: 0,
                wrong_path: entry.wrong_path,
            });
        }
        if self.config.model_store_forwarding && rec.inst.is_store() {
            let granule = rec.mem_addr.expect("store has an address") / 8;
            self.store_granules
                .entry(granule)
                .or_default()
                .push((seq, None));
        }
        self.rob.push_back(DynInst {
            seq,
            rec,
            class: rec.inst.class(),
            srcs,
            dest,
            prev,
            status: Status::Waiting,
            earliest_issue: now + 1,
            exec_done: u64::MAX,
            fetch_cycle: entry.fetch_cycle,
            mispredicted: entry.mispredicted,
            wrong_path: entry.wrong_path,
        });
        self.sched.push_back(now + 1);
        self.window_count += 1;

        // The rename map as of the mispredicted branch is what the
        // squash restores.
        if entry.mispredicted && self.wp_resolve_seq == Some(seq) {
            self.wp_map_checkpoint = Some(self.map.clone());
        }
    }

    // ----- wrong-path squash ------------------------------------------------

    /// Squashes everything younger than the resolved mispredicted
    /// branch: ROB/window entries, renamed registers, LSQ entries, the
    /// fetch queue, and the speculative emulator state.
    fn squash_wrong_path(&mut self, branch_seq: u64, now: u64) {
        let keep = self
            .rob
            .iter()
            .position(|i| i.seq > branch_seq)
            .unwrap_or(self.rob.len());
        let mut removed = std::mem::take(&mut self.squash_buf);
        removed.clear();
        removed.extend(self.rob.drain(keep..));
        self.sched.truncate(keep);
        for inst in removed.iter().rev() {
            debug_assert!(inst.wrong_path, "squashed a correct-path instruction");
            self.wp_squashed += 1;
            if inst.status == Status::Waiting {
                self.window_count -= 1;
                // Issued instructions already consumed their reads.
                for p in inst.srcs.iter().flatten() {
                    let info = &mut self.preg_info[*p as usize];
                    if info.active {
                        info.consumers_outstanding = info.consumers_outstanding.saturating_sub(1);
                    }
                }
            }
            if self.config.model_store_forwarding && inst.rec.inst.is_store() {
                let granule = inst.rec.mem_addr.expect("store has an address") / 8;
                if let Some(stores) = self.store_granules.get_mut(&granule) {
                    stores.retain(|&(sseq, _)| sseq != inst.seq);
                    if stores.is_empty() {
                        self.store_granules.remove(&granule);
                    }
                }
            }
            if let Some(d) = inst.dest {
                if let Storage::Cached { assigner, .. } = &mut self.storage {
                    let info = &self.preg_info[d as usize];
                    assigner.release(info.set, info.predicted);
                }
                self.squash_free_preg(d, now);
                if let Some(prev) = inst.prev {
                    // The architectural name reverts to the old value.
                    let pi = &mut self.preg_info[prev as usize];
                    if pi.active {
                        pi.reassigned_seq = None;
                    }
                }
            }
        }
        self.squash_buf = removed;

        // Restore the front end to the branch point.
        self.map = self
            .wp_map_checkpoint
            .take()
            .expect("checkpoint saved when the branch dispatched");
        self.ghist = self.wp_ghist;
        self.ras = self.wp_ras.take().expect("RAS checkpoint saved");
        debug_assert!(self.fetch_queue.iter().all(|e| e.wrong_path));
        self.fetch_queue.clear();
        self.peeked = None;
        self.machine.abort_speculation();
        self.wrong_path = false;
        self.wp_resolve_seq = None;
        if self.waiting_on_branch.is_some_and(|w| w > branch_seq) {
            // An inner wrong-path misprediction was stalling fetch; it
            // no longer exists.
            self.waiting_on_branch = None;
        }
    }

    /// Releases a wrong-path destination register: like a free at
    /// retirement, but with no degree-predictor training and no
    /// lifetime statistics (the value never completed a lifetime).
    fn squash_free_preg(&mut self, p: u16, now: u64) {
        let info = self.preg_info[p as usize];
        debug_assert!(info.active, "squash-freeing an inactive preg");
        if let Some(ck) = self.checker.as_mut() {
            ck.on_clear(p);
        }
        match &mut self.storage {
            Storage::Cached { cache, tracker, .. } => {
                cache.free(PhysReg(p), info.set, now);
                tracker.clear(PhysReg(p));
            }
            Storage::TwoLevel { file } => file.release(PhysReg(p)),
            Storage::Monolithic { .. } => {}
        }
        self.preg_info[p as usize] = PregInfo::EMPTY;
        self.preg_time[p as usize] = PregTime::UNKNOWN;
        self.preg_gen[p as usize] = self.preg_gen[p as usize].wrapping_add(1);
        // Anything parked on a wrong-path value is wrong-path itself
        // and is being squashed with it.
        self.preg_waiters[p as usize].clear();
        self.freelist.push(p);
    }

    // ----- fetch -----------------------------------------------------------

    fn next_record(&mut self) -> Option<ExecRecord> {
        if self.stream_done {
            return None;
        }
        if self.machine.in_speculation() {
            // Wrong-path execution may fault or halt; either simply
            // ends speculative fetch until the branch resolves.
            return match self.machine.step() {
                Ok(StepOutcome::Executed(r)) => Some(r),
                Ok(StepOutcome::Halted) | Err(_) => None,
            };
        }
        match self.machine.step() {
            Ok(StepOutcome::Executed(r)) => {
                if r.inst == Inst::Halt {
                    self.stream_done = true;
                }
                Some(r)
            }
            Ok(StepOutcome::Halted) => {
                self.stream_done = true;
                None
            }
            Err(e) => {
                // A correct-path fault means the workload itself is
                // broken; surface it as a structured error at the end
                // of this cycle instead of panicking mid-fetch.
                self.stream_done = true;
                self.error = Some(Box::new(SimError::Emu(e)));
                None
            }
        }
    }

    fn fetch(&mut self, now: u64) {
        if now < self.fetch_resume || self.waiting_on_branch.is_some() || self.halt_fetched {
            return;
        }
        let queue_cap = self.config.fetch_width * (self.config.frontend_stages as usize + 1);
        let mut line: Option<u64> = None;
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= queue_cap {
                break;
            }
            // Model the I-cache at line granularity.
            let Some(rec) = self.peek_record() else { break };
            let this_line = rec.pc / self.config.memsys.l1.line_bytes as u64;
            if line != Some(this_line) {
                let extra = self.memsys.fetch_latency(rec.pc);
                if extra > 0 {
                    self.fetch_resume = now + extra as u64;
                    break;
                }
                line = Some(this_line);
            }
            let mut rec = self.take_record().expect("peeked");
            if let Some(inj) = self.injector.as_mut() {
                if inj.armed_for(FaultKind::CorruptRecord) && !self.wrong_path {
                    if let Some(v) = rec.dest_val.filter(|_| rec.inst != Inst::Halt) {
                        // Timing-neutral: `dest_val` never feeds the
                        // timing model, so only the oracle can see this.
                        rec.dest_val = Some(v ^ (1u64 << (inj.next_u64() % 64)));
                        inj.disarm(FaultKind::CorruptRecord);
                    }
                }
            }
            let hist = self.ghist;
            let mut mispredicted = false;
            let mut end_block = false;

            // The wrong target to fetch down on a misprediction, when
            // one exists (None for unknown indirect targets).
            let mut wrong_target: Option<u64> = None;
            match rec.inst {
                Inst::Branch { off, .. } => {
                    self.cond_branches += 1;
                    let pred = self.branch_pred.predict(rec.pc, self.ghist);
                    self.branch_pred.update(rec.pc, self.ghist, rec.taken, pred);
                    self.ghist.push(rec.taken);
                    if pred != rec.taken {
                        self.branch_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = Some(if rec.taken {
                            rec.pc + 4 // predicted not-taken: fall through
                        } else {
                            rec.pc
                                .wrapping_add(4)
                                .wrapping_add((off as i64 as u64).wrapping_mul(4))
                        });
                    }
                    end_block = rec.taken;
                }
                Inst::Jump { link, .. } => {
                    // Direct target + perfect BTB: never mispredicts.
                    if link {
                        self.ras.push(rec.pc + 4);
                    }
                    end_block = true;
                }
                Inst::JumpReg { .. } => {
                    self.indirect_branches += 1;
                    let predicted_target = if rec.inst.is_return() {
                        self.ras.pop()
                    } else {
                        self.indirect.predict(rec.pc, self.ghist)
                    };
                    self.indirect.update(rec.pc, self.ghist, rec.next_pc);
                    if rec.inst.is_call() {
                        self.ras.push(rec.pc + 4);
                    }
                    if predicted_target != Some(rec.next_pc) {
                        self.indirect_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = predicted_target;
                    }
                    end_block = true;
                }
                _ => {}
            }

            let is_halt = rec.inst == Inst::Halt;
            self.fetch_queue.push_back(FetchedEntry {
                rec,
                ready_at: now + self.config.frontend_stages as u64,
                fetch_cycle: now,
                hist,
                mispredicted,
                wrong_path: self.wrong_path,
            });
            if mispredicted {
                let branch_seq = self.seq + self.fetch_queue.len() as u64 - 1;
                if let (Some(wt), false) = (wrong_target, self.wrong_path) {
                    // Begin wrong-path fetch at the predicted target.
                    // Checkpoints restore the front end at the squash;
                    // the rename map is snapshotted when the branch
                    // dispatches.
                    self.wrong_path = true;
                    self.wp_resolve_seq = Some(branch_seq);
                    self.wp_ghist = self.ghist;
                    self.wp_ras = Some(self.ras.clone());
                    self.peeked = None;
                    self.machine.enter_speculation(wt);
                } else {
                    // Unknown wrong target, or already on a wrong path
                    // (nested speculation): stall fetch until the
                    // branch resolves.
                    self.waiting_on_branch = Some(branch_seq);
                }
                break;
            }
            if is_halt {
                if !self.wrong_path {
                    self.halt_fetched = true;
                }
                break;
            }
            if end_block {
                break;
            }
        }
    }

    // Small one-record lookahead buffer for fetch.
    fn peek_record(&mut self) -> Option<ExecRecord> {
        if self.peeked.is_none() {
            self.peeked = self.next_record();
        }
        self.peeked
    }

    fn take_record(&mut self) -> Option<ExecRecord> {
        self.peek_record();
        self.peeked.take()
    }

    // ----- results ----------------------------------------------------------

    fn finish(mut self) -> SimResult {
        let now = self.now;
        let (regcache, backing) = match &mut self.storage {
            Storage::Cached { cache, backing, .. } => {
                cache.finalize(now);
                (Some(cache.stats().clone()), Some(*backing.stats()))
            }
            _ => (None, None),
        };
        let twolevel = match &self.storage {
            Storage::TwoLevel { file } => Some(*file.stats()),
            _ => None,
        };
        SimResult {
            cycles: now,
            retired: self.retired,
            cond_branches: self.cond_branches,
            branch_mispredicts: self.branch_mispredicts,
            indirect_branches: self.indirect_branches,
            indirect_mispredicts: self.indirect_mispredicts,
            replayed: self.replayed,
            miss_events: self.miss_events,
            dispatch_stall_pregs: self.dispatch_stall_pregs,
            operands_bypassed: self.operands_bypassed,
            operands_from_storage: self.operands_from_storage,
            store_forward_stalls: self.store_forward_stalls,
            wrong_path_squashed: self.wp_squashed,
            load_miss_speculations: self.load_replay_squashes,
            regcache,
            backing,
            twolevel,
            douse: *self.douse.stats(),
            memsys: *self.memsys.stats(),
            lifetimes: self.lifetimes.map(|lt| lt.finalize(now)),
            timeline: (!self.trace.is_empty()).then_some(Timeline { insts: self.trace }),
        }
    }
}
