//! Lockstep co-simulation oracle.
//!
//! A second functional machine replays the program one instruction per
//! *retirement*: because retirement is in program order and wrong-path
//! work never retires, the oracle's next step must agree with the
//! record the pipeline carried for the retiring instruction — fetch
//! PC, control-flow outcome, effective address, and the architectural
//! result bits. A mismatch means the pipeline's record stream was
//! corrupted somewhere between fetch and retirement (or the two
//! machines genuinely diverged), and is reported structurally instead
//! of panicking.

use crate::check::{DivergenceReport, RetiredEvent};
use std::collections::VecDeque;
use ubrc_emu::{ExecRecord, Machine, StepOutcome};

/// How many retirements the divergence report replays.
const HISTORY: usize = 8;

pub(crate) struct Oracle {
    machine: Machine,
    recent: VecDeque<RetiredEvent>,
}

impl Oracle {
    /// Builds the oracle as a fresh fork of the pipeline's own machine:
    /// same (shared) program, initial architectural state, no deep copy
    /// of the instruction stream.
    pub(crate) fn for_machine(machine: &Machine) -> Self {
        Self {
            machine: machine.fork_fresh(),
            recent: VecDeque::with_capacity(HISTORY),
        }
    }

    fn report(
        &self,
        cycle: u64,
        actual: &ExecRecord,
        field: &'static str,
        expected: String,
        got: String,
    ) -> Box<DivergenceReport> {
        Box::new(DivergenceReport {
            cycle,
            seq: actual.seq,
            rob_slot: 0,
            pc: actual.pc,
            asm: actual.inst.to_string(),
            field,
            expected,
            actual: got,
            recent: self.recent.iter().cloned().collect(),
        })
    }

    /// Steps the oracle machine once and compares the produced record
    /// with the record the pipeline is retiring.
    pub(crate) fn check_retire(
        &mut self,
        cycle: u64,
        actual: &ExecRecord,
    ) -> Result<(), Box<DivergenceReport>> {
        let expected = match self.machine.step() {
            Ok(StepOutcome::Executed(r)) => r,
            Ok(StepOutcome::Halted) => {
                return Err(self.report(
                    cycle,
                    actual,
                    "stream",
                    "machine already halted; nothing left to retire".into(),
                    format!("pipeline retired `{}`", actual.inst),
                ));
            }
            Err(e) => {
                return Err(self.report(
                    cycle,
                    actual,
                    "execution",
                    "fault-free step".into(),
                    format!("oracle machine faulted: {e}"),
                ));
            }
        };

        macro_rules! cmp {
            ($field:ident) => {
                if expected.$field != actual.$field {
                    return Err(self.report(
                        cycle,
                        actual,
                        stringify!($field),
                        format!("{:?}", expected.$field),
                        format!("{:?}", actual.$field),
                    ));
                }
            };
        }
        cmp!(seq);
        cmp!(pc);
        cmp!(inst);
        cmp!(next_pc);
        cmp!(taken);
        cmp!(mem_addr);
        cmp!(dest_val);

        if self.recent.len() == HISTORY {
            self.recent.pop_front();
        }
        self.recent.push_back(RetiredEvent {
            seq: actual.seq,
            cycle,
            pc: actual.pc,
            asm: actual.inst.to_string(),
        });
        Ok(())
    }
}
