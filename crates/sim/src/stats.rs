use ubrc_core::{BackingStats, RegCacheStats, TwoLevelStats};
use ubrc_frontend::DouseStats;
use ubrc_memsys::MemSysStats;
use ubrc_stats::Histogram;

/// Register lifetime statistics (Figures 1 and 2 of the paper).
#[derive(Clone, Debug, Default)]
pub struct LifetimeStats {
    /// Allocation → value written (Figure 1 "empty time").
    pub empty: Histogram,
    /// Written → last use (Figure 1 "live time").
    pub live: Histogram,
    /// Last use → freed (Figure 1 "dead time").
    pub dead: Histogram,
    /// Per-cycle distribution of simultaneously *live* values
    /// (Figure 2).
    pub live_concurrency: Histogram,
    /// Per-cycle distribution of allocated physical registers
    /// (Figure 2).
    pub alloc_concurrency: Histogram,
}

/// Collects per-value lifetime events during simulation; the
/// distributions are built in one sweep at the end.
#[derive(Clone, Debug, Default)]
pub struct LifetimeCollector {
    empty: Histogram,
    live: Histogram,
    dead: Histogram,
    live_events: Vec<(u64, i64)>,
    alloc_events: Vec<(u64, i64)>,
}

impl LifetimeCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value's lifetime when its physical register is
    /// freed. `alloc <= write <= last_use <= free` is expected; the
    /// phases saturate at zero otherwise.
    pub fn record_value(&mut self, alloc: u64, write: u64, last_use: u64, free: u64) {
        self.empty.record(write.saturating_sub(alloc));
        self.live.record(last_use.saturating_sub(write));
        self.dead.record(free.saturating_sub(last_use));
        self.live_events.push((write, 1));
        self.live_events.push((last_use.max(write), -1));
        self.alloc_events.push((alloc, 1));
        self.alloc_events.push((free.max(alloc), -1));
    }

    fn sweep(mut events: Vec<(u64, i64)>, end: u64) -> Histogram {
        events.sort_unstable();
        let mut h = Histogram::new();
        let mut count: i64 = 0;
        let mut prev: u64 = 0;
        for (t, delta) in events {
            let t = t.min(end);
            if t > prev && count >= 0 {
                h.record_n(count as u64, t - prev);
            }
            count += delta;
            prev = prev.max(t);
        }
        if end > prev {
            h.record_n(count.max(0) as u64, end - prev);
        }
        h
    }

    /// Builds the final distributions for a run that ended at `end`.
    pub fn finalize(self, end: u64) -> LifetimeStats {
        LifetimeStats {
            empty: self.empty,
            live: self.live,
            dead: self.dead,
            live_concurrency: Self::sweep(self.live_events, end),
            alloc_concurrency: Self::sweep(self.alloc_events, end),
        }
    }
}

/// One dynamic-partition epoch boundary
/// ([`ubrc_core::CachePartition::DynamicCap`] or
/// [`ubrc_core::CachePartition::DynamicWay`]), as recorded in
/// [`SimResult::epoch_timeline`]: the quotas or way map the lookahead
/// partitioner installed and the raw per-thread hit/miss deltas of the
/// epoch that just closed (raw counts, so records stay exactly
/// comparable across runs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// Cycle the boundary fired.
    pub cycle: u64,
    /// Per-thread occupancy quotas in force after this boundary (entry
    /// equivalents — way counts × sets — under `DynamicWay`).
    pub caps: Vec<usize>,
    /// Per-thread way counts in force after this boundary
    /// (`DynamicWay` only; empty under `DynamicCap`).
    pub ways: Vec<usize>,
    /// Per-thread register-cache read hits during the closed epoch.
    pub hits: Vec<u64>,
    /// Per-thread register-cache read misses during the closed epoch.
    pub misses: Vec<u64>,
}

impl EpochRecord {
    /// The closed epoch's read hit rate for `tid`, or `None` when the
    /// thread made no cache reads that epoch.
    pub fn hit_rate(&self, tid: usize) -> Option<f64> {
        let total = self.hits[tid] + self.misses[tid];
        (total > 0).then(|| self.hits[tid] as f64 / total as f64)
    }
}

/// One stage's share of a self-profiled run ([`StageProfile`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSample {
    /// Stage name, as in the pipeline schedule ("fetch", "issue", ...).
    pub name: &'static str,
    /// Total wall nanoseconds spent inside the stage function.
    pub nanos: u64,
    /// Times the stage function ran (once per simulated cycle).
    pub calls: u64,
}

/// Per-stage wall-time attribution of one simulation run, collected
/// when [`crate::SimConfig::profile`] is set. Host-side cost only —
/// the simulated timing is identical with profiling on or off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// One sample per pipeline stage, in schedule order.
    pub stages: Vec<StageSample>,
}

impl StageProfile {
    /// Total wall nanoseconds across all stages.
    pub fn total_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }
}

/// Results of one timing-simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions retired per hardware thread (one entry for
    /// single-threaded runs; sums to `retired`).
    pub thread_retired: Vec<u64>,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional branch mispredictions.
    pub branch_mispredicts: u64,
    /// Indirect jumps fetched (including returns).
    pub indirect_branches: u64,
    /// Indirect target mispredictions (including RAS misses).
    pub indirect_mispredicts: u64,
    /// Instructions squashed by register-cache miss replay.
    pub replayed: u64,
    /// Register-cache miss events.
    pub miss_events: u64,
    /// Dispatch stalls for lack of a physical (or two-level L1)
    /// register.
    pub dispatch_stall_pregs: u64,
    /// Source operands satisfied by the bypass network.
    pub operands_bypassed: u64,
    /// Source operands that went to register storage (cache or file).
    pub operands_from_storage: u64,
    /// Issue-slot denials where a load waited for an older in-flight
    /// store to the same address.
    pub store_forward_stalls: u64,
    /// Wrong-path instructions fetched, renamed, and squashed at branch
    /// resolution.
    pub wrong_path_squashed: u64,
    /// Loads whose L1-hit speculation failed (each squashes its issue
    /// shadow, like a register-cache miss).
    pub load_miss_speculations: u64,
    /// Soft-error recoveries completed (entry invalidate + re-fill,
    /// counter scrubs, and machine checks; see `machine_checks` for
    /// the escalated subset).
    pub recoveries: u64,
    /// Machine-check squash-and-replay recoveries (backing-file faults
    /// and forced watchdog recoveries).
    pub machine_checks: u64,
    /// Total cycles spent in recovery (re-fill waits plus
    /// squash-to-first-retirement replay latencies).
    pub recovery_cycles: u64,
    /// Distribution of individual recovery latencies in cycles.
    pub recovery_latency: Histogram,
    /// Recoveries per hardware thread (sums to `recoveries`).
    pub thread_recoveries: Vec<u64>,
    /// Machine checks per hardware thread (sums to `machine_checks`).
    pub thread_machine_checks: Vec<u64>,
    /// Dynamic-repartitioning epoch boundaries completed
    /// ([`ubrc_core::CachePartition::DynamicCap`] only; 0 otherwise).
    pub epochs: u64,
    /// Per-thread occupancy quotas in force at the end of the run
    /// (`DynamicCap` only).
    pub final_thread_caps: Option<Vec<usize>>,
    /// Per-epoch quota and hit-rate timeline (`DynamicCap` only; empty
    /// otherwise).
    pub epoch_timeline: Vec<EpochRecord>,
    /// Register-cache statistics (cached configurations only).
    pub regcache: Option<RegCacheStats>,
    /// Backing-file statistics (cached configurations only).
    pub backing: Option<BackingStats>,
    /// Two-level file statistics (two-level configuration only).
    pub twolevel: Option<TwoLevelStats>,
    /// Degree-of-use predictor statistics.
    pub douse: DouseStats,
    /// Memory hierarchy statistics.
    pub memsys: MemSysStats,
    /// Register lifetime distributions (when collection was enabled).
    pub lifetimes: Option<LifetimeStats>,
    /// Pipeline trace of the first N instructions (when enabled).
    pub timeline: Option<crate::trace::Timeline>,
    /// Per-stage wall-time attribution (when
    /// [`crate::SimConfig::profile`] was enabled).
    pub profile: Option<StageProfile>,
}

impl SimResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of source operands supplied by the bypass network
    /// (the paper reports 57% for its machine).
    pub fn bypass_fraction(&self) -> Option<f64> {
        let total = self.operands_bypassed + self.operands_from_storage;
        if total == 0 {
            None
        } else {
            Some(self.operands_bypassed as f64 / total as f64)
        }
    }

    /// Register-cache misses per source operand — the Figure 8 metric
    /// ("miss rates are per operand, not instruction"): bypassed
    /// operands count in the denominator.
    pub fn miss_rate_per_operand(&self) -> Option<f64> {
        let total = self.operands_bypassed + self.operands_from_storage;
        let c = self.regcache.as_ref()?;
        if total == 0 {
            None
        } else {
            Some(c.read_misses as f64 / total as f64)
        }
    }

    /// Conditional branch misprediction rate.
    pub fn branch_mispredict_rate(&self) -> Option<f64> {
        if self.cond_branches == 0 {
            None
        } else {
            Some(self.branch_mispredicts as f64 / self.cond_branches as f64)
        }
    }

    /// Register-cache read bandwidth in accesses per cycle (Figure 9).
    pub fn cache_read_bw(&self) -> Option<f64> {
        self.regcache
            .as_ref()
            .map(|c| c.reads as f64 / self.cycles as f64)
    }

    /// Register-cache write bandwidth (initial writes + fills) per
    /// cycle (Figure 9).
    pub fn cache_write_bw(&self) -> Option<f64> {
        self.regcache
            .as_ref()
            .map(|c| (c.writes_inserted + c.fills) as f64 / self.cycles as f64)
    }

    /// Backing-file read bandwidth per cycle (Figure 9).
    pub fn file_read_bw(&self) -> Option<f64> {
        self.backing.map(|b| b.reads as f64 / self.cycles as f64)
    }

    /// Backing-file write bandwidth per cycle (Figure 9).
    pub fn file_write_bw(&self) -> Option<f64> {
        self.backing.map(|b| b.writes as f64 / self.cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_phases_saturate() {
        let mut c = LifetimeCollector::new();
        c.record_value(10, 15, 20, 30);
        let s = c.finalize(40);
        assert_eq!(s.empty.median(), Some(5));
        assert_eq!(s.live.median(), Some(5));
        assert_eq!(s.dead.median(), Some(10));
    }

    #[test]
    fn concurrency_sweep_counts_overlap() {
        let mut c = LifetimeCollector::new();
        // Two values live during [10,20) and [15,25).
        c.record_value(10, 10, 20, 20);
        c.record_value(15, 15, 25, 25);
        let s = c.finalize(30);
        // Cycles with 2 live: [15,20) = 5 cycles.
        let h = &s.live_concurrency;
        assert_eq!(h.count(), 30);
        let two = h.iter().find(|&(v, _)| v == 2).map(|(_, n)| n);
        assert_eq!(two, Some(5));
        // Cycles with 0 live: [0,10) and [25,30) = 15.
        let zero = h.iter().find(|&(v, _)| v == 0).map(|(_, n)| n);
        assert_eq!(zero, Some(15));
    }

    #[test]
    fn epoch_record_hit_rate_needs_accesses() {
        let r = EpochRecord {
            cycle: 64,
            caps: vec![3, 5],
            ways: Vec::new(),
            hits: vec![3, 0],
            misses: vec![1, 0],
        };
        assert_eq!(r.hit_rate(0), Some(0.75));
        assert_eq!(r.hit_rate(1), None);
    }

    #[test]
    fn ipc_and_rates() {
        let r = SimResult {
            cycles: 100,
            retired: 250,
            thread_retired: vec![250],
            cond_branches: 10,
            branch_mispredicts: 1,
            indirect_branches: 0,
            indirect_mispredicts: 0,
            replayed: 0,
            miss_events: 0,
            dispatch_stall_pregs: 0,
            operands_bypassed: 30,
            operands_from_storage: 10,
            store_forward_stalls: 0,
            wrong_path_squashed: 0,
            load_miss_speculations: 0,
            recoveries: 0,
            machine_checks: 0,
            recovery_cycles: 0,
            recovery_latency: Histogram::new(),
            thread_recoveries: vec![],
            thread_machine_checks: vec![],
            epochs: 0,
            final_thread_caps: None,
            epoch_timeline: Vec::new(),
            regcache: None,
            backing: None,
            twolevel: None,
            douse: DouseStats::default(),
            memsys: MemSysStats::default(),
            lifetimes: None,
            timeline: None,
            profile: None,
        };
        assert_eq!(r.ipc(), 2.5);
        assert_eq!(r.branch_mispredict_rate(), Some(0.1));
        assert_eq!(r.cache_read_bw(), None);
        assert_eq!(r.bypass_fraction(), Some(0.75));
        assert_eq!(r.miss_rate_per_operand(), None);
    }
}
