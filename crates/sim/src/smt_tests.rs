//! SMT-specific tests: per-thread squash isolation, freelist-partition
//! exhaustion without cross-thread stealing, and ICOUNT fetch-chooser
//! determinism. These need `pub(crate)` access to pipeline internals,
//! so they live inside the crate rather than under `tests/`.

use crate::check::CheckConfig;
use crate::config::SimConfig;
use crate::Simulator;
use ubrc_isa::Program;
use ubrc_workloads::{workload_by_name, Scale};

fn program(name: &str) -> Program {
    workload_by_name(name, Scale::Tiny)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles")
}

/// Squashing thread 0's wrong path must not disturb thread 1's front
/// end: its rename map, freelist, ROB contents, sequence counter, and
/// fetch latch are all byte-identical across the squash, and every
/// register thread 0 freed lands back in thread 0's own partition.
#[test]
fn squash_on_one_thread_leaves_the_other_untouched() {
    let mut sim = Simulator::new_smt(
        vec![program("bfs"), program("crc")],
        SimConfig::paper_default(),
    );
    while sim.core.now < 200_000 {
        let t0 = &sim.core.threads[0];
        if t0.wrong_path && t0.wp_map_saved && t0.wp_ras_saved && sim.core.threads[1].seq > 0 {
            break;
        }
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
    }
    let branch_seq = sim.core.threads[0]
        .wp_resolve_seq
        .expect("bfs must go wrong-path within the budget");

    let t1 = &sim.core.threads[1];
    let snap_map = t1.map.clone();
    let snap_freelist = t1.freelist.clone();
    let snap_rob: Vec<u64> = t1.rob.iter().map(|i| i.seq).collect();
    let snap_latch = t1.fetch_latch.queue.len();
    let snap_seq = t1.seq;

    let now = sim.core.now;
    sim.core.squash_wrong_path(0, branch_seq, now);

    let t1 = &sim.core.threads[1];
    assert_eq!(t1.map, snap_map, "thread 1 map changed by thread 0 squash");
    assert_eq!(t1.freelist, snap_freelist, "thread 1 freelist changed");
    let rob_after: Vec<u64> = t1.rob.iter().map(|i| i.seq).collect();
    assert_eq!(rob_after, snap_rob, "thread 1 ROB changed");
    assert_eq!(t1.fetch_latch.queue.len(), snap_latch);
    assert_eq!(t1.seq, snap_seq);

    let t0 = &sim.core.threads[0];
    assert!(!t0.wrong_path);
    assert!(t0.wp_resolve_seq.is_none());
    assert!(t0.rob.iter().all(|i| i.seq <= branch_seq));
    assert!(
        t0.freelist
            .iter()
            .all(|&p| (t0.preg_lo..t0.preg_hi).contains(&p)),
        "thread 0 freed a register outside its partition"
    );
}

/// With a deliberately tight register file (8 rename registers per
/// thread) each thread's freelist runs dry constantly. Exhaustion must
/// stall that thread's dispatch — never steal from the other
/// partition — and both programs still retire exactly as many
/// instructions as they do running alone.
#[test]
fn freelist_exhaustion_stalls_without_stealing() {
    let solo = |name: &str| {
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 72;
        Simulator::new(program(name), cfg).run().retired
    };
    let expect = [solo("bfs"), solo("hash")];

    let mut cfg = SimConfig::paper_default();
    cfg.phys_regs = 144; // two partitions of 72: 64 arch + 8 rename regs
    let mut sim = Simulator::new_smt(vec![program("bfs"), program("hash")], cfg);
    while !sim.core.halted && sim.core.now < 2_000_000 {
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
        for t in &sim.core.threads {
            let own = t.preg_lo..t.preg_hi;
            assert!(
                t.map.iter().all(|p| own.contains(p)),
                "map entry outside the thread's partition"
            );
            assert!(
                t.freelist.iter().all(|p| own.contains(p)),
                "freelist entry outside the thread's partition"
            );
        }
    }
    assert!(sim.core.halted, "both threads must run to completion");
    assert!(
        sim.core.dispatch_stall_pregs > 0,
        "a 8-rename-reg partition must hit freelist exhaustion"
    );
    let retired: Vec<u64> = sim.core.threads.iter().map(|t| t.retired).collect();
    assert_eq!(
        retired,
        expect.to_vec(),
        "SMT co-scheduling changed a thread's committed instruction count"
    );
}

/// The ICOUNT fetch chooser is a pure function of architectural and
/// pipeline state — no seed, no host randomness — so two identical
/// 2-thread runs replay cycle-for-cycle.
#[test]
fn icount_scheduling_is_deterministic() {
    let run = || {
        Simulator::new_smt(
            vec![program("listchase"), program("strsearch")],
            SimConfig::paper_default(),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.replayed, b.replayed);
    assert_eq!(a.miss_events, b.miss_events);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    assert_eq!(a.wrong_path_squashed, b.wrong_path_squashed);
    assert_eq!(a.operands_bypassed, b.operands_bypassed);
    assert_eq!(a.thread_retired.len(), 2);
    assert!(a.thread_retired.iter().all(|&r| r > 0));
}

/// A fully-checked 2-thread run — per-thread retirement oracles plus
/// the invariant checker's partition-containment and per-thread
/// lockstep validation — completes cleanly and is observation-only
/// (same timing as the unchecked run).
#[test]
fn checked_smt_run_is_clean_and_observation_only() {
    let plain = Simulator::new_smt(
        vec![program("qsort"), program("rle")],
        SimConfig::paper_default(),
    )
    .run();
    let mut cfg = SimConfig::paper_default();
    cfg.check = CheckConfig::full();
    let checked = Simulator::new_smt(vec![program("qsort"), program("rle")], cfg)
        .run_checked()
        .expect("checked SMT run is clean");
    assert_eq!(plain.cycles, checked.cycles);
    assert_eq!(plain.retired, checked.retired);
    assert_eq!(plain.thread_retired, checked.thread_retired);
}
