//! SMT-specific tests: per-thread squash isolation, freelist-partition
//! exhaustion without cross-thread stealing, ICOUNT fetch-chooser
//! determinism, typed construction-path errors, and 4-thread scaling
//! across the cache-partition and fetch-policy matrix. These need
//! `pub(crate)` access to pipeline internals, so they live inside the
//! crate rather than under `tests/`.

use crate::check::{CheckConfig, ConfigError};
use crate::config::{FetchPolicy, FreelistPolicy, RecoveryPolicy, RegStorage, SimConfig};
use crate::Simulator;
use ubrc_core::{CachePartition, IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc_isa::Program;
use ubrc_workloads::{workload_by_name, Scale};

fn program(name: &str) -> Program {
    workload_by_name(name, Scale::Tiny)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles")
}

fn programs(names: &[&str]) -> Vec<Program> {
    names.iter().map(|n| program(n)).collect()
}

fn cached(cache: RegCacheConfig) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index: IndexPolicy::FilteredRoundRobin,
        backing_read: 2,
        backing_write: 2,
    })
}

/// Squashing thread 0's wrong path must not disturb thread 1's front
/// end: its rename map, freelist, ROB contents, sequence counter, and
/// fetch latch are all byte-identical across the squash, and every
/// register thread 0 freed lands back in thread 0's own partition.
#[test]
fn squash_on_one_thread_leaves_the_other_untouched() {
    let mut sim = Simulator::new_smt(
        vec![program("bfs"), program("crc")],
        SimConfig::paper_default(),
    );
    while sim.core.now < 200_000 {
        let t0 = &sim.core.threads[0];
        if t0.wrong_path && t0.wp_map_saved && t0.wp_ras_saved && sim.core.threads[1].seq > 0 {
            break;
        }
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
    }
    let branch_seq = sim.core.threads[0]
        .wp_resolve_seq
        .expect("bfs must go wrong-path within the budget");

    let t1 = &sim.core.threads[1];
    let snap_map = t1.map.clone();
    let snap_freelist = t1.freelist.clone();
    let snap_rob: Vec<u64> = t1.rob.iter().map(|i| i.seq).collect();
    let snap_latch = t1.fetch_latch.queue.len();
    let snap_seq = t1.seq;

    let now = sim.core.now;
    sim.core.squash_wrong_path(0, branch_seq, now);

    let t1 = &sim.core.threads[1];
    assert_eq!(t1.map, snap_map, "thread 1 map changed by thread 0 squash");
    assert_eq!(t1.freelist, snap_freelist, "thread 1 freelist changed");
    let rob_after: Vec<u64> = t1.rob.iter().map(|i| i.seq).collect();
    assert_eq!(rob_after, snap_rob, "thread 1 ROB changed");
    assert_eq!(t1.fetch_latch.queue.len(), snap_latch);
    assert_eq!(t1.seq, snap_seq);

    let t0 = &sim.core.threads[0];
    assert!(!t0.wrong_path);
    assert!(t0.wp_resolve_seq.is_none());
    assert!(t0.rob.iter().all(|i| i.seq <= branch_seq));
    assert!(
        t0.freelist
            .iter()
            .all(|&p| (t0.preg_lo..t0.preg_hi).contains(&p)),
        "thread 0 freed a register outside its partition"
    );
}

/// With a deliberately tight register file (8 rename registers per
/// thread) each thread's freelist runs dry constantly. Exhaustion must
/// stall that thread's dispatch — never steal from the other
/// partition — and both programs still retire exactly as many
/// instructions as they do running alone.
#[test]
fn freelist_exhaustion_stalls_without_stealing() {
    let solo = |name: &str| {
        let mut cfg = SimConfig::paper_default();
        cfg.phys_regs = 72;
        Simulator::new(program(name), cfg).run().retired
    };
    let expect = [solo("bfs"), solo("hash")];

    let mut cfg = SimConfig::paper_default();
    cfg.phys_regs = 144; // two partitions of 72: 64 arch + 8 rename regs
    let mut sim = Simulator::new_smt(vec![program("bfs"), program("hash")], cfg);
    while !sim.core.halted && sim.core.now < 2_000_000 {
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
        for t in &sim.core.threads {
            let own = t.preg_lo..t.preg_hi;
            assert!(
                t.map.iter().all(|p| own.contains(p)),
                "map entry outside the thread's partition"
            );
            assert!(
                t.freelist.iter().all(|p| own.contains(p)),
                "freelist entry outside the thread's partition"
            );
        }
    }
    assert!(sim.core.halted, "both threads must run to completion");
    assert!(
        sim.core.dispatch_stall_pregs > 0,
        "a 8-rename-reg partition must hit freelist exhaustion"
    );
    let retired: Vec<u64> = sim.core.threads.iter().map(|t| t.retired).collect();
    assert_eq!(
        retired,
        expect.to_vec(),
        "SMT co-scheduling changed a thread's committed instruction count"
    );
}

/// The ICOUNT fetch chooser is a pure function of architectural and
/// pipeline state — no seed, no host randomness — so two identical
/// 2-thread runs replay cycle-for-cycle.
#[test]
fn icount_scheduling_is_deterministic() {
    let run = || {
        Simulator::new_smt(
            vec![program("listchase"), program("strsearch")],
            SimConfig::paper_default(),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.replayed, b.replayed);
    assert_eq!(a.miss_events, b.miss_events);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    assert_eq!(a.wrong_path_squashed, b.wrong_path_squashed);
    assert_eq!(a.operands_bypassed, b.operands_bypassed);
    assert_eq!(a.thread_retired.len(), 2);
    assert!(a.thread_retired.iter().all(|&r| r > 0));
}

/// A fully-checked 2-thread run — per-thread retirement oracles plus
/// the invariant checker's partition-containment and per-thread
/// lockstep validation — completes cleanly and is observation-only
/// (same timing as the unchecked run).
#[test]
fn checked_smt_run_is_clean_and_observation_only() {
    let plain = Simulator::new_smt(
        vec![program("qsort"), program("rle")],
        SimConfig::paper_default(),
    )
    .run();
    let mut cfg = SimConfig::paper_default();
    cfg.check = CheckConfig::full();
    let checked = Simulator::new_smt(vec![program("qsort"), program("rle")], cfg)
        .run_checked()
        .expect("checked SMT run is clean");
    assert_eq!(plain.cycles, checked.cycles);
    assert_eq!(plain.retired, checked.retired);
    assert_eq!(plain.thread_retired, checked.thread_retired);
}

// --- Typed construction-path errors -------------------------------------
//
// Every rejected `(programs, config)` combination must come back from
// `try_new_smt` as the matching `ConfigError` variant instead of a bare
// panic, and `new_smt` must panic with the same rendered message.

#[test]
fn no_programs_is_rejected() {
    let err = Simulator::try_new_smt(vec![], SimConfig::paper_default())
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::NoPrograms);
}

#[test]
fn zero_fetch_width_is_rejected() {
    let mut cfg = SimConfig::paper_default();
    cfg.fetch_width = 0;
    let err = Simulator::try_new_smt(vec![program("crc")], cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::ZeroWidth {
            field: "fetch_width"
        }
    );
}

#[test]
fn zero_issue_width_is_rejected() {
    let mut cfg = SimConfig::paper_default();
    cfg.issue_width = 0;
    let err = Simulator::try_new_smt(vec![program("crc")], cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::ZeroWidth {
            field: "issue_width"
        }
    );
}

#[test]
fn uneven_partition_is_rejected() {
    let mut cfg = SimConfig::paper_default();
    cfg.phys_regs = 513;
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::UnevenPartition {
            phys_regs: 513,
            nthreads: 2
        }
    );
}

#[test]
fn partition_smaller_than_arch_state_is_rejected() {
    let mut cfg = SimConfig::paper_default();
    cfg.phys_regs = 8;
    let err = Simulator::try_new_smt(vec![program("crc")], cfg)
        .err()
        .expect("config must be rejected");
    let narch = ubrc_isa::NUM_ARCH_REGS as usize;
    assert_eq!(
        err,
        ConfigError::PartitionTooSmall {
            partition: 8,
            arch_regs: narch
        }
    );
    // The message must be actionable: it names both numbers and the fix.
    let msg = err.to_string();
    assert!(
        msg.contains('8') && msg.contains(&narch.to_string()),
        "{msg}"
    );
    assert!(msg.contains("raise phys_regs"), "{msg}");
}

#[test]
fn two_level_storage_rejects_multiple_threads() {
    let cfg = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(96)));
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::TwoLevelSmt { nthreads: 2 });
}

#[test]
fn undersized_two_level_l1_is_rejected() {
    let narch = ubrc_isa::NUM_ARCH_REGS as usize;
    let cfg = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(narch)));
    let err = Simulator::try_new_smt(vec![program("crc")], cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::L1TooSmall {
            l1_entries: narch,
            required: narch + 1
        }
    );
    // The old bare assert said only "L1 too small"; the typed error
    // must state the actual minimum.
    assert!(err.to_string().contains(&(narch + 1).to_string()));
}

#[test]
fn way_partition_with_indivisible_ways_is_rejected() {
    let mut cache = RegCacheConfig::use_based(48, 3);
    cache.partition = CachePartition::WayPartition;
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::WayPartitionMismatch {
            ways: 3,
            nthreads: 2
        }
    );
}

#[test]
fn occupancy_cap_with_too_few_entries_is_rejected() {
    let mut cache = RegCacheConfig::use_based(1, 1);
    cache.partition = CachePartition::OccupancyCap;
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::OccupancyCapTooSmall {
            entries: 1,
            nthreads: 2
        }
    );
}

#[test]
fn shared_freelist_cap_at_or_below_arch_state_is_rejected() {
    let narch = ubrc_isa::NUM_ARCH_REGS as usize;
    let mut cfg = SimConfig::paper_default();
    cfg.freelist = FreelistPolicy::Shared { cap: narch };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::SharedFreelistCapTooSmall {
            cap: narch,
            arch_regs: narch
        }
    );
}

#[test]
fn shared_freelist_with_partitioned_cache_is_rejected() {
    let mut cache = RegCacheConfig::use_based(64, 2);
    cache.partition = CachePartition::WayPartition;
    let mut cfg = cached(cache);
    cfg.freelist = FreelistPolicy::Shared { cap: 128 };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::SharedFreelistWithPartitionedCache);
}

#[test]
#[should_panic(expected = "invalid simulator configuration")]
fn new_smt_panics_with_the_rendered_config_error() {
    let mut cfg = SimConfig::paper_default();
    cfg.phys_regs = 8;
    let _ = Simulator::new_smt(vec![program("crc")], cfg);
}

// --- 4-thread scaling ---------------------------------------------------

fn quad() -> Vec<Program> {
    programs(&["qsort", "bfs", "listchase", "strsearch"])
}

/// Runs `cfg` on the quad unchecked and fully checked; the checked run
/// must be observation-only (bit-identical headline results).
fn assert_checked_matches_unchecked(cfg: SimConfig) {
    let plain = Simulator::new_smt(quad(), cfg.clone()).run();
    let mut checked_cfg = cfg;
    checked_cfg.check = CheckConfig::full();
    let checked = Simulator::new_smt(quad(), checked_cfg)
        .run_checked()
        .expect("checked 4-thread run is clean");
    assert_eq!(plain.cycles, checked.cycles);
    assert_eq!(plain.retired, checked.retired);
    assert_eq!(plain.thread_retired, checked.thread_retired);
    assert_eq!(plain.replayed, checked.replayed);
    assert_eq!(plain.miss_events, checked.miss_events);
    assert_eq!(plain.operands_bypassed, checked.operands_bypassed);
    assert_eq!(plain.thread_retired.len(), 4);
    assert!(plain.thread_retired.iter().all(|&r| r > 0));
}

/// Four threads over a partitioned register file: every thread's map and
/// freelist stay inside its own partition for the whole run, and all
/// four programs retire to completion.
#[test]
fn four_threads_keep_partition_containment_to_completion() {
    let mut sim = Simulator::new_smt(quad(), SimConfig::paper_default());
    while !sim.core.halted && sim.core.now < 4_000_000 {
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
        if sim.core.now.is_multiple_of(1024) {
            for t in &sim.core.threads {
                let own = t.preg_lo..t.preg_hi;
                assert!(
                    t.map.iter().all(|p| own.contains(p)),
                    "map entry outside the thread's partition"
                );
                assert!(
                    t.freelist.iter().all(|p| own.contains(p)),
                    "freelist entry outside the thread's partition"
                );
            }
        }
    }
    assert!(sim.core.halted, "all four threads must run to completion");
    assert_eq!(sim.core.threads.len(), 4);
    assert!(sim.core.threads.iter().all(|t| t.retired > 0));
}

/// Squashing thread 0's wrong path in a 4-thread core leaves all three
/// peers byte-identical, not just the one neighbour the 2-thread test
/// covers.
#[test]
fn four_thread_squash_leaves_all_peers_untouched() {
    let mut sim = Simulator::new_smt(
        programs(&["bfs", "crc", "hash", "rle"]),
        SimConfig::paper_default(),
    );
    while sim.core.now < 400_000 {
        let t0 = &sim.core.threads[0];
        if t0.wrong_path
            && t0.wp_map_saved
            && t0.wp_ras_saved
            && sim.core.threads[1..].iter().all(|t| t.seq > 0)
        {
            break;
        }
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
    }
    let branch_seq = sim.core.threads[0]
        .wp_resolve_seq
        .expect("bfs must go wrong-path within the budget");

    let snaps: Vec<_> = sim.core.threads[1..]
        .iter()
        .map(|t| {
            (
                t.map.clone(),
                t.freelist.clone(),
                t.rob.iter().map(|i| i.seq).collect::<Vec<_>>(),
                t.fetch_latch.queue.len(),
                t.seq,
            )
        })
        .collect();

    let now = sim.core.now;
    sim.core.squash_wrong_path(0, branch_seq, now);

    for (tid, (map, freelist, rob, latch, seq)) in snaps.iter().enumerate() {
        let t = &sim.core.threads[tid + 1];
        assert_eq!(&t.map, map, "thread {} map changed", tid + 1);
        assert_eq!(&t.freelist, freelist, "thread {} freelist changed", tid + 1);
        let rob_after: Vec<u64> = t.rob.iter().map(|i| i.seq).collect();
        assert_eq!(&rob_after, rob, "thread {} ROB changed", tid + 1);
        assert_eq!(t.fetch_latch.queue.len(), *latch);
        assert_eq!(t.seq, *seq);
    }
    let t0 = &sim.core.threads[0];
    assert!(!t0.wrong_path);
    assert!(t0.rob.iter().all(|i| i.seq <= branch_seq));
}

/// 4-thread way partitioning: checked ≡ unchecked, and the checker's
/// way-containment cross-check stays silent for the whole run.
#[test]
fn way_partitioned_quad_is_checked_clean_and_observation_only() {
    let mut cache = RegCacheConfig::use_based(64, 4);
    cache.partition = CachePartition::WayPartition;
    assert_checked_matches_unchecked(cached(cache));
}

/// 4-thread occupancy capping: checked ≡ unchecked under the
/// per-thread occupancy cross-check.
#[test]
fn occupancy_capped_quad_is_checked_clean_and_observation_only() {
    let mut cache = RegCacheConfig::use_based(64, 2);
    cache.partition = CachePartition::OccupancyCap;
    assert_checked_matches_unchecked(cached(cache));
}

/// Round-robin fetch across 4 threads: checked ≡ unchecked.
#[test]
fn round_robin_quad_is_checked_clean_and_observation_only() {
    let mut cfg = SimConfig::paper_default();
    cfg.fetch_policy = FetchPolicy::RoundRobin;
    assert_checked_matches_unchecked(cfg);
}

/// ICOUNT.2.8 (two fetch slots per cycle) across 4 threads:
/// checked ≡ unchecked.
#[test]
fn icount28_quad_is_checked_clean_and_observation_only() {
    let mut cfg = SimConfig::paper_default();
    cfg.fetch_policy = FetchPolicy::Icount28;
    assert_checked_matches_unchecked(cfg);
}

/// A shared rename pool with per-thread caps: checked ≡ unchecked under
/// the shared-pool accounting invariants, and the cap binds at least
/// once (the configuration leaves only 256 pool registers for 4
/// threads).
#[test]
fn shared_freelist_quad_is_checked_clean_and_observation_only() {
    let mut cfg = SimConfig::paper_default();
    cfg.freelist = FreelistPolicy::Shared { cap: 96 };
    assert_checked_matches_unchecked(cfg);
}

/// Under a shared pool, the per-thread live-register count never
/// exceeds the configured cap at any cycle.
#[test]
fn shared_freelist_cap_binds_and_is_never_exceeded() {
    let mut cfg = SimConfig::paper_default();
    // Tight cap: 64 arch + 8 rename registers per thread.
    cfg.freelist = FreelistPolicy::Shared { cap: 72 };
    let mut sim = Simulator::new_smt(programs(&["bfs", "hash"]), cfg);
    let mut capped_stalls = false;
    while !sim.core.halted && sim.core.now < 4_000_000 {
        sim.core.cycle();
        assert!(sim.core.error.is_none(), "clean run expected");
        let pool = sim.core.shared_pool.as_ref().expect("shared mode");
        for (tid, &live) in pool.live.iter().enumerate() {
            assert!(live <= pool.cap, "thread {tid} exceeded the live cap");
        }
        if sim.core.dispatch_stall_pregs > 0 {
            capped_stalls = true;
        }
    }
    assert!(sim.core.halted, "both threads must run to completion");
    assert!(capped_stalls, "a 8-rename-register cap must stall dispatch");
}

// --- Dynamic cache repartitioning ---------------------------------------

fn dyncap_cache() -> RegCacheConfig {
    let mut cache = RegCacheConfig::use_based(64, 4);
    cache.partition = CachePartition::DynamicCap {
        epoch_cycles: 2048,
        min_cap: 4,
    };
    cache
}

/// 4-thread dynamic capping: checked ≡ unchecked under the per-cycle
/// dynamic-cap containment and cap-sum-conservation cross-checks.
#[test]
fn dynamic_capped_quad_is_checked_clean_and_observation_only() {
    assert_checked_matches_unchecked(cached(dyncap_cache()));
}

/// A dynamically-capped quad run actually exercises the feedback loop:
/// epoch boundaries fire, every recorded repartition conserves the
/// total entry count, and the timeline's boundary cycles land exactly
/// on epoch multiples.
#[test]
fn dynamic_cap_epochs_fire_and_conserve_the_cache() {
    let result = Simulator::new_smt(quad(), cached(dyncap_cache())).run();
    assert!(
        result.epochs > 0,
        "the quad must outlive one 2048-cycle epoch"
    );
    assert_eq!(result.epoch_timeline.len() as u64, result.epochs);
    let caps = result
        .final_thread_caps
        .as_ref()
        .expect("DynamicCap reports final quotas");
    assert_eq!(caps.len(), 4);
    assert_eq!(
        caps.iter().sum::<usize>(),
        64,
        "quotas must cover the cache"
    );
    for rec in &result.epoch_timeline {
        assert_eq!(rec.cycle % 2048, 0, "boundary off the epoch grid");
        assert_eq!(rec.caps.iter().sum::<usize>(), 64);
        assert!(rec.caps.iter().all(|&c| c >= 1), "a thread lost its quota");
        assert_eq!(rec.hits.len(), 4);
        assert_eq!(rec.misses.len(), 4);
    }
}

/// The epoch controller is driven purely by the cycle counter and
/// deterministic utility counters — no RNG, no host state — so two
/// identical dynamically-capped runs replay bit-identically, including
/// the full quota timeline.
#[test]
fn dynamic_cap_runs_are_deterministic() {
    let run = || Simulator::new_smt(quad(), cached(dyncap_cache())).run();
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.miss_events, b.miss_events);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.final_thread_caps, b.final_thread_caps);
    assert_eq!(a.epoch_timeline, b.epoch_timeline);
    assert!(
        a.epochs > 0,
        "determinism must be shown on a live feedback loop"
    );
}

/// A machine-check squash mid-epoch frees a batch of the victim
/// thread's registers behind the epoch controller's back. The utility
/// monitors and occupancy books must absorb that (squash frees route
/// through the same `free` path the monitors watch), so a faulted run
/// stays checker-clean through every squash and every later epoch
/// boundary. Periodic backing-word faults on a tiny dynamically-capped
/// cache guarantee machine checks land between boundaries.
#[test]
fn machine_check_squashes_mid_epoch_keep_dynamic_caps_consistent() {
    let mut cache = RegCacheConfig::use_based(16, 2);
    cache.partition = CachePartition::DynamicCap {
        epoch_cycles: 512,
        min_cap: 2,
    };
    cache.protection = ubrc_core::ProtectionConfig::full();
    let mut cfg = cached(cache);
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.check = CheckConfig::full();
    cfg.fault_plan = Some(crate::inject::FaultPlan::periodic(
        29,
        40,
        crate::inject::FaultKind::FlipBackingWord,
    ));
    let r = crate::simulate_smt_checked(quad(), cfg)
        .expect("faulted dynamically-capped run recovers cleanly");
    assert!(r.machine_checks > 0, "no backing fault reached a miss read");
    assert!(
        r.epochs > 0,
        "squashes must interleave with epoch boundaries"
    );
    let caps = r
        .final_thread_caps
        .expect("DynamicCap reports final quotas");
    assert_eq!(caps.iter().sum::<usize>(), 16, "squashes leaked quota");
    assert!(r.thread_retired.iter().all(|&t| t > 0));
}

#[test]
fn dynamic_cap_zero_epoch_is_rejected() {
    let mut cache = RegCacheConfig::use_based(64, 4);
    cache.partition = CachePartition::DynamicCap {
        epoch_cycles: 0,
        min_cap: 1,
    };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::DynamicCapZeroEpoch);
}

#[test]
fn dynamic_cap_with_too_few_entries_is_rejected() {
    let mut cache = RegCacheConfig::use_based(1, 1);
    cache.partition = CachePartition::DynamicCap {
        epoch_cycles: 2048,
        min_cap: 1,
    };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::DynamicCapTooSmall {
            entries: 1,
            nthreads: 2
        }
    );
}

#[test]
fn dynamic_cap_min_cap_too_large_is_rejected() {
    let mut cache = RegCacheConfig::use_based(64, 4);
    cache.partition = CachePartition::DynamicCap {
        epoch_cycles: 2048,
        min_cap: 40,
    };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::DynamicCapMinCapTooLarge {
            min_cap: 40,
            nthreads: 2,
            entries: 64
        }
    );
    // The message names all three numbers.
    let msg = err.to_string();
    assert!(msg.contains("40") && msg.contains("64"), "{msg}");
}

/// Dynamic capping assumes static register ownership, exactly like the
/// other partitioned-cache modes: a shared rename pool is rejected by
/// the existing partition/freelist compatibility check.
#[test]
fn dynamic_cap_with_shared_freelist_is_rejected() {
    let mut cfg = cached(dyncap_cache());
    cfg.freelist = FreelistPolicy::Shared { cap: 128 };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::SharedFreelistWithPartitionedCache);
}

// --- Dynamic way reassignment -------------------------------------------

fn dynway_cache() -> RegCacheConfig {
    let mut cache = RegCacheConfig::use_based(64, 8);
    cache.partition = CachePartition::DynamicWay { epoch_cycles: 2048 };
    cache
}

/// 4-thread dynamic way reassignment: checked ≡ unchecked under the
/// per-cycle way-containment (against the epoch-varying ownership) and
/// way-sum-conservation cross-checks.
#[test]
fn dynamic_way_quad_is_checked_clean_and_observation_only() {
    assert_checked_matches_unchecked(cached(dynway_cache()));
}

/// A dynamically-way-partitioned quad run exercises the feedback loop:
/// epoch boundaries fire, every recorded way map conserves the
/// associativity with every thread keeping at least one way, and the
/// recorded entry quotas are exactly the way counts in entry
/// equivalents.
#[test]
fn dynamic_way_epochs_fire_and_conserve_the_ways() {
    let result = Simulator::new_smt(quad(), cached(dynway_cache())).run();
    assert!(
        result.epochs > 0,
        "the quad must outlive one 2048-cycle epoch"
    );
    assert_eq!(result.epoch_timeline.len() as u64, result.epochs);
    let sets = 64 / 8;
    for rec in &result.epoch_timeline {
        assert_eq!(rec.cycle % 2048, 0, "boundary off the epoch grid");
        assert_eq!(rec.ways.iter().sum::<usize>(), 8, "ways not conserved");
        assert!(rec.ways.iter().all(|&c| c >= 1), "a thread lost its ways");
        let caps: Vec<usize> = rec.ways.iter().map(|&c| c * sets).collect();
        assert_eq!(rec.caps, caps, "caps must mirror the way map");
        assert_eq!(rec.hits.len(), 4);
        assert_eq!(rec.misses.len(), 4);
    }
}

/// Way reassignment is driven purely by the cycle counter and the
/// deterministic utility monitors, so two identical runs replay
/// bit-identically, including the full way-map timeline.
#[test]
fn dynamic_way_runs_are_deterministic() {
    let run = || Simulator::new_smt(quad(), cached(dynway_cache())).run();
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.miss_events, b.miss_events);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.epoch_timeline, b.epoch_timeline);
    assert!(
        a.epochs > 0,
        "determinism must be shown on a live feedback loop"
    );
}

/// Adaptive epoch pacing (lengthen on agreement, shorten on change) is
/// a pure function of the repartition history, so it replays
/// bit-identically too — and its variable-length epochs actually leave
/// the fixed grid.
#[test]
fn adaptive_epoch_runs_are_deterministic() {
    let adaptive = || {
        let mut cache = RegCacheConfig::use_based(64, 8);
        cache.partition = CachePartition::DynamicWay { epoch_cycles: 512 };
        cache.epoch_adapt = Some(ubrc_core::EpochAdapt {
            min_cycles: 128,
            max_cycles: 4096,
            band: 2,
        });
        cached(cache)
    };
    let run = || Simulator::new_smt(quad(), adaptive()).run();
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.epoch_timeline, b.epoch_timeline);
    assert!(a.epochs > 0, "adaptive epochs must fire");
    // Strictly increasing boundary cycles, each a valid multiple of
    // nothing in particular — the pacer owns the schedule.
    for w in a.epoch_timeline.windows(2) {
        assert!(w[0].cycle < w[1].cycle, "boundaries must advance");
    }
}

/// A machine-check squash mid-epoch frees a batch of the victim
/// thread's registers behind the way controller's back, and recovery
/// replays through freshly reassigned ways. The run must stay
/// checker-clean (way containment, way-sum conservation) through every
/// squash and boundary.
#[test]
fn machine_check_squashes_mid_way_reassignment_stay_consistent() {
    let mut cache = RegCacheConfig::use_based(16, 4);
    cache.partition = CachePartition::DynamicWay { epoch_cycles: 512 };
    cache.protection = ubrc_core::ProtectionConfig::full();
    let mut cfg = cached(cache);
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.check = CheckConfig::full();
    cfg.fault_plan = Some(crate::inject::FaultPlan::periodic(
        29,
        40,
        crate::inject::FaultKind::FlipBackingWord,
    ));
    let r = crate::simulate_smt_checked(quad(), cfg)
        .expect("faulted dynamically-way-partitioned run recovers cleanly");
    assert!(r.machine_checks > 0, "no backing fault reached a miss read");
    assert!(
        r.epochs > 0,
        "squashes must interleave with way reassignment"
    );
    for rec in &r.epoch_timeline {
        assert_eq!(rec.ways.iter().sum::<usize>(), 4, "squashes leaked ways");
    }
    assert!(r.thread_retired.iter().all(|&t| t > 0));
}

/// The feedback-consuming insertion policy (threshold tightened for
/// over-quota threads, relaxed when under) stays deterministic on top
/// of dynamic capping.
#[test]
fn adaptive_use_threshold_runs_are_deterministic() {
    let adaptive = || {
        let mut cache = dyncap_cache();
        cache.insertion = ubrc_core::InsertionPolicy::AdaptiveUseThreshold;
        cached(cache)
    };
    let run = || Simulator::new_smt(quad(), adaptive()).run();
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.thread_retired, b.thread_retired);
    assert_eq!(a.epoch_timeline, b.epoch_timeline);
    assert!(a.epochs > 0, "the feedback loop must actually run");
}

#[test]
fn dynamic_way_zero_epoch_is_rejected() {
    let mut cache = RegCacheConfig::use_based(64, 8);
    cache.partition = CachePartition::DynamicWay { epoch_cycles: 0 };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::DynamicWayZeroEpoch);
}

#[test]
fn dynamic_way_with_indivisible_ways_is_rejected() {
    let mut cache = RegCacheConfig::use_based(48, 3);
    cache.partition = CachePartition::DynamicWay { epoch_cycles: 2048 };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::DynamicWayMismatch {
            ways: 3,
            nthreads: 2
        }
    );
}

#[test]
fn dynamic_way_with_shared_freelist_is_rejected() {
    let mut cfg = cached(dynway_cache());
    cfg.freelist = FreelistPolicy::Shared { cap: 128 };
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cfg)
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::SharedFreelistWithPartitionedCache);
}

#[test]
fn epoch_adapt_with_empty_range_is_rejected() {
    let mut cache = dynway_cache();
    cache.epoch_adapt = Some(ubrc_core::EpochAdapt {
        min_cycles: 1024,
        max_cycles: 64,
        band: 2,
    });
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(
        err,
        ConfigError::EpochAdaptInvalidRange {
            min_cycles: 1024,
            max_cycles: 64
        }
    );
}

#[test]
fn epoch_adapt_on_static_partition_is_rejected() {
    let mut cache = RegCacheConfig::use_based(64, 4);
    cache.partition = CachePartition::WayPartition;
    cache.epoch_adapt = Some(ubrc_core::EpochAdapt::default_band());
    let err = Simulator::try_new_smt(programs(&["crc", "rle"]), cached(cache))
        .err()
        .expect("config must be rejected");
    assert_eq!(err, ConfigError::EpochAdaptStaticPartition);
}

/// The fetch-policy choosers are all deterministic: identical runs
/// replay bit-identically under every policy.
#[test]
fn all_fetch_policies_are_deterministic() {
    for policy in [
        FetchPolicy::Icount,
        FetchPolicy::RoundRobin,
        FetchPolicy::Icount28,
    ] {
        let run = || {
            let mut cfg = SimConfig::paper_default();
            cfg.fetch_policy = policy;
            Simulator::new_smt(programs(&["listchase", "strsearch"]), cfg).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles, "{policy:?} replay diverged");
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.thread_retired, b.thread_retired);
        assert_eq!(a.miss_events, b.miss_events);
    }
}
