//! Cycle-level out-of-order timing simulator for the UBRC reproduction.
//!
//! Models the machine of Table 1 of Butts & Sohi (ISCA 2004) —
//! an 8-wide, deeply-pipelined out-of-order core with 512 physical
//! registers — with a pluggable register storage organization
//! ([`RegStorage`]): a multi-cycle monolithic register file, a
//! register cache over a backing file (the paper's framework, with all
//! insertion/replacement/indexing policies), or the two-level register
//! file baseline.
//!
//! # Examples
//!
//! ```
//! use ubrc_sim::{simulate_workload, SimConfig};
//! use ubrc_workloads::{workload_by_name, Scale};
//!
//! let w = workload_by_name("crc", Scale::Tiny).unwrap();
//! let result = simulate_workload(&w, SimConfig::paper_default());
//! assert!(result.ipc() > 0.1);
//! assert!(result.retired > 1000);
//! ```

#![warn(missing_docs)]

mod check;
mod config;
mod inject;
mod oracle;
mod pipeline;
#[cfg(test)]
mod smt_tests;
mod stage;
mod stats;
pub mod trace;

pub use check::{
    CheckConfig, ConfigError, DiagnosticDump, DivergenceReport, InvariantViolation, RetiredEvent,
    SimError,
};
pub use config::{
    BranchPredictorKind, FetchPolicy, FreelistPolicy, FuPools, RecoveryPolicy, RegStorage,
    SimConfig,
};
pub use inject::{FaultKind, FaultPlan, FaultPlanError, FaultSpec, PeriodicFault};
pub use pipeline::Simulator;
pub use stats::{EpochRecord, LifetimeCollector, LifetimeStats, SimResult};
pub use trace::{InstTrace, OperandPath, Timeline};

use ubrc_isa::Program;
use ubrc_workloads::Workload;

/// Simulates a program to completion under the given configuration.
///
/// # Panics
///
/// Panics if the program faults during functional execution or the
/// pipeline deadlocks (which would be a simulator bug).
pub fn simulate(program: Program, config: SimConfig) -> SimResult {
    Simulator::new(program, config).run()
}

/// Assembles and simulates one workload.
///
/// # Panics
///
/// Panics if the workload fails to assemble (a workload-generator bug)
/// or faults during execution.
pub fn simulate_workload(workload: &Workload, config: SimConfig) -> SimResult {
    let program = workload.assemble().expect("workload assembles");
    simulate(program, config)
}

/// Simulates a program to completion, returning abnormal endings —
/// oracle divergence, invariant violation, watchdog deadlock, emulator
/// fault, cancellation — as a structured [`SimError`] instead of
/// panicking.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered.
pub fn simulate_checked(program: Program, config: SimConfig) -> Result<SimResult, Box<SimError>> {
    Simulator::new(program, config).run_checked()
}

/// Co-schedules one program per hardware thread on a single SMT core
/// and simulates until every thread halts. The front end is replicated
/// per thread and the physical register file partitioned evenly; the
/// issue window, execute units, register storage, and memory hierarchy
/// are shared (see `DESIGN.md`, "SMT front end").
///
/// # Panics
///
/// Panics like [`simulate`], or if the configuration cannot be
/// partitioned (see [`Simulator::new_smt`]).
pub fn simulate_smt(programs: Vec<Program>, config: SimConfig) -> SimResult {
    Simulator::new_smt(programs, config).run()
}

/// [`simulate_smt`] with structured error reporting, as in
/// [`simulate_checked`].
///
/// # Errors
///
/// Returns the first [`SimError`] encountered.
pub fn simulate_smt_checked(
    programs: Vec<Program>,
    config: SimConfig,
) -> Result<SimResult, Box<SimError>> {
    Simulator::new_smt(programs, config).run_checked()
}
