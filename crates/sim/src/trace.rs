//! Per-instruction pipeline traces and Figure-3-style timeline
//! rendering.
//!
//! When [`crate::SimConfig::trace_instructions`] is non-zero, the
//! simulator records the stage timing of the first N instructions. The
//! [`Timeline::render`] output mirrors Figure 3 of the paper: one row
//! per instruction, one column per cycle, with markers for fetch,
//! dispatch, issue, execute, and retire.
//!
//! ```text
//! seq pc       instruction        2         3
//!                                 0123456789012345
//!   7 0x101c   ld r1, 8(r1)       F..........DI-XW
//! ```

use std::fmt::Write as _;

/// How one source operand was obtained (§2.2's communication paths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandPath {
    /// Caught on the bypass network at the given stage (0-based).
    Bypass(u8),
    /// Read from the register cache (hit).
    CacheHit,
    /// Missed in the register cache; fetched from the backing file.
    CacheMiss,
    /// Read from a monolithic or two-level register file.
    Storage,
}

/// Stage timing of one traced instruction.
#[derive(Clone, Debug)]
pub struct InstTrace {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// Disassembly.
    pub asm: String,
    /// Cycle fetched.
    pub fetch: u64,
    /// Cycle dispatched into the window (after rename).
    pub dispatch: u64,
    /// Cycle issued (the final, successful issue).
    pub issue: u64,
    /// First execution cycle.
    pub exec_start: u64,
    /// Last execution cycle.
    pub exec_done: u64,
    /// Cycle retired.
    pub retire: u64,
    /// Paths by which the source operands arrived.
    pub operands: [Option<OperandPath>; 2],
    /// Times this instruction was squashed by miss replay.
    pub replays: u32,
    /// The instruction was fetched down a mispredicted path and was
    /// squashed at branch resolution (it never retires).
    pub wrong_path: bool,
}

/// An ordered collection of instruction traces.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Traces in dynamic order.
    pub insts: Vec<InstTrace>,
}

impl Timeline {
    /// Renders the timeline as a text pipeline diagram.
    ///
    /// Markers: `F` fetch, `D` dispatch, `I` issue, `X` execute,
    /// `W` writeback (last execute cycle), `R` retire, `.` in flight,
    /// `r` a replay (squashed issue). Rows are clipped to `max_width`
    /// columns starting at the earliest fetch cycle.
    pub fn render(&self, max_width: usize) -> String {
        let Some(first) = self.insts.first() else {
            return String::from("(empty timeline)\n");
        };
        let base = first.fetch;
        let mut out = String::new();
        let label_w = 38;
        let _ = writeln!(
            out,
            "{:<label_w$} cycle {base} +",
            "seq pc         instruction",
        );
        for t in &self.insts {
            let mut row = vec![b' '; max_width];
            let mark = |cycle: u64, ch: u8, row: &mut Vec<u8>| {
                let col = cycle.saturating_sub(base) as usize;
                if col < max_width {
                    row[col] = ch;
                }
            };
            // In-flight dots from fetch to retire first, then stage
            // letters on top.
            let end = t.retire.min(base + max_width as u64 - 1);
            for c in t.fetch..=end {
                mark(c, b'.', &mut row);
            }
            mark(t.fetch, b'F', &mut row);
            mark(t.dispatch, b'D', &mut row);
            mark(t.issue, b'I', &mut row);
            for c in t.exec_start..=t.exec_done.min(base + max_width as u64 - 1) {
                mark(c, b'X', &mut row);
            }
            mark(t.exec_done, b'W', &mut row);
            mark(t.retire, b'R', &mut row);
            let ops: String = t
                .operands
                .iter()
                .flatten()
                .map(|p| match p {
                    OperandPath::Bypass(0) => 'b',
                    OperandPath::Bypass(_) => 'B',
                    OperandPath::CacheHit => 'c',
                    OperandPath::CacheMiss => 'M',
                    OperandPath::Storage => 's',
                })
                .collect();
            let wp = if t.wrong_path { " WP" } else { "" };
            let label = format!("{:>3} {:#08x} {} [{}]{}", t.seq, t.pc, t.asm, ops, wp);
            let _ = writeln!(
                out,
                "{:<label_w$} {}",
                truncate(&label, label_w),
                String::from_utf8_lossy(&row).trim_end()
            );
        }
        out
    }

    /// Total miss-replay squashes across the traced instructions.
    pub fn total_replays(&self) -> u32 {
        self.insts.iter().map(|t| t.replays).sum()
    }
}

fn truncate(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        format!("{}…", &s[..w - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64, fetch: u64, issue: u64, done: u64, retire: u64) -> InstTrace {
        InstTrace {
            seq,
            pc: 0x1000 + 4 * seq,
            asm: "add r1, r1, r1".into(),
            fetch,
            dispatch: fetch + 11,
            issue,
            exec_start: issue + 2,
            exec_done: done,
            retire,
            operands: [Some(OperandPath::Bypass(0)), None],
            replays: 0,
            wrong_path: false,
        }
    }

    #[test]
    fn render_marks_all_stages() {
        let tl = Timeline {
            insts: vec![t(0, 0, 12, 15, 16)],
        };
        let s = tl.render(40);
        let row = s.lines().nth(1).unwrap();
        assert!(row.contains('F'));
        assert!(row.contains('D'));
        assert!(row.contains('I'));
        assert!(row.contains('W'));
        assert!(row.contains('R'));
        assert!(row.contains("[b]"));
    }

    #[test]
    fn render_clips_to_width() {
        let tl = Timeline {
            insts: vec![t(0, 0, 500, 503, 504)],
        };
        let s = tl.render(30);
        for line in s.lines() {
            assert!(line.len() <= 38 + 1 + 30 + 8);
        }
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::default();
        assert_eq!(tl.render(10), "(empty timeline)\n");
    }

    #[test]
    fn replays_accumulate() {
        let mut a = t(0, 0, 12, 15, 16);
        a.replays = 2;
        let tl = Timeline {
            insts: vec![a, t(1, 0, 13, 16, 17)],
        };
        assert_eq!(tl.total_replays(), 2);
    }
}
