//! Retire stage: in-order retirement from each thread's ROB head,
//! physical register reclamation into the owning thread's freelist
//! partition, degree-predictor training, and the end-of-run result
//! collection. The retire width is a shared budget, spent across
//! threads in thread-id order.

use super::{CoreState, PregInfo, PregTime, Status, Storage};
use crate::check::SimError;
use crate::stats::SimResult;
use crate::trace::Timeline;
use ubrc_core::PhysReg;
use ubrc_frontend::DouseStats;
use ubrc_isa::Inst;

impl CoreState {
    pub(crate) fn retire(&mut self, now: u64) {
        let mut budget = self.config.retire_width;
        let mut stores = 0;
        for tid in 0..self.threads.len() {
            while budget > 0 {
                let Some(head) = self.threads[tid].rob.front() else {
                    break;
                };
                if head.status != Status::Issued || head.exec_done > now {
                    break;
                }
                if head.rec.inst.is_store() {
                    if stores == self.config.max_stores_per_retire {
                        break;
                    }
                    let addr = head.rec.mem_addr.expect("store has an address");
                    if !self.memsys.store_retire(addr, now) {
                        break; // store buffer full: stall this thread
                    }
                    stores += 1;
                }
                let t = &mut self.threads[tid];
                let inst = t.rob.pop_front().expect("checked non-empty");
                t.sched.pop_front();
                t.sched_base += 1;
                debug_assert!(!inst.wrong_path, "a wrong-path instruction retired");
                budget -= 1;
                self.retired += 1;
                t.retired += 1;
                if self.config.model_store_forwarding && inst.rec.inst.is_store() {
                    // Younger loads are now ordered by the store buffer
                    // in the memory system, not the LSQ.
                    let granule = inst.rec.mem_addr.expect("store has an address") / 8;
                    if let Some(stores) = t.store_granules.get_mut(&granule) {
                        stores.retain(|&(sseq, _)| sseq != inst.seq);
                        if stores.is_empty() {
                            t.store_granules.remove(&granule);
                        }
                    }
                }
                if let Some(tr) = self.trace.get_mut(inst.age as usize) {
                    tr.retire = now;
                }
                t.last_retired_seq = inst.seq;
                self.last_progress = now;
                if let Some(oracle) = t.oracle.as_mut() {
                    if let Err(report) = oracle.check_retire(now, &inst.rec) {
                        self.error = Some(Box::new(SimError::Divergence(report)));
                        return;
                    }
                }
                if let Some(rm) = t.recover.as_mut() {
                    // The machine-check checkpoint advances in lockstep
                    // with retirement, so it always sits exactly at the
                    // thread's architectural (retired) state.
                    let _ = rm.step();
                }
                if let Some(since) = t.recovery_pending_since.take() {
                    // First retirement after a machine-check squash:
                    // the recovery episode (squash, refetch, replay
                    // back to a retirement) is complete; book its
                    // observed latency.
                    let lat = now - since;
                    self.recovery_cycles += lat;
                    self.recovery_latency.record(lat);
                }
                if inst.rec.inst == Inst::Halt {
                    t.halted = true;
                    if self.threads.iter().all(|t| t.halted) {
                        self.halted = true;
                    }
                    break;
                }
                // The set-assignment bookkeeping (minimum sums, filtered
                // round-robin high-use counts) retires with the
                // producing instruction (§4.2).
                if let Some(d) = inst.dest {
                    if let Storage::Cached { assigner, .. } = &mut self.storage {
                        let info = &self.preg_info[d as usize];
                        assigner.release(info.set, info.predicted);
                    }
                }
                if let Some(prev) = inst.prev {
                    self.free_preg(prev, now);
                }
            }
            if budget == 0 {
                break;
            }
        }
    }

    fn free_preg(&mut self, p: u16, now: u64) {
        let info = self.preg_info[p as usize];
        debug_assert!(info.active, "freeing an inactive preg");
        // A preg always returns to the partition it came from.
        let tid = self.thread_of_preg(p);
        if info.trainable {
            self.threads[tid].douse.train(
                info.producer_pc,
                info.producer_hist,
                info.consumers_renamed.min(u8::MAX as u32) as u8,
            );
        }
        match &mut self.storage {
            Storage::Cached { cache, tracker, .. } => {
                cache.free(PhysReg(p), info.set, now);
                tracker.clear(PhysReg(p));
            }
            Storage::TwoLevel { file } => file.release(PhysReg(p)),
            Storage::Monolithic { .. } => {}
        }
        if let Some(lt) = &mut self.lifetimes {
            lt.record_value(info.alloc_time, info.write_time, info.last_use, now);
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.on_clear(p);
        }
        self.preg_info[p as usize] = PregInfo::EMPTY;
        self.preg_time[p as usize] = PregTime::UNKNOWN;
        self.preg_gen[p as usize] = self.preg_gen[p as usize].wrapping_add(1);
        // In-order retirement guarantees every correct-path consumer
        // issued before the overwriting instruction retires, so any
        // waiter left here is a squashed seq — drop it.
        self.preg_waiters[p as usize].clear();
        match &mut self.shared_pool {
            Some(pool) => {
                pool.live[tid] -= 1;
                pool.free.push(p);
            }
            None => self.threads[tid].freelist.push(p),
        }
    }

    /// Collects the end-of-run results, consuming the core. Storage
    /// statistics are moved out, not copied.
    pub(crate) fn finish(self) -> SimResult {
        let now = self.now;
        let (regcache, backing, twolevel, final_thread_caps) = match self.storage {
            Storage::Cached {
                mut cache, backing, ..
            } => {
                cache.finalize(now);
                let b = *backing.stats();
                let caps = cache.dynamic_caps().map(|c| c.to_vec());
                (Some(cache.into_stats()), Some(b), None, caps)
            }
            Storage::TwoLevel { file } => (None, None, Some(*file.stats()), None),
            Storage::Monolithic { .. } => (None, None, None, None),
        };
        // Per-thread predictors train independently; the headline
        // stats are the sum over contexts.
        let douse = self.threads.iter().fold(DouseStats::default(), |acc, t| {
            let s = t.douse.stats();
            DouseStats {
                predicted: acc.predicted + s.predicted,
                correct: acc.correct + s.correct,
                unknown: acc.unknown + s.unknown,
            }
        });
        SimResult {
            cycles: now,
            retired: self.retired,
            thread_retired: self.threads.iter().map(|t| t.retired).collect(),
            cond_branches: self.cond_branches,
            branch_mispredicts: self.branch_mispredicts,
            indirect_branches: self.indirect_branches,
            indirect_mispredicts: self.indirect_mispredicts,
            replayed: self.replayed,
            miss_events: self.miss_events,
            dispatch_stall_pregs: self.dispatch_stall_pregs,
            operands_bypassed: self.operands_bypassed,
            operands_from_storage: self.operands_from_storage,
            store_forward_stalls: self.store_forward_stalls,
            wrong_path_squashed: self.wp_squashed,
            load_miss_speculations: self.load_replay_squashes,
            recoveries: self.threads.iter().map(|t| t.recoveries).sum(),
            machine_checks: self.threads.iter().map(|t| t.machine_checks).sum(),
            recovery_cycles: self.recovery_cycles,
            recovery_latency: self.recovery_latency,
            thread_recoveries: self.threads.iter().map(|t| t.recoveries).collect(),
            thread_machine_checks: self.threads.iter().map(|t| t.machine_checks).collect(),
            epochs: regcache.as_ref().map_or(0, |c| c.epochs),
            final_thread_caps,
            epoch_timeline: self.epoch_timeline,
            regcache,
            backing,
            twolevel,
            douse,
            memsys: *self.memsys.stats(),
            lifetimes: self.lifetimes.map(|lt| lt.finalize(now)),
            timeline: (!self.trace.is_empty()).then_some(Timeline { insts: self.trace }),
            profile: self.profiler.map(|p| p.finish()),
        }
    }
}
