//! Epoch stage: the feedback tick driving the dynamic partition
//! controllers ([`ubrc_core::CachePartition::DynamicCap`] and
//! [`ubrc_core::CachePartition::DynamicWay`]).
//!
//! Runs last in [`super::SCHEDULE`], after every cycle's reads and
//! writes have landed, so an epoch boundary observes a consistent
//! end-of-cycle cache state. Whenever the cache's
//! [`ubrc_core::PartitionController`] reports a boundary due — every
//! `epoch_cycles`-th cycle, or at the variable instants an
//! [`ubrc_core::EpochAdapt`] pacer schedules — it asks the register
//! cache to close the epoch: the cache snapshots its per-thread
//! hit/miss deltas, reruns the lookahead utility partitioner over the
//! shadow-tag monitors, enforces the new quotas or way map, and
//! broadcasts the resulting [`ubrc_core::EpochFeedback`] to the policy
//! hooks. This stage only decides *when to ask* — all repartitioning
//! state lives in `ubrc-core`.
//!
//! Everything is keyed off the cycle counter — no RNG, no wall clock —
//! so dynamic repartitioning is exactly as reproducible as the rest of
//! the model, and the stage is a no-op for every other partition
//! policy (the golden-snapshot contract for static configurations is
//! untouched).

use super::{CoreState, Storage};
use crate::stats::EpochRecord;

impl CoreState {
    pub(crate) fn epoch_stage(&mut self, now: u64) {
        let Storage::Cached { cache, .. } = &mut self.storage else {
            return;
        };
        if !cache.epoch_due(now) {
            return;
        }
        let fb = cache.epoch_boundary(now);
        self.epoch_timeline.push(EpochRecord {
            cycle: fb.cycle,
            caps: fb.new_caps,
            ways: fb.new_ways,
            hits: fb.hits,
            misses: fb.misses,
        });
    }
}
