//! Epoch stage: the feedback controller driving
//! [`ubrc_core::CachePartition::DynamicCap`].
//!
//! Runs last in [`super::SCHEDULE`], after every cycle's reads and
//! writes have landed, so an epoch boundary observes a consistent
//! end-of-cycle cache state. On every `epoch_cycles`-th cycle it asks
//! the register cache to close the epoch: the cache snapshots its
//! per-thread hit/miss deltas, reruns the lookahead utility
//! partitioner over the shadow-tag monitors, trims any thread left
//! over its new quota, and broadcasts the resulting
//! [`ubrc_core::EpochFeedback`] to the policy hooks. This stage only
//! decides *when* — all repartitioning state lives in `ubrc-core`.
//!
//! Everything is keyed off the cycle counter — no RNG, no wall clock —
//! so dynamic repartitioning is exactly as reproducible as the rest of
//! the model, and the stage is a no-op for every other partition
//! policy (the golden-snapshot contract for static configurations is
//! untouched).

use super::{CoreState, Storage};
use crate::stats::EpochRecord;

impl CoreState {
    pub(crate) fn epoch_stage(&mut self, now: u64) {
        let Storage::Cached { cache, .. } = &mut self.storage else {
            return;
        };
        let Some(epoch_cycles) = cache.epoch_cycles() else {
            return;
        };
        if now == 0 || !now.is_multiple_of(epoch_cycles) {
            return;
        }
        let fb = cache.epoch_boundary(now);
        self.epoch_timeline.push(EpochRecord {
            cycle: fb.cycle,
            caps: fb.new_caps,
            hits: fb.hits,
            misses: fb.misses,
        });
    }
}
