//! Execute stage: deferred-event processing.
//!
//! Execution itself is charged at issue time (the functional emulator
//! already ran ahead); what remains per cycle is draining the
//! [`EventLatch`](super::EventLatch): load-hit retimes, register-cache
//! writes, backing-file fills, and late bypass decrements. Armed
//! faults also land here, at the top of the cycle, before any event is
//! processed.

use super::{CoreState, Storage};
use crate::inject::FaultKind;
use ubrc_core::PhysReg;

impl CoreState {
    /// The fault-injection stage: a no-op unless a fault plan armed an
    /// injector.
    pub(crate) fn inject_stage(&mut self, now: u64) {
        if self.injector.is_some() {
            self.apply_faults(now);
        }
    }

    /// The execute/deferred-event stage: corrects mis-speculated load
    /// timings, then drains the due register-cache events.
    pub(crate) fn execute_stage(&mut self, now: u64) {
        self.process_retimes(now);
        self.process_cache_events(now);
    }

    /// Lands armed faults whose target state exists this cycle.
    fn apply_faults(&mut self, now: u64) {
        let Some(mut inj) = self.injector.take() else {
            return;
        };
        inj.arm(now);
        let mut i = 0;
        while i < inj.armed.len() {
            let target = inj.armed[i].target;
            let landed = match inj.armed[i].kind {
                FaultKind::FlipUsePrediction => {
                    let r = inj.next_u64() as usize;
                    if let Storage::Cached { tracker, .. } = &mut self.storage {
                        let n = self.config.phys_regs;
                        (0..n).any(|k| tracker.corrupt_counter(PhysReg(((r + k) % n) as u16)))
                    } else {
                        false
                    }
                }
                FaultKind::CorruptReplacement => {
                    let r = inj.next_u64() as usize;
                    if let Storage::Cached { cache, .. } = &mut self.storage {
                        cache.corrupt_metadata(r).is_some()
                    } else {
                        false
                    }
                }
                FaultKind::DropFill => {
                    if self.events.fills.items.is_empty() {
                        false
                    } else {
                        let idx = (inj.next_u64() as usize) % self.events.fills.items.len();
                        self.events.fills.items.swap_remove(idx);
                        self.events.fills.refresh_due();
                        true
                    }
                }
                // Recoverable: marks a resident cache entry's parity
                // bad; detected (and the entry invalidated and
                // re-filled) at the next protected read.
                FaultKind::FlipCacheData => {
                    if let Storage::Cached { cache, .. } = &mut self.storage {
                        match target {
                            Some(t) => cache.corrupt_preg_data(PhysReg(t)),
                            None => cache.corrupt_data(inj.next_u64() as usize).is_some(),
                        }
                    } else {
                        false
                    }
                }
                // Recoverable: flips a live use counter and marks its
                // parity bad; scrubbed at the next protected counter
                // read. The checker suspends its mirror for the preg
                // until the scrub, since the corruption is *supposed*
                // to go unnoticed until then.
                FaultKind::FlipUseCounter => {
                    let hit = if let Storage::Cached { tracker, .. } = &mut self.storage {
                        let n = self.config.phys_regs;
                        match target {
                            Some(t) => tracker.corrupt_counter_parity(PhysReg(t)).then_some(t),
                            None => {
                                let r = inj.next_u64() as usize;
                                (0..n)
                                    .map(|k| ((r + k) % n) as u16)
                                    .find(|&p| tracker.corrupt_counter_parity(PhysReg(p)))
                            }
                        }
                    } else {
                        None
                    };
                    if let Some(p) = hit {
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_counter_fault(p);
                        }
                        true
                    } else {
                        false
                    }
                }
                // Recoverable, but only by machine check: the backing
                // file is the architected copy. Lands on an active
                // register so the fault is reachable by a read.
                FaultKind::FlipBackingWord => {
                    if let Storage::Cached { backing, .. } = &mut self.storage {
                        let n = self.config.phys_regs;
                        match target {
                            Some(t) => {
                                self.preg_info[t as usize].active
                                    && backing.corrupt_word(PhysReg(t))
                            }
                            None => {
                                let r = inj.next_u64() as usize;
                                (0..n).map(|k| ((r + k) % n) as u16).any(|p| {
                                    self.preg_info[p as usize].active
                                        && backing.corrupt_word(PhysReg(p))
                                })
                            }
                        }
                    } else {
                        false
                    }
                }
                // Lands on the fetch path when a correct-path record
                // with a data result comes by.
                FaultKind::CorruptRecord => false,
            };
            if landed {
                inj.armed.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.injector = Some(inj);
    }

    /// Corrects the advertised readiness of load results whose L1-hit
    /// assumption just failed: dependents that have not issued yet wait
    /// for the true latency (those in the shadow were squashed when the
    /// miss was detected).
    fn process_retimes(&mut self, now: u64) {
        if !self.events.retimes.due(now) {
            return;
        }
        let mut i = 0;
        let mut next = u64::MAX;
        while i < self.events.retimes.items.len() {
            let (t, (p, gen, timing)) = self.events.retimes.items[i];
            if t == now {
                self.events.retimes.items.swap_remove(i);
                if self.preg_gen[p as usize] == gen {
                    self.preg_time[p as usize] = timing;
                }
            } else {
                next = next.min(t);
                i += 1;
            }
        }
        // Every survivor was examined exactly once (a swap_remove's
        // replacement is revisited at the same index), so `next` is the
        // exact minimum — no second pass needed.
        self.events.retimes.next_due = next;
    }

    fn process_cache_events(&mut self, now: u64) {
        let protection = self.protection();
        let mut scrubbed: Vec<u16> = Vec::new();
        let Storage::Cached { cache, tracker, .. } = &mut self.storage else {
            return;
        };
        // Initial writes the cycle after execution completes.
        if self.events.writes.due(now) {
            let mut i = 0;
            let mut next = u64::MAX;
            while i < self.events.writes.items.len() {
                let (t, (p, set, gen)) = self.events.writes.items[i];
                if t == now {
                    self.events.writes.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        // The write decision reads the use counter; a
                        // protected read detects a flipped counter here
                        // and scrubs it (the write proceeds with the
                        // conservative scrubbed count).
                        if protection.counter_parity && !tracker.parity_ok(PhysReg(p)) {
                            tracker.scrub(PhysReg(p));
                            scrubbed.push(p);
                        }
                        let remaining = tracker.remaining(PhysReg(p));
                        let pinned = tracker.is_pinned(PhysReg(p));
                        let bypasses = self.preg_info[p as usize].pre_write_bypasses;
                        cache.write(PhysReg(p), set, remaining, pinned, bypasses, now);
                    }
                } else {
                    next = next.min(t);
                    i += 1;
                }
            }
            self.events.writes.next_due = next;
        }
        // Fills completing after a backing-file read.
        if self.events.fills.due(now) {
            let mut i = 0;
            let mut next = u64::MAX;
            while i < self.events.fills.items.len() {
                let (t, (p, set, gen)) = self.events.fills.items[i];
                if t == now {
                    self.events.fills.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        cache.fill(PhysReg(p), set, now);
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_fill_applied(p, gen);
                        }
                    }
                } else {
                    next = next.min(t);
                    i += 1;
                }
            }
            self.events.fills.next_due = next;
        }
        // Second-stage bypass consumers decrement the entry after the
        // write lands (§3.1: they cannot affect the write decision).
        if self.events.bypass_decs.due(now) {
            let mut i = 0;
            let mut next = u64::MAX;
            while i < self.events.bypass_decs.items.len() {
                let (t, (p, set, gen)) = self.events.bypass_decs.items[i];
                if t <= now {
                    self.events.bypass_decs.items.swap_remove(i);
                    if self.preg_info[p as usize].active && self.preg_gen[p as usize] == gen {
                        cache.bypass_consume(PhysReg(p), set);
                    }
                } else {
                    next = next.min(t);
                    i += 1;
                }
            }
            self.events.bypass_decs.next_due = next;
        }
        for p in scrubbed {
            if let Some(ck) = self.checker.as_mut() {
                ck.on_scrub(p);
            }
            let tid = self.thread_of_preg(p);
            self.note_recovery(tid, now, 0);
        }
    }
}
