//! Stage-modular pipeline core.
//!
//! The cycle-level model is decomposed into explicit stage modules —
//! [`fetch`], [`rename`], [`issue`], [`execute`] (deferred events),
//! [`retire`], and [`squash`] — each an `impl` block over the shared
//! [`CoreState`]. Stages communicate only through `CoreState` fields
//! and the explicit inter-stage latches:
//!
//! * [`FetchLatch`] — fetch → rename: the in-flight front-end queue
//!   (entries mature for `frontend_stages` cycles before rename may
//!   consume them; a full queue back-pressures fetch);
//! * the ROB + `sched` issue-slot array — rename → issue: the issue
//!   window itself;
//! * [`EventLatch`] — issue → execute: deferred timed events (cache
//!   writes, fills, late bypass decrements, load retimes) that the
//!   issue stage schedules and the execute stage drains;
//! * [`ReplayLatch`] — issue → issue: cycles whose entire issue group
//!   replays (register-cache misses, load-hit mis-speculations).
//!
//! One cycle is the declarative [`SCHEDULE`]: a fixed list of stage
//! functions applied to the core in order. The within-cycle order is
//! part of the golden-snapshot contract — reordering stages is a model
//! change, not a refactor.

pub(crate) mod epoch;
pub(crate) mod execute;
pub(crate) mod fetch;
pub(crate) mod issue;
pub(crate) mod rename;
pub(crate) mod retire;
pub(crate) mod squash;

use crate::check::{Checker, DiagnosticDump, InvariantViolation, SimError};
use crate::config::SimConfig;
use crate::inject::Injector;
use crate::oracle::Oracle;
use crate::stats::LifetimeCollector;
use crate::trace::InstTrace;
use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use ubrc_core::{BackingFile, IndexAssigner, RegisterCache, TwoLevelFile, UseTracker};
use ubrc_emu::{ExecRecord, Machine};
use ubrc_frontend::{
    CascadingIndirect, DegreeOfUsePredictor, DirectionPredictor, GlobalHistory, ReturnAddressStack,
};
use ubrc_isa::ExecClass;
use ubrc_memsys::MemSys;

/// Per-value timing: when consumers may issue against this physical
/// register.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PregTime {
    pub(crate) known: bool,
    pub(crate) bypass_start: u64,
    pub(crate) bypass_end: u64,
    pub(crate) storage_avail: u64,
}

impl PregTime {
    pub(crate) const UNKNOWN: PregTime = PregTime {
        known: false,
        bypass_start: 0,
        bypass_end: 0,
        storage_avail: 0,
    };
    /// Available-from-storage-forever (initial architectural values).
    pub(crate) const ANCIENT: PregTime = PregTime {
        known: true,
        bypass_start: 0,
        bypass_end: 0,
        storage_avail: 0,
    };

    pub(crate) fn operand_ready(&self, now: u64) -> bool {
        self.known
            && now >= self.bypass_start
            && (now <= self.bypass_end || now >= self.storage_avail)
    }

    pub(crate) fn on_bypass(&self, now: u64) -> bool {
        now >= self.bypass_start && now <= self.bypass_end
    }

    /// Earliest cycle `>= t` at which the operand is readable.
    ///
    /// A lower bound, not a promise: the producer's timing can only be
    /// revised *later* (load-miss retimes, register-cache misses), so a
    /// consumer woken here re-checks and re-keys itself if needed.
    pub(crate) fn next_ready_at(&self, t: u64) -> u64 {
        if t < self.bypass_start {
            self.bypass_start
        } else if t <= self.bypass_end {
            t
        } else {
            t.max(self.storage_avail)
        }
    }
}

/// Deferred timed events with an O(1) "anything due?" fast path, so
/// quiet cycles skip the scan entirely.
///
/// Firing cycles run the exact same index/`swap_remove` scan the model
/// has always used (the within-cycle processing order is part of the
/// golden-snapshot contract); only the no-op scans are elided.
pub(crate) struct EventQueue<T> {
    pub(crate) items: Vec<(u64, T)>,
    pub(crate) next_due: u64,
}

impl<T> EventQueue<T> {
    pub(crate) fn new() -> Self {
        EventQueue {
            items: Vec::new(),
            next_due: u64::MAX,
        }
    }

    pub(crate) fn push(&mut self, at: u64, event: T) {
        self.next_due = self.next_due.min(at);
        self.items.push((at, event));
    }

    pub(crate) fn due(&self, now: u64) -> bool {
        now >= self.next_due
    }

    pub(crate) fn refresh_due(&mut self) {
        self.next_due = self.items.iter().map(|e| e.0).min().unwrap_or(u64::MAX);
    }
}

/// Fibonacci-multiply hasher for the `u64` granule keys of
/// [`ThreadState::store_granules`]. Deterministic (no per-process
/// random seed) and a handful of instructions per probe, versus
/// SipHash's several dozen.
#[derive(Default)]
pub(crate) struct GranuleHasher(u64);

impl std::hash::Hasher for GranuleHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

pub(crate) type GranuleMap = std::collections::HashMap<
    u64,
    Vec<(u64, Option<u64>)>,
    std::hash::BuildHasherDefault<GranuleHasher>,
>;

/// Per-value lifecycle bookkeeping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PregInfo {
    pub(crate) producer_pc: u64,
    pub(crate) producer_hist: GlobalHistory,
    pub(crate) trainable: bool,
    pub(crate) consumers_renamed: u32,
    pub(crate) consumers_outstanding: u32,
    pub(crate) set: u16,
    pub(crate) predicted: u8,
    pub(crate) pre_write_bypasses: u32,
    pub(crate) alloc_time: u64,
    pub(crate) write_time: u64,
    pub(crate) last_use: u64,
    pub(crate) reassigned_seq: Option<u64>,
    pub(crate) active: bool,
}

impl PregInfo {
    pub(crate) const EMPTY: PregInfo = PregInfo {
        producer_pc: 0,
        producer_hist: GlobalHistory::new(),
        trainable: false,
        consumers_renamed: 0,
        consumers_outstanding: 0,
        set: 0,
        predicted: 0,
        pre_write_bypasses: 0,
        alloc_time: 0,
        write_time: 0,
        last_use: 0,
        reassigned_seq: None,
        active: false,
    };
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Waiting,
    Issued,
}

#[derive(Clone, Debug)]
pub(crate) struct DynInst {
    /// Owning hardware thread context.
    pub(crate) tid: ThreadId,
    /// Per-thread sequence number (the thread's program order).
    pub(crate) seq: u64,
    /// Global dispatch-order stamp, unique across threads: the age used
    /// for cross-thread oldest-first issue and trace indexing. Equal to
    /// `seq` in single-threaded runs.
    pub(crate) age: u64,
    pub(crate) rec: ExecRecord,
    pub(crate) class: ExecClass,
    pub(crate) srcs: [Option<u16>; 2],
    pub(crate) dest: Option<u16>,
    pub(crate) prev: Option<u16>,
    pub(crate) status: Status,
    pub(crate) exec_done: u64,
    pub(crate) fetch_cycle: u64,
    pub(crate) mispredicted: bool,
    pub(crate) wrong_path: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct FetchedEntry {
    pub(crate) rec: ExecRecord,
    pub(crate) ready_at: u64,
    pub(crate) fetch_cycle: u64,
    pub(crate) hist: GlobalHistory,
    pub(crate) mispredicted: bool,
    /// The speculatively-fetched wrong target of a mispredicted branch
    /// (begins wrong-path fetch when the entry is created).
    pub(crate) wrong_path: bool,
}

// One `Storage` exists per simulator and it is accessed on every
// operand read in the issue loop; boxing the cached variants would
// trade this one-time size imbalance for a pointer chase on the hot
// path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Storage {
    Monolithic {
        write_latency: u32,
    },
    Cached {
        cache: RegisterCache,
        backing: BackingFile,
        assigner: IndexAssigner,
        tracker: UseTracker,
    },
    TwoLevel {
        file: TwoLevelFile,
    },
}

/// Fetch → rename latch: fetched records maturing through the front
/// end. Entries become visible to rename `frontend_stages` cycles
/// after fetch; a full queue back-pressures the fetch stage.
pub(crate) struct FetchLatch {
    pub(crate) queue: VecDeque<FetchedEntry>,
}

impl FetchLatch {
    pub(crate) fn new() -> Self {
        FetchLatch {
            queue: VecDeque::new(),
        }
    }
}

/// Issue → execute latch: deferred timed events. The issue stage
/// schedules them against future cycles; the execute stage drains the
/// due ones at the top of each cycle.
pub(crate) struct EventLatch {
    /// Initial cache writes: time -> (preg, set, generation). The
    /// generation guards against a physical register being freed and
    /// reallocated before a stale event fires (possible when a producer
    /// retires in the same cycle its cache write is scheduled).
    pub(crate) writes: EventQueue<(u16, u16, u32)>,
    /// Fills completing after a backing-file read.
    pub(crate) fills: EventQueue<(u16, u16, u32)>,
    /// Second-stage bypass decrements applied after the write lands.
    pub(crate) bypass_decs: EventQueue<(u16, u16, u32)>,
    /// Load-hit speculation: detect_time -> (preg, gen, true timing) —
    /// the destination's advertised timing is corrected at detection.
    pub(crate) retimes: EventQueue<(u16, u32, PregTime)>,
}

impl EventLatch {
    pub(crate) fn new() -> Self {
        EventLatch {
            writes: EventQueue::new(),
            fills: EventQueue::new(),
            bypass_decs: EventQueue::new(),
            retimes: EventQueue::new(),
        }
    }
}

/// Issue → issue replay latch: issue groups in these cycles are
/// squashed (register-cache misses and load-hit mis-speculations both
/// land here). A handful of near-future cycles at most, so a plain vec
/// beats a hash set.
pub(crate) struct ReplayLatch {
    pub(crate) cycles: Vec<u64>,
}

impl ReplayLatch {
    pub(crate) fn new() -> Self {
        ReplayLatch { cycles: Vec::new() }
    }

    pub(crate) fn mark(&mut self, cycle: u64) {
        if !self.cycles.contains(&cycle) {
            self.cycles.push(cycle);
        }
    }

    pub(crate) fn take(&mut self, now: u64) -> bool {
        match self.cycles.iter().position(|&c| c == now) {
            Some(i) => {
                self.cycles.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

/// Identifies one hardware thread context. Thread 0 is the only
/// context of a single-threaded core.
pub(crate) type ThreadId = usize;

/// [`IssueSlot::wake`] sentinel for a slot whose instruction has
/// issued: it can never become due again, so the select scan drops it
/// from the thread's `timed` list for good.
pub(crate) const SCHED_ISSUED: u64 = u64::MAX;

/// [`IssueSlot::wake`] sentinel for a slot parked on a producer whose
/// timing is unknown; re-armed to a finite deadline via `preg_waiters`
/// when the producer issues (which re-enters it into the `timed`
/// list).
pub(crate) const SCHED_PARKED: u64 = u64::MAX - 1;

/// [`IssueSlot::srcs`] sentinel for an unused operand slot.
pub(crate) const NO_SRC: u16 = u16::MAX;

/// The issue path's per-slot state, one per ROB entry in a dense deque
/// kept in lockstep with the thread's `rob`. This is the SoA split of
/// the wake-up/select hot path: the per-cycle scan and the ready check
/// touch only these 32 bytes per slot, never the fat [`DynInst`]
/// (whose `ExecRecord` payload is only needed once, at issue).
#[derive(Clone, Copy, Debug)]
pub(crate) struct IssueSlot {
    /// Wake deadline: the earliest cycle the instruction's operands
    /// could be ready, or [`SCHED_ISSUED`] / [`SCHED_PARKED`].
    pub(crate) wake: u64,
    /// Mirror of [`DynInst::age`] for oldest-first select.
    pub(crate) age: u64,
    /// Earliest cycle issue is permitted; replay squashes push it
    /// forward.
    pub(crate) earliest_issue: u64,
    /// Source pregs ([`NO_SRC`] for an unused operand slot), mirroring
    /// [`DynInst::srcs`] for the ready check.
    pub(crate) srcs: [u16; 2],
    /// Whether this slot is currently in its thread's `timed` worklist
    /// (guards against duplicate entries when a deadline is re-armed).
    pub(crate) in_timed: bool,
}

/// One hardware thread context: everything the SMT front end
/// replicates (fetch stream, predictors, checkpoints, rename map) or
/// partitions (freelist, ROB slice), per the sharing matrix in
/// DESIGN.md. The issue window budget, execute units, register cache,
/// backing file, and memory hierarchy stay shared in [`CoreState`].
pub(crate) struct ThreadState {
    /// The thread's functional emulator, running ahead of the pipeline.
    pub(crate) machine: Machine,
    pub(crate) stream_done: bool,
    pub(crate) peeked: Option<ExecRecord>,

    /// Next per-thread sequence number (the thread's program order;
    /// cross-thread age ordering uses `DynInst::age`).
    pub(crate) seq: u64,
    pub(crate) retired: u64,
    pub(crate) last_retired_seq: u64,
    pub(crate) halted: bool,

    // Front end (fully replicated).
    pub(crate) fetch_resume: u64,
    /// Seq of an unresolved mispredicted control inst stalling fetch.
    pub(crate) waiting_on_branch: Option<u64>,
    // Wrong-path (speculative) fetch state: set when fetch follows a
    // mispredicted branch's predicted target; cleared by the squash at
    // resolution.
    pub(crate) wrong_path: bool,
    pub(crate) wp_resolve_seq: Option<u64>,
    pub(crate) wp_map_checkpoint: Vec<u16>,
    pub(crate) wp_map_saved: bool,
    pub(crate) wp_ghist: GlobalHistory,
    pub(crate) wp_ras: ReturnAddressStack,
    pub(crate) wp_ras_saved: bool,
    pub(crate) fetch_latch: FetchLatch,
    pub(crate) ghist: GlobalHistory,
    pub(crate) branch_pred: DirectionPredictor,
    pub(crate) ras: ReturnAddressStack,
    pub(crate) indirect: CascadingIndirect,
    pub(crate) douse: DegreeOfUsePredictor,
    pub(crate) halt_fetched: bool,

    // Rename (replicated map over a partitioned freelist).
    pub(crate) map: Vec<u16>, // arch reg -> preg
    /// This thread's slice of the physical-register space. The thread
    /// owns pregs `[preg_lo, preg_hi)`; its map and freelist only ever
    /// hold registers from that partition, so one thread exhausting its
    /// partition can never steal another's registers.
    pub(crate) preg_lo: u16,
    pub(crate) preg_hi: u16,
    pub(crate) freelist: Vec<u16>,

    // The thread's ROB slice, in per-thread program order, with its
    // `sched` issue-slot array in lockstep (see `CoreState` docs).
    // Retirement and squash walk only this thread's slice, so one
    // thread's misprediction never disturbs the other's window.
    pub(crate) rob: VecDeque<DynInst>,
    pub(crate) sched: VecDeque<IssueSlot>,
    /// Lower bound on the earliest finite deadline in `sched`. The
    /// select scan skips this thread entirely while `due_hint > now`
    /// (nothing can be due); every write of a finite deadline lowers
    /// it, and each performed scan recomputes it exactly.
    pub(crate) due_hint: u64,
    /// Absolute window position of `sched[0]` / `rob[0]`: a monotonic
    /// counter of retired instructions. `timed` stores absolute
    /// positions (`sched_base + index`) so retirement pops never shift
    /// its entries; a stale position simply falls below the base.
    pub(crate) sched_base: u64,
    /// The select scan's worklist: absolute positions of window slots
    /// believed to hold a *finite* deadline. Every writer of a finite
    /// wake deadline enters the slot here (deduplicated by
    /// [`IssueSlot::in_timed`]), so the per-cycle scan walks only
    /// instructions with an armed deadline — not the whole window,
    /// which in pointer-chasing codes is dominated by parked and
    /// already-issued slots. Entries whose slot has issued or parked
    /// are dropped lazily by the scan; retirement strands positions
    /// below `sched_base` (also dropped lazily); wrong-path and
    /// machine-check squashes purge eagerly so truncated positions are
    /// never aliased by refilled slots.
    pub(crate) timed: Vec<u64>,

    // Memory disambiguation: in-flight stores per 8-byte granule, in
    // program order -> (seq, exec_done once issued). Per-thread because
    // each context runs in its own address space (its own machine) —
    // stores never forward across threads. Probed on every load/store
    // in rename, issue, and retire, so it uses a cheap multiplicative
    // hasher instead of SipHash; the map is only ever keyed (never
    // iterated), so the hash function cannot affect simulated timing.
    pub(crate) store_granules: GranuleMap,

    /// Lockstep co-simulation oracle: one functional machine per
    /// thread, replaying that thread's retirement stream.
    pub(crate) oracle: Option<Oracle>,

    // Soft-error recovery (`SimConfig::recovery`).
    /// Machine-check checkpoint: a functional machine stepped once per
    /// retirement, so it always sits exactly at this thread's retired
    /// architectural state. Cloned into `machine` to replay from the
    /// faulting instruction. `None` when recovery is disabled.
    pub(crate) recover: Option<Box<Machine>>,
    /// Recoveries performed for this thread (scrubs, re-fills, and
    /// machine checks).
    pub(crate) recoveries: u64,
    /// Machine-check squashes among those recoveries.
    pub(crate) machine_checks: u64,
    /// Cycle of the most recent recovery.
    pub(crate) last_recovery: Option<u64>,
    /// Cycle a machine-check squash fired, pending its first
    /// post-recovery retirement (measures full replay latency).
    pub(crate) recovery_pending_since: Option<u64>,
}

/// One shared physical-register pool ([`crate::FreelistPolicy::Shared`]):
/// any thread allocates from `free`, ownership is tracked per register,
/// and `live` counts are capped so no thread starves the rest.
pub(crate) struct SharedPool {
    /// Free registers, popped at rename.
    pub(crate) free: Vec<u16>,
    /// preg -> owning thread, valid while the register is live (updated
    /// at every allocation; stale entries are never read because
    /// `thread_of_preg` is only consulted for live registers).
    pub(crate) owner: Vec<u16>,
    /// Live registers per thread (architectural mappings included).
    pub(crate) live: Vec<usize>,
    /// Per-thread cap on `live`.
    pub(crate) cap: usize,
}

/// The shared pipeline state every stage operates on: the hardware
/// thread contexts, architectural substrate models, per-value
/// bookkeeping, the inter-stage latches, and statistics.
pub(crate) struct CoreState {
    pub(crate) config: SimConfig,
    /// The hardware thread contexts (one for single-threaded runs).
    pub(crate) threads: Vec<ThreadState>,
    /// Physical registers per thread partition
    /// (`phys_regs / nthreads`); thread `t` owns pregs
    /// `[t * partition, (t + 1) * partition)`.
    pub(crate) partition: usize,
    /// Shared-freelist mode ([`crate::FreelistPolicy::Shared`]):
    /// `Some` replaces the per-thread freelists with one capped pool.
    pub(crate) shared_pool: Option<SharedPool>,
    /// Last thread granted a fetch slot, for
    /// [`crate::FetchPolicy::RoundRobin`] rotation.
    pub(crate) last_fetch_tid: ThreadId,

    pub(crate) now: u64,
    /// Global dispatch-order counter: stamps every renamed instruction
    /// with a cross-thread age (`DynInst::age`).
    pub(crate) age: u64,
    /// Total retirements across all threads (budget + IPC).
    pub(crate) retired: u64,
    pub(crate) last_progress: u64,
    /// All threads halted.
    pub(crate) halted: bool,
    pub(crate) wp_squashed: u64,

    // Shared per-value bookkeeping, indexed by physical register (the
    // preg space is partitioned between threads; see `ThreadState`).
    pub(crate) preg_time: Vec<PregTime>,
    pub(crate) preg_info: Vec<PregInfo>,

    // Shared issue-window occupancy across all threads' ROB slices.
    pub(crate) window_count: usize,

    // Event-driven wake-up/select. `threads[t].sched[i]` is
    // `threads[t].rob[i]`'s [`IssueSlot`]: its wake deadline (the
    // earliest cycle its operands could be ready, a lower bound
    // derived from its sources' `PregTime`, or a sentinel —
    // [`SCHED_ISSUED`] once it has issued, [`SCHED_PARKED`] while it
    // is parked on a producer whose timing is unknown, re-armed from
    // `preg_waiters` when the producer issues) plus the compact
    // ready-check fields. Kept as a dense parallel array so the
    // per-cycle select scan and ready check stay inside these slots
    // instead of walking the fat `DynInst` entries;
    // `ThreadState::due_hint` and `ThreadState::timed` reduce the scan
    // to armed deadlines only.
    // `preg_waiters` holds per-thread seqs; the owning thread is
    // recovered from the register's partition.
    pub(crate) preg_waiters: Vec<Vec<u64>>,
    // Reused per-cycle scratch (hoisted allocations): (age, tid, idx)
    // for the due scan, (seq, tid, idx) for the issue group.
    // `due_bounds` and `merge_heads` serve the lazy k-way merge that
    // orders the due scan across threads (per-thread run end offsets
    // and the live run cursors).
    pub(crate) due_buf: Vec<(u64, u32, u32)>,
    pub(crate) selected_buf: Vec<(u64, u32, u32)>,
    pub(crate) due_bounds: Vec<usize>,
    pub(crate) merge_heads: Vec<(usize, usize)>,
    pub(crate) squash_buf: Vec<DynInst>,

    // Storage under test (shared: the register cache, backing file, and
    // set assigner serve both threads' values).
    pub(crate) storage: Storage,
    pub(crate) read_latency: u32,

    // Inter-stage latches (see module docs). The event and replay
    // latches are shared: a register-cache miss squashes the whole
    // issue group regardless of thread (one shared cache port).
    pub(crate) events: EventLatch,
    pub(crate) replay: ReplayLatch,
    pub(crate) preg_gen: Vec<u32>,
    pub(crate) load_replay_squashes: u64,

    pub(crate) store_forward_stalls: u64,

    pub(crate) memsys: MemSys,

    // Statistics.
    pub(crate) cond_branches: u64,
    pub(crate) branch_mispredicts: u64,
    pub(crate) indirect_branches: u64,
    pub(crate) indirect_mispredicts: u64,
    pub(crate) replayed: u64,
    pub(crate) miss_events: u64,
    pub(crate) dispatch_stall_pregs: u64,
    pub(crate) operands_bypassed: u64,
    pub(crate) operands_from_storage: u64,
    pub(crate) lifetimes: Option<LifetimeCollector>,
    pub(crate) trace: Vec<InstTrace>,
    /// One record per completed dynamic-repartitioning epoch boundary
    /// (`CachePartition::DynamicCap` only; empty otherwise).
    pub(crate) epoch_timeline: Vec<crate::stats::EpochRecord>,

    // Runtime checking and fault injection (`SimConfig::check` /
    // `SimConfig::fault_plan`). All observation-only except the
    // injector, whose whole point is corrupting live state. The
    // per-thread oracles live in `ThreadState`.
    pub(crate) checker: Option<Checker>,
    pub(crate) injector: Option<Injector>,
    pub(crate) error: Option<Box<SimError>>,
    pub(crate) cancel: Option<Arc<AtomicBool>>,

    // Soft-error recovery (`SimConfig::recovery`).
    /// A backing-word parity error was detected during issue; the
    /// machine-check squash runs after the issue loop releases its
    /// borrows.
    pub(crate) pending_machine_check: Option<ThreadId>,
    /// Total cycles attributed to recovery (fill round-trips and
    /// machine-check replays).
    pub(crate) recovery_cycles: u64,
    /// Distribution of individual recovery latencies.
    pub(crate) recovery_latency: ubrc_stats::Histogram,
    /// The watchdog already spent its one forced recovery squash; the
    /// next trip is a real deadlock.
    pub(crate) forced_recovery: bool,

    /// Per-stage self-profiling (`SimConfig::profile`): `None` — the
    /// default — keeps `cycle()` on the original untimed loop, so
    /// profiling is zero-cost when off.
    pub(crate) profiler: Option<Box<StageProfiler>>,
}

/// Number of stages in [`SCHEDULE`].
pub(crate) const NSTAGES: usize = SCHEDULE.len();

/// Per-stage wall-time and call-count attribution, accumulated by
/// [`CoreState::cycle`] when profiling is enabled. Indexed in
/// [`SCHEDULE`] order; the stage names come from the schedule itself at
/// report time.
#[derive(Clone, Debug)]
pub(crate) struct StageProfiler {
    /// Total wall nanoseconds spent inside each stage function.
    pub(crate) nanos: [u64; NSTAGES],
    /// Invocations of each stage function (one per cycle per stage).
    pub(crate) calls: [u64; NSTAGES],
}

impl StageProfiler {
    pub(crate) fn new() -> Self {
        Self {
            nanos: [0; NSTAGES],
            calls: [0; NSTAGES],
        }
    }

    /// Renders the accumulated attribution as the public per-stage
    /// profile rows, in schedule order.
    pub(crate) fn finish(&self) -> crate::stats::StageProfile {
        crate::stats::StageProfile {
            stages: SCHEDULE
                .iter()
                .zip(self.nanos.iter().zip(&self.calls))
                .map(|(stage, (&nanos, &calls))| crate::stats::StageSample {
                    name: stage.name,
                    nanos,
                    calls,
                })
                .collect(),
        }
    }
}

/// One entry of the declarative cycle schedule.
pub(crate) struct StageDesc {
    /// Stage name, for schedule introspection (the schedule-order test)
    /// and the per-stage self-profiling report.
    pub(crate) name: &'static str,
    /// The stage function, applied to the core with the current cycle.
    pub(crate) run: fn(&mut CoreState, u64),
}

/// The cycle schedule: every stage, in the exact order the monolithic
/// `cycle()` always ran them. The order is part of the golden-snapshot
/// contract.
pub(crate) const SCHEDULE: &[StageDesc] = &[
    StageDesc {
        name: "inject",
        run: CoreState::inject_stage,
    },
    StageDesc {
        name: "execute",
        run: CoreState::execute_stage,
    },
    StageDesc {
        name: "retire",
        run: CoreState::retire,
    },
    StageDesc {
        name: "issue",
        run: CoreState::issue,
    },
    StageDesc {
        name: "rename",
        run: CoreState::dispatch,
    },
    StageDesc {
        name: "fetch",
        run: CoreState::fetch,
    },
    StageDesc {
        name: "storage-tick",
        run: CoreState::storage_tick,
    },
    // Last, after the cycle's reads and writes have landed: the epoch
    // controller for dynamic cache repartitioning (a no-op unless
    // `CachePartition::DynamicCap` is active, so the seven-stage
    // golden contract above is unchanged for every static policy).
    StageDesc {
        name: "epoch",
        run: CoreState::epoch_stage,
    },
];

impl CoreState {
    /// Runs one cycle: every stage of [`SCHEDULE`], then advances time.
    /// With profiling enabled the loop also attributes wall time and a
    /// call count to each stage; the profiler is taken out of `self`
    /// for the duration so the stage functions keep their exclusive
    /// borrow, and the untimed loop below stays the exact original hot
    /// path when profiling is off.
    pub(crate) fn cycle(&mut self) {
        let now = self.now;
        if let Some(mut prof) = self.profiler.take() {
            for (k, stage) in SCHEDULE.iter().enumerate() {
                let t0 = std::time::Instant::now();
                (stage.run)(self, now);
                prof.nanos[k] += t0.elapsed().as_nanos() as u64;
                prof.calls[k] += 1;
            }
            self.profiler = Some(prof);
        } else {
            for stage in SCHEDULE {
                (stage.run)(self, now);
            }
        }
        self.now += 1;
    }

    /// The two-level file's background transfer engine advances at the
    /// end of every cycle.
    fn storage_tick(&mut self, _now: u64) {
        if let Storage::TwoLevel { file } = &mut self.storage {
            file.tick();
        }
    }

    /// The thread owning a physical register: the static partition map,
    /// or the dynamic owner table in shared-freelist mode.
    #[inline]
    pub(crate) fn thread_of_preg(&self, p: u16) -> ThreadId {
        match &self.shared_pool {
            Some(pool) => pool.owner[p as usize] as ThreadId,
            None => p as usize / self.partition,
        }
    }

    /// Total ROB occupancy across all thread slices (the shared ROB
    /// capacity applies to the sum).
    #[inline]
    pub(crate) fn rob_len_total(&self) -> usize {
        self.threads.iter().map(|t| t.rob.len()).sum()
    }

    /// Books one completed recovery for `tid`: `latency` cycles were
    /// spent restoring state the fault destroyed.
    pub(crate) fn note_recovery(&mut self, tid: ThreadId, now: u64, latency: u64) {
        let t = &mut self.threads[tid];
        t.recoveries += 1;
        t.last_recovery = Some(now);
        self.recovery_cycles += latency;
        self.recovery_latency.record(latency);
    }

    /// The configured protection mode (all-off unless the storage is a
    /// protected register cache).
    pub(crate) fn protection(&self) -> ubrc_core::ProtectionConfig {
        match &self.config.storage {
            crate::config::RegStorage::Cached { cache, .. } => cache.protection,
            _ => ubrc_core::ProtectionConfig::off(),
        }
    }

    /// Snapshot of the stuck machine for the watchdog report.
    pub(crate) fn diagnostic_dump(&self) -> Box<DiagnosticDump> {
        let rob_head = self
            .threads
            .iter()
            .enumerate()
            .flat_map(|(tid, t)| {
                t.rob.iter().enumerate().take(8).map(move |(i, inst)| {
                    let slot = &t.sched[i];
                    let deadline = if slot.wake < SCHED_PARKED {
                        slot.wake.to_string()
                    } else {
                        "-".to_string()
                    };
                    format!(
                        "t{tid} seq {:>8} pc {:#08x} `{}` {:?} earliest_issue {} wake {}",
                        inst.seq,
                        inst.rec.pc,
                        inst.rec.inst,
                        inst.status,
                        slot.earliest_issue,
                        deadline
                    )
                })
            })
            .collect();
        let threads = self
            .threads
            .iter()
            .enumerate()
            .map(|(tid, t)| {
                let recovery = match t.last_recovery {
                    Some(at) => format!(
                        ", recovered {} (mc {}, last @ {at})",
                        t.recoveries, t.machine_checks
                    ),
                    None => String::new(),
                };
                format!(
                    "t{tid}: retired {} (last seq {}), rob {}, fetchq {}, free pregs {}{}{}{}{}",
                    t.retired,
                    t.last_retired_seq,
                    t.rob.len(),
                    t.fetch_latch.queue.len(),
                    t.freelist.len(),
                    if t.halted { ", halted" } else { "" },
                    if t.wrong_path { ", wrong-path" } else { "" },
                    if t.waiting_on_branch.is_some() {
                        ", waiting-on-branch"
                    } else {
                        ""
                    },
                    recovery,
                )
            })
            .collect();
        let queue_line = |name: &str, items: usize, next: u64| {
            let next = if next == u64::MAX {
                "-".to_string()
            } else {
                next.to_string()
            };
            format!("{name}: {items} queued, next due {next}")
        };
        let event_queues = vec![
            queue_line(
                "pending_writes",
                self.events.writes.items.len(),
                self.events.writes.next_due,
            ),
            queue_line(
                "pending_fills",
                self.events.fills.items.len(),
                self.events.fills.next_due,
            ),
            queue_line(
                "pending_bypass_decs",
                self.events.bypass_decs.items.len(),
                self.events.bypass_decs.next_due,
            ),
            queue_line(
                "pending_retimes",
                self.events.retimes.items.len(),
                self.events.retimes.next_due,
            ),
            format!("squash_cycles: {:?}", self.replay.cycles),
        ];
        let (epochs, dynamic_caps) = match &self.storage {
            Storage::Cached { cache, .. } => (
                cache.stats().epochs,
                cache.dynamic_caps().map(|c| c.to_vec()),
            ),
            _ => (0, None),
        };
        Box::new(DiagnosticDump {
            cycle: self.now,
            last_progress: self.last_progress,
            retired: self.retired,
            fetch_queue: self.threads.iter().map(|t| t.fetch_latch.queue.len()).sum(),
            window_count: self.window_count,
            threads,
            rob_head,
            event_queues,
            recoveries: self.threads.iter().map(|t| t.recoveries).sum(),
            machine_checks: self.threads.iter().map(|t| t.machine_checks).sum(),
            last_recovery: self.threads.iter().filter_map(|t| t.last_recovery).max(),
            epochs,
            dynamic_caps,
        })
    }

    /// End-of-cycle invariant audit (`check.invariants`). Read-only:
    /// returns the first violation found, if any.
    pub(crate) fn check_invariants(&self) -> Option<Box<InvariantViolation>> {
        let cycle = self.now.saturating_sub(1);
        let viol = |thread: Option<usize>, invariant: &'static str, detail: String| {
            Some(Box::new(InvariantViolation {
                cycle,
                thread,
                invariant,
                detail,
            }))
        };
        for (tid, t) in self.threads.iter().enumerate() {
            if t.sched.len() != t.rob.len() {
                return viol(
                    Some(tid),
                    "sched-rob-lockstep",
                    format!(
                        "{} wake deadlines for {} rob entries",
                        t.sched.len(),
                        t.rob.len()
                    ),
                );
            }
        }
        let waiting = self
            .threads
            .iter()
            .flat_map(|t| t.rob.iter())
            .filter(|i| i.status == Status::Waiting)
            .count();
        if waiting != self.window_count {
            return viol(
                None,
                "window-count",
                format!(
                    "{waiting} waiting instructions but window_count={}",
                    self.window_count
                ),
            );
        }
        if let Some(pool) = &self.shared_pool {
            // Shared-freelist accounting: every live register is charged
            // to its dynamic owner, counts respect the per-thread cap,
            // and live + free covers the whole register file.
            let mut live = vec![0usize; self.threads.len()];
            for (p, info) in self.preg_info.iter().enumerate() {
                if info.active {
                    live[pool.owner[p] as usize] += 1;
                }
            }
            for (tid, (&counted, &tracked)) in live.iter().zip(pool.live.iter()).enumerate() {
                if counted != tracked {
                    return viol(
                        Some(tid),
                        "shared-pool-accounting",
                        format!("{counted} live registers owned but pool tracks {tracked}"),
                    );
                }
                if tracked > pool.cap {
                    return viol(
                        Some(tid),
                        "shared-pool-cap",
                        format!("{tracked} live registers exceed the cap of {}", pool.cap),
                    );
                }
            }
            let total_live: usize = live.iter().sum();
            if total_live + pool.free.len() != self.preg_info.len() {
                return viol(
                    None,
                    "shared-pool-accounting",
                    format!(
                        "{total_live} live + {} free != {} physical registers",
                        pool.free.len(),
                        self.preg_info.len()
                    ),
                );
            }
            for (tid, t) in self.threads.iter().enumerate() {
                if let Some(&p) = t
                    .map
                    .iter()
                    .find(|&&p| pool.owner[p as usize] as usize != tid)
                {
                    return viol(
                        Some(tid),
                        "shared-pool-owner",
                        format!(
                            "rename map holds p{p}, owned by thread {}",
                            pool.owner[p as usize]
                        ),
                    );
                }
            }
        } else {
            // Physical-register accounting holds per thread partition:
            // every preg a thread owns is either live or on its freelist,
            // and nothing it maps or frees strays outside its partition.
            for (tid, t) in self.threads.iter().enumerate() {
                let (lo, hi) = (t.preg_lo as usize, t.preg_hi as usize);
                let active = self.preg_info[lo..hi].iter().filter(|i| i.active).count();
                if active + t.freelist.len() != hi - lo {
                    return viol(
                        Some(tid),
                        "preg-accounting",
                        format!(
                            "{active} live + {} free != partition of {} physical registers",
                            t.freelist.len(),
                            hi - lo
                        ),
                    );
                }
                let out_of_partition = |p: &&u16| (**p as usize) < lo || (**p as usize) >= hi;
                if let Some(&p) = t.freelist.iter().find(out_of_partition) {
                    return viol(
                        Some(tid),
                        "preg-partition",
                        format!("freelist holds p{p}, outside the partition [{lo}, {hi})"),
                    );
                }
                if let Some(&p) = t.map.iter().find(out_of_partition) {
                    return viol(
                        Some(tid),
                        "preg-partition",
                        format!("rename map holds p{p}, outside the partition [{lo}, {hi})"),
                    );
                }
            }
        }
        // Event queues drain monotonically: everything due by the cycle
        // just completed must have been consumed by its processor.
        let queues: [(&str, Option<u64>); 4] = [
            (
                "pending_writes",
                self.events.writes.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_fills",
                self.events.fills.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_bypass_decs",
                self.events.bypass_decs.items.iter().map(|e| e.0).min(),
            ),
            (
                "pending_retimes",
                self.events.retimes.items.iter().map(|e| e.0).min(),
            ),
        ];
        for (name, min_due) in queues {
            if let Some(t) = min_due {
                if t <= cycle {
                    return viol(
                        None,
                        "event-drain",
                        format!("{name} still holds an event due at cycle {t}"),
                    );
                }
            }
        }
        if let Storage::Cached { cache, tracker, .. } = &self.storage {
            // SMT partition cross-checks, recomputed from the entry
            // snapshots rather than the cache's own counters (which
            // `audit()` inside `check_cache` validates separately).
            if cache.nthreads() > 1 {
                let mut counts = vec![0usize; cache.nthreads()];
                for e in cache.entries() {
                    let owner = self.thread_of_preg(e.preg.0);
                    if e.tid as usize != owner {
                        return viol(
                            Some(owner),
                            "cache-thread-tag",
                            format!(
                                "cache entry for p{} tagged thread {}, but the register \
                                 belongs to thread {owner}",
                                e.preg.0, e.tid
                            ),
                        );
                    }
                    counts[owner] += 1;
                    // Way containment generalizes over static and
                    // epoch-varying ownership: the cache names the way's
                    // *current* owner (WayPartition forever, DynamicWay
                    // as of the last boundary).
                    let way = e.way as usize;
                    if let Some(who) = cache.way_owner(way) {
                        if who != owner {
                            return viol(
                                Some(owner),
                                "cache-way-containment",
                                format!(
                                    "thread {owner}'s p{} resides in way {way} of set {}, \
                                     currently owned by thread {who}",
                                    e.preg.0, e.set,
                                ),
                            );
                        }
                    }
                }
                for (tid, &n) in counts.iter().enumerate() {
                    if n != cache.thread_occupancy(tid) {
                        return viol(
                            Some(tid),
                            "cache-thread-occupancy",
                            format!(
                                "{n} resident entries counted but the cache tracks {}",
                                cache.thread_occupancy(tid)
                            ),
                        );
                    }
                    // The cap binding *right now*: the static
                    // OccupancyCap split, or whatever quota the dynamic
                    // partitioner installed at the last epoch boundary.
                    if let Some(cap) = cache.current_cap(tid) {
                        if n > cap {
                            return viol(
                                Some(tid),
                                "cache-occupancy-cap",
                                format!("{n} resident entries exceed the per-thread cap {cap}"),
                            );
                        }
                    }
                }
                if let Some(caps) = cache.dynamic_caps() {
                    // Cap-sum conservation: the partitioner reassigns
                    // quota, it never mints or destroys it.
                    let total: usize = caps.iter().sum();
                    if total != cache.config().entries {
                        return viol(
                            None,
                            "cache-cap-conservation",
                            format!(
                                "dynamic caps {caps:?} sum to {total}, not the cache's {} entries",
                                cache.config().entries
                            ),
                        );
                    }
                }
                if let Some(ways) = cache.way_counts() {
                    // Way-sum conservation: way reassignment moves
                    // whole ways between threads, it never mints or
                    // destroys them (and every thread keeps >= 1).
                    let total: usize = ways.iter().sum();
                    if total != cache.config().ways {
                        return viol(
                            None,
                            "cache-way-conservation",
                            format!(
                                "dynamic way counts {ways:?} sum to {total}, not the \
                                 cache's {} ways",
                                cache.config().ways
                            ),
                        );
                    }
                    if let Some(t) = ways.iter().position(|&c| c == 0) {
                        return viol(
                            Some(t),
                            "cache-way-conservation",
                            format!("thread {t} owns zero ways: {ways:?}"),
                        );
                    }
                }
            }
            if let Some(ck) = &self.checker {
                if let Some(v) = ck.check_tracker(tracker, cycle) {
                    return Some(v);
                }
                if let Some(v) = ck.check_cache(cache, tracker, cycle) {
                    return Some(v);
                }
                for o in &ck.fill_obligations {
                    if o.due <= cycle
                        && self.preg_gen[o.preg as usize] == o.gen
                        && self.preg_info[o.preg as usize].active
                    {
                        return viol(
                            Some(self.thread_of_preg(o.preg)),
                            "fill-obligation",
                            format!(
                                "fill for p{} scheduled for cycle {} never applied",
                                o.preg, o.due
                            ),
                        );
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_preserves_the_historical_cycle_order() {
        let names: Vec<&str> = SCHEDULE.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "inject",
                "execute",
                "retire",
                "issue",
                "rename",
                "fetch",
                "storage-tick",
                "epoch"
            ],
            "the within-cycle stage order is part of the golden-snapshot contract"
        );
    }
}
