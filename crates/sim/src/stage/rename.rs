//! Rename/dispatch stage: drains each thread's fetch→rename latch,
//! renames architectural registers against that thread's map, allocates
//! destinations from its freelist partition, and inserts into the
//! (shared-budget) ROB/window.
//!
//! Backpressure: dispatch stops at the shared ROB/window capacity; a
//! thread whose freelist partition is empty stalls alone, letting the
//! other thread keep dispatching from the shared width budget.

use super::{
    CoreState, DynInst, FetchedEntry, IssueSlot, PregInfo, PregTime, Status, Storage, ThreadId,
    NO_SRC,
};
use crate::trace::InstTrace;
use ubrc_core::PhysReg;

impl CoreState {
    pub(crate) fn dispatch(&mut self, now: u64) {
        let mut budget = self.config.fetch_width;
        for tid in 0..self.threads.len() {
            while budget > 0 {
                let Some(front) = self.threads[tid].fetch_latch.queue.front() else {
                    break;
                };
                if front.ready_at > now {
                    break;
                }
                if self.rob_len_total() == self.config.rob_entries
                    || self.window_count == self.config.window_entries
                {
                    // Shared capacity exhausted: no thread can dispatch.
                    return;
                }
                let has_dest = front.rec.inst.dest().is_some();
                if has_dest {
                    let starved = match &self.shared_pool {
                        // Shared pool: dry pool stalls everyone, a
                        // thread at its live-register cap stalls alone.
                        Some(pool) => pool.free.is_empty() || pool.live[tid] >= pool.cap,
                        // Only this thread's partition is dry.
                        None => self.threads[tid].freelist.is_empty(),
                    };
                    if starved {
                        self.dispatch_stall_pregs += 1;
                        break;
                    }
                    if let Storage::TwoLevel { file } = &self.storage {
                        if file.free_count() == 0 {
                            self.dispatch_stall_pregs += 1;
                            return;
                        }
                    }
                }
                let entry = self.threads[tid]
                    .fetch_latch
                    .queue
                    .pop_front()
                    .expect("checked non-empty");
                self.rename_and_insert(tid, entry, now);
                budget -= 1;
            }
            if budget == 0 {
                break;
            }
        }
    }

    fn rename_and_insert(&mut self, tid: ThreadId, entry: FetchedEntry, now: u64) {
        let rec = entry.rec;
        let seq = self.threads[tid].seq;
        self.threads[tid].seq += 1;
        // Global dispatch-order stamp: orders instructions across
        // threads for oldest-first select (equal to `seq` when only
        // one thread runs).
        let age = self.age;
        self.age += 1;

        // Sources: current mappings in this thread's map table.
        let mut srcs = [None, None];
        for (slot, src) in rec.inst.sources().into_iter().enumerate() {
            if let Some(r) = src {
                let p = self.threads[tid].map[r.index() as usize];
                srcs[slot] = Some(p);
                let info = &mut self.preg_info[p as usize];
                info.consumers_renamed += 1;
                info.consumers_outstanding += 1;
            }
        }

        // Destination: allocate from this thread's partition and remap.
        let mut dest = None;
        let mut prev = None;
        if let Some(r) = rec.inst.dest() {
            let p = match &mut self.shared_pool {
                Some(pool) => {
                    let p = pool.free.pop().expect("dispatch checked the pool");
                    pool.owner[p as usize] = tid as u16;
                    pool.live[tid] += 1;
                    p
                }
                None => self.threads[tid]
                    .freelist
                    .pop()
                    .expect("dispatch checked the freelist"),
            };
            let old = self.threads[tid].map[r.index() as usize];
            self.threads[tid].map[r.index() as usize] = p;
            prev = Some(old);
            dest = Some(p);

            // The old value's architectural name is gone: transfer
            // eligibility (two-level) begins once consumers drain.
            let old_info = &mut self.preg_info[old as usize];
            old_info.reassigned_seq = Some(seq);
            if old_info.consumers_outstanding == 0 {
                if let Storage::TwoLevel { file } = &mut self.storage {
                    file.mark_eligible(PhysReg(old), seq);
                }
            }

            // Degree-of-use prediction for the new value.
            let prediction = self.threads[tid].douse.predict(rec.pc, entry.hist);
            self.preg_time[p as usize] = PregTime::UNKNOWN;
            let mut info = PregInfo {
                producer_pc: rec.pc,
                producer_hist: entry.hist,
                // Wrong-path values never complete a real lifetime, so
                // they do not train the degree predictor (their *reads*
                // of correct-path values still pollute use counts, as
                // in §3.4).
                trainable: !entry.wrong_path,
                alloc_time: now,
                active: true,
                ..PregInfo::EMPTY
            };
            match &mut self.storage {
                Storage::Cached {
                    cache,
                    assigner,
                    tracker,
                    ..
                } => {
                    let cfg = *cache.config();
                    tracker.init(
                        PhysReg(p),
                        prediction,
                        cfg.unknown_default,
                        cfg.max_use_count,
                    );
                    let degree = tracker.predicted(PhysReg(p));
                    if let Some(ck) = self.checker.as_mut() {
                        ck.on_init(
                            p,
                            tracker.remaining(PhysReg(p)),
                            tracker.is_pinned(PhysReg(p)),
                        );
                    }
                    info.predicted = degree;
                    info.set = assigner.assign(PhysReg(p), degree);
                    cache.produce(PhysReg(p));
                }
                Storage::TwoLevel { file } => {
                    let ok = file.try_allocate(PhysReg(p));
                    debug_assert!(ok, "dispatch checked the L1 free count");
                }
                Storage::Monolithic { .. } => {}
            }
            self.preg_info[p as usize] = info;
        }

        if (age as usize) < self.config.trace_instructions {
            self.trace.push(InstTrace {
                seq,
                pc: rec.pc,
                asm: rec.inst.to_string(),
                fetch: entry.fetch_cycle,
                dispatch: now,
                issue: 0,
                exec_start: 0,
                exec_done: 0,
                retire: 0,
                operands: [None, None],
                replays: 0,
                wrong_path: entry.wrong_path,
            });
        }
        if self.config.model_store_forwarding && rec.inst.is_store() {
            let granule = rec.mem_addr.expect("store has an address") / 8;
            self.threads[tid]
                .store_granules
                .entry(granule)
                .or_default()
                .push((seq, None));
        }
        let t = &mut self.threads[tid];
        t.rob.push_back(DynInst {
            tid,
            seq,
            age,
            rec,
            class: rec.inst.class(),
            srcs,
            dest,
            prev,
            status: Status::Waiting,
            exec_done: u64::MAX,
            fetch_cycle: entry.fetch_cycle,
            mispredicted: entry.mispredicted,
            wrong_path: entry.wrong_path,
        });
        t.sched.push_back(IssueSlot {
            wake: now + 1,
            age,
            earliest_issue: now + 1,
            srcs: srcs.map(|s| s.unwrap_or(NO_SRC)),
            in_timed: true,
        });
        t.timed.push(t.sched_base + (t.sched.len() - 1) as u64);
        t.due_hint = t.due_hint.min(now + 1);
        self.window_count += 1;

        // The rename map as of the mispredicted branch is what the
        // squash restores. Copied into a persistent buffer (no
        // per-branch allocation).
        if entry.mispredicted && t.wp_resolve_seq == Some(seq) {
            t.wp_map_checkpoint.clear();
            t.wp_map_checkpoint.extend_from_slice(&t.map);
            t.wp_map_saved = true;
        }
    }
}
