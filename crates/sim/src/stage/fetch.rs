//! Fetch stage: picks a hardware thread with an ICOUNT-style chooser,
//! pulls its records from the functional emulator through the I-cache
//! model, runs the (per-thread) branch predictors, and feeds the
//! thread's fetch→rename latch. Begins wrong-path fetch at mispredicted
//! branches (checkpointing that thread's front end) and back-pressures
//! on a full latch.

use super::{CoreState, FetchedEntry, ThreadId};
use crate::check::SimError;
use crate::config::FetchPolicy;
use crate::inject::FaultKind;
use ubrc_emu::{ExecRecord, StepOutcome};
use ubrc_isa::Inst;

impl CoreState {
    fn next_record(&mut self, tid: ThreadId) -> Option<ExecRecord> {
        let t = &mut self.threads[tid];
        if t.stream_done {
            return None;
        }
        if t.machine.in_speculation() {
            // Wrong-path execution may fault or halt; either simply
            // ends speculative fetch until the branch resolves.
            return match t.machine.step() {
                Ok(StepOutcome::Executed(r)) => Some(r),
                Ok(StepOutcome::Halted) | Err(_) => None,
            };
        }
        match t.machine.step() {
            Ok(StepOutcome::Executed(r)) => {
                if r.inst == Inst::Halt {
                    t.stream_done = true;
                }
                Some(r)
            }
            Ok(StepOutcome::Halted) => {
                t.stream_done = true;
                None
            }
            Err(e) => {
                // A correct-path fault means the workload itself is
                // broken; surface it as a structured error at the end
                // of this cycle instead of panicking mid-fetch.
                t.stream_done = true;
                self.error = Some(Box::new(SimError::Emu(e)));
                None
            }
        }
    }

    /// Whether thread `tid` can fetch this cycle.
    fn fetch_eligible(&self, tid: ThreadId, now: u64) -> bool {
        let queue_cap = self.config.fetch_width * (self.config.frontend_stages as usize + 1);
        let t = &self.threads[tid];
        !t.halt_fetched
            && t.waiting_on_branch.is_none()
            && now >= t.fetch_resume
            && t.fetch_latch.queue.len() < queue_cap
    }

    /// ICOUNT-style fetch chooser (fewest in-flight instructions):
    /// among the threads able to fetch this cycle, pick the one with
    /// the fewest instructions between fetch and retirement (fetch
    /// latch + ROB), breaking ties toward the lower thread id. A pure
    /// function of architectural state — seedless, so replays are
    /// bit-identical.
    fn choose_fetch_thread(&self, now: u64) -> Option<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|&(tid, _)| self.fetch_eligible(tid, now))
            .min_by_key(|&(tid, t)| (t.fetch_latch.queue.len() + t.rob.len(), tid))
            .map(|(tid, _)| tid)
    }

    /// Round-robin chooser: the first eligible thread strictly after the
    /// last one granted a slot, wrapping. Also deterministic.
    fn choose_round_robin(&self, now: u64) -> Option<ThreadId> {
        let n = self.threads.len();
        (1..=n)
            .map(|step| (self.last_fetch_tid + step) % n)
            .find(|&tid| self.fetch_eligible(tid, now))
    }

    pub(crate) fn fetch(&mut self, now: u64) {
        match self.config.fetch_policy {
            FetchPolicy::Icount => {
                if let Some(tid) = self.choose_fetch_thread(now) {
                    self.fetch_thread(tid, now);
                }
            }
            FetchPolicy::RoundRobin => {
                if let Some(tid) = self.choose_round_robin(now) {
                    self.last_fetch_tid = tid;
                    self.fetch_thread(tid, now);
                }
            }
            FetchPolicy::Icount28 => {
                // The two least-loaded eligible threads each fetch a
                // block, lowest ICOUNT first (one thread degenerates to
                // plain ICOUNT). Eligibility is re-evaluated for the
                // second slot: the first block may have filled the latch
                // or stalled fetch for its thread.
                let Some(first) = self.choose_fetch_thread(now) else {
                    return;
                };
                self.fetch_thread(first, now);
                if let Some(second) = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|&(tid, _)| tid != first && self.fetch_eligible(tid, now))
                    .min_by_key(|&(tid, t)| (t.fetch_latch.queue.len() + t.rob.len(), tid))
                    .map(|(tid, _)| tid)
                {
                    self.fetch_thread(second, now);
                }
            }
        }
    }

    fn fetch_thread(&mut self, tid: ThreadId, now: u64) {
        let queue_cap = self.config.fetch_width * (self.config.frontend_stages as usize + 1);
        let mut line: Option<u64> = None;
        for _ in 0..self.config.fetch_width {
            if self.threads[tid].fetch_latch.queue.len() >= queue_cap {
                break;
            }
            // Model the I-cache at line granularity.
            let Some(rec) = self.peek_record(tid) else {
                break;
            };
            let this_line = rec.pc / self.config.memsys.l1.line_bytes as u64;
            if line != Some(this_line) {
                let extra = self.memsys.fetch_latency(rec.pc);
                if extra > 0 {
                    self.threads[tid].fetch_resume = now + extra as u64;
                    break;
                }
                line = Some(this_line);
            }
            let mut rec = self.take_record(tid).expect("peeked");
            let on_wrong_path = self.threads[tid].wrong_path;
            if let Some(inj) = self.injector.as_mut() {
                if inj.armed_for(FaultKind::CorruptRecord) && !on_wrong_path {
                    if let Some(v) = rec.dest_val.filter(|_| rec.inst != Inst::Halt) {
                        // Timing-neutral: `dest_val` never feeds the
                        // timing model, so only the oracle can see this.
                        rec.dest_val = Some(v ^ (1u64 << (inj.next_u64() % 64)));
                        inj.disarm(FaultKind::CorruptRecord);
                    }
                }
            }
            let t = &mut self.threads[tid];
            let hist = t.ghist;
            let mut mispredicted = false;
            let mut end_block = false;

            // The wrong target to fetch down on a misprediction, when
            // one exists (None for unknown indirect targets).
            let mut wrong_target: Option<u64> = None;
            match rec.inst {
                Inst::Branch { off, .. } => {
                    self.cond_branches += 1;
                    let t = &mut self.threads[tid];
                    let pred = t.branch_pred.predict(rec.pc, t.ghist);
                    t.branch_pred.update(rec.pc, t.ghist, rec.taken, pred);
                    t.ghist.push(rec.taken);
                    if pred != rec.taken {
                        self.branch_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = Some(if rec.taken {
                            rec.pc + 4 // predicted not-taken: fall through
                        } else {
                            rec.pc
                                .wrapping_add(4)
                                .wrapping_add((off as i64 as u64).wrapping_mul(4))
                        });
                    }
                    end_block = rec.taken;
                }
                Inst::Jump { link, .. } => {
                    // Direct target + perfect BTB: never mispredicts.
                    if link {
                        t.ras.push(rec.pc + 4);
                    }
                    end_block = true;
                }
                Inst::JumpReg { .. } => {
                    self.indirect_branches += 1;
                    let t = &mut self.threads[tid];
                    let predicted_target = if rec.inst.is_return() {
                        t.ras.pop()
                    } else {
                        t.indirect.predict(rec.pc, t.ghist)
                    };
                    t.indirect.update(rec.pc, t.ghist, rec.next_pc);
                    if rec.inst.is_call() {
                        t.ras.push(rec.pc + 4);
                    }
                    if predicted_target != Some(rec.next_pc) {
                        self.indirect_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = predicted_target;
                    }
                    end_block = true;
                }
                _ => {}
            }

            let is_halt = rec.inst == Inst::Halt;
            let t = &mut self.threads[tid];
            t.fetch_latch.queue.push_back(FetchedEntry {
                rec,
                ready_at: now + self.config.frontend_stages as u64,
                fetch_cycle: now,
                hist,
                mispredicted,
                wrong_path: t.wrong_path,
            });
            if mispredicted {
                // The seq the branch will get at rename: the thread's
                // latch renames FIFO with consecutive per-thread seqs.
                let branch_seq = t.seq + t.fetch_latch.queue.len() as u64 - 1;
                if let (Some(wt), false) = (wrong_target, t.wrong_path) {
                    // Begin wrong-path fetch at the predicted target.
                    // Checkpoints restore the front end at the squash;
                    // the rename map is snapshotted when the branch
                    // dispatches. The RAS checkpoint copies into a
                    // persistent buffer (no per-branch allocation).
                    t.wrong_path = true;
                    t.wp_resolve_seq = Some(branch_seq);
                    t.wp_ghist = t.ghist;
                    t.wp_ras.copy_from(&t.ras);
                    t.wp_ras_saved = true;
                    t.peeked = None;
                    t.machine.enter_speculation(wt);
                } else {
                    // Unknown wrong target, or already on a wrong path
                    // (nested speculation): stall fetch until the
                    // branch resolves.
                    t.waiting_on_branch = Some(branch_seq);
                }
                break;
            }
            if is_halt {
                if !t.wrong_path {
                    t.halt_fetched = true;
                }
                break;
            }
            if end_block {
                break;
            }
        }
    }

    // Small one-record lookahead buffer for fetch.
    fn peek_record(&mut self, tid: ThreadId) -> Option<ExecRecord> {
        if self.threads[tid].peeked.is_none() {
            self.threads[tid].peeked = self.next_record(tid);
        }
        self.threads[tid].peeked
    }

    fn take_record(&mut self, tid: ThreadId) -> Option<ExecRecord> {
        self.peek_record(tid);
        self.threads[tid].peeked.take()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::Simulator;
    use ubrc_workloads::{workload_by_name, Scale};

    /// Fetch back-pressures on the fetch→rename latch: with dispatch
    /// stalled by a tiny ROB, the latch fills to exactly
    /// `fetch_width * (frontend_stages + 1)` entries and no further,
    /// and the ROB itself never exceeds its capacity.
    #[test]
    fn fetch_stops_at_the_latch_capacity_when_dispatch_stalls() {
        let w = workload_by_name("crc", Scale::Tiny).unwrap();
        let mut config = SimConfig::paper_default();
        config.rob_entries = 4;
        let cap = config.fetch_width * (config.frontend_stages as usize + 1);
        let mut sim = Simulator::new(w.assemble().unwrap(), config);
        let mut latch_peak = 0;
        for _ in 0..2_000 {
            sim.core.cycle();
            let t = &sim.core.threads[0];
            latch_peak = latch_peak.max(t.fetch_latch.queue.len());
            assert!(t.fetch_latch.queue.len() <= cap, "latch overflow");
            assert!(t.rob.len() <= 4, "dispatch ignored the ROB cap");
        }
        assert_eq!(
            latch_peak, cap,
            "the latch should fill while the ROB stalls"
        );
    }
}
