//! Fetch stage: pulls records from the functional emulator through the
//! I-cache model, runs the branch predictors, and feeds the
//! fetch→rename latch. Begins wrong-path fetch at mispredicted
//! branches (checkpointing the front end) and back-pressures on a full
//! latch.

use super::{CoreState, FetchedEntry};
use crate::check::SimError;
use crate::inject::FaultKind;
use ubrc_emu::{ExecRecord, StepOutcome};
use ubrc_isa::Inst;

impl CoreState {
    fn next_record(&mut self) -> Option<ExecRecord> {
        if self.stream_done {
            return None;
        }
        if self.machine.in_speculation() {
            // Wrong-path execution may fault or halt; either simply
            // ends speculative fetch until the branch resolves.
            return match self.machine.step() {
                Ok(StepOutcome::Executed(r)) => Some(r),
                Ok(StepOutcome::Halted) | Err(_) => None,
            };
        }
        match self.machine.step() {
            Ok(StepOutcome::Executed(r)) => {
                if r.inst == Inst::Halt {
                    self.stream_done = true;
                }
                Some(r)
            }
            Ok(StepOutcome::Halted) => {
                self.stream_done = true;
                None
            }
            Err(e) => {
                // A correct-path fault means the workload itself is
                // broken; surface it as a structured error at the end
                // of this cycle instead of panicking mid-fetch.
                self.stream_done = true;
                self.error = Some(Box::new(SimError::Emu(e)));
                None
            }
        }
    }

    pub(crate) fn fetch(&mut self, now: u64) {
        if now < self.fetch_resume || self.waiting_on_branch.is_some() || self.halt_fetched {
            return;
        }
        let queue_cap = self.config.fetch_width * (self.config.frontend_stages as usize + 1);
        let mut line: Option<u64> = None;
        for _ in 0..self.config.fetch_width {
            if self.fetch_latch.queue.len() >= queue_cap {
                break;
            }
            // Model the I-cache at line granularity.
            let Some(rec) = self.peek_record() else { break };
            let this_line = rec.pc / self.config.memsys.l1.line_bytes as u64;
            if line != Some(this_line) {
                let extra = self.memsys.fetch_latency(rec.pc);
                if extra > 0 {
                    self.fetch_resume = now + extra as u64;
                    break;
                }
                line = Some(this_line);
            }
            let mut rec = self.take_record().expect("peeked");
            if let Some(inj) = self.injector.as_mut() {
                if inj.armed_for(FaultKind::CorruptRecord) && !self.wrong_path {
                    if let Some(v) = rec.dest_val.filter(|_| rec.inst != Inst::Halt) {
                        // Timing-neutral: `dest_val` never feeds the
                        // timing model, so only the oracle can see this.
                        rec.dest_val = Some(v ^ (1u64 << (inj.next_u64() % 64)));
                        inj.disarm(FaultKind::CorruptRecord);
                    }
                }
            }
            let hist = self.ghist;
            let mut mispredicted = false;
            let mut end_block = false;

            // The wrong target to fetch down on a misprediction, when
            // one exists (None for unknown indirect targets).
            let mut wrong_target: Option<u64> = None;
            match rec.inst {
                Inst::Branch { off, .. } => {
                    self.cond_branches += 1;
                    let pred = self.branch_pred.predict(rec.pc, self.ghist);
                    self.branch_pred.update(rec.pc, self.ghist, rec.taken, pred);
                    self.ghist.push(rec.taken);
                    if pred != rec.taken {
                        self.branch_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = Some(if rec.taken {
                            rec.pc + 4 // predicted not-taken: fall through
                        } else {
                            rec.pc
                                .wrapping_add(4)
                                .wrapping_add((off as i64 as u64).wrapping_mul(4))
                        });
                    }
                    end_block = rec.taken;
                }
                Inst::Jump { link, .. } => {
                    // Direct target + perfect BTB: never mispredicts.
                    if link {
                        self.ras.push(rec.pc + 4);
                    }
                    end_block = true;
                }
                Inst::JumpReg { .. } => {
                    self.indirect_branches += 1;
                    let predicted_target = if rec.inst.is_return() {
                        self.ras.pop()
                    } else {
                        self.indirect.predict(rec.pc, self.ghist)
                    };
                    self.indirect.update(rec.pc, self.ghist, rec.next_pc);
                    if rec.inst.is_call() {
                        self.ras.push(rec.pc + 4);
                    }
                    if predicted_target != Some(rec.next_pc) {
                        self.indirect_mispredicts += 1;
                        mispredicted = true;
                        wrong_target = predicted_target;
                    }
                    end_block = true;
                }
                _ => {}
            }

            let is_halt = rec.inst == Inst::Halt;
            self.fetch_latch.queue.push_back(FetchedEntry {
                rec,
                ready_at: now + self.config.frontend_stages as u64,
                fetch_cycle: now,
                hist,
                mispredicted,
                wrong_path: self.wrong_path,
            });
            if mispredicted {
                let branch_seq = self.seq + self.fetch_latch.queue.len() as u64 - 1;
                if let (Some(wt), false) = (wrong_target, self.wrong_path) {
                    // Begin wrong-path fetch at the predicted target.
                    // Checkpoints restore the front end at the squash;
                    // the rename map is snapshotted when the branch
                    // dispatches. The RAS checkpoint copies into a
                    // persistent buffer (no per-branch allocation).
                    self.wrong_path = true;
                    self.wp_resolve_seq = Some(branch_seq);
                    self.wp_ghist = self.ghist;
                    self.wp_ras.copy_from(&self.ras);
                    self.wp_ras_saved = true;
                    self.peeked = None;
                    self.machine.enter_speculation(wt);
                } else {
                    // Unknown wrong target, or already on a wrong path
                    // (nested speculation): stall fetch until the
                    // branch resolves.
                    self.waiting_on_branch = Some(branch_seq);
                }
                break;
            }
            if is_halt {
                if !self.wrong_path {
                    self.halt_fetched = true;
                }
                break;
            }
            if end_block {
                break;
            }
        }
    }

    // Small one-record lookahead buffer for fetch.
    fn peek_record(&mut self) -> Option<ExecRecord> {
        if self.peeked.is_none() {
            self.peeked = self.next_record();
        }
        self.peeked
    }

    fn take_record(&mut self) -> Option<ExecRecord> {
        self.peek_record();
        self.peeked.take()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::Simulator;
    use ubrc_workloads::{workload_by_name, Scale};

    /// Fetch back-pressures on the fetch→rename latch: with dispatch
    /// stalled by a tiny ROB, the latch fills to exactly
    /// `fetch_width * (frontend_stages + 1)` entries and no further,
    /// and the ROB itself never exceeds its capacity.
    #[test]
    fn fetch_stops_at_the_latch_capacity_when_dispatch_stalls() {
        let w = workload_by_name("crc", Scale::Tiny).unwrap();
        let mut config = SimConfig::paper_default();
        config.rob_entries = 4;
        let cap = config.fetch_width * (config.frontend_stages as usize + 1);
        let mut sim = Simulator::new(w.assemble().unwrap(), config);
        let mut latch_peak = 0;
        for _ in 0..2_000 {
            sim.core.cycle();
            latch_peak = latch_peak.max(sim.core.fetch_latch.queue.len());
            assert!(sim.core.fetch_latch.queue.len() <= cap, "latch overflow");
            assert!(sim.core.rob.len() <= 4, "dispatch ignored the ROB cap");
        }
        assert_eq!(
            latch_peak, cap,
            "the latch should fill while the ROB stalls"
        );
    }
}
