//! Wrong-path squash: tears down everything younger than a resolved
//! mispredicted branch and restores that thread's front-end
//! checkpoints. Every inter-stage latch holding the thread's wrong-path
//! work is cleared here; the other thread's state is never touched.

use super::{CoreState, PregInfo, PregTime, Status, Storage, ThreadId};
use ubrc_core::PhysReg;

impl CoreState {
    /// Squashes everything in thread `tid` younger than its resolved
    /// mispredicted branch: ROB/window entries, renamed registers, LSQ
    /// entries, the fetch latch, and the speculative emulator state.
    pub(crate) fn squash_wrong_path(&mut self, tid: ThreadId, branch_seq: u64, now: u64) {
        let keep = self.threads[tid]
            .rob
            .iter()
            .position(|i| i.seq > branch_seq)
            .unwrap_or(self.threads[tid].rob.len());
        let mut removed = std::mem::take(&mut self.squash_buf);
        removed.clear();
        removed.extend(self.threads[tid].rob.drain(keep..));
        self.threads[tid].sched.truncate(keep);
        // Purge truncated positions eagerly: slots refilled after the
        // squash reuse the same absolute positions, so a stale `timed`
        // entry would alias a new instruction.
        let cut = self.threads[tid].sched_base + keep as u64;
        self.threads[tid].timed.retain(|&pos| pos < cut);
        for inst in removed.iter().rev() {
            debug_assert!(inst.wrong_path, "squashed a correct-path instruction");
            debug_assert_eq!(inst.tid, tid, "squashed another thread's instruction");
            self.wp_squashed += 1;
            if inst.status == Status::Waiting {
                self.window_count -= 1;
                // Issued instructions already consumed their reads.
                for p in inst.srcs.iter().flatten() {
                    let info = &mut self.preg_info[*p as usize];
                    if info.active {
                        info.consumers_outstanding = info.consumers_outstanding.saturating_sub(1);
                    }
                }
            }
            if self.config.model_store_forwarding && inst.rec.inst.is_store() {
                let granule = inst.rec.mem_addr.expect("store has an address") / 8;
                if let Some(stores) = self.threads[tid].store_granules.get_mut(&granule) {
                    stores.retain(|&(sseq, _)| sseq != inst.seq);
                    if stores.is_empty() {
                        self.threads[tid].store_granules.remove(&granule);
                    }
                }
            }
            if let Some(d) = inst.dest {
                if let Storage::Cached { assigner, .. } = &mut self.storage {
                    let info = &self.preg_info[d as usize];
                    assigner.release(info.set, info.predicted);
                }
                self.squash_free_preg(d, now);
                if let Some(prev) = inst.prev {
                    // The architectural name reverts to the old value.
                    let pi = &mut self.preg_info[prev as usize];
                    if pi.active {
                        pi.reassigned_seq = None;
                    }
                }
            }
        }
        self.squash_buf = removed;

        // Restore this thread's front end to the branch point. The map
        // swaps with its persistent checkpoint buffer (no allocation;
        // the stale wrong-path map is overwritten at the next save).
        let t = &mut self.threads[tid];
        assert!(
            t.wp_map_saved,
            "checkpoint saved when the branch dispatched"
        );
        std::mem::swap(&mut t.map, &mut t.wp_map_checkpoint);
        t.wp_map_saved = false;
        t.ghist = t.wp_ghist;
        assert!(t.wp_ras_saved, "RAS checkpoint saved");
        std::mem::swap(&mut t.ras, &mut t.wp_ras);
        t.wp_ras_saved = false;
        debug_assert!(t.fetch_latch.queue.iter().all(|e| e.wrong_path));
        t.fetch_latch.queue.clear();
        t.peeked = None;
        t.machine.abort_speculation();
        t.wrong_path = false;
        t.wp_resolve_seq = None;
        if t.waiting_on_branch.is_some_and(|w| w > branch_seq) {
            // An inner wrong-path misprediction was stalling fetch; it
            // no longer exists.
            t.waiting_on_branch = None;
        }
    }

    /// Machine-check squash (soft-error recovery): tears down thread
    /// `tid`'s *entire* speculative state — every in-flight instruction
    /// back to its last retirement — and restores the functional
    /// machine from the retirement checkpoint, so the thread refetches
    /// and replays from the instruction after its last retired one.
    /// Taken when a backing-file word (the architected copy, with no
    /// clean copy anywhere else) fails its parity check, and by the
    /// watchdog's one forced-recovery escalation. Only this thread's
    /// state is touched: SMT peers keep executing through the squash.
    pub(crate) fn machine_check_squash(&mut self, tid: ThreadId, now: u64) {
        let mut removed = std::mem::take(&mut self.squash_buf);
        removed.clear();
        removed.extend(self.threads[tid].rob.drain(..));
        self.threads[tid].sched.clear();
        self.threads[tid].timed.clear();
        // Youngest first, so each arch register's rename-map chain
        // unwinds one mapping at a time back to the retired state.
        for inst in removed.iter().rev() {
            debug_assert_eq!(inst.tid, tid, "squashed another thread's instruction");
            if inst.status == Status::Waiting {
                self.window_count -= 1;
                for p in inst.srcs.iter().flatten() {
                    let info = &mut self.preg_info[*p as usize];
                    if info.active {
                        info.consumers_outstanding = info.consumers_outstanding.saturating_sub(1);
                    }
                }
            }
            if let Some(d) = inst.dest {
                if let Storage::Cached { assigner, .. } = &mut self.storage {
                    let info = &self.preg_info[d as usize];
                    assigner.release(info.set, info.predicted);
                }
                if let Some(prev) = inst.prev {
                    // The youngest live mapping of this instruction's
                    // architectural destination is `d`; revert it.
                    let t = &mut self.threads[tid];
                    if let Some(slot) = t.map.iter().position(|&m| m == d) {
                        t.map[slot] = prev;
                    }
                    let pi = &mut self.preg_info[prev as usize];
                    if pi.active {
                        pi.reassigned_seq = None;
                    }
                }
                self.squash_free_preg(d, now);
            }
        }
        self.squash_buf = removed;

        // Full front-end reset: the thread refetches from the
        // checkpoint, so every latched fetch/decode artifact is stale.
        let t = &mut self.threads[tid];
        t.store_granules.clear();
        t.fetch_latch.queue.clear();
        t.peeked = None;
        t.halt_fetched = false;
        t.stream_done = false;
        t.waiting_on_branch = None;
        t.wrong_path = false;
        t.wp_resolve_seq = None;
        t.wp_map_saved = false;
        t.wp_ras_saved = false;
        // Restore the functional machine from the retirement
        // checkpoint (replacing it also discards any speculation the
        // old machine had entered). `clone_from` reuses the squashed
        // machine's buffers instead of reallocating the memory image
        // on every recovery.
        let recover = t.recover.as_deref().expect("recovery enabled");
        t.machine.clone_from(recover);
        t.fetch_resume = now + self.config.recovery.machine_check_penalty;
        t.machine_checks += 1;
        t.recoveries += 1;
        t.last_recovery = Some(now);
        // Latency is booked at the first post-squash retirement; keep
        // the earliest pending squash if several stack up before one.
        t.recovery_pending_since.get_or_insert(now);
    }

    /// Releases a wrong-path destination register: like a free at
    /// retirement, but with no degree-predictor training and no
    /// lifetime statistics (the value never completed a lifetime).
    fn squash_free_preg(&mut self, p: u16, now: u64) {
        let info = self.preg_info[p as usize];
        debug_assert!(info.active, "squash-freeing an inactive preg");
        if let Some(ck) = self.checker.as_mut() {
            ck.on_clear(p);
        }
        match &mut self.storage {
            Storage::Cached { cache, tracker, .. } => {
                cache.free(PhysReg(p), info.set, now);
                tracker.clear(PhysReg(p));
            }
            Storage::TwoLevel { file } => file.release(PhysReg(p)),
            Storage::Monolithic { .. } => {}
        }
        self.preg_info[p as usize] = PregInfo::EMPTY;
        self.preg_time[p as usize] = PregTime::UNKNOWN;
        self.preg_gen[p as usize] = self.preg_gen[p as usize].wrapping_add(1);
        // Anything parked on a wrong-path value is wrong-path itself
        // and is being squashed with it.
        self.preg_waiters[p as usize].clear();
        let tid = self.thread_of_preg(p);
        match &mut self.shared_pool {
            Some(pool) => {
                pool.live[tid] -= 1;
                pool.free.push(p);
            }
            None => self.threads[tid].freelist.push(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::Simulator;
    use ubrc_workloads::{workload_by_name, Scale};

    /// After any cycle on which the core is back on the correct path,
    /// no wrong-path state survives in any latch: the fetch→rename
    /// latch holds only correct-path entries, the ROB holds no
    /// wrong-path instructions, and both front-end checkpoints
    /// (rename map and RAS) have been released.
    #[test]
    fn squash_clears_wrong_path_state_from_every_latch() {
        let w = workload_by_name("bfs", Scale::Tiny).unwrap();
        let mut sim = Simulator::new(w.assemble().unwrap(), SimConfig::paper_default());
        let mut last_squashed = 0;
        let mut squash_cycles = 0;
        while !sim.core.halted && sim.core.now < 200_000 {
            sim.core.cycle();
            if sim.core.wp_squashed > last_squashed {
                last_squashed = sim.core.wp_squashed;
                squash_cycles += 1;
            }
            let t = &sim.core.threads[0];
            if !t.wrong_path {
                assert!(
                    t.fetch_latch.queue.iter().all(|e| !e.wrong_path),
                    "wrong-path entry left in the fetch latch after squash"
                );
                assert!(
                    t.rob.iter().all(|i| !i.wrong_path),
                    "wrong-path instruction left in the ROB after squash"
                );
                assert!(!t.wp_map_saved, "map checkpoint not released");
                assert!(!t.wp_ras_saved, "RAS checkpoint not released");
                assert!(t.wp_resolve_seq.is_none());
            }
        }
        assert!(sim.core.halted, "bfs should run to completion");
        assert!(squash_cycles > 0, "bfs must mispredict at least once");
    }
}
