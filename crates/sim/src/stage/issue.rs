//! Issue stage: event-driven wake-up/select, operand acquisition
//! (bypass / cache hit / miss), execution-latency charging, load-hit
//! speculation, and branch-resolution redirects.
//!
//! The window is shared between threads; select merges each thread's
//! due instructions oldest-first by the global dispatch `age` stamp.

use super::{CoreState, PregTime, Status, Storage, ThreadId, NO_SRC, SCHED_ISSUED, SCHED_PARKED};
use crate::config::FuPools;
use crate::trace::OperandPath;
use ubrc_core::PhysReg;
use ubrc_isa::ExecClass;

impl CoreState {
    /// ROB position of a live instruction in its thread, by per-thread
    /// seq. Each thread's ROB is sorted by seq but *not* contiguous: a
    /// wrong-path squash removes the tail without rolling back the seq
    /// counter, leaving a gap. `None` means retired or squashed.
    fn rob_index(&self, tid: ThreadId, seq: u64) -> Option<usize> {
        self.threads[tid]
            .rob
            .binary_search_by(|i| i.seq.cmp(&seq))
            .ok()
    }

    /// Re-arms a waiting instruction's `next_wake` deadline: if a
    /// source's timing is unknown it parks on that register's waiter
    /// list (re-armed when the producer issues); otherwise the deadline
    /// becomes the earliest cycle every operand could be ready.
    ///
    /// Deadlines are lower bounds — readiness only moves *later* after
    /// being advertised (miss-raised `storage_avail`, load retimes),
    /// and an instruction that fails its ready check at the deadline
    /// simply re-arms itself — so no wake-up is ever lost.
    ///
    /// A register's waiters are always instructions of the thread that
    /// owns its partition (maps never hold another thread's pregs), so
    /// the waiter list stores the bare per-thread seq.
    fn rearm_wake(&mut self, tid: ThreadId, idx: usize, lower: u64) {
        let slot = self.threads[tid].sched[idx];
        let mut wake = lower.max(slot.earliest_issue);
        loop {
            let mut next = wake;
            for &p in slot.srcs.iter().filter(|&&p| p != NO_SRC) {
                let pt = self.preg_time[p as usize];
                if !pt.known {
                    let seq = self.threads[tid].rob[idx].seq;
                    self.preg_waiters[p as usize].push(seq);
                    self.threads[tid].sched[idx].wake = SCHED_PARKED;
                    return;
                }
                next = next.max(pt.next_ready_at(next));
            }
            if next == wake {
                break;
            }
            wake = next;
        }
        let t = &mut self.threads[tid];
        let s = &mut t.sched[idx];
        s.wake = wake;
        if !std::mem::replace(&mut s.in_timed, true) {
            t.timed.push(t.sched_base + idx as u64);
        }
        t.due_hint = t.due_hint.min(wake);
    }

    /// Un-parks everything waiting on `p`, called when the producer
    /// issues and `p`'s timing becomes known. The deadline is reset
    /// lazily to the next cycle; the select scan recomputes it from the
    /// now-known timing on examination.
    fn wake_preg_waiters(&mut self, p: u16, now: u64) {
        if self.preg_waiters[p as usize].is_empty() {
            return;
        }
        let tid = self.thread_of_preg(p);
        let mut waiters = std::mem::take(&mut self.preg_waiters[p as usize]);
        for seq in waiters.drain(..) {
            if let Some(idx) = self.rob_index(tid, seq) {
                let t = &mut self.threads[tid];
                if t.rob[idx].status == Status::Waiting {
                    let s = &mut t.sched[idx];
                    s.wake = now + 1;
                    if !std::mem::replace(&mut s.in_timed, true) {
                        t.timed.push(t.sched_base + idx as u64);
                    }
                    t.due_hint = t.due_hint.min(now + 1);
                }
            }
        }
        // Hand the (empty) buffer back to keep its capacity.
        self.preg_waiters[p as usize] = waiters;
    }

    pub(crate) fn issue(&mut self, now: u64) {
        let squashing = self.replay.take(now);
        let mut pool_used = [0usize; FuPools::NUM_POOLS];
        let mut total = 0;

        // Select oldest-ready-first across threads, in global dispatch
        // `age` order (with one thread this is exactly the order the
        // full-window scan visited), filtering each window slice down
        // to the instructions whose wake deadline has arrived.
        // Instructions losing a slot to issue width or a full FU pool
        // keep a due deadline and are re-examined next cycle; a failed
        // ready check re-arms the deadline.
        let mut due = std::mem::take(&mut self.due_buf);
        let mut selected = std::mem::take(&mut self.selected_buf);
        let mut bounds = std::mem::take(&mut self.due_bounds);
        due.clear();
        selected.clear();
        bounds.clear();
        for (tid, t) in self.threads.iter_mut().enumerate() {
            // Nothing in this thread's window can be due yet: skip the
            // scan outright. `due_hint` is a lower bound, so skipping
            // never drops a due instruction.
            if t.due_hint > now {
                bounds.push(due.len());
                continue;
            }
            // Walk only the slots with an armed (finite) deadline.
            // Every finite `sched` write enters its slot into `timed`,
            // so no due instruction can hide outside this list; slots
            // that have since issued or parked are dropped here.
            let before = due.len();
            let base = t.sched_base;
            let mut min_wake = u64::MAX;
            let mut timed = std::mem::take(&mut t.timed);
            timed.retain(|&pos| {
                if pos < base {
                    return false; // retired off the window's front
                }
                let idx = (pos - base) as usize;
                let s = &mut t.sched[idx];
                if s.wake >= SCHED_PARKED {
                    s.in_timed = false;
                    return false;
                }
                if s.wake <= now {
                    due.push((s.age, tid as u32, idx as u32));
                } else if s.wake < min_wake {
                    min_wake = s.wake;
                }
                true
            });
            t.timed = timed;
            // `timed` is in deadline-arming order; the merge needs each
            // thread's run in dispatch (`age`) order. Ages are unique,
            // so this reproduces exactly the order a front-to-back
            // window scan would have produced.
            if due.len() - before > 1 {
                due[before..].sort_unstable();
            }
            // Something due this cycle may survive the issue loop (lost
            // slot) and stay due, so the hint must not rise past `now`;
            // otherwise the exact minimum governs the next scan.
            t.due_hint = if due.len() > before { now } else { min_wake };
            bounds.push(due.len());
        }
        // Lazy k-way merge of the per-thread age-sorted runs: each
        // iteration picks the lowest age among the (at most nthreads)
        // run heads, which visits entries in exactly the order a fully
        // merged list would — but the loop usually stops at the issue
        // width, so the tail of the due set is never ordered at all
        // (the former full `sort_unstable` ordered everything).
        let mut heads = std::mem::take(&mut self.merge_heads);
        heads.clear();
        let mut start = 0;
        for &end in &bounds {
            if end > start {
                heads.push((start, end));
            }
            start = end;
        }
        self.due_bounds = bounds;
        loop {
            if total == self.config.issue_width || heads.is_empty() {
                break;
            }
            let mut best = 0;
            for r in 1..heads.len() {
                if due[heads[r].0].0 < due[heads[best].0].0 {
                    best = r;
                }
            }
            let (_, tid, i) = due[heads[best].0];
            heads[best].0 += 1;
            if heads[best].0 == heads[best].1 {
                heads.swap_remove(best);
            }
            let (tid, i) = (tid as usize, i as usize);
            let slot = &self.threads[tid].sched[i];
            debug_assert_eq!(self.threads[tid].rob[i].status, Status::Waiting);
            let ready = slot.earliest_issue <= now
                && slot
                    .srcs
                    .iter()
                    .all(|&p| p == NO_SRC || self.preg_time[p as usize].operand_ready(now));
            if !ready {
                self.rearm_wake(tid, i, now + 1);
                continue;
            }
            let inst = &self.threads[tid].rob[i];
            if self.config.model_store_forwarding && inst.rec.inst.is_load() {
                let granule = inst.rec.mem_addr.expect("load has an address") / 8;
                if let Some(stores) = self.threads[tid].store_granules.get(&granule) {
                    // The youngest store older than this load is the
                    // one it forwards from; it must have executed.
                    let blocking = stores
                        .iter()
                        .rev()
                        .find(|&&(sseq, _)| sseq < inst.seq)
                        .is_some_and(|&(_, done)| done.is_none_or(|d| d > now));
                    if blocking {
                        self.store_forward_stalls += 1;
                        continue;
                    }
                }
            }
            let inst = &self.threads[tid].rob[i];
            let pool = FuPools::pool_index(inst.class);
            if pool_used[pool] == self.config.fu.size(inst.class) {
                continue;
            }
            pool_used[pool] += 1;
            total += 1;
            selected.push((inst.seq, tid as u32, i as u32));
        }
        self.merge_heads = heads;

        if squashing {
            // Register-cache miss in the previous cycle: everything
            // issuing now replays (§5.2). The slots are consumed but no
            // effects occur; independents may reissue next cycle (their
            // deadlines stay due).
            self.replayed += selected.len() as u64;
            for &(_, tid, i) in &selected {
                let slot = &mut self.threads[tid as usize].sched[i as usize];
                slot.earliest_issue = now + 1;
                let age = slot.age;
                if let Some(t) = self.trace.get_mut(age as usize) {
                    t.replays += 1;
                }
            }
        } else {
            for &(seq, tid, i) in &selected {
                // A wrong-path squash during this loop removes a
                // thread's ROB tail; later selections pointing into it
                // are gone.
                let (tid, i) = (tid as usize, i as usize);
                if self.threads[tid]
                    .rob
                    .get(i)
                    .is_none_or(|inst| inst.seq != seq)
                {
                    continue;
                }
                self.issue_one(tid, i, now);
                // A detected backing-file fault escalates to a machine
                // check: the thread's entire in-flight state is
                // squashed and replayed from its last retirement.
                // Later selections for the thread fall to the
                // staleness guard above.
                if let Some(mc) = self.pending_machine_check.take() {
                    self.machine_check_squash(mc, now);
                }
            }
        }
        self.due_buf = due;
        self.selected_buf = selected;
    }

    fn issue_one(&mut self, tid: ThreadId, idx: usize, now: u64) {
        let (srcs, class, rec, fetch_cycle, mispredicted, dest, seq, age) = {
            let inst = &self.threads[tid].rob[idx];
            (
                inst.srcs,
                inst.class,
                inst.rec,
                inst.fetch_cycle,
                inst.mispredicted,
                inst.dest,
                inst.seq,
                inst.age,
            )
        };

        // Obtain each source operand: bypass, storage hit, or miss.
        let protection = self.protection();
        let mut counter_scrubs: u32 = 0;
        let mut parity_fill_latency: Option<u64> = None;
        let mut machine_check = false;
        let mut miss_avail: u64 = 0;
        let mut operand_paths: [Option<OperandPath>; 2] = [None, None];
        for (slot, p) in srcs
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
        {
            let t = self.preg_time[p as usize];
            if t.on_bypass(now) {
                self.operands_bypassed += 1;
                operand_paths[slot] = Some(OperandPath::Bypass((now - t.bypass_start) as u8));
                let stage = now - t.bypass_start;
                if let Storage::Cached { tracker, .. } = &mut self.storage {
                    if stage == 0 {
                        // First-stage bypass: visible to the write
                        // decision (§3.1). The consume reads the use
                        // counter, so a protected read detects a
                        // flipped counter and scrubs it first.
                        if protection.counter_parity && !tracker.parity_ok(PhysReg(p)) {
                            tracker.scrub(PhysReg(p));
                            if let Some(ck) = self.checker.as_mut() {
                                ck.on_scrub(p);
                            }
                            counter_scrubs += 1;
                        }
                        tracker.consume(PhysReg(p));
                        self.preg_info[p as usize].pre_write_bypasses += 1;
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_consume(p);
                        }
                    } else {
                        // Later stage: decrement the cache entry once
                        // the write has landed.
                        let set = self.preg_info[p as usize].set;
                        let gen = self.preg_gen[p as usize];
                        self.events.bypass_decs.push(t.storage_avail, (p, set, gen));
                    }
                }
            } else {
                // Storage path.
                self.operands_from_storage += 1;
                operand_paths[slot] = Some(OperandPath::Storage);
                if let Storage::Cached { cache, backing, .. } = &mut self.storage {
                    let set = self.preg_info[p as usize].set;
                    operand_paths[slot] = Some(OperandPath::CacheHit);
                    // A protected read checks the entry's parity tag
                    // first: a flipped data bit invalidates the entry,
                    // which turns this read into an ordinary miss —
                    // the re-fill from the backing file IS the
                    // recovery (the cache is write-through, so the
                    // backing word is a clean copy).
                    let parity_fault =
                        protection.cache_parity && cache.take_parity_fault(PhysReg(p), set, now);
                    if !cache.read(PhysReg(p), set, now) {
                        operand_paths[slot] = Some(OperandPath::CacheMiss);
                        if protection.backing_parity && !backing.parity_ok(PhysReg(p)) {
                            // The architected copy itself is corrupt:
                            // no clean copy exists anywhere, so the
                            // thread takes a machine check (squash and
                            // replay from its last retirement). The
                            // word is rewritten when the producer
                            // re-executes; scrub the tag now so the
                            // replayed read passes.
                            backing.scrub(PhysReg(p));
                            machine_check = true;
                        }
                        // Miss (Figure 3 star): file read through the
                        // single port, after the producer's write.
                        let avail = backing.read(PhysReg(p), now + 1);
                        let gen = self.preg_gen[p as usize];
                        self.events.fills.push(avail, (p, set, gen));
                        if let Some(ck) = self.checker.as_mut() {
                            ck.on_fill_scheduled(p, gen, avail);
                        }
                        self.preg_time[p as usize].storage_avail = avail + 1;
                        self.replay.mark(now + 1);
                        self.miss_events += 1;
                        miss_avail = miss_avail.max(avail);
                        if parity_fault {
                            // Recovery latency: the cycles this
                            // consumer waits for the re-fill.
                            let lat = (avail + 1).saturating_sub(now);
                            parity_fill_latency = Some(parity_fill_latency.unwrap_or(0).max(lat));
                        }
                    }
                }
            }
            // Common consumer bookkeeping. The value is actually read
            // when the consumer enters execute (issue + storage read),
            // which is what the live-time statistics measure.
            let info = &mut self.preg_info[p as usize];
            info.consumers_outstanding = info.consumers_outstanding.saturating_sub(1);
            if self.lifetimes.is_some() {
                let read_at = now + self.read_latency as u64 + 1;
                info.last_use = info.last_use.max(read_at);
            }
            if info.consumers_outstanding == 0 {
                if let Some(rseq) = info.reassigned_seq {
                    if let Storage::TwoLevel { file } = &mut self.storage {
                        file.mark_eligible(PhysReg(p), rseq);
                    }
                }
            }
        }

        for _ in 0..counter_scrubs {
            self.note_recovery(tid, now, 0);
        }
        if let Some(lat) = parity_fill_latency {
            self.note_recovery(tid, now, lat);
        }
        if machine_check {
            // Processed by the issue loop right after this instruction;
            // everything this call mutated (including the fill just
            // scheduled) is torn down by the squash's generation bumps.
            self.pending_machine_check = Some(tid);
        }

        // Effective issue time: delayed by the latest miss (the value
        // arrives at `avail`; execution begins the next cycle).
        let eff_issue = if miss_avail > 0 {
            now.max(miss_avail.saturating_sub(self.read_latency as u64))
        } else {
            now
        };

        // Execution latency; loads consult the memory hierarchy.
        let mut load_missed = false;
        let x = if class == ExecClass::Load {
            let addr = rec.mem_addr.expect("load has an address");
            let real = self.memsys.load_latency(addr, now);
            load_missed = real > ExecClass::Load.latency();
            real
        } else {
            class.latency()
        };
        let rl = self.read_latency as u64;
        let exec_done = eff_issue + rl + x as u64;

        // Load-hit speculation (21264-style, the model the paper reuses
        // for register cache misses): the scheduler advertises the
        // L1-hit latency; a miss squashes the two-cycle issue shadow
        // and the true readiness is installed at detection.
        let speculate_hit = load_missed && self.config.load_hit_speculation && dest.is_some();

        // Destination value timing and deferred cache write.
        if let Some(d) = dest {
            let adv_x = if speculate_hit {
                ExecClass::Load.latency() as u64
            } else {
                x as u64
            };
            let bypass_start = eff_issue + adv_x;
            let bypass_end = bypass_start + self.config.bypass_stages as u64 - 1;
            let storage_avail = match &self.storage {
                // A monolithic file's value is readable only after the
                // full write completes AND a full read can start after
                // it: consumers in between stall (the issue-restriction
                // gap of §2.2 that grows with file latency).
                Storage::Monolithic { write_latency } => {
                    eff_issue + adv_x + rl + *write_latency as u64
                }
                Storage::Cached { .. } | Storage::TwoLevel { .. } => bypass_end + 1,
            };
            self.preg_time[d as usize] = PregTime {
                known: true,
                bypass_start,
                bypass_end,
                storage_avail,
            };
            // The value's timing just became known: wake consumers
            // parked on it. (On a load-hit mis-speculation they wake
            // against the advertised timing, issue into the squashed
            // shadow, and re-key — exactly as the scan model replayed
            // them.)
            self.wake_preg_waiters(d, now);
            if speculate_hit {
                // The miss is detected as the first shadow dependents
                // head for execute: both advertised bypass cycles are
                // squashed (the 21264's two-cycle shadow) and the true
                // timing is installed at the end of the shadow.
                let detect = bypass_end;
                self.replay.mark(bypass_start);
                self.replay.mark(detect);
                self.load_replay_squashes += 1;
                let real_bypass_start = eff_issue + x as u64;
                let real_bypass_end = real_bypass_start + self.config.bypass_stages as u64 - 1;
                let real_storage = match &self.storage {
                    Storage::Monolithic { write_latency } => exec_done + *write_latency as u64,
                    _ => real_bypass_end + 1,
                };
                let real = PregTime {
                    known: true,
                    bypass_start: real_bypass_start,
                    bypass_end: real_bypass_end,
                    storage_avail: real_storage,
                };
                self.events
                    .retimes
                    .push(detect, (d, self.preg_gen[d as usize], real));
            }
            let collect_lifetimes = self.lifetimes.is_some();
            let info = &mut self.preg_info[d as usize];
            if collect_lifetimes {
                info.write_time = exec_done;
                info.last_use = info.last_use.max(exec_done);
            }
            let set = info.set;
            if let Storage::Cached { backing, .. } = &mut self.storage {
                backing.write(PhysReg(d), exec_done + 1);
                let gen = self.preg_gen[d as usize];
                self.events.writes.push(exec_done + 1, (d, set, gen));
            }
        }

        // Branch resolution redirects this thread's fetch (and squashes
        // the wrong path when one was fetched); the other thread's
        // front end never notices.
        if mispredicted {
            let mut resume =
                (exec_done + 1).max(fetch_cycle + self.config.min_branch_penalty as u64);
            if self.threads[tid].wp_resolve_seq == Some(seq) {
                self.squash_wrong_path(tid, seq, now);
            }
            if let Storage::TwoLevel { file } = &mut self.storage {
                // Values speculatively moved to the L2 by wrong-path
                // reassignments return during the refill.
                let count = file.on_mispredict(seq);
                resume += file.recovery_stall(count, resume.saturating_sub(now));
            }
            let t = &mut self.threads[tid];
            t.fetch_resume = resume;
            if t.waiting_on_branch == Some(seq) {
                t.waiting_on_branch = None;
            }
        }

        if self.config.model_store_forwarding && rec.inst.is_store() {
            let granule = rec.mem_addr.expect("store has an address") / 8;
            if let Some(stores) = self.threads[tid].store_granules.get_mut(&granule) {
                if let Some(entry) = stores.iter_mut().find(|e| e.0 == seq) {
                    entry.1 = Some(exec_done);
                }
            }
        }
        let t = &mut self.threads[tid];
        let inst = &mut t.rob[idx];
        inst.status = Status::Issued;
        inst.exec_done = exec_done;
        t.sched[idx].wake = SCHED_ISSUED;
        self.window_count -= 1;
        if let Some(t) = self.trace.get_mut(age as usize) {
            t.issue = now;
            t.exec_start = eff_issue + rl + 1;
            t.exec_done = exec_done;
            t.operands = operand_paths;
        }
    }
}
