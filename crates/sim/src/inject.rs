//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms faults at chosen cycles; each armed fault
//! lands at the first opportunity where its target state exists (a
//! live tracked value, a resident cache entry, a pending fill, a
//! fetched correct-path record). Target selection within a cycle is
//! driven by a seeded splitmix64 stream, so a given plan corrupts the
//! same state on every run — which is what lets the detection tests
//! assert *which* checker catches each fault class.
//!
//! Fault classes and their intended detectors:
//!
//! * [`FaultKind::FlipUsePrediction`] — flips bits of the stored
//!   remaining-use counter of a live value (a use-predictor
//!   output/counter-SRAM upset). Detected by the invariant checker's
//!   use-tracker mirror.
//! * [`FaultKind::DropFill`] — deletes a scheduled register-cache fill
//!   event. Detected by the checker's fill-obligation mirror when the
//!   due cycle passes unfilled.
//! * [`FaultKind::CorruptReplacement`] — unpins a resident entry and
//!   forces its use counter to 255. Detected by the cache audit
//!   (counter exceeds `max_use_count`) or the pinned-entry cross-check.
//! * [`FaultKind::CorruptRecord`] — flips one bit of a fetched
//!   correct-path record's architectural result. Timing-neutral;
//!   detected by the co-simulation oracle at retirement.

/// A deterministic fault-injection campaign (`SimConfig::fault_plan`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for within-cycle target selection.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan injecting one fault of `kind` at `at_cycle`.
    pub fn single(seed: u64, at_cycle: u64, kind: FaultKind) -> Self {
        Self {
            seed,
            faults: vec![FaultSpec { at_cycle, kind }],
        }
    }
}

/// One fault: what to corrupt and when to arm it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cycle at which the fault becomes armed; it lands at the first
    /// applicable opportunity from then on.
    pub at_cycle: u64,
    /// The corruption to perform.
    pub kind: FaultKind,
}

/// The classes of state corruption the injector can perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt the stored remaining-use counter of a live value.
    FlipUsePrediction,
    /// Drop a scheduled register-cache fill.
    DropFill,
    /// Corrupt a resident cache entry's replacement metadata.
    CorruptReplacement,
    /// Flip one architectural-result bit in a fetched record.
    CorruptRecord,
}

pub(crate) struct Injector {
    state: u64,
    pending: Vec<FaultSpec>,
    pub(crate) armed: Vec<FaultKind>,
}

impl Injector {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        Self {
            // splitmix64 degenerates briefly from state 0; mix the seed
            // once so seed 0 is as good as any.
            state: plan.seed ^ 0x6A09_E667_F3BC_C909,
            pending: plan.faults.clone(),
            armed: Vec::new(),
        }
    }

    /// Moves faults whose cycle has arrived into the armed set.
    pub(crate) fn arm(&mut self, now: u64) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].at_cycle <= now {
                let spec = self.pending.swap_remove(i);
                self.armed.push(spec.kind);
            } else {
                i += 1;
            }
        }
    }

    /// Whether any fault of `kind` is currently armed.
    pub(crate) fn armed_for(&self, kind: FaultKind) -> bool {
        self.armed.contains(&kind)
    }

    /// Removes one armed fault of `kind` (after it landed).
    pub(crate) fn disarm(&mut self, kind: FaultKind) {
        if let Some(i) = self.armed.iter().position(|&k| k == kind) {
            self.armed.swap_remove(i);
        }
    }

    /// Next value of the seeded splitmix64 stream.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let plan = FaultPlan::single(42, 0, FaultKind::DropFill);
        let mut a = Injector::new(&plan);
        let mut b = Injector::new(&plan);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Injector::new(&FaultPlan::single(43, 0, FaultKind::DropFill));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn arming_respects_cycles() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![
                FaultSpec {
                    at_cycle: 5,
                    kind: FaultKind::DropFill,
                },
                FaultSpec {
                    at_cycle: 10,
                    kind: FaultKind::CorruptRecord,
                },
            ],
        };
        let mut inj = Injector::new(&plan);
        inj.arm(4);
        assert!(inj.armed.is_empty());
        inj.arm(5);
        assert!(inj.armed_for(FaultKind::DropFill));
        assert!(!inj.armed_for(FaultKind::CorruptRecord));
        inj.arm(12);
        assert!(inj.armed_for(FaultKind::CorruptRecord));
        inj.disarm(FaultKind::DropFill);
        assert!(!inj.armed_for(FaultKind::DropFill));
    }
}
