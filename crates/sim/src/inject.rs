//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms faults at chosen cycles; each armed fault
//! lands at the first opportunity where its target state exists (a
//! live tracked value, a resident cache entry, a pending fill, a
//! fetched correct-path record). Target selection within a cycle is
//! driven by a seeded splitmix64 stream, so a given plan corrupts the
//! same state on every run — which is what lets the detection tests
//! assert *which* checker catches each fault class.
//!
//! Fault classes and their intended detectors:
//!
//! * [`FaultKind::FlipUsePrediction`] — flips bits of the stored
//!   remaining-use counter of a live value (a use-predictor
//!   output/counter-SRAM upset). Detected by the invariant checker's
//!   use-tracker mirror.
//! * [`FaultKind::DropFill`] — deletes a scheduled register-cache fill
//!   event. Detected by the checker's fill-obligation mirror when the
//!   due cycle passes unfilled.
//! * [`FaultKind::CorruptReplacement`] — unpins a resident entry and
//!   forces its use counter to 255. Detected by the cache audit
//!   (counter exceeds `max_use_count`) or the pinned-entry cross-check.
//! * [`FaultKind::CorruptRecord`] — flips one bit of a fetched
//!   correct-path record's architectural result. Timing-neutral;
//!   detected by the co-simulation oracle at retirement.
//!
//! The *recoverable* classes model transient upsets in structures the
//! protection layer (`ProtectionConfig`) guards with parity; with the
//! matching protection flag on, a `RecoveryPolicy` detects each upset
//! at the read port and recovers instead of diverging:
//!
//! * [`FaultKind::FlipCacheData`] — flips a data bit of a resident
//!   register-cache entry. Detected by the cache read port's parity
//!   check; recovered by invalidate-and-refill from the backing file.
//! * [`FaultKind::FlipUseCounter`] — flips bits of a live value's
//!   remaining-use counter *and* marks its parity bad. Detected at the
//!   counter read; recovered by scrubbing to the conservative
//!   zero-remaining state (counters are hints, never correctness).
//! * [`FaultKind::FlipBackingWord`] — flips a bit of a backing-file
//!   word (the architected copy). Detected at the miss-read port;
//!   recovered by a machine-check squash-and-replay of the consuming
//!   thread from its last retired instruction.

use ubrc_core::ProtectionConfig;

/// A deterministic fault-injection campaign (`SimConfig::fault_plan`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for within-cycle target selection.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultSpec>,
    /// Optional recurring fault: re-armed every `period` cycles (for
    /// fault-rate sweeps). At most one instance is armed at a time.
    pub periodic: Option<PeriodicFault>,
}

impl FaultPlan {
    /// A plan injecting one fault of `kind` at `at_cycle`.
    pub fn single(seed: u64, at_cycle: u64, kind: FaultKind) -> Self {
        Self {
            seed,
            faults: vec![FaultSpec {
                at_cycle,
                kind,
                target: None,
            }],
            periodic: None,
        }
    }

    /// A plan injecting one fault of `kind` at `at_cycle` aimed at
    /// physical register `target`.
    pub fn single_targeted(seed: u64, at_cycle: u64, kind: FaultKind, target: u16) -> Self {
        Self {
            seed,
            faults: vec![FaultSpec {
                at_cycle,
                kind,
                target: Some(target),
            }],
            periodic: None,
        }
    }

    /// A plan re-arming one fault of `kind` every `period` cycles.
    pub fn periodic(seed: u64, period: u64, kind: FaultKind) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            periodic: Some(PeriodicFault {
                period,
                kind,
                target: None,
            }),
        }
    }

    /// Like [`FaultPlan::periodic`], aimed at physical register
    /// `target` (useful for SMT isolation tests: faults land only in
    /// one thread's register partition).
    pub fn periodic_targeted(seed: u64, period: u64, kind: FaultKind, target: u16) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            periodic: Some(PeriodicFault {
                period,
                kind,
                target: Some(target),
            }),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.periodic.is_none()
    }

    /// Validates the plan against the machine it will run on: `period`
    /// must be non-zero, targets must name existing physical registers,
    /// and recoverable kinds require the matching parity protection
    /// (otherwise a detected-and-recovered campaign would silently
    /// become a corruption campaign).
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(
        &self,
        phys_regs: usize,
        protection: ProtectionConfig,
    ) -> Result<(), FaultPlanError> {
        let check_kind = |kind: FaultKind, target: Option<u16>| {
            if let Some(t) = target {
                if t as usize >= phys_regs {
                    return Err(FaultPlanError::TargetOutOfRange {
                        target: t,
                        phys_regs,
                    });
                }
            }
            let protected = match kind {
                FaultKind::FlipCacheData => protection.cache_parity,
                FaultKind::FlipUseCounter => protection.counter_parity,
                FaultKind::FlipBackingWord => protection.backing_parity,
                _ => true,
            };
            if !protected {
                return Err(FaultPlanError::RecoverableWithoutProtection { kind });
            }
            Ok(())
        };
        for f in &self.faults {
            check_kind(f.kind, f.target)?;
        }
        if let Some(p) = &self.periodic {
            if p.period == 0 {
                return Err(FaultPlanError::ZeroPeriod);
            }
            check_kind(p.kind, p.target)?;
        }
        Ok(())
    }
}

/// A malformed [`FaultPlan`], reported by [`FaultPlan::validate`]
/// (which the simulator's `try_new`/`try_new_smt` run before
/// construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A periodic fault with `period == 0` would arm every cycle's
    /// modulus check never (and means nothing physically).
    ZeroPeriod,
    /// A targeted fault names a physical register the machine does not
    /// have.
    TargetOutOfRange {
        /// The requested register.
        target: u16,
        /// The machine's physical register count.
        phys_regs: usize,
    },
    /// A recoverable fault kind was requested without the parity
    /// protection that detects it.
    RecoverableWithoutProtection {
        /// The offending fault kind.
        kind: FaultKind,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::ZeroPeriod => {
                write!(f, "periodic fault period must be non-zero")
            }
            FaultPlanError::TargetOutOfRange { target, phys_regs } => write!(
                f,
                "fault target p{target} out of range (machine has {phys_regs} physical registers)"
            ),
            FaultPlanError::RecoverableWithoutProtection { kind } => write!(
                f,
                "recoverable fault {kind:?} requires the matching parity protection \
                 (enable it in RegCacheConfig::protection)"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// One fault: what to corrupt and when to arm it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cycle at which the fault becomes armed; it lands at the first
    /// applicable opportunity from then on.
    pub at_cycle: u64,
    /// The corruption to perform.
    pub kind: FaultKind,
    /// Optional physical-register target; `None` lets the seeded
    /// stream pick among the applicable candidates.
    pub target: Option<u16>,
}

/// A recurring fault for rate sweeps ([`FaultPlan::periodic`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodicFault {
    /// Re-arm one fault every `period` cycles (must be non-zero).
    pub period: u64,
    /// The corruption to perform.
    pub kind: FaultKind,
    /// Optional physical-register target.
    pub target: Option<u16>,
}

/// The classes of state corruption the injector can perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt the stored remaining-use counter of a live value.
    FlipUsePrediction,
    /// Drop a scheduled register-cache fill.
    DropFill,
    /// Corrupt a resident cache entry's replacement metadata.
    CorruptReplacement,
    /// Flip one architectural-result bit in a fetched record.
    CorruptRecord,
    /// Flip a data bit of a resident cache entry (parity-detectable).
    FlipCacheData,
    /// Flip a live value's use counter, parity marked (detectable).
    FlipUseCounter,
    /// Flip a bit of a backing-file word (parity-detectable; recovery
    /// needs a machine-check squash).
    FlipBackingWord,
}

impl FaultKind {
    /// True for the parity-detectable kinds a `RecoveryPolicy` can
    /// recover from (given the matching `ProtectionConfig` flag).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            FaultKind::FlipCacheData | FaultKind::FlipUseCounter | FaultKind::FlipBackingWord
        )
    }
}

/// One armed fault instance awaiting its landing opportunity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ArmedFault {
    pub(crate) kind: FaultKind,
    pub(crate) target: Option<u16>,
}

pub(crate) struct Injector {
    state: u64,
    pending: Vec<FaultSpec>,
    periodic: Option<PeriodicFault>,
    pub(crate) armed: Vec<ArmedFault>,
}

impl Injector {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        Self {
            // splitmix64 degenerates briefly from state 0; mix the seed
            // once so seed 0 is as good as any.
            state: plan.seed ^ 0x6A09_E667_F3BC_C909,
            pending: plan.faults.clone(),
            periodic: plan.periodic,
            armed: Vec::new(),
        }
    }

    /// Moves faults whose cycle has arrived into the armed set, and
    /// re-arms the periodic fault on its period (at most one armed
    /// instance at a time, so a fault that cannot land yet does not
    /// pile up).
    pub(crate) fn arm(&mut self, now: u64) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].at_cycle <= now {
                let spec = self.pending.swap_remove(i);
                self.armed.push(ArmedFault {
                    kind: spec.kind,
                    target: spec.target,
                });
            } else {
                i += 1;
            }
        }
        if let Some(p) = self.periodic {
            if now > 0
                && now.is_multiple_of(p.period)
                && !self.armed.iter().any(|a| a.kind == p.kind)
            {
                self.armed.push(ArmedFault {
                    kind: p.kind,
                    target: p.target,
                });
            }
        }
    }

    /// Whether any fault of `kind` is currently armed.
    pub(crate) fn armed_for(&self, kind: FaultKind) -> bool {
        self.armed.iter().any(|a| a.kind == kind)
    }

    /// Removes one armed fault of `kind` (after it landed).
    pub(crate) fn disarm(&mut self, kind: FaultKind) {
        if let Some(i) = self.armed.iter().position(|a| a.kind == kind) {
            self.armed.swap_remove(i);
        }
    }

    /// Next value of the seeded splitmix64 stream.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let plan = FaultPlan::single(42, 0, FaultKind::DropFill);
        let mut a = Injector::new(&plan);
        let mut b = Injector::new(&plan);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Injector::new(&FaultPlan::single(43, 0, FaultKind::DropFill));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn arming_respects_cycles() {
        let plan = FaultPlan {
            seed: 1,
            faults: vec![
                FaultSpec {
                    at_cycle: 5,
                    kind: FaultKind::DropFill,
                    target: None,
                },
                FaultSpec {
                    at_cycle: 10,
                    kind: FaultKind::CorruptRecord,
                    target: None,
                },
            ],
            periodic: None,
        };
        let mut inj = Injector::new(&plan);
        inj.arm(4);
        assert!(inj.armed.is_empty());
        inj.arm(5);
        assert!(inj.armed_for(FaultKind::DropFill));
        assert!(!inj.armed_for(FaultKind::CorruptRecord));
        inj.arm(12);
        assert!(inj.armed_for(FaultKind::CorruptRecord));
        inj.disarm(FaultKind::DropFill);
        assert!(!inj.armed_for(FaultKind::DropFill));
    }

    #[test]
    fn periodic_faults_rearm_without_piling_up() {
        let plan = FaultPlan::periodic(1, 10, FaultKind::FlipCacheData);
        let mut inj = Injector::new(&plan);
        inj.arm(0);
        assert!(inj.armed.is_empty(), "cycle 0 does not fire");
        inj.arm(10);
        assert!(inj.armed_for(FaultKind::FlipCacheData));
        inj.arm(20);
        assert_eq!(inj.armed.len(), 1, "unlanded instance is not duplicated");
        inj.disarm(FaultKind::FlipCacheData);
        inj.arm(30);
        assert!(inj.armed_for(FaultKind::FlipCacheData));
        inj.arm(31);
        assert_eq!(inj.armed.len(), 1, "off-period cycles do not arm");
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let full = ProtectionConfig::full();
        let off = ProtectionConfig::off();
        assert_eq!(
            FaultPlan::periodic(1, 0, FaultKind::FlipCacheData).validate(512, full),
            Err(FaultPlanError::ZeroPeriod)
        );
        assert_eq!(
            FaultPlan::single_targeted(1, 5, FaultKind::FlipBackingWord, 600).validate(512, full),
            Err(FaultPlanError::TargetOutOfRange {
                target: 600,
                phys_regs: 512
            })
        );
        assert_eq!(
            FaultPlan::single(1, 5, FaultKind::FlipUseCounter).validate(512, off),
            Err(FaultPlanError::RecoverableWithoutProtection {
                kind: FaultKind::FlipUseCounter
            })
        );
        // Non-recoverable kinds never need protection.
        assert_eq!(
            FaultPlan::single(1, 5, FaultKind::CorruptRecord).validate(512, off),
            Ok(())
        );
        assert_eq!(
            FaultPlan::periodic_targeted(1, 50, FaultKind::FlipBackingWord, 40).validate(512, full),
            Ok(())
        );
        assert!(FaultPlan::default().is_empty());
    }
}
