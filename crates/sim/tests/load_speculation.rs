//! Load-hit speculation tests: dependents of a missing load issue in
//! its shadow, replay, and reissue with the true latency — the same
//! 21264 mechanism the paper reuses for register-cache misses.

use ubrc_isa::assemble;
use ubrc_sim::{simulate, simulate_workload, SimConfig};
use ubrc_workloads::{workload_by_name, Scale};

/// A cold pointer-chase load misses to memory; its dependent must be
/// squashed once (issued under the hit assumption) and the run must
/// still complete exactly.
#[test]
fn missing_load_squashes_its_shadow() {
    let src = ".data\ncell: .quad 1048576\n.text\n\
         main: la r1, cell\n\
               ld r2, 0(r1)\n\
               add r3, r2, r2\n\
               add r4, r3, r3\n\
               halt\n";
    let mut on = SimConfig::paper_default();
    on.load_hit_speculation = true;
    let r = simulate(assemble(src).unwrap(), on);
    assert!(
        r.load_miss_speculations >= 1,
        "the cold load must mis-speculate"
    );
    assert_eq!(r.retired, 6);
}

/// Disabling load-hit speculation gives an oracle scheduler: no
/// replays, and performance within noise of the speculative scheduler
/// (replay side effects interact with the register cache, so strict
/// dominance does not hold on miss-heavy code).
#[test]
fn oracle_scheduling_eliminates_replays() {
    let w = workload_by_name("listchase", Scale::Small).unwrap();
    let mut spec = SimConfig::paper_default();
    spec.load_hit_speculation = true;
    let mut oracle = SimConfig::paper_default();
    oracle.load_hit_speculation = false;
    let rs = simulate_workload(&w, spec);
    let ro = simulate_workload(&w, oracle);
    assert_eq!(rs.retired, ro.retired);
    assert!(rs.load_miss_speculations > 0);
    assert_eq!(ro.load_miss_speculations, 0);
    let ratio = ro.cycles as f64 / rs.cycles as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "oracle ({}) and speculative ({}) diverged beyond noise",
        ro.cycles,
        rs.cycles
    );
}

/// L1-resident loads never mis-speculate.
#[test]
fn warm_loads_do_not_replay() {
    // Spin on one cell long enough that everything is L1-resident;
    // only the cold accesses may mis-speculate.
    let src = ".data\ncell: .quad 7\n.text\n\
         main: la r1, cell\n\
               li r5, 400\n\
         loop: ld r2, 0(r1)\n\
               subi r5, r5, 1\n\
               bgtz r5, loop\n\
               halt\n";
    let r = simulate(assemble(src).unwrap(), SimConfig::paper_default());
    assert!(
        r.load_miss_speculations <= 4,
        "warm loop mis-speculated {} times",
        r.load_miss_speculations
    );
}

/// Architectural results survive speculation across the suite.
#[test]
fn suite_completes_with_load_speculation() {
    for name in ["listchase", "bfs", "qsort"] {
        let w = workload_by_name(name, Scale::Tiny).unwrap();
        let m = w.run_checks().unwrap();
        let r = simulate_workload(&w, SimConfig::paper_default());
        assert_eq!(r.retired, m.instruction_count(), "{name}");
    }
}
