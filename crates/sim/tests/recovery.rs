//! Soft-error detection and recovery: every recoverable fault class
//! the injector can land must be detected by the parity layer that
//! covers it and repaired without architectural damage — the lockstep
//! oracle must see a byte-identical retirement stream, and the
//! invariant checker's pin/fill accounting must stay balanced through
//! every invalidate/re-fill and machine-check squash.

use proptest::prelude::*;
use ubrc_core::{IndexPolicy, ProtectionConfig, RegCacheConfig};
use ubrc_sim::{
    simulate_checked, simulate_smt_checked, CheckConfig, FaultKind, FaultPlan, FaultSpec,
    RecoveryPolicy, RegStorage, SimConfig, SimResult,
};
use ubrc_workloads::{workload_by_name, Scale};

fn protected_config(entries: usize, protection: ProtectionConfig) -> SimConfig {
    let mut cache = RegCacheConfig::use_based(entries, 2);
    cache.protection = protection;
    let mut cfg = SimConfig::table1(RegStorage::Cached {
        cache,
        index: IndexPolicy::FilteredRoundRobin,
        backing_read: 2,
        backing_write: 2,
    });
    cfg.check = CheckConfig::full();
    cfg.recovery = RecoveryPolicy::enabled();
    cfg
}

fn run_protected(entries: usize, plan: FaultPlan) -> SimResult {
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let program = w.assemble().unwrap();
    let mut cfg = protected_config(entries, ProtectionConfig::full());
    cfg.fault_plan = Some(plan);
    match simulate_checked(program, cfg) {
        Ok(r) => r,
        Err(e) => panic!("recoverable fault was not recovered cleanly: {e}"),
    }
}

#[test]
fn cache_data_faults_are_detected_and_refilled() {
    // A flipped cache data bit is caught by the entry's parity tag at
    // the next read; the entry is invalidated and the read turns into
    // an ordinary backing-file re-fill. No oracle divergence, and the
    // detection shows up in both the recovery count and the cache's
    // own parity-invalidation counter.
    let r = run_protected(64, FaultPlan::periodic(21, 50, FaultKind::FlipCacheData));
    assert!(r.recoveries > 0, "no cache-data fault was ever detected");
    assert_eq!(r.machine_checks, 0, "cache faults must not escalate");
    let c = r.regcache.expect("cached config");
    assert!(c.parity_invalidations > 0);
    assert_eq!(c.parity_invalidations, r.recoveries);
}

#[test]
fn use_counter_faults_are_scrubbed() {
    // A flipped use counter is caught at the next protected counter
    // read (first-stage bypass consume or the write decision) and
    // scrubbed to the conservative zero state. The checker suspends
    // its mirror for the register until the scrub, so a clean run
    // proves both detection and re-synchronization.
    let r = run_protected(64, FaultPlan::periodic(22, 50, FaultKind::FlipUseCounter));
    assert!(r.recoveries > 0, "no counter fault was ever detected");
    assert_eq!(r.machine_checks, 0, "counter faults must not escalate");
}

#[test]
fn backing_faults_escalate_to_machine_check() {
    // The backing file is the architected copy: a flipped word has no
    // clean copy to re-fill from, so detection at a miss read must
    // squash and replay the thread from its last retirement. A tiny
    // cache guarantees the miss reads that reach the backing file.
    let r = run_protected(8, FaultPlan::periodic(23, 40, FaultKind::FlipBackingWord));
    assert!(r.machine_checks > 0, "no backing fault reached a read");
    assert!(r.recoveries >= r.machine_checks);
    assert!(r.recovery_cycles > 0, "machine checks take non-zero time");
    assert!(!r.recovery_latency.is_empty());
}

#[test]
fn recovery_preserves_the_architectural_result() {
    // The headline claim: with protection on, a faulted run retires
    // exactly the instructions a fault-free run retires (the oracle
    // checks every record), and the IPC cost is the recovery time.
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let clean = simulate_checked(
        w.assemble().unwrap(),
        protected_config(8, ProtectionConfig::full()),
    )
    .unwrap();
    let faulted = run_protected(8, FaultPlan::periodic(24, 30, FaultKind::FlipBackingWord));
    assert_eq!(clean.retired, faulted.retired);
    assert!(faulted.machine_checks > 0);
    assert!(faulted.cycles >= clean.cycles, "recovery is not free");
}

#[test]
fn protection_off_with_no_faults_is_byte_identical() {
    // The protection plumbing must be invisible when disabled: same
    // cycles, same retirement count, no recoveries.
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let base_cfg = {
        let mut cfg = protected_config(64, ProtectionConfig::off());
        cfg.recovery = RecoveryPolicy::disabled();
        cfg
    };
    let base = simulate_checked(w.assemble().unwrap(), base_cfg).unwrap();
    let prot = simulate_checked(
        w.assemble().unwrap(),
        protected_config(64, ProtectionConfig::full()),
    )
    .unwrap();
    assert_eq!(base.cycles, prot.cycles);
    assert_eq!(base.retired, prot.retired);
    assert_eq!(prot.recoveries, 0);
    assert_eq!(prot.machine_checks, 0);
}

#[test]
fn smt_fault_in_thread0_never_squashes_thread1() {
    // SMT isolation: a periodic backing-word fault targeted at a
    // physical register in thread 0's partition may machine-check
    // thread 0 as often as it likes; thread 1 must retire its whole
    // program without a single squash charged to it.
    let w0 = workload_by_name("crc", Scale::Tiny).unwrap();
    let w1 = workload_by_name("bfs", Scale::Tiny).unwrap();
    // Pregs 0..256 form thread 0's half of the partitioned freelist.
    // A periodic fault pinned to one of them re-marks the word after
    // every rewrite, so it is bad for essentially the register's whole
    // lifetime; probe a few candidates until one is miss-read (which
    // register the renamer reads through storage is config-dependent).
    let mut detected = 0;
    for target in [10u16, 30, 50, 90, 130, 170] {
        let mut cfg = protected_config(8, ProtectionConfig::full());
        cfg.fault_plan = Some(FaultPlan::periodic_targeted(
            25,
            20,
            FaultKind::FlipBackingWord,
            target,
        ));
        let r = simulate_smt_checked(vec![w0.assemble().unwrap(), w1.assemble().unwrap()], cfg)
            .unwrap();
        assert_eq!(
            r.thread_machine_checks[1], 0,
            "a thread-0 fault squashed thread 1 (target {target})"
        );
        detected += r.thread_machine_checks[0];
        if detected > 0 {
            break;
        }
    }
    assert!(detected > 0, "no targeted fault ever landed on a read");
}

#[test]
fn watchdog_forces_one_recovery_before_declaring_deadlock() {
    // With recovery enabled, an (artificially) tripped watchdog first
    // forces a machine-check squash; only a second trip is a deadlock.
    // The resulting dump must carry the recovery counters so a
    // livelock-after-recovery is distinguishable from plain deadlock.
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let mut cfg = protected_config(64, ProtectionConfig::full());
    cfg.check.watchdog_cycles = 1;
    let err = simulate_checked(w.assemble().unwrap(), cfg).unwrap_err();
    match *err {
        ubrc_sim::SimError::Watchdog(d) => {
            assert!(d.recoveries > 0, "no forced recovery before deadlock");
            assert!(d.machine_checks > 0);
            assert!(d.last_recovery.is_some());
            let text = d.to_string();
            assert!(text.starts_with("pipeline deadlock at cycle"));
            assert!(
                text.contains("possible livelock after recovery"),
                "dump does not flag the prior recovery: {text}"
            );
        }
        other => panic!("expected a watchdog report, got: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of recoverable injected faults — mixed kinds,
    /// arbitrary timing, with or without a periodic stream — ends with
    /// oracle-clean architectural state and balanced pin/fill
    /// accounting (a checker violation or divergence fails the run).
    #[test]
    fn random_recoverable_fault_sequences_recover_cleanly(
        seed in 0u64..1_000,
        period in 20u64..200,
        periodic_kind in 0usize..3,
        singles in proptest::collection::vec((0u64..3_000, 0usize..3), 0..5),
    ) {
        let kinds = [
            FaultKind::FlipCacheData,
            FaultKind::FlipUseCounter,
            FaultKind::FlipBackingWord,
        ];
        let mut plan = FaultPlan::periodic(seed, period, kinds[periodic_kind]);
        plan.faults = singles
            .into_iter()
            .map(|(at_cycle, k)| FaultSpec { at_cycle, kind: kinds[k], target: None })
            .collect();
        let r = run_protected(16, plan);
        prop_assert!(r.retired > 1000);
    }
}
