//! Wrong-path execution tests: mispredicted branches fetch real wrong
//! paths, the squash restores every architectural structure, and the
//! documented pollution effects (§3.4) are observable.

use ubrc_core::TwoLevelConfig;
use ubrc_isa::assemble;
use ubrc_sim::{simulate, simulate_workload, BranchPredictorKind, RegStorage, SimConfig};
use ubrc_workloads::{suite, workload_by_name, Scale};

#[test]
fn wrong_path_instructions_are_fetched_and_squashed() {
    // A loop whose back-edge always mispredicts under a static
    // not-taken predictor: every iteration fetches the fall-through
    // wrong path (the halt side) and squashes it.
    let src = "main: li r1, 200\n\
         loop: subi r1, r1, 1\n\
               add  r2, r1, r1\n\
               bgtz r1, loop\n\
               halt\n";
    let mut cfg = SimConfig::paper_default();
    cfg.branch_predictor = BranchPredictorKind::NotTaken;
    let r = simulate(assemble(src).unwrap(), cfg);
    assert_eq!(r.retired, 1 + 200 * 3 + 1);
    assert!(
        r.wrong_path_squashed > 100,
        "expected wrong-path fetch every iteration, got {}",
        r.wrong_path_squashed
    );
}

#[test]
fn architectural_results_survive_heavy_wrong_path_traffic() {
    // The worst predictor maximizes squashes; every kernel must still
    // retire exactly its functional instruction count.
    let mut cfg = SimConfig::paper_default();
    cfg.branch_predictor = BranchPredictorKind::NotTaken;
    for w in suite(Scale::Tiny) {
        let m = w.run_checks().unwrap();
        let r = simulate_workload(&w, cfg.clone());
        assert_eq!(
            r.retired,
            m.instruction_count(),
            "kernel `{}` corrupted by wrong-path execution",
            w.name
        );
    }
}

#[test]
fn wrong_path_pollutes_use_counters() {
    // §3.4: wrong-path consumers inflate the degree-of-use training
    // counts. Compare predictor accuracy with and without wrong-path
    // pressure (a perfect-direction predictor produces no wrong paths
    // for conditional branches).
    let w = workload_by_name("qsort", Scale::Small).unwrap();
    let polluted = simulate_workload(&w, SimConfig::paper_default());
    assert!(polluted.wrong_path_squashed > 0, "qsort must mispredict");
    // Pollution exists but the machinery bounds it: accuracy stays high.
    let acc = polluted.douse.accuracy().unwrap();
    assert!(acc > 0.75, "degree accuracy collapsed to {acc}");
}

#[test]
fn two_level_file_pays_for_speculative_movement() {
    // With real wrong-path renames, the two-level file moves values to
    // its L2 speculatively and must copy them back at squashes — the
    // recovery cost the paper charges it for.
    let w = workload_by_name("qsort", Scale::Small).unwrap();
    let cfg = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(96)));
    let r = simulate_workload(&w, cfg);
    let tl = r.twolevel.unwrap();
    assert!(tl.transfers > 0, "no L1->L2 movement at all");
    assert!(
        tl.recovered_regs > 0,
        "wrong-path squashes must trigger L2->L1 recoveries"
    );
}

#[test]
fn free_list_is_conserved_across_squashes() {
    // Run a branchy kernel with a terrible predictor under a small
    // physical register file; leaked (or double-freed) registers would
    // deadlock or corrupt the run.
    let w = workload_by_name("dispatch", Scale::Tiny).unwrap();
    let mut cfg = SimConfig::paper_default();
    cfg.branch_predictor = BranchPredictorKind::Bimodal;
    cfg.phys_regs = 96;
    let m = w.run_checks().unwrap();
    let r = simulate_workload(&w, cfg);
    assert_eq!(r.retired, m.instruction_count());
}

#[test]
fn mispredicted_indirect_jumps_follow_predicted_targets() {
    let w = workload_by_name("dispatch", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, SimConfig::paper_default());
    assert!(
        r.indirect_mispredicts > 0,
        "cold jump table must mispredict"
    );
    // Early indirect mispredictions have no predicted target (stall);
    // trained-but-wrong ones fetch the stale target as a wrong path.
    assert!(r.retired > 0);
}

#[test]
fn timeline_marks_wrong_path_instructions() {
    let src = "main: li r1, 20\n\
         loop: subi r1, r1, 1\n\
               bgtz r1, loop\n\
               halt\n";
    let mut cfg = SimConfig::paper_default();
    cfg.branch_predictor = BranchPredictorKind::NotTaken;
    cfg.trace_instructions = 40;
    let r = simulate(assemble(src).unwrap(), cfg);
    let tl = r.timeline.unwrap();
    assert!(
        tl.insts.iter().any(|t| t.wrong_path),
        "no wrong path traced"
    );
    let text = tl.render(100);
    assert!(text.contains(" WP"), "render must flag wrong-path rows");
}
