//! Configuration-space tests: the simulator must behave sensibly (and
//! sanely) across the corners of its configuration space, not just at
//! the Table 1 design point.

use ubrc_core::{IndexPolicy, RegCacheConfig};
use ubrc_sim::{simulate_workload, RegStorage, SimConfig};
use ubrc_workloads::{workload_by_name, Scale};

fn base() -> SimConfig {
    SimConfig::paper_default()
}

#[test]
fn narrow_machine_still_correct_and_slower() {
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let wide = simulate_workload(&w, base());
    let mut cfg = base();
    cfg.issue_width = 1;
    cfg.fetch_width = 1;
    cfg.retire_width = 1;
    let narrow = simulate_workload(&w, cfg);
    assert_eq!(narrow.retired, wide.retired);
    assert!(narrow.ipc() <= 1.0, "1-wide machine cannot exceed 1 IPC");
    assert!(narrow.cycles > wide.cycles);
}

#[test]
fn tiny_window_throttles_ilp() {
    let w = workload_by_name("matmul", Scale::Tiny).unwrap();
    let mut small = base();
    small.window_entries = 4;
    let s = simulate_workload(&w, small);
    let l = simulate_workload(&w, base());
    assert_eq!(s.retired, l.retired);
    assert!(
        s.cycles >= l.cycles,
        "a 4-entry window ({}) cannot beat a 128-entry one ({})",
        s.cycles,
        l.cycles
    );
}

#[test]
fn small_rob_and_few_pregs_still_complete() {
    let w = workload_by_name("bitops", Scale::Tiny).unwrap();
    // A tiny ROB alone must not break anything (dispatch stalls on
    // the ROB, which is not a preg stall).
    let mut cfg = base();
    cfg.rob_entries = 16;
    let r = simulate_workload(&w, cfg);
    assert!(r.retired > 0 && r.ipc() > 0.01);

    // Few rename registers with a big ROB must stall on the freelist.
    let mut cfg = base();
    cfg.phys_regs = 80; // 64 architectural + 16 rename
    let r = simulate_workload(&w, cfg);
    assert!(r.retired > 0 && r.ipc() > 0.01);
    assert!(
        r.dispatch_stall_pregs > 0,
        "16 rename registers must cause stalls"
    );
}

#[test]
fn one_entry_register_cache_works() {
    let w = workload_by_name("fib", Scale::Tiny).unwrap();
    let cfg = SimConfig::table1(RegStorage::Cached {
        cache: RegCacheConfig::use_based(1, 1),
        index: IndexPolicy::Standard,
        backing_read: 2,
        backing_write: 2,
    });
    let r = simulate_workload(&w, cfg);
    assert!(r.retired > 0);
    let c = r.regcache.unwrap();
    assert!(
        c.miss_rate().unwrap() > 0.1,
        "a 1-entry cache must miss a lot"
    );
}

#[test]
fn expected_hit_count_is_deterministic_and_distinct() {
    // The first trait-seam policy must (a) run the whole suite under a
    // checked configuration, (b) be reproducible bit for bit, and
    // (c) actually diverge from fewest-remaining-uses somewhere — if it
    // never picks a different victim the seam proved nothing.
    let mk = |cache: RegCacheConfig| {
        let mut cfg = SimConfig::table1(RegStorage::Cached {
            cache,
            index: IndexPolicy::FilteredRoundRobin,
            backing_read: 2,
            backing_write: 2,
        });
        cfg.check = ubrc_sim::CheckConfig::full();
        cfg
    };
    let mut distinct = false;
    for w in ubrc_workloads::suite(Scale::Tiny) {
        let a = simulate_workload(&w, mk(RegCacheConfig::expected_hit_count(64, 2)));
        let b = simulate_workload(&w, mk(RegCacheConfig::expected_hit_count(64, 2)));
        assert_eq!(a.cycles, b.cycles, "{}: EHC must be deterministic", w.name);
        assert_eq!(a.retired, b.retired);
        let ub = simulate_workload(&w, mk(RegCacheConfig::use_based(64, 2)));
        assert_eq!(a.retired, ub.retired, "{}: same program retires", w.name);
        if a.cycles != ub.cycles {
            distinct = true;
        }
    }
    assert!(
        distinct,
        "expected-hit-count never diverged from fewest-uses on any kernel"
    );
}

#[test]
fn deep_frontend_lengthens_branch_loops() {
    let w = workload_by_name("qsort", Scale::Tiny).unwrap();
    let shallow = simulate_workload(&w, base());
    let mut deep = base();
    deep.frontend_stages = 25;
    deep.min_branch_penalty = 29;
    let d = simulate_workload(&w, deep);
    assert_eq!(d.retired, shallow.retired);
    assert!(
        d.cycles > shallow.cycles,
        "a deeper pipeline must cost cycles on branchy code"
    );
}

#[test]
fn single_bypass_stage_functions() {
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let mut cfg = base();
    cfg.bypass_stages = 1;
    let r = simulate_workload(&w, cfg);
    assert!(r.retired > 0);
    // With one stage, fewer operands can use the bypass network.
    let two = simulate_workload(&w, base());
    assert!(r.bypass_fraction().unwrap() < two.bypass_fraction().unwrap());
}

#[test]
fn giant_cache_behaves_like_ideal_storage() {
    let w = workload_by_name("matmul", Scale::Tiny).unwrap();
    let cfg = SimConfig::table1(RegStorage::Cached {
        cache: RegCacheConfig::use_based(512, 4),
        index: IndexPolicy::RoundRobin,
        backing_read: 2,
        backing_write: 2,
    });
    let big = simulate_workload(&w, cfg);
    // Misses still possible (filtered single-use values), but rare.
    // Residual misses are filtered single-use values whose degree the
    // cold predictor underestimated, not capacity/conflicts.
    let miss = big.miss_rate_per_operand().unwrap();
    assert!(miss < 0.05, "512-entry cache missed {miss:.4} per operand");
}

#[test]
fn disabled_prefetch_slows_straight_line_code() {
    // Branch-free code isolates the instruction prefetcher (branchy
    // kernels interact with wrong-path fetch, where prefetching the
    // wrong path can even hurt).
    let mut src = String::from("main: li r1, 1\n");
    for i in 0..1200 {
        src.push_str(&format!(" add r{}, r1, r1\n", 2 + (i % 6)));
    }
    src.push_str(" halt\n");
    let program = ubrc_isa::assemble(&src).unwrap();
    let mut cfg = base();
    cfg.memsys.prefetch = false;
    let off = ubrc_sim::simulate(program.clone(), cfg);
    let on = ubrc_sim::simulate(program, base());
    assert_eq!(off.retired, on.retired);
    assert!(
        on.memsys.i_miss < off.memsys.i_miss,
        "prefetch must cut I-misses: {} vs {}",
        on.memsys.i_miss,
        off.memsys.i_miss
    );
    assert!(
        off.cycles > on.cycles,
        "cold straight-line code must run slower without prefetch ({} vs {})",
        off.cycles,
        on.cycles
    );
}
