//! Deterministic fault injection: every corruption class the injector
//! can perform must be caught by the layer designed to catch it — the
//! lockstep co-simulation oracle for architectural corruption, the
//! invariant checker's mirrors for microarchitectural state — and a
//! fault-free checked run must terminate cleanly.

use ubrc_core::{IndexPolicy, RegCacheConfig};
use ubrc_sim::{
    simulate_checked, CheckConfig, FaultKind, FaultPlan, RegStorage, SimConfig, SimError,
};
use ubrc_workloads::{workload_by_name, Scale};

fn checked_config(cache: RegCacheConfig) -> SimConfig {
    let mut cfg = SimConfig::table1(RegStorage::Cached {
        cache,
        index: IndexPolicy::FilteredRoundRobin,
        backing_read: 2,
        backing_write: 2,
    });
    cfg.check = CheckConfig::full();
    cfg
}

fn run_with_fault(cache: RegCacheConfig, plan: FaultPlan) -> Result<(), Box<SimError>> {
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let program = w.assemble().unwrap();
    let mut cfg = checked_config(cache);
    cfg.fault_plan = Some(plan);
    simulate_checked(program, cfg).map(|_| ())
}

#[test]
fn clean_run_passes_all_checks() {
    let err = run_with_fault(RegCacheConfig::use_based(64, 2), FaultPlan::default());
    assert!(
        err.is_ok(),
        "fault-free checked run failed: {:?}",
        err.err()
    );
}

#[test]
fn oracle_catches_a_corrupted_record() {
    // One flipped architectural-result bit is invisible to the timing
    // model; only the lockstep oracle can see it, at retirement.
    let err = run_with_fault(
        RegCacheConfig::use_based(64, 2),
        FaultPlan::single(7, 100, FaultKind::CorruptRecord),
    )
    .unwrap_err();
    match *err {
        SimError::Divergence(r) => {
            assert_eq!(r.field, "dest_val", "wrong divergent field: {r}");
            assert_ne!(r.expected, r.actual);
        }
        other => panic!("expected a divergence, got: {other}"),
    }
}

#[test]
fn checker_catches_a_flipped_use_counter() {
    // Corrupting a live value's stored remaining-use counter must show
    // up as a mismatch against the checker's independently-maintained
    // mirror by the end of the same cycle.
    let err = run_with_fault(
        RegCacheConfig::use_based(64, 2),
        FaultPlan::single(11, 50, FaultKind::FlipUsePrediction),
    )
    .unwrap_err();
    match *err {
        SimError::Invariant(v) => {
            assert!(
                v.invariant.starts_with("use-counter") || v.invariant == "pinned-entry",
                "unexpected invariant: {v}"
            );
            assert_eq!(v.cycle, 50);
        }
        other => panic!("expected an invariant violation, got: {other}"),
    }
}

#[test]
fn checker_catches_corrupted_replacement_metadata() {
    // Forcing a resident entry's counter to 255 (and unpinning it)
    // breaks the cache's own audit: no legal counter exceeds
    // max_use_count.
    let err = run_with_fault(
        RegCacheConfig::use_based(64, 2),
        FaultPlan::single(13, 200, FaultKind::CorruptReplacement),
    )
    .unwrap_err();
    match *err {
        SimError::Invariant(v) => {
            assert!(
                v.invariant == "cache-audit" || v.invariant == "pinned-entry",
                "unexpected invariant: {v}"
            );
        }
        other => panic!("expected an invariant violation, got: {other}"),
    }
}

#[test]
fn checker_catches_a_dropped_fill() {
    // A tiny cache guarantees misses, so fills are in flight to drop.
    // The dropped fill's obligation in the checker's mirror comes due
    // and is flagged.
    let err = run_with_fault(
        RegCacheConfig::use_based(8, 2),
        FaultPlan::single(17, 0, FaultKind::DropFill),
    )
    .unwrap_err();
    match *err {
        SimError::Invariant(v) => {
            assert_eq!(v.invariant, "fill-obligation", "unexpected invariant: {v}");
        }
        other => panic!("expected an invariant violation, got: {other}"),
    }
}

#[test]
fn faults_are_deterministic() {
    // The same plan must corrupt the same state and produce the same
    // report on every run.
    let plan = FaultPlan::single(7, 100, FaultKind::CorruptRecord);
    let a = run_with_fault(RegCacheConfig::use_based(64, 2), plan.clone()).unwrap_err();
    let b = run_with_fault(RegCacheConfig::use_based(64, 2), plan).unwrap_err();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn emulator_fault_is_a_structured_error() {
    // A correct-path memory fault must come back as `SimError::Emu`
    // (which the bench runner wraps into its typed `SuiteError`), not
    // as a panic from inside fetch.
    let program = ubrc_isa::assemble("main: li r1, 0x7fffffff\nld r2, 0(r1)\nhalt\n").unwrap();
    let err = simulate_checked(program, SimConfig::paper_default()).unwrap_err();
    assert!(matches!(*err, SimError::Emu(_)), "got: {err}");
    assert!(err.to_string().contains("functional execution faulted"));
}

#[test]
fn watchdog_reports_instead_of_panicking() {
    // An impossibly tight watchdog budget must produce a structured
    // diagnostic dump whose first line matches the historical panic
    // text, not unwind.
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let program = w.assemble().unwrap();
    let mut cfg = SimConfig::paper_default();
    cfg.check.watchdog_cycles = 1;
    let err = simulate_checked(program, cfg).unwrap_err();
    match *err {
        SimError::Watchdog(d) => {
            let text = d.to_string();
            assert!(
                text.starts_with("pipeline deadlock at cycle"),
                "unexpected dump: {text}"
            );
            assert!(text.contains("event queues:"));
        }
        other => panic!("expected a watchdog report, got: {other}"),
    }
}
