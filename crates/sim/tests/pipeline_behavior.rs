//! Behavioural tests of the timing simulator: the pipeline must retire
//! exactly the functional instruction stream, and timing must respond
//! to the register-storage organization in the directions the paper
//! establishes.

use ubrc_core::{IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc_isa::assemble;
use ubrc_sim::{simulate, simulate_workload, RegStorage, SimConfig, SimResult};
use ubrc_workloads::{suite, workload_by_name, Scale};

fn cached(cache: RegCacheConfig, index: IndexPolicy) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    })
}

fn mono(latency: u32) -> SimConfig {
    SimConfig::table1(RegStorage::Monolithic {
        read_latency: latency,
        write_latency: latency,
    })
}

fn run_asm(src: &str, config: SimConfig) -> SimResult {
    simulate(assemble(src).unwrap(), config)
}

#[test]
fn retires_the_exact_dynamic_instruction_count() {
    // 10 iterations * 3 instructions + 2 setup + 1 halt.
    let src = "main: li r1, 10\n\
               li r2, 0\n\
         loop: add r2, r2, r1\n\
               subi r1, r1, 1\n\
               bnez r1, loop\n\
               halt\n";
    let r = run_asm(src, SimConfig::paper_default());
    assert_eq!(r.retired, 2 + 10 * 3 + 1);
}

#[test]
fn every_workload_retires_and_progresses_under_every_storage() {
    let configs = [
        SimConfig::paper_default(),
        mono(3),
        SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(96))),
    ];
    for w in suite(Scale::Tiny) {
        // The functional emulator gives the ground-truth count.
        let m = w.run_checks().unwrap();
        for cfg in &configs {
            let r = simulate_workload(&w, cfg.clone());
            assert_eq!(
                r.retired,
                m.instruction_count(),
                "workload {} retired a different count under {:?}",
                w.name,
                cfg.storage
            );
            assert!(r.ipc() > 0.05, "workload {} IPC collapsed", w.name);
            assert!(r.cycles > r.retired / 8, "IPC above machine width");
        }
    }
}

#[test]
fn single_cycle_file_beats_slower_files() {
    let w = workload_by_name("crc", Scale::Small).unwrap();
    let ipc1 = simulate_workload(&w, mono(1)).ipc();
    let ipc2 = simulate_workload(&w, mono(2)).ipc();
    let ipc3 = simulate_workload(&w, mono(3)).ipc();
    assert!(ipc1 >= ipc2, "1-cycle {ipc1} < 2-cycle {ipc2}");
    assert!(ipc2 >= ipc3, "2-cycle {ipc2} < 3-cycle {ipc3}");
    assert!(ipc1 > ipc3, "no penalty at all for a 3-cycle file");
}

#[test]
fn serial_dependence_chain_exposes_register_file_latency() {
    // A pure ALU chain issues back-to-back regardless of file latency
    // (the bypass network covers it) — but a chain whose consumers fall
    // outside the bypass window pays the gap. Interleave two chains so
    // consumers issue 3+ cycles after producers.
    let mut body = String::from("main: li r1, 1\n li r2, 1\n li r3, 1\n li r4, 1\n");
    for _ in 0..200 {
        body.push_str(" add r1, r1, r2\n add r3, r3, r4\n mul r5, r1, r3\n");
    }
    body.push_str(" halt\n");
    let fast = run_asm(&body, mono(1));
    let slow = run_asm(&body, mono(3));
    assert!(
        fast.ipc() > slow.ipc(),
        "expected latency penalty: {} vs {}",
        fast.ipc(),
        slow.ipc()
    );
}

#[test]
fn register_cache_recovers_most_of_the_monolithic_penalty() {
    // The headline claim: a 64-entry 2-way use-based cache outperforms
    // the 3-cycle monolithic file (Figure 11).
    let mut wins = 0;
    let mut total = 0;
    for w in suite(Scale::Small) {
        let ub = simulate_workload(&w, SimConfig::paper_default()).ipc();
        let m3 = simulate_workload(&w, mono(3)).ipc();
        total += 1;
        if ub > m3 {
            wins += 1;
        }
    }
    assert!(
        wins * 2 > total,
        "use-based cache beat the 3-cycle file on only {wins}/{total} kernels"
    );
}

#[test]
fn use_based_beats_non_bypass_on_miss_rate() {
    let w = workload_by_name("qsort", Scale::Small).unwrap();
    let ub = simulate_workload(
        &w,
        cached(RegCacheConfig::use_based(64, 2), IndexPolicy::RoundRobin),
    );
    let nb = simulate_workload(
        &w,
        cached(RegCacheConfig::non_bypass(64, 2), IndexPolicy::RoundRobin),
    );
    let ub_miss = ub.regcache.unwrap().miss_rate().unwrap();
    let nb_miss = nb.regcache.unwrap().miss_rate().unwrap();
    assert!(
        ub_miss < nb_miss,
        "use-based miss rate {ub_miss} not below non-bypass {nb_miss}"
    );
}

#[test]
fn fully_associative_cache_reports_no_conflict_misses() {
    let mut cache = RegCacheConfig::use_based(32, 32);
    cache.classify_misses = true;
    let w = workload_by_name("matmul", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, cached(cache, IndexPolicy::Standard));
    let c = r.regcache.unwrap();
    assert_eq!(c.misses_conflict, 0);
}

#[test]
fn miss_replay_squashes_are_counted() {
    let w = workload_by_name("listchase", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, SimConfig::paper_default());
    assert!(r.miss_events > 0, "pointer chasing should miss sometimes");
    assert!(r.replayed > 0, "misses must trigger replays");
}

#[test]
fn branch_mispredictions_are_detected_and_bounded() {
    let w = workload_by_name("qsort", Scale::Small).unwrap();
    let r = simulate_workload(&w, SimConfig::paper_default());
    let rate = r.branch_mispredict_rate().unwrap();
    assert!(rate > 0.0, "sorting random data must mispredict sometimes");
    assert!(rate < 0.5, "misprediction rate {rate} implausibly high");
}

#[test]
fn degree_predictor_reaches_high_accuracy_on_loops() {
    let w = workload_by_name("crc", Scale::Small).unwrap();
    let r = simulate_workload(&w, SimConfig::paper_default());
    let acc = r.douse.accuracy().unwrap();
    assert!(acc > 0.9, "degree-of-use accuracy {acc} below expectation");
}

#[test]
fn two_level_file_stalls_when_l1_is_tiny() {
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let small = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(66)));
    let large = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(160)));
    let rs = simulate_workload(&w, small);
    let rl = simulate_workload(&w, large);
    assert!(
        rs.ipc() <= rl.ipc(),
        "tiny L1 should not outperform a large one ({} vs {})",
        rs.ipc(),
        rl.ipc()
    );
    assert!(
        rs.dispatch_stall_pregs > 0,
        "a 66-entry L1 must stall rename"
    );
}

#[test]
fn lifetime_collection_produces_consistent_distributions() {
    let mut cfg = SimConfig::paper_default();
    cfg.collect_lifetimes = true;
    let w = workload_by_name("bitops", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, cfg);
    let lt = r.lifetimes.expect("lifetimes collected");
    assert!(!lt.empty.is_empty());
    assert!(!lt.live.is_empty());
    assert!(!lt.dead.is_empty());
    // The concurrency sweeps integrate cycles: totals equal run length.
    assert_eq!(lt.live_concurrency.count(), r.cycles);
    assert_eq!(lt.alloc_concurrency.count(), r.cycles);
    // Allocated registers never exceed the physical register count and
    // live values never exceed allocated.
    assert!(lt.alloc_concurrency.max().unwrap() <= 512);
    assert!(lt.live_concurrency.max().unwrap() <= lt.alloc_concurrency.max().unwrap());
}

#[test]
fn instruction_budget_is_respected() {
    let mut cfg = SimConfig::paper_default();
    cfg.max_instructions = 500;
    let w = workload_by_name("crc", Scale::Small).unwrap();
    let r = simulate_workload(&w, cfg);
    assert!(r.retired >= 500, "stopped early: {}", r.retired);
    assert!(r.retired < 600, "overshot the budget: {}", r.retired);
}

#[test]
fn backing_file_sees_every_write_and_only_miss_reads() {
    let w = workload_by_name("matmul", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, SimConfig::paper_default());
    let b = r.backing.unwrap();
    let c = r.regcache.unwrap();
    // Every *executed* producer writes the backing file; values squashed
    // on the wrong path before issuing never do, so writes cannot
    // exceed the produced count (minus the 64 pre-existing
    // architectural values).
    assert!(b.writes <= c.values_produced - 64);
    assert!(b.writes >= r.retired / 4, "implausibly few backing writes");
    // Reads only happen on cache misses.
    assert_eq!(b.reads, c.read_misses);
}

#[test]
fn timeline_tracing_records_stages_in_order() {
    let mut cfg = SimConfig::paper_default();
    cfg.trace_instructions = 32;
    let w = workload_by_name("crc", Scale::Tiny).unwrap();
    let r = simulate_workload(&w, cfg);
    let tl = r.timeline.expect("tracing enabled");
    assert_eq!(tl.insts.len(), 32);
    for t in &tl.insts {
        assert!(t.fetch <= t.dispatch, "seq {}: fetch after dispatch", t.seq);
        if t.issue == 0 {
            // Squashed before issuing: must be wrong-path.
            assert!(
                t.wrong_path,
                "seq {} never issued on the correct path",
                t.seq
            );
            continue;
        }
        assert!(t.dispatch < t.issue, "seq {}: dispatch after issue", t.seq);
        assert!(t.issue < t.exec_start, "seq {}: issue after execute", t.seq);
        assert!(t.exec_start <= t.exec_done);
        if t.wrong_path {
            assert_eq!(t.retire, 0, "seq {}: wrong-path retired", t.seq);
        } else {
            assert!(t.exec_done <= t.retire, "seq {}: retire before done", t.seq);
        }
    }
    // Retirement of correct-path instructions is in order.
    let retires: Vec<u64> = tl
        .insts
        .iter()
        .filter(|t| !t.wrong_path)
        .map(|t| t.retire)
        .collect();
    assert!(retires.windows(2).all(|w| w[0] <= w[1]));
    // The rendering mentions every traced sequence number.
    let text = tl.render(120);
    assert!(text.contains(" 31 "));
}
