//! Store→load ordering tests: loads must observe older in-flight
//! stores through the LSQ model, and the ablation flag must isolate the
//! cost.

use ubrc_isa::assemble;
use ubrc_sim::{simulate, SimConfig, SimResult};

fn run(src: &str, forwarding: bool) -> SimResult {
    let mut cfg = SimConfig::paper_default();
    cfg.model_store_forwarding = forwarding;
    simulate(assemble(src).unwrap(), cfg)
}

/// A store feeding an immediately following load of the same address
/// (classic stack spill/reload) serializes: the load cannot issue
/// before the store executes.
#[test]
fn spill_reload_pairs_serialize() {
    let mut src = String::from(".data\nslot: .space 8\n.text\nmain: la r9, slot\n li r1, 1\n");
    for _ in 0..200 {
        // Mul chain makes r1 late; the store then gates the load.
        src.push_str(" mul r1, r1, r1\n sd r1, 0(r9)\n ld r1, 0(r9)\n");
    }
    src.push_str(" halt\n");
    let with = run(&src, true);
    let without = run(&src, false);
    assert_eq!(with.retired, without.retired);
    assert!(with.store_forward_stalls > 0, "ordering must engage");
    assert!(
        with.cycles > without.cycles,
        "ordering must cost cycles: {} vs {}",
        with.cycles,
        without.cycles
    );
}

/// Loads from addresses no in-flight store touches are unaffected by
/// the LSQ model.
#[test]
fn independent_loads_are_not_penalized() {
    let mut src = String::from(
        ".data\na: .space 64\nb: .quad 1, 2, 3, 4, 5, 6, 7, 8\n.text\nmain: la r9, a\n la r10, b\n li r1, 1\n",
    );
    for i in 0..100 {
        src.push_str(&format!(
            " sd r1, {}(r9)\n ld r2, {}(r10)\n add r3, r3, r2\n",
            (i % 8) * 8,
            (i % 8) * 8
        ));
    }
    src.push_str(" halt\n");
    let with = run(&src, true);
    let without = run(&src, false);
    assert_eq!(with.retired, without.retired);
    // Different granules: no forwarding stalls at all.
    assert_eq!(with.store_forward_stalls, 0);
    assert_eq!(with.cycles, without.cycles);
}

/// The whole kernel suite still validates with ordering on (it is the
/// default for every experiment).
#[test]
fn suite_runs_with_ordering_enabled() {
    use ubrc_sim::simulate_workload;
    use ubrc_workloads::{workload_by_name, Scale};
    for name in ["qsort", "fib", "rle"] {
        let w = workload_by_name(name, Scale::Tiny).unwrap();
        let m = w.run_checks().unwrap();
        let r = simulate_workload(&w, SimConfig::paper_default());
        assert_eq!(r.retired, m.instruction_count(), "{name}");
        // Stack-heavy kernels must exercise the forwarding path.
        if name == "qsort" || name == "fib" {
            assert!(r.store_forward_stalls > 0, "{name} should hit the LSQ");
        }
    }
}
