//! Golden timing tests: small hand-built programs whose cycle counts
//! are predictable from the pipeline rules (Figure 3 of the paper),
//! plus targeted tests of the miss/replay machinery.

use ubrc_isa::assemble;
use ubrc_sim::{simulate, BranchPredictorKind, RegStorage, SimConfig, SimResult};

fn run(src: &str, cfg: SimConfig) -> SimResult {
    simulate(assemble(src).unwrap(), cfg)
}

fn mono1() -> SimConfig {
    SimConfig::table1(RegStorage::Monolithic {
        read_latency: 1,
        write_latency: 1,
    })
}

/// Serial dependence chains issue back to back through the bypass
/// network: K chained adds take ~K cycles beyond the pipeline fill.
#[test]
fn serial_add_chain_paces_at_one_per_cycle() {
    let k = 400;
    let mut src = String::from("main: li r1, 1\n");
    for _ in 0..k {
        src.push_str(" add r1, r1, r1\n");
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    // Cold start: one instruction-line miss to memory (192 cycles)
    // plus the front-end fill; everything after streams via prefetch.
    let fill = 230;
    assert!(
        r.cycles >= k && r.cycles <= k + fill,
        "serial chain took {} cycles for {k} links",
        r.cycles
    );
}

/// Independent adds are limited by the six integer ALUs, not the
/// dependence chain: K adds take ~K/6 cycles.
#[test]
fn independent_adds_pace_at_alu_width() {
    let k = 600u64;
    let mut src = String::from("main: li r1, 1\n");
    for i in 0..k {
        // Six independent accumulators.
        src.push_str(&format!(" add r{}, r1, r1\n", 2 + (i % 6)));
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    let ideal = k / 6;
    assert!(
        r.cycles >= ideal && r.cycles <= ideal + 230,
        "independent adds took {} cycles (ideal {ideal})",
        r.cycles
    );
}

/// Multiply chains pace at the 4-cycle multiplier latency per link.
#[test]
fn mul_chain_paces_at_multiplier_latency() {
    let k = 150;
    let mut src = String::from("main: li r1, 3\n");
    for _ in 0..k {
        src.push_str(" mul r1, r1, r1\n");
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    let ideal = 4 * k;
    assert!(
        r.cycles >= ideal && r.cycles <= ideal + 230,
        "mul chain took {} cycles (ideal {ideal})",
        r.cycles
    );
}

/// A value whose only predicted use bypasses is filtered from the
/// cache; a late second consumer then misses exactly once (Figure 3's
/// star) and the instruction still completes correctly.
#[test]
fn late_second_consumer_misses_once() {
    // r2's value: the predictor is cold, so the unknown default (1 use)
    // applies. r3 consumes it via bypass; r4's add is held back by a
    // long multiply chain, so it reads the (filtered) cache -> miss.
    let mut src = String::from(
        "main: li r1, 5\n\
              add r2, r1, r1\n\
              add r3, r2, r0\n\
              li r20, 7\n",
    );
    for _ in 0..12 {
        src.push_str(" mul r20, r20, r20\n");
    }
    src.push_str(" add r4, r2, r20\n halt\n");
    let r = run(&src, SimConfig::paper_default());
    assert_eq!(r.miss_events, 1, "expected exactly one register cache miss");
    let c = r.regcache.unwrap();
    assert_eq!(
        c.misses_not_written + c.misses_capacity + c.misses_conflict,
        0,
        "classification disabled by default"
    );
    assert_eq!(c.fills, 1);
}

/// With a perfectly-predicted loop and values consumed immediately,
/// the register cache machine matches the 1-cycle file closely: almost
/// everything bypasses.
#[test]
fn bypass_dominated_code_sees_no_cache_penalty() {
    let src = "main: li r1, 500\n\
         loop: subi r1, r1, 1\n\
               bgtz r1, loop\n\
               halt\n";
    let cached = run(src, SimConfig::paper_default());
    let ideal = run(src, mono1());
    let slowdown = ideal.ipc() / cached.ipc();
    assert!(
        slowdown < 1.02,
        "cached machine {:.4} IPC vs ideal {:.4} IPC",
        cached.ipc(),
        ideal.ipc()
    );
    assert!(cached.bypass_fraction().unwrap() > 0.9);
}

/// The branch mis-speculation loop costs at least the 15-cycle minimum:
/// a loop whose branch always mispredicts (static not-taken predictor,
/// always-taken branch) pays ~15+ cycles per iteration.
#[test]
fn mispredict_loop_costs_the_minimum_redirect() {
    let k = 100;
    let src = format!(
        "main: li r1, {k}\n\
         loop: subi r1, r1, 1\n\
               bgtz r1, loop\n\
               halt\n"
    );
    let mut cfg = mono1();
    cfg.branch_predictor = BranchPredictorKind::NotTaken;
    let r = run(&src, cfg);
    // Every taken back-edge (k-1 of them) redirects.
    let min = 15 * (k - 1);
    assert!(
        r.cycles >= min,
        "mispredicting loop took {} cycles (minimum {min})",
        r.cycles
    );
    assert_eq!(r.branch_mispredicts, k - 1);
}

/// Load-to-use latency: a pointer-chase chain in L1 paces at ~4+1
/// cycles per link on the cached machine (4-cycle load-to-use plus the
/// cache-read stage).
#[test]
fn load_chain_paces_at_load_to_use_latency() {
    // Self-loop pointer at a fixed address: ld r1, 0(r1) repeatedly.
    let k = 200;
    let mut src = String::from(".data\ncell: .quad 1048576\n.text\nmain: la r1, cell\n");
    for _ in 0..k {
        src.push_str(" ld r1, 0(r1)\n");
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    let ideal = 4 * k;
    // Cold start pays one I-side and one D-side memory miss.
    assert!(
        r.cycles >= ideal && r.cycles <= ideal + 450,
        "load chain took {} cycles (ideal {ideal} + misses)",
        r.cycles
    );
}

/// Retirement width limits throughput even for trivially parallel
/// code: nops cannot retire faster than 8 per cycle.
#[test]
fn retirement_width_bounds_ipc() {
    let mut src = String::from("main:\n");
    for _ in 0..2000 {
        src.push_str(" nop\n");
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    assert!(r.ipc() <= 8.0);
    // 2000 nops / 8-wide = 250 cycles ideal, plus ~210 cold-start.
    assert!(
        r.ipc() > 3.5,
        "nop stream should near the retire width: {}",
        r.ipc()
    );
}

/// Store-heavy code is limited by the 2-stores-per-cycle retirement
/// rule.
#[test]
fn store_retirement_limit() {
    let mut src = String::from(".data\nbuf: .space 16384\n.text\nmain: la r1, buf\n");
    for i in 0..1000 {
        src.push_str(&format!(" sd r0, {}(r1)\n", (i % 256) * 8));
    }
    src.push_str(" halt\n");
    let r = run(&src, mono1());
    assert!(
        r.ipc() <= 2.1,
        "store stream cannot exceed 2 IPC (got {:.3})",
        r.ipc()
    );
}

/// §3.3 pinning, end to end: a loop-invariant value with many uses
/// stays cached (pinned) once the predictor learns its degree, so a
/// consumer far from the producer still hits.
#[test]
fn high_use_values_stay_pinned_in_the_cache() {
    // r9 is written once and read every iteration (degree explodes past
    // the 7-use pinning limit). After training, iterations must not
    // miss on it.
    let src = "main: li r9, 3\n\
               li r1, 2000\n\
         loop: add r2, r9, r9\n\
               mul r3, r2, r9\n\
               subi r1, r1, 1\n\
               bgtz r1, loop\n\
               halt\n";
    let r = run(src, SimConfig::paper_default());
    let c = r.regcache.unwrap();
    let miss = c.miss_rate().unwrap_or(0.0);
    assert!(
        miss < 0.02,
        "loop-invariant reads should hit a pinned entry (miss rate {miss:.4})"
    );
}
