//! One experiment per table/figure of the paper (§5, Evaluation).
//!
//! Every function returns a [`Table`] whose rows mirror what the paper
//! plots. Absolute values differ from the paper (different ISA,
//! workloads, and scale — see DESIGN.md); the *shapes* are the
//! reproduction target and are recorded in EXPERIMENTS.md.

use crate::runner::{run_one, run_suite, SuiteError, SuiteResult};
use ubrc_core::{CachePartition, IndexPolicy, RegCacheConfig, TwoLevelConfig};
use ubrc_sim::{RegStorage, SimConfig};
use ubrc_stats::Table;
use ubrc_workloads::{synthetic::SyntheticSpec, Scale};

/// Builds a cached-storage configuration.
fn cached_cfg(cache: RegCacheConfig, index: IndexPolicy, backing: u32) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: backing,
        backing_write: backing,
    })
}

/// The three caching schemes the paper compares, at a given geometry,
/// with the indexing used throughout §5.4-§5.5 (round-robin for the
/// reference designs, filtered round-robin for use-based).
fn schemes(entries: usize, ways: usize, backing: u32) -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "lru",
            cached_cfg(
                RegCacheConfig::lru(entries, ways),
                IndexPolicy::RoundRobin,
                backing,
            ),
        ),
        (
            "non-bypass",
            cached_cfg(
                RegCacheConfig::non_bypass(entries, ways),
                IndexPolicy::RoundRobin,
                backing,
            ),
        ),
        (
            "use-based",
            cached_cfg(
                RegCacheConfig::use_based(entries, ways),
                IndexPolicy::FilteredRoundRobin,
                backing,
            ),
        ),
    ]
}

fn mono_cfg(latency: u32) -> SimConfig {
    SimConfig::table1(RegStorage::Monolithic {
        read_latency: latency,
        write_latency: latency,
    })
}

/// Table 1: the simulated machine configuration.
pub fn table1() -> Table {
    let c = SimConfig::paper_default();
    let mut t = Table::new(["parameter", "value"]);
    t.row(["fetch/issue/retire width", "8 / 8 / 8"]);
    t.row([
        "front-end depth (fetch+decode+rename+dispatch)".to_string(),
        format!("{} stages", c.frontend_stages),
    ]);
    t.row([
        "issue window / ROB / physical registers".to_string(),
        format!("{} / {} / {}", c.window_entries, c.rob_entries, c.phys_regs),
    ]);
    t.row([
        "min branch mis-speculation loop".to_string(),
        format!("{} cycles", c.min_branch_penalty),
    ]);
    t.row(["bypass stages".to_string(), format!("{}", c.bypass_stages)]);
    t.row([
        "int ALU/branch/int-mul/fp-ALU/fp-mul/load/store units".to_string(),
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            c.fu.int_alu,
            c.fu.branch,
            c.fu.int_mul,
            c.fu.fp_alu,
            c.fu.fp_mul,
            c.fu.load,
            c.fu.store
        ),
    ]);
    t.row([
        "L1 I/D caches".to_string(),
        format!(
            "{}KB {}-way {}B lines",
            c.memsys.l1.size_bytes >> 10,
            c.memsys.l1.ways,
            c.memsys.l1.line_bytes
        ),
    ]);
    t.row([
        "L2 cache".to_string(),
        format!(
            "{}MB {}-way, {}-cycle",
            c.memsys.l2.size_bytes >> 20,
            c.memsys.l2.ways,
            c.memsys.l2_latency
        ),
    ]);
    t.row([
        "memory latency".to_string(),
        format!("{} cycles", c.memsys.memory_latency),
    ]);
    t.row([
        "store buffer".to_string(),
        format!("{} entries, coalescing", c.memsys.store_buffer_entries),
    ]);
    t.row([
        "degree-of-use predictor".to_string(),
        format!(
            "{} entries, {}-way, 2-bit confidence",
            c.douse.sets * c.douse.ways,
            c.douse.ways
        ),
    ]);
    t
}

/// Figure 1: median register lifetime phases (empty / live / dead), in
/// cycles, per benchmark plus the mean of the per-benchmark medians.
pub fn fig1(scale: Scale) -> Result<Table, SuiteError> {
    let mut cfg = SimConfig::paper_default();
    cfg.collect_lifetimes = true;
    let res = run_suite(&cfg, scale)?;
    let mut t = Table::new(["benchmark", "empty", "live", "dead"]);
    let (mut es, mut ls, mut ds) = (0.0, 0.0, 0.0);
    for (name, r) in &res.runs {
        let lt = r.lifetimes.as_ref().expect("lifetimes enabled");
        let (e, l, d) = (
            lt.empty.median().unwrap_or(0),
            lt.live.median().unwrap_or(0),
            lt.dead.median().unwrap_or(0),
        );
        es += e as f64;
        ls += l as f64;
        ds += d as f64;
        t.row([
            name.to_string(),
            e.to_string(),
            l.to_string(),
            d.to_string(),
        ]);
    }
    let n = res.runs.len() as f64;
    t.row_f64("mean-of-medians", [es / n, ls / n, ds / n], 1);
    Ok(t)
}

/// Figure 2: cumulative distributions of allocated physical registers
/// vs. simultaneously live values (percentile points, aggregated over
/// the suite).
pub fn fig2(scale: Scale) -> Result<Table, SuiteError> {
    let mut cfg = SimConfig::paper_default();
    cfg.collect_lifetimes = true;
    let res = run_suite(&cfg, scale)?;
    let mut alloc = ubrc_stats::Histogram::new();
    let mut live = ubrc_stats::Histogram::new();
    for (_, r) in &res.runs {
        let lt = r.lifetimes.as_ref().expect("lifetimes enabled");
        alloc.merge(&lt.alloc_concurrency);
        live.merge(&lt.live_concurrency);
    }
    let mut t = Table::new(["percentile", "allocated-regs", "live-values"]);
    for p in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        t.row([
            format!("{p}"),
            alloc.percentile(p).unwrap_or(0).to_string(),
            live.percentile(p).unwrap_or(0).to_string(),
        ]);
    }
    t.row([
        "median live / median allocated".to_string(),
        String::new(),
        format!(
            "{:.2}",
            live.median().unwrap_or(0) as f64 / alloc.median().unwrap_or(1).max(1) as f64
        ),
    ]);
    Ok(t)
}

/// Figure 6: geometric-mean IPC vs. cache size and organization
/// (standard indexing, use-based policies), with the no-cache register
/// file baselines.
pub fn fig6(scale: Scale) -> Result<Table, SuiteError> {
    let sizes = [16usize, 32, 48, 64, 80, 96, 128];
    let mut t = Table::new(["entries", "direct", "2-way", "4-way", "full"]);
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for ways in [1, 2, 4, n] {
            let cfg = cached_cfg(RegCacheConfig::use_based(n, ways), IndexPolicy::Standard, 2);
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        t.row(row);
    }
    for lat in [1u32, 2, 3] {
        t.row([
            format!("RF {lat}-cycle (no cache)"),
            format!("{:.4}", run_suite(&mono_cfg(lat), scale)?.geomean_ipc()),
        ]);
    }
    Ok(t)
}

/// Figure 7: decoupled indexing policies vs. associativity (64-entry
/// use-based cache).
pub fn fig7(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["policy", "direct", "2-way", "4-way"]);
    let policies = [
        ("preg (standard)", IndexPolicy::Standard),
        ("round-robin", IndexPolicy::RoundRobin),
        ("minimum", IndexPolicy::Minimum),
        ("filtered", IndexPolicy::FilteredRoundRobin),
        ("min-load", IndexPolicy::MinLoad),
    ];
    for (name, policy) in policies {
        let mut row = vec![name.to_string()];
        for ways in [1usize, 2, 4] {
            let cfg = cached_cfg(RegCacheConfig::use_based(64, ways), policy, 2);
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        t.row(row);
    }
    Ok(t)
}

fn miss_breakdown_row(label: &str, res: &SuiteResult, t: &mut Table) {
    // "Miss rates are per operand, not instruction" (Figure 8): the
    // denominator counts every source operand, bypassed ones included.
    let mean = |f: &dyn Fn(&ubrc_core::RegCacheStats) -> u64| -> f64 {
        let vals: Vec<f64> = res
            .runs
            .iter()
            .filter_map(|(_, r)| {
                let ops = r.operands_bypassed + r.operands_from_storage;
                r.regcache
                    .as_ref()
                    .map(|c| f(c) as f64 / ops.max(1) as f64 * 100.0)
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let nw = mean(&|c| c.misses_not_written);
    let cap = mean(&|c| c.misses_capacity);
    let conf = mean(&|c| c.misses_conflict);
    t.row_f64(label, [nw, cap, conf, nw + cap + conf], 2);
}

/// Figure 8: per-operand miss-rate breakdown (not-written / capacity /
/// conflict) for the three schemes under standard and filtered
/// round-robin indexing. 64-entry, 2-way.
pub fn fig8(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new([
        "scheme+index",
        "not-written%",
        "capacity%",
        "conflict%",
        "total%",
    ]);
    let mk = |policy: fn(usize, usize) -> RegCacheConfig, index| {
        let mut cache = policy(64, 2);
        cache.classify_misses = true;
        cached_cfg(cache, index, 2)
    };
    for (name, ctor) in [
        (
            "lru",
            RegCacheConfig::lru as fn(usize, usize) -> RegCacheConfig,
        ),
        ("non-bypass", RegCacheConfig::non_bypass),
        ("use-based", RegCacheConfig::use_based),
    ] {
        for (iname, index) in [
            ("standard", IndexPolicy::Standard),
            ("filtered-rr", IndexPolicy::FilteredRoundRobin),
        ] {
            let res = run_suite(&mk(ctor, index), scale)?;
            miss_breakdown_row(&format!("{name}/{iname}"), &res, &mut t);
        }
    }
    Ok(t)
}

/// Figure 9: average access bandwidth (accesses per cycle) to the
/// register cache and the backing file.
pub fn fig9(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new([
        "scheme",
        "cache-read",
        "cache-write",
        "file-read",
        "file-write",
    ]);
    for (name, cfg) in schemes(64, 2, 2) {
        let res = run_suite(&cfg, scale)?;
        t.row_f64(
            name,
            [
                res.mean_of(|r| r.cache_read_bw()).unwrap_or(0.0),
                res.mean_of(|r| r.cache_write_bw()).unwrap_or(0.0),
                res.mean_of(|r| r.file_read_bw()).unwrap_or(0.0),
                res.mean_of(|r| r.file_write_bw()).unwrap_or(0.0),
            ],
            3,
        );
    }
    Ok(t)
}

/// Figure 10: filtering effects — % of cached values never read, % of
/// initial writes filtered, % of retired values never cached.
pub fn fig10(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new([
        "scheme",
        "cached-never-read%",
        "writes-filtered%",
        "never-cached%",
    ]);
    for (name, cfg) in schemes(64, 2, 2) {
        let res = run_suite(&cfg, scale)?;
        let pct = |f: &dyn Fn(&ubrc_core::RegCacheStats) -> Option<f64>| {
            res.mean_of(|r| r.regcache.as_ref().and_then(f).map(|v| v * 100.0))
                .unwrap_or(0.0)
        };
        t.row_f64(
            name,
            [
                pct(&|c| c.frac_cached_never_read()),
                pct(&|c| c.frac_writes_filtered()),
                pct(&|c| c.frac_never_cached()),
            ],
            2,
        );
    }
    Ok(t)
}

/// Table 2: comparison of register cache metrics.
pub fn table2(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["average", "lru", "non-bypass", "use-based"]);
    let mut cols: Vec<[f64; 4]> = Vec::new();
    for (_, cfg) in schemes(64, 2, 2) {
        let res = run_suite(&cfg, scale)?;
        let m = |f: &dyn Fn(&ubrc_core::RegCacheStats, &ubrc_sim::SimResult) -> Option<f64>| {
            res.mean_of(|r| r.regcache.as_ref().and_then(|c| f(c, r)))
                .unwrap_or(0.0)
        };
        cols.push([
            m(&|c, _| c.reads_per_cached_value()),
            m(&|c, _| c.cache_count_per_value()),
            m(&|c, r| c.occupancy.average(r.cycles)),
            m(&|c, _| c.avg_entry_lifetime()),
        ]);
    }
    for (i, label) in [
        "reads per cached value",
        "times each value is cached",
        "cache occupancy (entries)",
        "cache entry lifetime (cycles)",
    ]
    .iter()
    .enumerate()
    {
        t.row_f64(label, cols.iter().map(|c| c[i]), 2);
    }
    Ok(t)
}

/// §3 characterization: fraction of operands supplied by bypass (the
/// paper reports 57%) and fraction of replacement victims with zero
/// remaining uses (the paper reports 84%), under the proposed design.
pub fn charstats(scale: Scale) -> Result<Table, SuiteError> {
    let res = run_suite(&SimConfig::paper_default(), scale)?;
    let mut t = Table::new(["benchmark", "bypass%", "zero-use-victims%"]);
    for (name, r) in &res.runs {
        let zero = r
            .regcache
            .as_ref()
            .map(|c| {
                if c.evictions == 0 {
                    100.0
                } else {
                    c.evictions_zero_use as f64 / c.evictions as f64 * 100.0
                }
            })
            .unwrap_or(0.0);
        t.row_f64(name, [r.bypass_fraction().unwrap_or(0.0) * 100.0, zero], 2);
    }
    t.row_f64(
        "mean",
        [
            res.mean_of(|r| r.bypass_fraction()).unwrap_or(0.0) * 100.0,
            res.mean_of(|r| {
                r.regcache.as_ref().map(|c| {
                    if c.evictions == 0 {
                        1.0
                    } else {
                        c.evictions_zero_use as f64 / c.evictions as f64
                    }
                })
            })
            .unwrap_or(0.0)
                * 100.0,
        ],
        2,
    );
    Ok(t)
}

/// Figure 11: geometric-mean IPC vs. cache/L1 size for the three
/// caching schemes (plus 4-way use-based) and the two-level file.
pub fn fig11(scale: Scale) -> Result<Table, SuiteError> {
    let sizes = [16usize, 32, 48, 64, 96, 128];
    let mut t = Table::new([
        "entries",
        "lru",
        "non-bypass",
        "use-based",
        "use-based-4way",
        "two-level(+32)",
    ]);
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for (_, cfg) in schemes(n, 2, 2) {
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        let ub4 = cached_cfg(
            RegCacheConfig::use_based(n, 4),
            IndexPolicy::FilteredRoundRobin,
            2,
        );
        row.push(format!("{:.4}", run_suite(&ub4, scale)?.geomean_ipc()));
        // The two-level L1 must exceed the architectural register count
        // ("at least one more register than the number of architected
        // registers", §5.5) — below that it cannot run at all.
        if n + 32 > ubrc_isa::NUM_ARCH_REGS as usize + 4 {
            let tl = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig::optimistic(n + 32)));
            row.push(format!("{:.4}", run_suite(&tl, scale)?.geomean_ipc()));
        } else {
            row.push("-".to_string());
        }
        t.row(row);
    }
    for lat in [1u32, 2, 3] {
        t.row([
            format!("RF {lat}-cycle (no cache)"),
            format!("{:.4}", run_suite(&mono_cfg(lat), scale)?.geomean_ipc()),
        ]);
    }
    Ok(t)
}

/// Figure 12: geometric-mean IPC vs. backing-file (or two-level L2)
/// latency. 64-entry caches, 96-entry two-level L1.
pub fn fig12(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new([
        "backing-latency",
        "lru",
        "non-bypass",
        "use-based",
        "two-level",
    ]);
    for lat in 1u32..=6 {
        let mut row = vec![lat.to_string()];
        for (_, cfg) in schemes(64, 2, lat) {
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        let tl = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig {
            l2_latency: lat,
            ..TwoLevelConfig::optimistic(96)
        }));
        row.push(format!("{:.4}", run_suite(&tl, scale)?.geomean_ipc()));
        t.row(row);
    }
    for lat in [1u32, 2, 3] {
        t.row([
            format!("RF {lat}-cycle (no cache)"),
            format!("{:.4}", run_suite(&mono_cfg(lat), scale)?.geomean_ipc()),
        ]);
    }
    Ok(t)
}

/// §5.3 tuning: the maximum use count (pinning limit) sweep.
pub fn maxuse(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["max-use-count", "geomean-ipc", "miss-rate%"]);
    for max in [1u8, 2, 3, 5, 6, 7, 9, 12, 15] {
        let mut cache = RegCacheConfig::use_based(64, 2);
        cache.max_use_count = max;
        let cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
        let res = run_suite(&cfg, scale)?;
        let miss = res
            .mean_of(|r| r.regcache.as_ref().and_then(|c| c.miss_rate()))
            .unwrap_or(0.0);
        t.row_f64(&max.to_string(), [res.geomean_ipc(), miss * 100.0], 4);
    }
    Ok(t)
}

/// §5.3 tuning: unknown-default × fill-default grid.
pub fn defaults(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["unknown\\fill", "fill=0", "fill=1", "fill=2"]);
    for unknown in 0u8..=3 {
        let mut row = vec![format!("unknown={unknown}")];
        for fill in 0u8..=2 {
            let mut cache = RegCacheConfig::use_based(64, 2);
            cache.unknown_default = unknown;
            cache.fill_default = fill;
            let cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        t.row(row);
    }
    Ok(t)
}

/// §5.5 ablation: two-level L1↔L2 transfer bandwidth.
pub fn twolevel_bw(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["transfers/cycle", "geomean-ipc", "rename-stalls"]);
    for bw in [1u32, 2, 4, 8] {
        let cfg = SimConfig::table1(RegStorage::TwoLevel(TwoLevelConfig {
            transfers_per_cycle: bw,
            ..TwoLevelConfig::optimistic(96)
        }));
        let res = run_suite(&cfg, scale)?;
        let stalls: u64 = res.runs.iter().map(|(_, r)| r.dispatch_stall_pregs).sum();
        t.row([
            bw.to_string(),
            format!("{:.4}", res.geomean_ipc()),
            stalls.to_string(),
        ]);
    }
    Ok(t)
}

/// §3.3: degree-of-use predictor accuracy and coverage per benchmark.
pub fn douse_accuracy(scale: Scale) -> Result<Table, SuiteError> {
    let res = run_suite(&SimConfig::paper_default(), scale)?;
    let mut t = Table::new(["benchmark", "accuracy%", "coverage%"]);
    for (name, r) in &res.runs {
        t.row_f64(
            name,
            [
                r.douse.accuracy().unwrap_or(0.0) * 100.0,
                r.douse.coverage().unwrap_or(0.0) * 100.0,
            ],
            2,
        );
    }
    t.row_f64(
        "mean",
        [
            res.mean_of(|r| r.douse.accuracy()).unwrap_or(0.0) * 100.0,
            res.mean_of(|r| r.douse.coverage()).unwrap_or(0.0) * 100.0,
        ],
        2,
    );
    Ok(t)
}

/// §4.2 ablation: filtered round-robin parameters (high-use degree
/// threshold × per-set skip threshold).
pub fn filtered_params(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["high-use>", "skip>0", "skip>1", "skip>2"]);
    for degree in [3u8, 5, 7] {
        let mut row = vec![degree.to_string()];
        for skip in 0u32..=2 {
            let mut cfg = cached_cfg(
                RegCacheConfig::use_based(64, 2),
                IndexPolicy::FilteredRoundRobin,
                2,
            );
            cfg.filter_params = Some((degree, skip));
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Extension (motivated by §1's citation of Ahuja et al. on incomplete
/// bypassing): how the bypass-network depth interacts with each
/// register storage organization.
pub fn bypass_depth(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["bypass-stages", "use-based", "RF-1", "RF-3"]);
    for stages in [1u32, 2, 3] {
        let mut row = vec![stages.to_string()];
        for mut cfg in [SimConfig::paper_default(), mono_cfg(1), mono_cfg(3)] {
            cfg.bypass_stages = stages;
            row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
        }
        t.row(row);
    }
    Ok(t)
}

/// §4.1: decoupled indexing "trivially enables the use of
/// non-power-of-two-sized caches" — sweep odd sizes around the design
/// point (standard indexing cannot express these set counts cleanly;
/// the assigner handles them natively).
pub fn odd_sizes(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["entries(2-way)", "sets", "geomean-ipc"]);
    for n in [40usize, 48, 56, 64, 72, 88] {
        let cache = RegCacheConfig::use_based(n, 2);
        let sets = cache.sets();
        let cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
        t.row([
            n.to_string(),
            sets.to_string(),
            format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()),
        ]);
    }
    Ok(t)
}

/// §3.4 robustness: performance when the degree-of-use information is
/// degraded — predictor disabled (unknown default only), hair-trigger
/// confidence (noisy predictions), and the paper's configuration.
pub fn robustness(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["degree-information", "geomean-ipc", "miss/operand %"]);
    let variants: Vec<(&str, SimConfig)> = vec![
        (
            "paper default (2-bit confidence)",
            SimConfig::paper_default(),
        ),
        ("no predictor (unknown default only)", {
            let mut cfg = SimConfig::paper_default();
            // A threshold above the confidence ceiling means the
            // predictor never supplies a prediction.
            cfg.douse.conf_threshold = u8::MAX;
            cfg
        }),
        ("zero-confidence (noisy predictions)", {
            let mut cfg = SimConfig::paper_default();
            cfg.douse.conf_threshold = 0;
            cfg
        }),
    ];
    for (name, cfg) in variants {
        let res = run_suite(&cfg, scale)?;
        let miss = res.mean_of(|r| r.miss_rate_per_operand()).unwrap_or(0.0);
        t.row_f64(name, [res.geomean_ipc(), miss * 100.0], 4);
    }
    Ok(t)
}

/// Extension: cost of load-hit speculation (the 21264 mechanism the
/// paper reuses for register-cache misses) vs. an oracle scheduler.
pub fn loadspec(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["load scheduling", "geomean-ipc", "mis-speculations"]);
    for (name, on) in [
        ("hit-speculation (default)", true),
        ("oracle wakeup", false),
    ] {
        let mut cfg = SimConfig::paper_default();
        cfg.load_hit_speculation = on;
        let res = run_suite(&cfg, scale)?;
        let misses: u64 = res.runs.iter().map(|(_, r)| r.load_miss_speculations).sum();
        t.row([
            name.to_string(),
            format!("{:.4}", res.geomean_ipc()),
            misses.to_string(),
        ]);
    }
    Ok(t)
}

/// Extension: degree-of-use predictor capacity sweep (the paper uses
/// the 4K-entry predictor of Butts & Sohi MICRO 2002; smaller tables
/// lose coverage and leave more values on the unknown default).
pub fn douse_size(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["entries(4-way)", "geomean-ipc", "accuracy%", "coverage%"]);
    for sets in [16usize, 64, 256, 1024] {
        let mut cfg = SimConfig::paper_default();
        cfg.douse.sets = sets;
        let res = run_suite(&cfg, scale)?;
        t.row_f64(
            &format!("{}", sets * 4),
            [
                res.geomean_ipc(),
                res.mean_of(|r| r.douse.accuracy()).unwrap_or(0.0) * 100.0,
                res.mean_of(|r| r.douse.coverage()).unwrap_or(0.0) * 100.0,
            ],
            3,
        );
    }
    Ok(t)
}

/// Extension: cost of store→load ordering through the LSQ (the
/// Table 1 machine has 128-entry load/store queues; disabling the
/// model shows how much memory-dependence serialization costs).
pub fn lsq(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["store->load ordering", "geomean-ipc", "lsq-stall-slots"]);
    for (name, on) in [("modeled (default)", true), ("ignored", false)] {
        let mut cfg = SimConfig::paper_default();
        cfg.model_store_forwarding = on;
        let res = run_suite(&cfg, scale)?;
        let stalls: u64 = res.runs.iter().map(|(_, r)| r.store_forward_stalls).sum();
        t.row([
            name.to_string(),
            format!("{:.4}", res.geomean_ipc()),
            stalls.to_string(),
        ]);
    }
    Ok(t)
}

/// Extension: the extended (FP/mixed) kernels under each register
/// storage organization — the paper evaluates SPECint only; this checks
/// the conclusions hold beyond integer code.
pub fn extended(scale: Scale) -> Result<Table, SuiteError> {
    use ubrc_workloads::extended_suite;
    let mut t = Table::new(["kernel", "lru", "non-bypass", "use-based", "RF-3"]);
    let configs: Vec<SimConfig> = schemes(64, 2, 2)
        .into_iter()
        .map(|(_, c)| c)
        .chain(std::iter::once(mono_cfg(3)))
        .collect();
    for w in extended_suite(scale) {
        let mut row = vec![w.name.to_string()];
        for cfg in &configs {
            let r = run_one(&w, cfg.clone())?;
            row.push(format!("{:.4}", r.ipc()));
        }
        t.row(row);
    }
    Ok(t)
}

/// §2.2 ablation: "a single read port suffices" for the backing file —
/// sweep the port count and show the flat curve.
pub fn backing_ports(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["read-ports", "geomean-ipc", "contention-cycles"]);
    for ports in [1usize, 2, 4] {
        let mut cfg = SimConfig::paper_default();
        cfg.backing_read_ports = ports;
        let res = run_suite(&cfg, scale)?;
        let contention: u64 = res
            .runs
            .iter()
            .filter_map(|(_, r)| r.backing.map(|b| b.port_contention_cycles))
            .sum();
        t.row([
            ports.to_string(),
            format!("{:.4}", res.geomean_ipc()),
            contention.to_string(),
        ]);
    }
    Ok(t)
}

/// Front-end ablation: the register cache under different conditional
/// branch predictors (the mis-speculation loop interacts with the
/// cache's replay loop).
pub fn predictors(scale: Scale) -> Result<Table, SuiteError> {
    use ubrc_sim::BranchPredictorKind as B;
    let mut t = Table::new(["predictor", "geomean-ipc", "mispredict%"]);
    for (name, kind) in [
        ("not-taken", B::NotTaken),
        ("bimodal 4KB", B::Bimodal),
        ("gshare 4KB", B::Gshare),
        ("yags 12KB (paper)", B::Yags),
    ] {
        let mut cfg = SimConfig::paper_default();
        cfg.branch_predictor = kind;
        let res = run_suite(&cfg, scale)?;
        let mr = res.mean_of(|r| r.branch_mispredict_rate()).unwrap_or(0.0);
        t.row_f64(name, [res.geomean_ipc(), mr * 100.0], 4);
    }
    Ok(t)
}

/// Extension: miss rate of the three schemes under synthetic programs
/// with controlled degree-of-use distributions (not in the paper; shows
/// directly that use-based management keys on the distribution).
pub fn synthetic_sweep(_scale: Scale) -> Result<Table, SuiteError> {
    let specs = [
        ("single-use-heavy", SyntheticSpec::single_use_heavy(11)),
        ("high-use", SyntheticSpec::high_use(11)),
        ("dead-value-heavy", SyntheticSpec::dead_value_heavy(11)),
    ];
    let mut t = Table::new([
        "distribution",
        "lru-miss%",
        "non-bypass-miss%",
        "use-based-miss%",
    ]);
    for (name, spec) in specs {
        let w = spec.build();
        let mut row = vec![name.to_string()];
        for (_, cfg) in schemes(64, 2, 2) {
            let r = run_one(&w, cfg)?;
            let miss = r
                .regcache
                .as_ref()
                .and_then(|c| c.miss_rate())
                .unwrap_or(0.0);
            row.push(format!("{:.2}", miss * 100.0));
        }
        t.row(row);
    }
    Ok(t)
}

/// Extension: replacement-scorer comparison at the design point
/// (64-entry, 2-way, filtered round-robin indexing). `expected-hit-count`
/// is the first policy added through the [`ubrc_core::ReplacementScorer`]
/// trait seam: identical to use-based fewest-remaining-uses except that
/// fill-installed entries are floored at one expected hit — the miss
/// that forced the fill is evidence the degree prediction undercounted
/// (after Vakil Ghahani et al., "Making Belady-Inspired Replacement
/// Policies More Effective Using Expected Hit Count").
pub fn ehc(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new(["replacement", "geomean-ipc", "miss/operand %"]);
    for (name, cache) in [
        ("lru", RegCacheConfig::lru(64, 2)),
        ("fewest-uses (paper)", RegCacheConfig::use_based(64, 2)),
        (
            "expected-hit-count",
            RegCacheConfig::expected_hit_count(64, 2),
        ),
    ] {
        let cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
        let res = run_suite(&cfg, scale)?;
        let miss = res.mean_of(|r| r.miss_rate_per_operand()).unwrap_or(0.0);
        t.row_f64(name, [res.geomean_ipc(), miss * 100.0], 4);
    }
    Ok(t)
}

/// Extension: SMT co-scheduling. Each [`ubrc_workloads::kernel_pairs`]
/// pairing runs on one 2-thread core (replicated front end,
/// partitioned register file, shared issue/execute/cache — see
/// DESIGN.md, "SMT front end") and the aggregate IPC is compared with
/// the single-thread suite geomean under the same storage scheme. Two
/// threads double the pressure on the shared register cache without
/// doubling its capacity, so the fewest-uses-vs-LRU gap should *widen*
/// relative to the 1-thread column.
pub fn smt(scale: Scale) -> Result<Table, SuiteError> {
    let variants = [
        (
            "use-based",
            cached_cfg(
                RegCacheConfig::use_based(64, 2),
                IndexPolicy::FilteredRoundRobin,
                2,
            ),
        ),
        (
            "lru",
            cached_cfg(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin, 2),
        ),
        ("no-cache (RF 3-cycle)", mono_cfg(3)),
    ];
    let mut t = Table::new(["scheme", "1T-geomean-ipc", "2T-geomean-ipc", "2T/1T"]);
    for (name, cfg) in variants {
        let one = run_suite(&cfg, scale)?.geomean_ipc();
        let two = crate::runner::run_pair_suite(&cfg, scale)?.geomean_ipc();
        t.row_f64(name, [one, two, two / one], 4);
    }
    Ok(t)
}

/// Extension: 4-thread SMT register-cache partitioning. Each
/// [`ubrc_workloads::kernel_quads`] grouping runs on one 4-thread core
/// and the aggregate IPC is reported for the {use-based, LRU} ×
/// {shared, way-partitioned, occupancy-capped} register-cache matrix.
/// The geometry is 64 entries x 4 ways so `WayPartition` gives each
/// thread exactly one way per set. A shared cache lets a
/// register-hungry thread crowd out its siblings; the partition
/// policies trade that interference against lower effective capacity
/// per thread, and the `vs-shared` column shows which effect wins for
/// each replacement scheme.
/// SMT fairness: the harmonic mean of per-thread speedups versus the
/// shared-cache baseline, over every (quad, thread) pair. Each
/// thread's IPC is its retired count over the cell's shared cycles
/// (the per-kernel `thread_ipc` the trajectory also records); its
/// speedup is that IPC over the same thread's IPC in the baseline run
/// of the same quad. The harmonic mean punishes schemes that buy
/// aggregate IPC by starving one thread, so a partition that helps
/// everyone evenly scores near its `vs-shared` ratio while an unfair
/// one scores visibly lower. The baseline scores exactly 1.
fn fairness_vs_shared(baseline: &SuiteResult, run: &SuiteResult) -> f64 {
    let mut inv_sum = 0.0;
    let mut n = 0usize;
    for ((_, b), (_, r)) in baseline.runs.iter().zip(&run.runs) {
        for (&bt, &rt) in b.thread_retired.iter().zip(&r.thread_retired) {
            let base_ipc = bt as f64 / b.cycles.max(1) as f64;
            let ipc = rt as f64 / r.cycles.max(1) as f64;
            if base_ipc > 0.0 && ipc > 0.0 {
                inv_sum += base_ipc / ipc;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / inv_sum
    }
}

/// Extension: the 4-thread register-cache partition matrix (shared /
/// way-partitioned / occupancy-capped) for both replacement schemes,
/// with the `fairness-hmean` harmonic-mean column alongside the
/// aggregate `vs-shared` IPC ratio.
pub fn smt4(scale: Scale) -> Result<Table, SuiteError> {
    let partitions = [
        ("shared", CachePartition::Shared),
        ("way-partition", CachePartition::WayPartition),
        ("occupancy-cap", CachePartition::OccupancyCap),
    ];
    let schemes = [
        (
            "use-based",
            RegCacheConfig::use_based(64, 4),
            IndexPolicy::FilteredRoundRobin,
        ),
        ("lru", RegCacheConfig::lru(64, 4), IndexPolicy::RoundRobin),
    ];
    let mut t = Table::new([
        "scheme",
        "partition",
        "4T-geomean-ipc",
        "vs-shared",
        "fairness-hmean",
    ]);
    for (scheme, base, index) in schemes {
        let mut shared: Option<SuiteResult> = None;
        for (pname, p) in partitions {
            let mut cache = base;
            cache.partition = p;
            let cfg = cached_cfg(cache, index, 2);
            let res = crate::runner::run_quad_suite(&cfg, scale)?;
            let ipc = res.geomean_ipc();
            let baseline = shared.get_or_insert_with(|| res.clone());
            let fairness = fairness_vs_shared(baseline, &res);
            let base_ipc = baseline.geomean_ipc();
            t.row([
                scheme.to_string(),
                pname.to_string(),
                format!("{ipc:.4}"),
                format!("{:.4}", ipc / base_ipc),
                format!("{fairness:.4}"),
            ]);
        }
    }
    Ok(t)
}

/// Extension: soft-error detection and recovery. Sweeps a periodic
/// recoverable-fault stream — one fault class per row, at one armed
/// fault per `period` cycles — against the parity layer that covers it,
/// with machine-check recovery enabled, and reports the IPC degradation
/// curve plus the recovery cost over the kernel suite: total
/// recoveries, the machine-check subset, and the median/p99 of the
/// per-recovery latency distribution (merged across kernels). The two
/// fault-free rows pin the zero-overhead claim: `protected` must match
/// `unprotected` exactly.
pub fn soft(scale: Scale) -> Result<Table, SuiteError> {
    use ubrc_core::ProtectionConfig;
    use ubrc_sim::{FaultKind, FaultPlan, RecoveryPolicy};

    let protected = |plan: Option<FaultPlan>| {
        let mut cache = RegCacheConfig::use_based(64, 2);
        cache.protection = ProtectionConfig::full();
        let mut cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
        cfg.recovery = RecoveryPolicy::enabled();
        cfg.fault_plan = plan;
        cfg
    };
    let mut rows: Vec<(String, SimConfig)> = vec![
        (
            "unprotected".into(),
            cached_cfg(
                RegCacheConfig::use_based(64, 2),
                IndexPolicy::FilteredRoundRobin,
                2,
            ),
        ),
        ("protected, fault-free".into(), protected(None)),
    ];
    for (kname, kind) in [
        ("cache-data", FaultKind::FlipCacheData),
        ("use-counter", FaultKind::FlipUseCounter),
        ("backing-word", FaultKind::FlipBackingWord),
    ] {
        for period in [400u64, 100] {
            rows.push((
                format!("{kname} 1/{period}cyc"),
                protected(Some(FaultPlan::periodic(11, period, kind))),
            ));
        }
    }
    let mut t = Table::new([
        "config",
        "geomean-ipc",
        "recoveries",
        "machine-checks",
        "p50-latency",
        "p99-latency",
    ]);
    for (name, cfg) in rows {
        let res = run_suite(&cfg, scale)?;
        let mut latency = ubrc_stats::Histogram::new();
        let (mut recoveries, mut machine_checks) = (0u64, 0u64);
        for (_, r) in &res.runs {
            recoveries += r.recoveries;
            machine_checks += r.machine_checks;
            latency.merge(&r.recovery_latency);
        }
        let pct = |p: f64| {
            latency
                .percentile(p)
                .map_or("-".to_string(), |v| v.to_string())
        };
        t.row([
            name,
            format!("{:.4}", res.geomean_ipc()),
            recoveries.to_string(),
            machine_checks.to_string(),
            pct(50.0),
            pct(99.0),
        ]);
    }
    Ok(t)
}

/// Tentpole extension: utility-driven dynamic register-cache
/// partitioning (after Qureshi & Patt's UCP, MICRO 2006, transplanted
/// to the register cache). The 4-thread partition matrix of [`smt4`]
/// gains a `dynamic-cap` row: per-thread shadow-tag utility monitors
/// feed a lookahead partitioner that recomputes the occupancy quotas
/// every 128 cycles (floor 4 entries/thread), so the cache tracks
/// each quad's phase behavior instead of freezing the even split.
/// Static occupancy capping pays for isolation with capacity
/// (`vs-shared` < 1); the dynamic row should close most of that gap by
/// granting quota where the monitors see marginal hits.
pub fn ucp(scale: Scale) -> Result<Table, SuiteError> {
    let partitions = [
        ("shared", CachePartition::Shared),
        ("occupancy-cap", CachePartition::OccupancyCap),
        (
            "dynamic-cap",
            CachePartition::DynamicCap {
                epoch_cycles: 128,
                min_cap: 4,
            },
        ),
    ];
    let schemes = [
        (
            "use-based",
            RegCacheConfig::use_based(64, 4),
            IndexPolicy::FilteredRoundRobin,
        ),
        ("lru", RegCacheConfig::lru(64, 4), IndexPolicy::RoundRobin),
    ];
    let mut t = Table::new([
        "scheme",
        "partition",
        "4T-geomean-ipc",
        "vs-shared",
        "fairness-hmean",
    ]);
    for (scheme, base, index) in schemes {
        let mut shared: Option<SuiteResult> = None;
        for (pname, p) in partitions {
            let mut cache = base;
            cache.partition = p;
            let cfg = cached_cfg(cache, index, 2);
            let res = crate::runner::run_quad_suite(&cfg, scale)?;
            let ipc = res.geomean_ipc();
            let baseline = shared.get_or_insert_with(|| res.clone());
            let fairness = fairness_vs_shared(baseline, &res);
            let base_ipc = baseline.geomean_ipc();
            t.row([
                scheme.to_string(),
                pname.to_string(),
                format!("{ipc:.4}"),
                format!("{:.4}", ipc / base_ipc),
                format!("{fairness:.4}"),
            ]);
        }
    }
    Ok(t)
}

/// Tentpole extension: UMON-guided dynamic *way* partitioning on the
/// `PartitionController` seam. The [`smt4`] matrix re-runs at 64
/// entries x 8 ways — wide enough that four threads start with two
/// ways each and the lookahead partitioner has whole ways to move —
/// comparing the static split (`way-partition`), entry-granular
/// dynamic quotas (`dynamic-cap`), way-granular reassignment
/// (`dynamic-way`, epoch 128), and the same controller under adaptive
/// epoch pacing (`dynamic-way adaptive`, epochs stretch 32..512 when
/// consecutive repartitions agree). Way reassignment keeps the
/// hard-isolation property of `WayPartition` (no set ever mixes
/// threads) while tracking phase behavior, so its row should land
/// between `dynamic-cap` and the static split's isolation tax.
pub fn dynway(scale: Scale) -> Result<Table, SuiteError> {
    use ubrc_core::EpochAdapt;
    let adapt = Some(EpochAdapt {
        min_cycles: 32,
        max_cycles: 512,
        band: 2,
    });
    let partitions: [(&str, CachePartition, Option<EpochAdapt>); 5] = [
        ("shared", CachePartition::Shared, None),
        ("way-partition", CachePartition::WayPartition, None),
        (
            "dynamic-cap",
            CachePartition::DynamicCap {
                epoch_cycles: 128,
                min_cap: 4,
            },
            None,
        ),
        (
            "dynamic-way",
            CachePartition::DynamicWay { epoch_cycles: 128 },
            None,
        ),
        (
            "dynamic-way adaptive",
            CachePartition::DynamicWay { epoch_cycles: 128 },
            adapt,
        ),
    ];
    let schemes = [
        (
            "use-based",
            RegCacheConfig::use_based(64, 8),
            IndexPolicy::FilteredRoundRobin,
        ),
        ("lru", RegCacheConfig::lru(64, 8), IndexPolicy::RoundRobin),
    ];
    let mut t = Table::new([
        "scheme",
        "partition",
        "4T-geomean-ipc",
        "vs-shared",
        "fairness-hmean",
    ]);
    for (scheme, base, index) in schemes {
        let mut shared: Option<SuiteResult> = None;
        for (pname, p, adapt) in &partitions {
            let mut cache = base;
            cache.partition = *p;
            cache.epoch_adapt = *adapt;
            let cfg = cached_cfg(cache, index, 2);
            let res = crate::runner::run_quad_suite(&cfg, scale)?;
            let ipc = res.geomean_ipc();
            let baseline = shared.get_or_insert_with(|| res.clone());
            let fairness = fairness_vs_shared(baseline, &res);
            let base_ipc = baseline.geomean_ipc();
            t.row([
                scheme.to_string(),
                pname.to_string(),
                format!("{ipc:.4}"),
                format!("{:.4}", ipc / base_ipc),
                format!("{fairness:.4}"),
            ]);
        }
    }
    Ok(t)
}

/// Extension: the SMT fetch-policy × freelist matrix. Each fetch
/// chooser ({ICOUNT, round-robin, ICOUNT.2.8}) runs against both
/// rename-register organizations (statically partitioned freelists vs.
/// a shared pool capped at 96 live registers per thread) over the
/// 2-thread pair suite and the 4-thread quad suite, under the paper's
/// use-based cache. ICOUNT's advantage should grow with thread count
/// (round-robin lets a stalled thread hold fetch slots), while the
/// shared pool trades isolation for rename headroom.
pub fn fetchpol(scale: Scale) -> Result<Table, SuiteError> {
    use ubrc_sim::{FetchPolicy, FreelistPolicy};
    let policies = [
        ("icount (paper)", FetchPolicy::Icount),
        ("round-robin", FetchPolicy::RoundRobin),
        ("icount.2.8", FetchPolicy::Icount28),
    ];
    let freelists = [
        ("partitioned", FreelistPolicy::Partitioned),
        ("shared cap=96", FreelistPolicy::Shared { cap: 96 }),
    ];
    let mut t = Table::new([
        "fetch-policy",
        "freelist",
        "2T-geomean-ipc",
        "4T-geomean-ipc",
    ]);
    for (fname, fetch) in policies {
        for (flname, freelist) in freelists {
            let mut cfg = SimConfig::paper_default();
            cfg.fetch_policy = fetch;
            cfg.freelist = freelist;
            let two = crate::runner::run_pair_suite(&cfg, scale)?.geomean_ipc();
            let four = crate::runner::run_quad_suite(&cfg, scale)?.geomean_ipc();
            t.row([
                fname.to_string(),
                flname.to_string(),
                format!("{two:.4}"),
                format!("{four:.4}"),
            ]);
        }
    }
    Ok(t)
}

/// Extension: the expected-hit-count replacement scorer swept across
/// cache geometry, against fewest-uses and against the related
/// fill-floor knob. `expected-hit-count` floors fill-installed entries
/// at one expected hit in the *scorer*; `fill-default=1` writes the
/// same floor into the use counter itself (which also delays the
/// entry's eviction once it becomes replaceable). Sweeping entries ×
/// associativity shows where the distinction matters: the scorer-side
/// floor should help most where fills are frequent (small caches) and
/// wash out as capacity grows.
pub fn ehc_sweep(scale: Scale) -> Result<Table, SuiteError> {
    let mut t = Table::new([
        "entries",
        "ways",
        "fewest-uses",
        "fill-default=1",
        "expected-hit-count",
    ]);
    for entries in [32usize, 64, 96] {
        for ways in [2usize, 4] {
            let fewest = RegCacheConfig::use_based(entries, ways);
            let mut floored = RegCacheConfig::use_based(entries, ways);
            floored.fill_default = 1;
            let ehc = RegCacheConfig::expected_hit_count(entries, ways);
            let mut row = vec![entries.to_string(), ways.to_string()];
            for cache in [fewest, floored, ehc] {
                let cfg = cached_cfg(cache, IndexPolicy::FilteredRoundRobin, 2);
                row.push(format!("{:.4}", run_suite(&cfg, scale)?.geomean_ipc()));
            }
            t.row(row);
        }
    }
    Ok(t)
}

/// Every experiment, as `(id, description, runner)` triples, in paper
/// order. The harness binary and the smoke tests iterate this. A
/// failing run reports the offending workload via [`SuiteError`]
/// instead of unwinding through the harness.
pub type ExperimentFn = fn(Scale) -> Result<Table, SuiteError>;

/// The experiment registry.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    fn table1_entry(_: Scale) -> Result<Table, SuiteError> {
        Ok(table1())
    }
    vec![
        ("table1", "simulated machine configuration", table1_entry),
        ("fig1", "median register lifetime phases", fig1),
        ("fig2", "allocated vs live register CDFs", fig2),
        ("fig6", "cache size and organization sweep", fig6),
        ("fig7", "decoupled indexing policies", fig7),
        ("fig8", "miss-rate breakdown by type", fig8),
        ("fig9", "access bandwidth", fig9),
        ("fig10", "filtering effects", fig10),
        ("table2", "register cache metrics", table2),
        ("fig11", "performance vs cache/L1 size", fig11),
        ("fig12", "performance vs backing-file latency", fig12),
        ("maxuse", "max use count sweep (§5.3)", maxuse),
        ("defaults", "unknown/fill default grid (§5.3)", defaults),
        (
            "twolevel-bw",
            "two-level transfer bandwidth (§5.5)",
            twolevel_bw,
        ),
        (
            "douse",
            "degree-of-use predictor accuracy (§3.3)",
            douse_accuracy,
        ),
        (
            "charstats",
            "bypass fraction and zero-use victims (§3)",
            charstats,
        ),
        (
            "filtered-params",
            "filtered round-robin parameters (§4.2)",
            filtered_params,
        ),
        (
            "synthetic",
            "synthetic degree-distribution sweep (extension)",
            synthetic_sweep,
        ),
        (
            "bypass",
            "bypass-network depth ablation (extension)",
            bypass_depth,
        ),
        ("oddsizes", "non-power-of-two cache sizes (§4.1)", odd_sizes),
        (
            "robustness",
            "degraded degree information (§3.4)",
            robustness,
        ),
        (
            "predictors",
            "branch predictor ablation (extension)",
            predictors,
        ),
        (
            "ports",
            "backing-file read port count (§2.2)",
            backing_ports,
        ),
        (
            "extended",
            "FP/mixed kernels under each organization (extension)",
            extended,
        ),
        ("lsq", "store-to-load ordering cost (extension)", lsq),
        (
            "ehc",
            "expected-hit-count replacement scorer (extension)",
            ehc,
        ),
        (
            "douse-size",
            "degree-of-use predictor capacity (extension)",
            douse_size,
        ),
        (
            "loadspec",
            "load-hit speculation vs oracle wakeup (extension)",
            loadspec,
        ),
        (
            "smt",
            "2-thread SMT kernel-pair co-scheduling (extension)",
            smt,
        ),
        (
            "smt4",
            "4-thread SMT register-cache partitioning (extension)",
            smt4,
        ),
        (
            "soft",
            "soft-error detection and recovery (extension)",
            soft,
        ),
        (
            "ucp",
            "utility-driven dynamic cache partitioning (extension)",
            ucp,
        ),
        (
            "dynway",
            "UMON-guided dynamic way partitioning (extension)",
            dynway,
        ),
        (
            "fetchpol",
            "SMT fetch-policy x freelist matrix (extension)",
            fetchpol,
        ),
        (
            "ehc-sweep",
            "expected-hit-count geometry sweep (extension)",
            ehc_sweep,
        ),
    ]
}
