//! Machine-readable benchmark trajectory (`BENCH_pipeline.json`).
//!
//! `experiments --json` runs the kernel suite under a fixed matrix of
//! register-storage configurations and records, per configuration, the
//! harness wall time, the simulated instruction count, the simulation
//! throughput (simulated instructions per wall second), and the
//! geometric-mean IPC. Successive checkins can compare the files to
//! track simulator performance without re-deriving anything from logs.
//!
//! The schema is documented in DESIGN.md (§Performance).

use crate::runner::{max_workers, run_suite_robust};
use std::time::Instant;
use ubrc_core::{CachePartition, IndexPolicy, ProtectionConfig, RegCacheConfig};
use ubrc_sim::{FaultKind, FaultPlan, RecoveryPolicy, RegStorage, SimConfig};
use ubrc_stats::Json;
use ubrc_workloads::Scale;

/// Version tag embedded in the emitted document. `/2` added the
/// per-kernel `attempts` count (runner retries) and the `soft-*`
/// protection/recovery configurations; `/3` added the dynamically
/// partitioned 4-thread cells (`smt4-*-dyncap`) and the 2-thread
/// fetch-policy cells (`smt2-use-based-{rr,ic28}`); `/4` added the
/// dynamically way-partitioned 4-thread cells (`smt4-*-dynway`, at the
/// 64x8 geometry so whole ways can move) and a per-kernel `thread_ipc`
/// array on every co-scheduled cell (per-thread retired over cell
/// cycles, from `SimResult::thread_retired`); `/5` added the optional
/// per-config `profile` section (per-stage wall-nanoseconds and call
/// counts summed over the config's kernels, present only when the run
/// was made with `--profile` / `UBRC_PROFILE`).
pub const SCHEMA: &str = "ubrc-bench-pipeline/5";

fn cached(cache: RegCacheConfig, index: IndexPolicy) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    })
}

/// The fixed configuration matrix the trajectory tracks: the paper's
/// three caching schemes plus the monolithic register-file baselines.
pub fn trajectory_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "rf-1",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 1,
                write_latency: 1,
            }),
        ),
        (
            "rf-3",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3,
            }),
        ),
        (
            "lru",
            cached(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "non-bypass",
            cached(RegCacheConfig::non_bypass(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "use-based",
            cached(
                RegCacheConfig::use_based(64, 2),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "ehc",
            cached(
                RegCacheConfig::expected_hit_count(64, 2),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "min-load",
            cached(RegCacheConfig::use_based(64, 2), IndexPolicy::MinLoad),
        ),
    ]
}

/// The soft-error configurations the trajectory tracks: the use-based
/// design point with full parity protection and machine-check recovery
/// enabled, once fault-free (pinning the zero-overhead claim: its
/// numbers must match `use-based`) and once under each class of
/// periodic recoverable fault (pinning the cost of the recovery
/// machinery itself).
pub fn soft_trajectory_configs() -> Vec<(&'static str, SimConfig)> {
    let protected = |plan: Option<FaultPlan>| {
        let mut cache = RegCacheConfig::use_based(64, 2);
        cache.protection = ProtectionConfig::full();
        let mut cfg = cached(cache, IndexPolicy::FilteredRoundRobin);
        cfg.recovery = RecoveryPolicy::enabled();
        cfg.fault_plan = plan;
        cfg
    };
    vec![
        ("soft-protected", protected(None)),
        (
            "soft-cache-p200",
            protected(Some(FaultPlan::periodic(7, 200, FaultKind::FlipCacheData))),
        ),
        (
            "soft-backing-p400",
            protected(Some(FaultPlan::periodic(
                9,
                400,
                FaultKind::FlipBackingWord,
            ))),
        ),
    ]
}

/// The 2-thread SMT configurations the trajectory tracks: each cell
/// runs every [`ubrc_workloads::kernel_pairs`] pairing co-scheduled on
/// one core, so its `ipc` columns are aggregate (two-thread) IPC. The
/// `rr`/`ic28` cells pin the fetch-policy ablation (the default cells
/// fetch with ICOUNT.1.8).
pub fn smt_trajectory_configs() -> Vec<(&'static str, SimConfig)> {
    let fetch = |mut cfg: SimConfig, policy: ubrc_sim::FetchPolicy| {
        cfg.fetch_policy = policy;
        cfg
    };
    let ub = || {
        cached(
            RegCacheConfig::use_based(64, 2),
            IndexPolicy::FilteredRoundRobin,
        )
    };
    vec![
        ("smt2-use-based", ub()),
        (
            "smt2-lru",
            cached(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "smt2-use-based-rr",
            fetch(ub(), ubrc_sim::FetchPolicy::RoundRobin),
        ),
        (
            "smt2-use-based-ic28",
            fetch(ub(), ubrc_sim::FetchPolicy::Icount28),
        ),
    ]
}

/// The 4-thread SMT configurations the trajectory tracks: each cell
/// runs every [`ubrc_workloads::kernel_quads`] grouping co-scheduled on
/// one core under the {use-based, LRU} × {shared, way-partitioned,
/// occupancy-capped} register-cache matrix (64-entry 4-way geometry so
/// the ways divide across the threads), so its `ipc` columns are
/// aggregate (four-thread) IPC.
pub fn smt4_trajectory_configs() -> Vec<(&'static str, SimConfig)> {
    let part = |mut cache: RegCacheConfig, p: CachePartition| {
        cache.partition = p;
        cache
    };
    let ub = || RegCacheConfig::use_based(64, 4);
    let lru = || RegCacheConfig::lru(64, 4);
    vec![
        (
            "smt4-use-based-shared",
            cached(
                part(ub(), CachePartition::Shared),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "smt4-use-based-waypart",
            cached(
                part(ub(), CachePartition::WayPartition),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "smt4-use-based-occcap",
            cached(
                part(ub(), CachePartition::OccupancyCap),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "smt4-lru-shared",
            cached(part(lru(), CachePartition::Shared), IndexPolicy::RoundRobin),
        ),
        (
            "smt4-lru-waypart",
            cached(
                part(lru(), CachePartition::WayPartition),
                IndexPolicy::RoundRobin,
            ),
        ),
        (
            "smt4-lru-occcap",
            cached(
                part(lru(), CachePartition::OccupancyCap),
                IndexPolicy::RoundRobin,
            ),
        ),
        (
            "smt4-use-based-dyncap",
            cached(
                part(
                    ub(),
                    CachePartition::DynamicCap {
                        epoch_cycles: 128,
                        min_cap: 4,
                    },
                ),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "smt4-lru-dyncap",
            cached(
                part(
                    lru(),
                    CachePartition::DynamicCap {
                        epoch_cycles: 128,
                        min_cap: 4,
                    },
                ),
                IndexPolicy::RoundRobin,
            ),
        ),
        (
            "smt4-use-based-dynway",
            cached(
                part(
                    RegCacheConfig::use_based(64, 8),
                    CachePartition::DynamicWay { epoch_cycles: 128 },
                ),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
        (
            "smt4-lru-dynway",
            cached(
                part(
                    RegCacheConfig::lru(64, 8),
                    CachePartition::DynamicWay { epoch_cycles: 128 },
                ),
                IndexPolicy::RoundRobin,
            ),
        ),
    ]
}

/// Outcome of a trajectory run: the (possibly partial) document plus
/// the number of failed cells. The document is always emitted — a
/// failing kernel is recorded in place as an error object — so a broken
/// configuration still leaves a usable partial trajectory on disk.
#[derive(Debug)]
pub struct TrajectoryOutcome {
    /// The `BENCH_pipeline.json` document.
    pub doc: Json,
    /// Number of simulation cells that failed across the whole matrix.
    pub failed: usize,
}

/// Runs the trajectory matrix and builds the `BENCH_pipeline.json`
/// document, degrading gracefully: failed cells become
/// `{"name", "error": {"kind", "message"}}` objects and are counted in
/// [`TrajectoryOutcome::failed`], while aggregate statistics cover the
/// cells that completed.
pub fn pipeline_trajectory(scale: Scale) -> TrajectoryOutcome {
    let mut singles = trajectory_configs();
    singles.extend(soft_trajectory_configs());
    trajectory_over(
        singles,
        smt_trajectory_configs(),
        smt4_trajectory_configs(),
        scale,
    )
}

/// How many hardware threads a trajectory cell co-schedules.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CellKind {
    Single,
    Pair,
    Quad,
}

/// Sums the per-stage self-profiles of a config's successful kernels
/// into one `profile` JSON section (stage order as the pipeline runs
/// them). `None` when no kernel carried a profile — i.e. the run was
/// made without `--profile` — so the section never appears empty.
fn aggregate_profile(report: &crate::runner::SuiteReport) -> Option<Json> {
    let mut stages: Vec<(&'static str, u64, u64)> = Vec::new();
    for cell in &report.runs {
        let Ok(r) = &cell.outcome else { continue };
        let Some(p) = &r.profile else { continue };
        for s in &p.stages {
            match stages.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, nanos, calls)) => {
                    *nanos += s.nanos;
                    *calls += s.calls;
                }
                None => stages.push((s.name, s.nanos, s.calls)),
            }
        }
    }
    if stages.is_empty() {
        return None;
    }
    let total: u64 = stages.iter().map(|&(_, nanos, _)| nanos).sum();
    Some(Json::obj([
        ("total_nanos", Json::from(total)),
        (
            "stages",
            Json::arr(stages.into_iter().map(|(name, nanos, calls)| {
                Json::obj([
                    ("name", Json::from(name)),
                    ("nanos", Json::from(nanos)),
                    ("calls", Json::from(calls)),
                ])
            })),
        ),
    ]))
}

fn trajectory_over(
    matrix: Vec<(&'static str, SimConfig)>,
    smt_matrix: Vec<(&'static str, SimConfig)>,
    smt4_matrix: Vec<(&'static str, SimConfig)>,
    scale: Scale,
) -> TrajectoryOutcome {
    let t_total = Instant::now();
    let mut configs = Vec::new();
    let mut total_insts: u64 = 0;
    let mut total_failed = 0usize;
    let cells = matrix
        .into_iter()
        .map(|(name, cfg)| (name, cfg, CellKind::Single))
        .chain(
            smt_matrix
                .into_iter()
                .map(|(name, cfg)| (name, cfg, CellKind::Pair)),
        )
        .chain(
            smt4_matrix
                .into_iter()
                .map(|(name, cfg)| (name, cfg, CellKind::Quad)),
        );
    for (name, cfg, kind) in cells {
        let t0 = Instant::now();
        let report = match kind {
            CellKind::Single => run_suite_robust(&cfg, scale),
            CellKind::Pair => crate::runner::run_pair_suite_robust(&cfg, scale),
            CellKind::Quad => crate::runner::run_quad_suite_robust(&cfg, scale),
        };
        let wall = t0.elapsed().as_secs_f64();
        let ok = report.successes();
        let failed = report.failed();
        total_failed += failed;
        let insts = ok.total_retired();
        total_insts += insts;
        let kernels = Json::arr(report.runs.iter().map(|cell| match &cell.outcome {
            Ok(r) => {
                let mut fields = vec![
                    ("name", Json::from(cell.name)),
                    ("cycles", Json::from(r.cycles)),
                    ("retired", Json::from(r.retired)),
                    ("ipc", Json::from(r.ipc())),
                ];
                if kind != CellKind::Single {
                    fields.push((
                        "thread_ipc",
                        Json::arr(
                            r.thread_retired
                                .iter()
                                .map(|&n| Json::from(n as f64 / r.cycles.max(1) as f64)),
                        ),
                    ));
                }
                fields.push(("attempts", Json::from(cell.attempts as u64)));
                Json::obj(fields)
            }
            Err(e) => Json::obj([
                ("name", Json::from(cell.name)),
                (
                    "error",
                    Json::obj([
                        ("kind", Json::from(e.failure.kind())),
                        ("message", Json::from(e.reason())),
                    ]),
                ),
                ("attempts", Json::from(cell.attempts as u64)),
            ]),
        }));
        let mut fields = vec![
            ("name", Json::from(name)),
            ("wall_seconds", Json::from(wall)),
            ("instructions", Json::from(insts)),
            (
                "sim_insts_per_sec",
                Json::from(insts as f64 / wall.max(1e-9)),
            ),
            ("geomean_ipc", Json::from(ok.geomean_ipc())),
            ("failed", Json::from(failed)),
        ];
        if let Some(profile) = aggregate_profile(&report) {
            fields.push(("profile", profile));
        }
        fields.push(("kernels", kernels));
        configs.push(Json::obj(fields));
    }
    let total_wall = t_total.elapsed().as_secs_f64();
    let doc = Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("scale", Json::from(format!("{scale:?}").to_lowercase())),
        ("workers", Json::from(max_workers())),
        ("total_wall_seconds", Json::from(total_wall)),
        (
            "total_sim_insts_per_sec",
            Json::from(total_insts as f64 / total_wall.max(1e-9)),
        ),
        ("failed", Json::from(total_failed)),
        ("configs", Json::arr(configs)),
    ]);
    TrajectoryOutcome {
        doc,
        failed: total_failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_document_has_the_published_schema() {
        let out = pipeline_trajectory(Scale::Tiny);
        assert_eq!(out.failed, 0);
        let s = out.doc.to_string();
        assert!(s.starts_with(&format!(r#"{{"schema":"{SCHEMA}""#)));
        for key in [
            r#""scale":"tiny""#,
            r#""workers":"#,
            r#""total_wall_seconds":"#,
            r#""total_sim_insts_per_sec":"#,
            r#""configs":["#,
            r#""name":"use-based""#,
            r#""name":"ehc""#,
            r#""name":"min-load""#,
            r#""name":"soft-protected""#,
            r#""name":"soft-cache-p200""#,
            r#""name":"soft-backing-p400""#,
            r#""attempts":1"#,
            r#""name":"smt2-use-based""#,
            r#""name":"smt2-lru""#,
            r#""name":"smt2-use-based-rr""#,
            r#""name":"smt2-use-based-ic28""#,
            r#""name":"smt4-use-based-shared""#,
            r#""name":"smt4-use-based-waypart""#,
            r#""name":"smt4-use-based-occcap""#,
            r#""name":"smt4-lru-shared""#,
            r#""name":"smt4-lru-waypart""#,
            r#""name":"smt4-lru-occcap""#,
            r#""name":"smt4-use-based-dyncap""#,
            r#""name":"smt4-lru-dyncap""#,
            r#""name":"smt4-use-based-dynway""#,
            r#""name":"smt4-lru-dynway""#,
            r#""name":"qsort+bfs+listchase+strsearch""#,
            r#""thread_ipc":["#,
            r#""geomean_ipc":"#,
            r#""sim_insts_per_sec":"#,
            r#""kernels":["#,
        ] {
            assert!(s.contains(key), "missing `{key}` in {s}");
        }
    }

    #[test]
    fn profile_section_aggregates_per_stage_samples() {
        use crate::runner::{run_one_cell, RunOptions, SuiteReport};
        let w = ubrc_workloads::workload_by_name("crc", Scale::Tiny).unwrap();
        let opts = RunOptions {
            profile: true,
            ..RunOptions::default()
        };
        let report = SuiteReport {
            runs: vec![
                run_one_cell(&w, SimConfig::paper_default(), opts),
                run_one_cell(&w, SimConfig::paper_default(), opts),
            ],
        };
        let profile = aggregate_profile(&report).expect("profiled run has a section");
        let s = profile.to_string();
        assert!(s.contains(r#""total_nanos":"#), "missing total in {s}");
        for stage in ["inject", "issue", "rename", "fetch", "storage-tick"] {
            assert!(
                s.contains(&format!(r#""name":"{stage}""#)),
                "missing {stage} in {s}"
            );
        }
        // Two identical profiled kernels: every stage ran in both, so
        // each per-stage call count is even and positive.
        assert!(!s.contains(r#""calls":0"#), "stage with zero calls in {s}");
        // Without profiling there is no section at all.
        let plain = SuiteReport {
            runs: vec![run_one_cell(
                &w,
                SimConfig::paper_default(),
                RunOptions::default(),
            )],
        };
        assert!(aggregate_profile(&plain).is_none());
    }

    #[test]
    fn trajectory_degrades_to_partial_results() {
        // One broken configuration in the matrix: its kernels become
        // error objects, the document still renders, and the failure
        // count is surfaced for the binary's non-zero exit.
        let mut broken = SimConfig::paper_default();
        broken.phys_regs = 8;
        let matrix = vec![("good", SimConfig::paper_default()), ("broken", broken)];
        let out = trajectory_over(matrix, vec![], vec![], Scale::Tiny);
        assert_eq!(out.failed, 12);
        let s = out.doc.to_string();
        assert!(s.contains(r#""name":"good""#));
        assert!(s.contains(r#""name":"broken""#));
        assert!(
            s.contains(r#""error":{"kind":"config""#),
            "missing error object in {s}"
        );
        assert!(s.contains(r#""failed":12"#));
    }
}
