//! Machine-readable benchmark trajectory (`BENCH_pipeline.json`).
//!
//! `experiments --json` runs the kernel suite under a fixed matrix of
//! register-storage configurations and records, per configuration, the
//! harness wall time, the simulated instruction count, the simulation
//! throughput (simulated instructions per wall second), and the
//! geometric-mean IPC. Successive checkins can compare the files to
//! track simulator performance without re-deriving anything from logs.
//!
//! The schema is documented in DESIGN.md (§Performance).

use crate::runner::{max_workers, run_suite, SuiteError};
use std::time::Instant;
use ubrc_core::{IndexPolicy, RegCacheConfig};
use ubrc_sim::{RegStorage, SimConfig};
use ubrc_stats::Json;
use ubrc_workloads::Scale;

/// Version tag embedded in the emitted document.
pub const SCHEMA: &str = "ubrc-bench-pipeline/1";

fn cached(cache: RegCacheConfig, index: IndexPolicy) -> SimConfig {
    SimConfig::table1(RegStorage::Cached {
        cache,
        index,
        backing_read: 2,
        backing_write: 2,
    })
}

/// The fixed configuration matrix the trajectory tracks: the paper's
/// three caching schemes plus the monolithic register-file baselines.
pub fn trajectory_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        (
            "rf-1",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 1,
                write_latency: 1,
            }),
        ),
        (
            "rf-3",
            SimConfig::table1(RegStorage::Monolithic {
                read_latency: 3,
                write_latency: 3,
            }),
        ),
        (
            "lru",
            cached(RegCacheConfig::lru(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "non-bypass",
            cached(RegCacheConfig::non_bypass(64, 2), IndexPolicy::RoundRobin),
        ),
        (
            "use-based",
            cached(
                RegCacheConfig::use_based(64, 2),
                IndexPolicy::FilteredRoundRobin,
            ),
        ),
    ]
}

/// Runs the trajectory matrix and builds the `BENCH_pipeline.json`
/// document.
///
/// # Errors
///
/// Propagates the [`SuiteError`] of the first failing kernel.
pub fn pipeline_trajectory(scale: Scale) -> Result<Json, SuiteError> {
    let t_total = Instant::now();
    let mut configs = Vec::new();
    let mut total_insts: u64 = 0;
    for (name, cfg) in trajectory_configs() {
        let t0 = Instant::now();
        let res = run_suite(&cfg, scale)?;
        let wall = t0.elapsed().as_secs_f64();
        let insts = res.total_retired();
        total_insts += insts;
        let kernels = Json::arr(res.runs.iter().map(|(kname, r)| {
            Json::obj([
                ("name", Json::from(*kname)),
                ("cycles", Json::from(r.cycles)),
                ("retired", Json::from(r.retired)),
                ("ipc", Json::from(r.ipc())),
            ])
        }));
        configs.push(Json::obj([
            ("name", Json::from(name)),
            ("wall_seconds", Json::from(wall)),
            ("instructions", Json::from(insts)),
            (
                "sim_insts_per_sec",
                Json::from(insts as f64 / wall.max(1e-9)),
            ),
            ("geomean_ipc", Json::from(res.geomean_ipc())),
            ("kernels", kernels),
        ]));
    }
    let total_wall = t_total.elapsed().as_secs_f64();
    Ok(Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("scale", Json::from(format!("{scale:?}").to_lowercase())),
        ("workers", Json::from(max_workers())),
        ("total_wall_seconds", Json::from(total_wall)),
        (
            "total_sim_insts_per_sec",
            Json::from(total_insts as f64 / total_wall.max(1e-9)),
        ),
        ("configs", Json::arr(configs)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_document_has_the_published_schema() {
        let doc = pipeline_trajectory(Scale::Tiny).unwrap();
        let s = doc.to_string();
        assert!(s.starts_with(&format!(r#"{{"schema":"{SCHEMA}""#)));
        for key in [
            r#""scale":"tiny""#,
            r#""workers":"#,
            r#""total_wall_seconds":"#,
            r#""total_sim_insts_per_sec":"#,
            r#""configs":["#,
            r#""name":"use-based""#,
            r#""geomean_ipc":"#,
            r#""sim_insts_per_sec":"#,
            r#""kernels":["#,
        ] {
            assert!(s.contains(key), "missing `{key}` in {s}");
        }
    }
}
